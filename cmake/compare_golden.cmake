# Byte-compares a bench binary's stdout against a committed golden fixture.
#
# The determinism contract: a sweep's CSV must be bit-for-bit reproducible
# under a fixed seed, regardless of --jobs (each run owns a private
# Simulation) and regardless of the event queue's internal storage tier.
# The fixtures were captured before the calendar-queue/arena refactor, so
# any byte of drift means the (time, seq) pop order or the floating-point
# accumulation order changed.
#
# Usage:
#   cmake -DBENCH=<binary> -DARGS="--csv --jobs 1 --out -"
#         -DGOLDEN=<fixture.csv> -P compare_golden.cmake
if(NOT BENCH OR NOT GOLDEN)
  message(FATAL_ERROR "compare_golden: BENCH and GOLDEN are required")
endif()
separate_arguments(ARGS)
execute_process(
  COMMAND ${BENCH} ${ARGS}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE bench_err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compare_golden: ${BENCH} exited with ${rc}:\n${bench_err}")
endif()
file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  if(OUT)
    file(WRITE "${OUT}" "${actual}")
    set(where " (actual written to ${OUT})")
  endif()
  message(FATAL_ERROR
    "compare_golden: ${BENCH} output diverged from ${GOLDEN}${where}. "
    "The sweep CSV must stay byte-identical across refactors; an intended "
    "metric change requires re-capturing the fixture.")
endif()
