// Minimal leveled logger.
//
// The simulator is performance sensitive (end-to-end benches run hundreds of
// thousands of iterations), so logging below the active level must cost a
// single branch.  Messages are formatted only when emitted.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>

namespace hetis {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace log_internal {
std::atomic<LogLevel>& global_level();
}  // namespace log_internal

/// Sets the process-wide log level.  Thread-safe: the level is atomic, so a
/// parallel sweep's workers may raise or lower it mid-run (relaxed ordering
/// -- a racing HETIS_LOG may emit one message at the old level, never tear).
void set_log_level(LogLevel level);
/// Returns the current process-wide log level.  The first call seeds the
/// level from the HETIS_LOG_LEVEL environment variable when set
/// ("trace|debug|info|warn|error|off"; unset keeps the kWarn default).
LogLevel log_level();

/// Parses "trace|debug|info|warn|error|off" (case-insensitive); defaults to
/// kInfo on unrecognized input.
LogLevel parse_log_level(const std::string& s);

namespace log_internal {
void emit(LogLevel level, const char* file, int line, const std::string& msg);
}  // namespace log_internal

#define HETIS_LOG(level, ...)                                                       \
  do {                                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::hetis::log_level())) {        \
      std::ostringstream hetis_log_oss_;                                            \
      hetis_log_oss_ << __VA_ARGS__;                                                \
      ::hetis::log_internal::emit(level, __FILE__, __LINE__, hetis_log_oss_.str()); \
    }                                                                               \
  } while (0)

#define HETIS_TRACE(...) HETIS_LOG(::hetis::LogLevel::kTrace, __VA_ARGS__)
#define HETIS_DEBUG(...) HETIS_LOG(::hetis::LogLevel::kDebug, __VA_ARGS__)
#define HETIS_INFO(...) HETIS_LOG(::hetis::LogLevel::kInfo, __VA_ARGS__)
#define HETIS_WARN(...) HETIS_LOG(::hetis::LogLevel::kWarn, __VA_ARGS__)
#define HETIS_ERROR(...) HETIS_LOG(::hetis::LogLevel::kError, __VA_ARGS__)

}  // namespace hetis
