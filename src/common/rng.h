// Seeded random number generation for fully reproducible experiments.
//
// Every stochastic component (arrival processes, dataset samplers, error
// injection) takes an explicit Rng so that a single top-level seed
// reproduces an entire experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hetis {

/// Thin wrapper around a 64-bit Mersenne Twister with convenience samplers.
/// Copyable; copies evolve independently (useful to fork substreams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : gen_(seed) {}

  /// Creates an independent substream; deterministic in (parent seed, salt).
  Rng fork(std::uint64_t salt) {
    std::uint64_t mixed = next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(mixed);
  }

  std::uint64_t next_u64() { return gen_(); }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Exponential with the given rate (mean 1/rate).  rate must be > 0.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  /// Normal with the given mean and stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(gen_);
  }

  /// Truncated log-normal: resamples (up to 64 tries) then clamps into
  /// [lo, hi].  Used by the dataset length samplers.
  double lognormal_trunc(double mu, double sigma, double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace hetis
