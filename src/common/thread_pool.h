// Fixed-size thread pool with a blocking parallel_for.
//
// The paper (§6) accelerates head-wise KV-block indexing with multi-core CPU
// parallelization; this pool is the substrate for that (see
// kvcache/index_builder.*) and for the Parallelizer's parallel intra-stage
// search (§4.1).  Static partitioning is used: index-building work items are
// uniform, so work stealing would buy nothing and cost cache traffic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hetis {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish.  Iterations are statically chunked.  Exceptions from
  /// the body propagate (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) per worker-sized chunk.
  /// Preferred for short loop bodies (amortizes dispatch).
  void parallel_for_chunked(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs fn(i) for i in [0, n) as n independently-scheduled tasks and
  /// blocks until all complete.  Unlike parallel_for's static chunking,
  /// tasks are pulled dynamically, so wildly uneven task costs (the
  /// experiment harness: later rate points take far longer) still balance.
  /// When bodies throw, the exception of the LOWEST index is rethrown --
  /// deterministic regardless of completion order.
  void run_tasks(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hetis
