#include "common/log.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace hetis {

namespace log_internal {

std::atomic<LogLevel>& global_level() {
  // Seeded once, thread-safely (C++11 magic static), from HETIS_LOG_LEVEL;
  // unset keeps the historical kWarn default.
  static std::atomic<LogLevel> level = [] {
    const char* env = std::getenv("HETIS_LOG_LEVEL");
    return env != nullptr ? parse_log_level(env) : LogLevel::kWarn;
  }();
  return level;
}

void emit(LogLevel level, const char* file, int line, const std::string& msg) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  // Strip the directory part for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", kNames[static_cast<int>(level)], base, line,
               msg.c_str());
}

}  // namespace log_internal

void set_log_level(LogLevel level) {
  log_internal::global_level().store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return log_internal::global_level().load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

}  // namespace hetis
