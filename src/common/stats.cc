#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace hetis {

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Summary::sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Summary::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo_idx = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo_idx);
  if (lo_idx + 1 >= sorted.size()) return sorted.back();
  return sorted[lo_idx] * (1.0 - frac) + sorted[lo_idx + 1] * frac;
}

void Summary::merge(const Summary& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

void Welford::add(double v) {
  ++n_;
  double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets + 1, 0) {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double v) {
  ++total_;
  if (v >= hi_) {
    ++counts_.back();
    return;
  }
  double off = (v - lo_) / width_;
  auto idx = off <= 0.0 ? 0 : static_cast<std::size_t>(off);
  if (idx >= buckets()) idx = buckets() - 1;
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

std::string Histogram::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < buckets(); ++i) {
    oss << "[" << bucket_lo(i) << "," << bucket_lo(i + 1) << "): " << counts_[i] << "\n";
  }
  oss << "overflow: " << counts_.back() << "\n";
  return oss.str();
}

}  // namespace hetis
