#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hetis {

double Rng::lognormal_trunc(double mu, double sigma, double lo, double hi) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    double v = lognormal(mu, sigma);
    if (v >= lo && v <= hi) return v;
  }
  return std::clamp(lognormal(mu, sigma), lo, hi);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("weighted_index: non-positive total weight");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace hetis
