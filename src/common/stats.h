// Online statistics used by the metrics subsystem.
//
// `Summary` keeps every sample (experiments collect at most a few hundred
// thousand values) and computes exact percentiles on demand; `Welford`
// provides O(1)-memory mean/variance for hot paths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hetis {

/// Exact-percentile sample collector.
class Summary {
 public:
  void add(double v) { values_.push_back(v); }
  void add_n(double v, std::size_t n) { values_.insert(values_.end(), n, v); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  double sum() const;
  double stddev() const;

  /// Exact percentile with linear interpolation; p in [0, 100].
  /// Returns 0 for an empty summary.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  const std::vector<double>& values() const { return values_; }
  void clear() { values_.clear(); }

  /// Merges another summary's samples into this one.
  void merge(const Summary& other);

 private:
  std::vector<double> values_;
};

/// Numerically stable online mean / variance (Welford's algorithm).
class Welford {
 public:
  void add(double v);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v);
  std::size_t count() const { return total_; }
  /// Count in bucket i (0-based); i == buckets() is the overflow bucket,
  /// underflow values are clamped into bucket 0.
  std::size_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size() - 1; }
  double bucket_lo(std::size_t i) const;
  std::string to_string() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;  // buckets + 1 overflow
  std::size_t total_ = 0;
};

}  // namespace hetis
