#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hetis {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nchunks = std::min(n, size());
  if (nchunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t lo = begin + c * chunk;
    std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_tasks(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  // Every future is drained before rethrowing (tasks reference fn), and
  // iterating in index order makes the surviving exception the lowest
  // index's, independent of which task failed first on the wall clock.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hetis
