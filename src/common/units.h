// Strong unit helpers used throughout the codebase.
//
// All times are in seconds (double), all sizes in bytes (int64), all
// rates in units/second.  The helpers below exist so call sites read as
// `4 * GiB` or `micros(20)` instead of bare magic numbers.
#pragma once

#include <cstdint>

namespace hetis {

using Seconds = double;
using Bytes = std::int64_t;
using Flops = double;          // floating point operations (count)
using FlopsPerSec = double;    // throughput
using BytesPerSec = double;    // bandwidth

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

inline constexpr double KILO = 1e3;
inline constexpr double MEGA = 1e6;
inline constexpr double GIGA = 1e9;
inline constexpr double TERA = 1e12;

/// Converts microseconds to Seconds.
constexpr Seconds micros(double us) { return us * 1e-6; }
/// Converts milliseconds to Seconds.
constexpr Seconds millis(double ms) { return ms * 1e-3; }

/// Converts Seconds to milliseconds (for reporting).
constexpr double to_millis(Seconds s) { return s * 1e3; }
/// Converts Seconds to microseconds (for reporting).
constexpr double to_micros(Seconds s) { return s * 1e6; }

/// Converts bytes to GB (decimal, for reporting to match the paper's units).
constexpr double to_gb(Bytes b) { return static_cast<double>(b) / 1e9; }
/// Converts bytes to GiB (binary).
constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(GiB); }

}  // namespace hetis
