#include "baselines/hexgen.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "costmodel/kernel_model.h"

namespace hetis::baselines {

parallel::ParallelPlan hexgen_plan(const hw::Cluster& cluster, const model::ModelSpec& model) {
  // Stage groups: one per (type, host), ordered by compute power desc so
  // prefill's first stages sit on the fastest devices.
  struct Group {
    hw::GpuType type;
    std::vector<int> devices;
  };
  std::vector<Group> groups;
  for (hw::GpuType type : cluster.types_by_power_desc()) {
    std::map<int, std::vector<int>> by_host;
    for (int id : cluster.devices_of_type(type)) {
      by_host[cluster.device(id).host].push_back(id);
    }
    for (auto& [host, devs] : by_host) {
      groups.push_back(Group{type, devs});
    }
  }

  // Asymmetric layer split balancing per-stage time (HexGen's objective:
  // equalize execution time across heterogeneous stages).
  costmodel::KernelModel kernel;
  const std::int64_t kDecodeBatch = 64;
  const std::int64_t kCtx = 512;
  std::vector<double> per_layer;
  for (const auto& g : groups) {
    const hw::GpuSpec& gpu = hw::gpu_spec(g.type);
    int tp = static_cast<int>(g.devices.size());
    std::vector<std::int64_t> ctxs(static_cast<std::size_t>(kDecodeBatch), kCtx);
    double t = kernel.dense_layer_time(gpu, model, kDecodeBatch, tp) +
               kernel.decode_attention_time(gpu, model, ctxs, std::max(1, model.heads / tp));
    per_layer.push_back(t);
  }
  double inv_sum = 0;
  for (double c : per_layer) inv_sum += 1.0 / c;
  std::vector<int> layers(groups.size(), 0);
  int assigned = 0;
  std::vector<double> frac(groups.size());
  for (std::size_t k = 0; k < groups.size(); ++k) {
    double ideal = model.layers * (1.0 / per_layer[k]) / inv_sum;
    layers[k] = static_cast<int>(ideal);
    frac[k] = ideal - layers[k];
    assigned += layers[k];
  }
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&frac](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t k = 0; assigned < model.layers; ++k) {
    layers[order[k % groups.size()]] += 1;
    ++assigned;
  }
  // Every stage must own at least one layer.
  for (std::size_t k = 0; k < groups.size(); ++k) {
    while (layers[k] == 0) {
      std::size_t donor = static_cast<std::size_t>(
          std::max_element(layers.begin(), layers.end()) - layers.begin());
      --layers[donor];
      ++layers[k];
    }
  }

  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  for (std::size_t k = 0; k < groups.size(); ++k) {
    parallel::StageConfig stage;
    stage.devices = groups[k].devices;
    stage.layers = layers[k];
    inst.stages.push_back(std::move(stage));
  }
  plan.instances.push_back(std::move(inst));
  return plan;
}

HexgenEngine::HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                           const engine::HexgenConfig& cfg)
    : HexgenEngine(cluster, model, cfg.plan ? *cfg.plan : hexgen_plan(cluster, model), cfg) {}

HexgenEngine::HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                           parallel::ParallelPlan plan, const engine::HexgenConfig& cfg)
    : exec_(cluster, model), cfg_(cfg), plan_(std::move(plan)) {
  build_instances();
}

void HexgenEngine::build_instances() {
  engine::InstanceOptions opts;
  opts.max_prefill_tokens = cfg_.max_prefill_tokens;
  opts.max_batch = cfg_.max_batch;
  int id = static_cast<int>(retired_.size());
  for (const auto& inst : plan_.instances) {
    instances_.push_back(
        std::make_unique<engine::PipelineInstance>(exec_, inst, metrics_, opts, id++));
    instances_.back()->set_tenant_priorities(tenant_priorities_);
  }
}

void HexgenEngine::set_tenant_priorities(std::vector<int> priorities) {
  tenant_priorities_ = std::move(priorities);
  for (auto& inst : instances_) inst->set_tenant_priorities(tenant_priorities_);
}

void HexgenEngine::submit(sim::Simulation& sim, const workload::Request& r) {
  metrics_.on_arrival(r);
  // Mid-restart arrivals park with the carried-over requests (the flush
  // callback drains both).
  if (restart_.park_arrival(sim, r)) return;
  route(sim, r);
}

void HexgenEngine::route(sim::Simulation& sim, const workload::Request& r) {
  // Route to the least-filled instance (standard DP load balancing).
  engine::PipelineInstance* best = instances_.front().get();
  for (auto& inst : instances_) {
    if (inst->fill_fraction() < best->fill_fraction()) best = inst.get();
  }
  best->submit(sim, r);
}

std::string HexgenEngine::plan_digest() const {
  std::ostringstream os;
  os << "hexgen:" << plan_.instances.size() << "inst[";
  for (std::size_t i = 0; i < plan_.instances.size(); ++i) {
    const parallel::InstanceConfig& inst = plan_.instances[i];
    os << (i ? "," : "") << "pp" << inst.stages.size() << "/dev"
       << inst.primary_devices().size();
  }
  os << "]";
  return os.str();
}

std::vector<int> HexgenEngine::active_devices() const {
  std::vector<int> devs;
  for (const auto& inst : plan_.instances) {
    for (int d : inst.primary_devices()) devs.push_back(d);
  }
  std::sort(devs.begin(), devs.end());
  return devs;
}

void HexgenEngine::reconfigure(sim::Simulation& sim, const std::vector<int>& devices) {
  restart_.invalidate();
  // Checkpoint: drain every instance; prefilled requests lose their decode
  // progress (surfaced as a preemption), waiting requests just re-queue.
  for (auto& inst : instances_) {
    engine::DrainedRequests d = inst->retire();
    for (auto& lr : d.fresh) restart_.park(sim, metrics_, std::move(lr));
    for (auto& lr : d.live) restart_.park(sim, metrics_, std::move(lr));
    retired_.push_back(std::move(inst));
  }
  instances_.clear();

  // Restart: recompute the static layout on the surviving sub-cluster and
  // deploy it back onto the parent cluster's device ids.
  std::vector<int> original_ids;
  hw::Cluster sub = exec_.cluster().subcluster(devices, &original_ids);
  parallel::ParallelPlan plan = hexgen_plan(sub, exec_.model_spec());
  parallel::remap_device_ids(plan, original_ids);
  plan_ = std::move(plan);
  build_instances();

  restart_.begin_restart(sim, restart_dead_time(exec_.cluster(), exec_.model_spec()),
                         [this](sim::Simulation& s, const workload::Request& r) { route(s, r); });
}

Bytes HexgenEngine::usable_kv_capacity() const {
  Bytes total = 0;
  for (const auto& inst : instances_) total += inst->usable_kv_capacity();
  return total;
}

double HexgenEngine::kv_fill_fraction() const {
  double worst = 0;
  for (const auto& inst : instances_) worst = std::max(worst, inst->fill_fraction());
  return worst;
}

}  // namespace hetis::baselines

#include "engine/registry.h"

HETIS_REGISTER_ENGINE(hexgen, [](const hetis::hw::Cluster& cluster,
                                 const hetis::model::ModelSpec& model,
                                 const hetis::engine::EngineOptions& opts)
                                  -> std::unique_ptr<hetis::engine::Engine> {
  auto cfg = opts.get_or_default<hetis::engine::HexgenConfig>("hexgen");
  auto eng = std::make_unique<hetis::baselines::HexgenEngine>(cluster, model, cfg);
  if (!opts.tenant_priorities.empty()) eng->set_tenant_priorities(opts.tenant_priorities);
  return eng;
});
