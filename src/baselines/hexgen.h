// HexGen baseline (paper §7.1): static asymmetric parameter-splitting.
//
// As instantiated in the paper's evaluation: one serving instance running a
// per-type pipeline (homogeneous GPUs per stage, TP within each stage,
// e.g. A100x4 -> 3090x2 -> 3090x2 -> P100x4 for the paper cluster) with an
// asymmetric layer split that balances per-stage execution time.  Prefill
// and decode run colocated on the same workers.  The parallelization is
// decided once, offline, and never adapts -- which is precisely the
// static-parallelism behaviour Hetis improves on.
#pragma once

#include <memory>

#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/options.h"
#include "parallel/plan.h"

namespace hetis::baselines {

/// Builds the paper-style HexGen plan: one pipeline stage per (type, host)
/// group ordered high-end -> low-end, TP across the group's devices, layer
/// counts balancing per-stage decode+prefill cost.
parallel::ParallelPlan hexgen_plan(const hw::Cluster& cluster, const model::ModelSpec& model);

class HexgenEngine : public engine::Engine {
 public:
  /// `cfg.plan` (when set) overrides the default asymmetric layout, like
  /// the plan overload below.
  HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
               const engine::HexgenConfig& cfg = {});
  /// With an externally-computed plan (tests / ablations).
  HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
               parallel::ParallelPlan plan, const engine::HexgenConfig& cfg = {});

  std::string name() const override { return "Hexgen"; }
  void submit(sim::Simulation& sim, const workload::Request& r) override;
  Bytes usable_kv_capacity() const override;

  const parallel::ParallelPlan& plan() const { return plan_; }

 private:
  engine::ExecModel exec_;
  parallel::ParallelPlan plan_;
  std::vector<std::unique_ptr<engine::PipelineInstance>> instances_;
};

}  // namespace hetis::baselines
