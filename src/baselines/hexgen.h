// HexGen baseline (paper §7.1): static asymmetric parameter-splitting.
//
// As instantiated in the paper's evaluation: one serving instance running a
// per-type pipeline (homogeneous GPUs per stage, TP within each stage,
// e.g. A100x4 -> 3090x2 -> 3090x2 -> P100x4 for the paper cluster) with an
// asymmetric layer split that balances per-stage execution time.  Prefill
// and decode run colocated on the same workers.  The parallelization is
// decided once, offline, and never adapts -- which is precisely the
// static-parallelism behaviour Hetis improves on.
#pragma once

#include <memory>

#include "baselines/restart.h"
#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/options.h"
#include "engine/reconfigurable.h"
#include "parallel/plan.h"

namespace hetis::baselines {

/// Builds the paper-style HexGen plan: one pipeline stage per (type, host)
/// group ordered high-end -> low-end, TP across the group's devices, layer
/// counts balancing per-stage decode+prefill cost.
parallel::ParallelPlan hexgen_plan(const hw::Cluster& cluster, const model::ModelSpec& model);

class HexgenEngine : public engine::Engine, public engine::Reconfigurable {
 public:
  /// `cfg.plan` (when set) overrides the default asymmetric layout, like
  /// the plan overload below.
  HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
               const engine::HexgenConfig& cfg = {});
  /// With an externally-computed plan (tests / ablations).
  HexgenEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
               parallel::ParallelPlan plan, const engine::HexgenConfig& cfg = {});

  std::string name() const override { return "Hexgen"; }
  void submit(sim::Simulation& sim, const workload::Request& r) override;
  Bytes usable_kv_capacity() const override;
  double kv_fill_fraction() const override;
  /// No dispatch LP here; only the shared cost-model memo contributes.
  engine::PerfCounters perf_counters() const override {
    engine::PerfCounters pc;
    pc.costmodel_hits = exec_.cost_cache_hits();
    return pc;
  }

  /// Per-tenant admission priorities (engine/options.h); call before the
  /// first submit.  Survives reconfiguration.
  void set_tenant_priorities(std::vector<int> priorities);

  // Reconfigurable: HexGen's parallelization is decided offline, so a
  // device-set change is checkpoint-and-restart -- the layout is recomputed
  // from scratch, every in-flight request loses its progress, and serving
  // pauses for the model reload window (restart_dead_time).
  std::vector<int> active_devices() const override;
  void reconfigure(sim::Simulation& sim, const std::vector<int>& devices) override;
  const engine::ReconfigStats& reconfig_stats() const override { return restart_.stats(); }
  /// "hexgen:<n>inst[pp<stages>/dev<count>,...]" -- the audit trail's plan
  /// diff.
  std::string plan_digest() const override;

  const parallel::ParallelPlan& plan() const { return plan_; }

 private:
  void build_instances();
  void route(sim::Simulation& sim, const workload::Request& r);

  engine::ExecModel exec_;
  engine::HexgenConfig cfg_;
  parallel::ParallelPlan plan_;
  std::vector<int> tenant_priorities_;
  std::vector<std::unique_ptr<engine::PipelineInstance>> instances_;
  // Instances retired by reconfigure stay alive until the engine dies so
  // their still-scheduled simulation events remain safe no-ops.
  std::vector<std::unique_ptr<engine::PipelineInstance>> retired_;
  CheckpointRestart restart_;  // shared checkpoint-and-restart mechanics
};

}  // namespace hetis::baselines
