#include "baselines/splitwise.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/log.h"

namespace hetis::baselines {

SplitwisePlan splitwise_default_plan(const hw::Cluster& cluster, const model::ModelSpec& model) {
  SplitwisePlan plan;
  std::vector<hw::GpuType> types = cluster.types_by_power_desc();
  if (types.empty()) throw std::invalid_argument("splitwise_default_plan: empty cluster");

  // Prefill pool: every device of the most powerful type, full-model TP.
  {
    parallel::StageConfig stage;
    stage.devices = cluster.devices_of_type(types.front());
    stage.layers = model.layers;
    plan.prefill.stages.push_back(std::move(stage));
  }

  // Decode pools: pipelines over the remaining types (high -> low).  The
  // instance count halves each type's device count (paper: two
  // [3090-TP2 -> P100-TP2] pipelines); degenerate counts fall back to one.
  std::vector<hw::GpuType> rest(types.begin() + 1, types.end());
  if (rest.empty()) {
    // Single-type cluster: split the pool in half between phases.
    auto devs = plan.prefill.stages.front().devices;
    std::size_t half = devs.size() / 2;
    if (half == 0) throw std::invalid_argument("splitwise_default_plan: too few devices");
    plan.prefill.stages.front().devices.resize(half);
    parallel::InstanceConfig decode;
    parallel::StageConfig stage;
    stage.devices = std::vector<int>(devs.begin() + half, devs.end());
    stage.layers = model.layers;
    decode.stages.push_back(std::move(stage));
    plan.decode.push_back(std::move(decode));
    return plan;
  }

  // Per-decode-stage layer capacity is MEMORY-bound: a stage can host at
  // most as many layer shards as fit in (1 - kv_margin) of its post-reserve
  // memory.  (A compute-balanced split would assign the 3090s far more of
  // Llama-70B than 24 GB can hold.)
  const double kKvMargin = 0.15;  // keep some room for KV caches
  const Bytes layer_bytes = model.layer_param_bytes();
  auto stage_layer_cap = [&](hw::GpuType t, int tp) {
    Bytes budget = 0;
    const hw::GpuSpec& gpu = hw::gpu_spec(t);
    budget = engine::kv_budget(gpu, 0) * tp;
    return static_cast<int>((1.0 - kKvMargin) * static_cast<double>(budget) /
                            static_cast<double>(layer_bytes));
  };

  // Try d decode pipelines, halving each type's count; fall back to d = 1
  // (all low-end devices in one pipeline) and finally to borrowing a
  // leading stage from the prefill pool when the model cannot fit on the
  // low-end pools at all (the Llama-70B situation).
  int d = std::numeric_limits<int>::max();
  for (hw::GpuType t : rest) {
    d = std::min(d, static_cast<int>(cluster.devices_of_type(t).size()));
  }
  d = std::max(1, d / 2);
  for (hw::GpuType t : rest) {
    if (static_cast<int>(cluster.devices_of_type(t).size()) % d != 0) {
      d = 1;
      break;
    }
  }

  auto fits = [&](int dd) {
    int cap = 0;
    for (hw::GpuType t : rest) {
      int per = static_cast<int>(cluster.devices_of_type(t).size()) / dd;
      cap += stage_layer_cap(t, per);
    }
    return cap >= model.layers;
  };
  while (d > 1 && !fits(d)) d = 1;

  int borrowed_layers = 0;
  if (!fits(d)) {
    // Low-end pools cannot hold the model: borrow the leftover layers as a
    // leading decode stage on the prefill devices (which keep their full
    // prefill model copy; `extra_reserved` accounts for it).
    int cap = 0;
    for (hw::GpuType t : rest) {
      cap += stage_layer_cap(t, static_cast<int>(cluster.devices_of_type(t).size()));
    }
    borrowed_layers = model.layers - cap;
    d = 1;
  }

  const auto& prefill_devs = plan.prefill.stages.front().devices;
  const Bytes prefill_copy =
      model.param_bytes() / static_cast<Bytes>(prefill_devs.size());

  for (int rep = 0; rep < d; ++rep) {
    parallel::InstanceConfig decode;
    int layers_left = model.layers;
    if (borrowed_layers > 0) {
      parallel::StageConfig stage;
      stage.devices = prefill_devs;
      stage.layers = borrowed_layers;
      stage.extra_reserved = prefill_copy;  // the prefill model copy
      layers_left -= borrowed_layers;
      decode.stages.push_back(std::move(stage));
    }
    // Remaining layers proportional to each stage's memory capacity.
    std::vector<int> caps;
    int cap_sum = 0;
    for (hw::GpuType t : rest) {
      int per = static_cast<int>(cluster.devices_of_type(t).size()) / d;
      caps.push_back(stage_layer_cap(t, per));
      cap_sum += caps.back();
    }
    const int to_split = layers_left;
    std::vector<std::size_t> low_end_stage_idx;
    for (std::size_t k = 0; k < rest.size(); ++k) {
      auto devs = cluster.devices_of_type(rest[k]);
      int per = static_cast<int>(devs.size()) / d;
      parallel::StageConfig stage;
      stage.devices.assign(devs.begin() + rep * per, devs.begin() + (rep + 1) * per);
      int want = static_cast<int>(static_cast<double>(to_split) * caps[k] / cap_sum);
      stage.layers = std::min({want, caps[k], layers_left});
      layers_left -= stage.layers;
      low_end_stage_idx.push_back(decode.stages.size());
      decode.stages.push_back(std::move(stage));
    }
    // Distribute the integer remainder into whatever capacity is left.
    for (std::size_t k = 0; k < low_end_stage_idx.size() && layers_left > 0; ++k) {
      auto& stage = decode.stages[low_end_stage_idx[k]];
      int room = caps[k] - stage.layers;
      int add = std::min(room, layers_left);
      stage.layers += add;
      layers_left -= add;
    }
    if (layers_left > 0) {
      // Shouldn't happen (fits() checked), but never build a broken plan.
      decode.stages[low_end_stage_idx.back()].layers += layers_left;
      layers_left = 0;
    }
    // Degenerate empty stages confuse the pipeline model; drop them.
    std::vector<parallel::StageConfig> kept;
    for (auto& s : decode.stages) {
      if (s.layers > 0) kept.push_back(std::move(s));
    }
    decode.stages = std::move(kept);
    plan.decode.push_back(std::move(decode));
  }

  // The prefill pool must also account for the borrowed decode shard.
  if (borrowed_layers > 0) {
    plan.prefill.stages.front().extra_reserved =
        layer_bytes * borrowed_layers / static_cast<Bytes>(prefill_devs.size());
  }
  return plan;
}

SplitwiseEngine::SplitwiseEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                                 const engine::SplitwiseConfig& cfg)
    : SplitwiseEngine(cluster, model, splitwise_default_plan(cluster, model), cfg) {}

SplitwiseEngine::SplitwiseEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                                 SplitwisePlan plan, const engine::SplitwiseConfig& cfg)
    : cluster_(&cluster),
      exec_(cluster, model),
      plan_(std::move(plan)),
      hauler_(cluster, hauler::HaulerOptions{/*bandwidth_share=*/1.0}),
      cfg_(cfg) {
  build_instances();
}

void SplitwiseEngine::build_instances() {
  engine::InstanceOptions popts;
  popts.max_prefill_tokens = cfg_.max_prefill_tokens;
  popts.max_batch = cfg_.max_batch;
  popts.prefill_only = true;
  popts.defer_first_token = true;  // first token reaches the user decode-side
  const int base = static_cast<int>(retired_.size()) * 8;  // distinct ids per epoch
  prefill_ =
      std::make_unique<engine::PipelineInstance>(exec_, plan_.prefill, metrics_, popts, base);
  prefill_->set_prefill_handoff(
      [this](sim::Simulation& sim, const engine::LiveRequest& lr) { on_prefill_done(sim, lr); });
  prefill_->set_tenant_priorities(tenant_priorities_);

  engine::InstanceOptions dopts;
  dopts.max_prefill_tokens = cfg_.max_prefill_tokens;
  dopts.max_batch = cfg_.max_batch;
  dopts.decode_only = true;
  int id = base + 1;
  for (const auto& decode_cfg : plan_.decode) {
    decode_.push_back(
        std::make_unique<engine::PipelineInstance>(exec_, decode_cfg, metrics_, dopts, id++));
    decode_.back()->set_tenant_priorities(tenant_priorities_);
  }
}

void SplitwiseEngine::set_tenant_priorities(std::vector<int> priorities) {
  tenant_priorities_ = std::move(priorities);
  prefill_->set_tenant_priorities(tenant_priorities_);
  for (auto& d : decode_) d->set_tenant_priorities(tenant_priorities_);
}

void SplitwiseEngine::submit(sim::Simulation& sim, const workload::Request& r) {
  metrics_.on_arrival(r);
  // Mid-restart arrivals park with the carried-over requests.
  if (restart_.park_arrival(sim, r)) return;
  prefill_->submit(sim, r);
}

void SplitwiseEngine::on_prefill_done(sim::Simulation& sim, const engine::LiveRequest& lr) {
  if (lr.done()) {
    // Single-token outputs finish at prefill; no migration needed.
    prefill_->release_prefilled(lr);
    metrics_.on_first_token(lr.req.id, sim.now());
    metrics_.on_finish(lr.req.id, sim.now());
    return;
  }
  parked_.push_back(lr);
  pump_migrations(sim);
}

void SplitwiseEngine::pump_migrations(sim::Simulation& sim) {
  while (!parked_.empty()) {
    engine::LiveRequest lr = parked_.front();
    // Decode pool with the most headroom whose space we can reserve NOW
    // (reserving up front makes migration completion infallible even under
    // concurrent decode growth).
    std::size_t best = decode_.size();
    double best_fill = 2.0;
    for (std::size_t i = 0; i < decode_.size(); ++i) {
      if (!decode_[i]->has_room(lr.context())) continue;
      double fill = decode_[i]->fill_fraction();
      if (fill < best_fill) {
        best_fill = fill;
        best = i;
      }
    }
    if (best == decode_.size()) break;  // no room anywhere: backpressure
    if (!decode_[best]->reserve_incoming(lr.context())) break;
    parked_.pop_front();
    migrating_.emplace(lr.req.id, lr);

    // Ship each decode stage its layer share of the KV (a borrowed stage on
    // the prefill devices keeps its share in place at zero cost).
    const model::ModelSpec& m = exec_.model_spec();
    int src = plan_.prefill.stages.front().devices.front();
    Seconds done = sim.now();
    for (const auto& stage : plan_.decode[best].stages) {
      Bytes kv_bytes = m.kv_bytes_per_token_layer() * stage.layers * lr.context();
      done = std::max(done,
                      hauler_.migrate(src, stage.devices.front(), kv_bytes, sim.now()));
    }
    metrics_.on_migrate(lr.req.id, sim.now(), done, src,
                        plan_.decode[best].stages.front().devices.front());
    const int epoch = restart_.epoch();
    sim.schedule_at(done, [this, &sim, lr, best, epoch] {
      // A reconfigure retired this migration's endpoints; the request was
      // already carried into the restarted deployment via migrating_.
      if (restart_.stale(epoch)) return;
      migrating_.erase(lr.req.id);
      prefill_->release_prefilled(lr);
      // The migrated first token is what the user sees (phase-split TTFT
      // includes the KV transfer).
      metrics_.on_first_token(lr.req.id, sim.now());
      decode_[best]->submit_reserved(sim, lr);
      pump_migrations(sim);
    });
  }
  // Backpressure retry: poll while requests are parked.
  if (!parked_.empty() && !pump_scheduled_) {
    pump_scheduled_ = true;
    sim.schedule_in(0.025, [this, &sim] {
      pump_scheduled_ = false;
      pump_migrations(sim);
    });
  }
}

Bytes SplitwiseEngine::usable_kv_capacity() const {
  // Requests spend almost their whole lifetime decoding, so the decode
  // pools bound how many can be hosted simultaneously (Fig. 11's metric);
  // prefill-pool cache is transient and does not add serving capacity.
  Bytes total = 0;
  for (const auto& d : decode_) total += d->usable_kv_capacity();
  return total;
}

double SplitwiseEngine::kv_fill_fraction() const {
  double worst = 0;
  for (const auto& d : decode_) worst = std::max(worst, d->fill_fraction());
  return worst;
}

std::string SplitwiseEngine::plan_digest() const {
  std::ostringstream os;
  os << "splitwise:prefill[tp" << plan_.prefill.stages.front().devices.size() << "]+"
     << plan_.decode.size() << "dec[";
  for (std::size_t i = 0; i < plan_.decode.size(); ++i) {
    os << (i ? "," : "") << "pp" << plan_.decode[i].stages.size();
  }
  os << "]";
  return os.str();
}

std::vector<int> SplitwiseEngine::active_devices() const {
  std::vector<int> devs;
  for (const auto& s : plan_.prefill.stages) {
    devs.insert(devs.end(), s.devices.begin(), s.devices.end());
  }
  for (const auto& inst : plan_.decode) {
    for (const auto& s : inst.stages) {
      for (int d : s.devices) {
        // Borrowed decode stages reuse prefill devices; report each once.
        if (std::find(devs.begin(), devs.end(), d) == devs.end()) devs.push_back(d);
      }
    }
  }
  std::sort(devs.begin(), devs.end());
  return devs;
}

void SplitwiseEngine::reconfigure(sim::Simulation& sim, const std::vector<int>& devices) {
  restart_.invalidate();
  // Checkpoint: drain both phase pools plus every request in limbo between
  // them (parked for decode room, or mid-KV-migration).
  engine::DrainedRequests pre = prefill_->retire();
  for (auto& lr : pre.fresh) restart_.park(sim, metrics_, std::move(lr));
  for (auto& lr : pre.live) restart_.park(sim, metrics_, std::move(lr));
  retired_.push_back(std::move(prefill_));
  for (auto& d : decode_) {
    engine::DrainedRequests dr = d->retire();
    for (auto& lr : dr.fresh) restart_.park(sim, metrics_, std::move(lr));
    for (auto& lr : dr.live) restart_.park(sim, metrics_, std::move(lr));
    retired_.push_back(std::move(d));
  }
  decode_.clear();
  for (auto& lr : parked_) restart_.park(sim, metrics_, std::move(lr));
  parked_.clear();
  for (auto& [id, lr] : migrating_) restart_.park(sim, metrics_, lr);
  migrating_.clear();

  // Restart: recompute the phase split on the surviving sub-cluster and
  // deploy it back onto the parent cluster's device ids.
  std::vector<int> original_ids;
  hw::Cluster sub = cluster_->subcluster(devices, &original_ids);
  SplitwisePlan plan = splitwise_default_plan(sub, exec_.model_spec());
  for (auto& s : plan.prefill.stages) parallel::remap_device_ids(s, original_ids);
  for (auto& inst : plan.decode) parallel::remap_device_ids(inst, original_ids);
  plan_ = std::move(plan);
  build_instances();

  restart_.begin_restart(
      sim, restart_dead_time(*cluster_, exec_.model_spec()),
      [this](sim::Simulation& s, const workload::Request& r) { prefill_->submit(s, r); });
}

}  // namespace hetis::baselines

#include "engine/registry.h"

HETIS_REGISTER_ENGINE(splitwise, [](const hetis::hw::Cluster& cluster,
                                    const hetis::model::ModelSpec& model,
                                    const hetis::engine::EngineOptions& opts)
                                     -> std::unique_ptr<hetis::engine::Engine> {
  auto cfg = opts.get_or_default<hetis::engine::SplitwiseConfig>("splitwise");
  auto eng = std::make_unique<hetis::baselines::SplitwiseEngine>(cluster, model, cfg);
  if (!opts.tenant_priorities.empty()) eng->set_tenant_priorities(opts.tenant_priorities);
  return eng;
});
