// Splitwise baseline (paper §7.1): prefill/decode phase splitting.
//
// As instantiated in the paper: prefill runs on the high-end pool (A100s,
// full-model TP), decode on the low-end pools (3090 -> P100 pipelines),
// with the full model replicated in both pools and each request's KV cache
// migrated from the prefill pool to a decode pool after its prompt is
// processed.  The phase split is static: high-end GPUs never help decode,
// low-end GPUs never help prefill, and memory is spent on duplicate
// parameter copies -- the inefficiencies §2.3 dissects.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "baselines/restart.h"
#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/options.h"
#include "engine/reconfigurable.h"
#include "hauler/hauler.h"
#include "parallel/plan.h"

namespace hetis::baselines {

struct SplitwisePlan {
  parallel::InstanceConfig prefill;                 // single-stage, full model
  std::vector<parallel::InstanceConfig> decode;     // PP over low-end types
};

/// Paper-style default: prefill = all devices of the most powerful type,
/// full-model TP; decode = d pipelines over the remaining types, where d
/// halves each type's count (the paper's 2x [3090-TP2 -> P100-TP2]).
SplitwisePlan splitwise_default_plan(const hw::Cluster& cluster, const model::ModelSpec& model);

class SplitwiseEngine : public engine::Engine, public engine::Reconfigurable {
 public:
  SplitwiseEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                  const engine::SplitwiseConfig& cfg = {});
  SplitwiseEngine(const hw::Cluster& cluster, const model::ModelSpec& model, SplitwisePlan plan,
                  const engine::SplitwiseConfig& cfg = {});

  std::string name() const override { return "Splitwise"; }
  void submit(sim::Simulation& sim, const workload::Request& r) override;
  Bytes usable_kv_capacity() const override;
  double kv_fill_fraction() const override;
  /// No dispatch LP here; only the shared cost-model memo contributes.
  engine::PerfCounters perf_counters() const override {
    engine::PerfCounters pc;
    pc.costmodel_hits = exec_.cost_cache_hits();
    return pc;
  }

  /// Per-tenant admission priorities (engine/options.h); call before the
  /// first submit.  Survives reconfiguration.
  void set_tenant_priorities(std::vector<int> priorities);

  // Reconfigurable: the phase split is static, so a device-set change is
  // checkpoint-and-restart -- pools are rebuilt from scratch, in-flight
  // requests (including mid-migration ones) re-prefill, and serving pauses
  // for the model reload window (restart_dead_time).
  std::vector<int> active_devices() const override;
  void reconfigure(sim::Simulation& sim, const std::vector<int>& devices) override;
  const engine::ReconfigStats& reconfig_stats() const override { return restart_.stats(); }
  /// "splitwise:prefill[tp<n>]+<m>dec[pp<k>,...]" -- the audit trail's plan
  /// diff.
  std::string plan_digest() const override;

  const SplitwisePlan& plan() const { return plan_; }
  Bytes migrated_bytes() const { return hauler_.total_bytes(); }

 private:
  void build_instances();
  /// Called when the prefill pool finishes a prompt: queue the KV migration
  /// to a decode pool (gated on decode-side memory).
  void on_prefill_done(sim::Simulation& sim, const engine::LiveRequest& lr);
  /// Tries to start migrations for parked requests.
  void pump_migrations(sim::Simulation& sim);

  const hw::Cluster* cluster_;
  engine::ExecModel exec_;
  SplitwisePlan plan_;
  hauler::Hauler hauler_;  // share=1.0: Splitwise migrations are foreground
  engine::SplitwiseConfig cfg_;

  std::unique_ptr<engine::PipelineInstance> prefill_;
  std::vector<std::unique_ptr<engine::PipelineInstance>> decode_;
  // Pools retired by reconfigure stay alive until the engine dies so their
  // still-scheduled simulation events remain safe no-ops.
  std::vector<std::unique_ptr<engine::PipelineInstance>> retired_;

  std::deque<engine::LiveRequest> parked_;  // prefilled, waiting for decode room
  // Requests whose prefill -> decode KV migration is in flight: the landing
  // callback is the only other owner, so reconfigure needs this registry to
  // carry them into the restarted deployment.
  std::map<workload::RequestId, engine::LiveRequest> migrating_;
  std::vector<int> tenant_priorities_;
  CheckpointRestart restart_;  // shared checkpoint-and-restart mechanics
                               // (its epoch also guards migration landings)
  bool pump_scheduled_ = false;
};

}  // namespace hetis::baselines
