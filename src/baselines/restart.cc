#include "baselines/restart.h"

#include <algorithm>
#include <utility>

namespace hetis::baselines {

Seconds restart_dead_time(const hw::Cluster& cluster, const model::ModelSpec& model) {
  // One full model copy over the inter-host fabric: the dominant cost of
  // re-deploying a static layout (weights stream from the checkpoint /
  // neighbor hosts).  ~2 s for Llama-13B on the paper's 100 Gbps LAN.
  const hw::Link& lan = cluster.inter_host_link();
  return lan.transfer_time(model.param_bytes());
}

void CheckpointRestart::park(sim::Simulation& sim, engine::MetricsCollector& metrics,
                             engine::LiveRequest lr) {
  if (lr.prefilled || lr.generated > 0) {
    metrics.on_preemption(lr.req.id, sim.now());
    ++stats_.restarted_requests;
    lr.prefilled = false;
    lr.generated = 0;
  }
  pending_.emplace(lr.req.id, std::move(lr));
}

bool CheckpointRestart::park_arrival(const sim::Simulation& sim, const workload::Request& r) {
  if (sim.now() >= ready_at_) return false;
  engine::LiveRequest lr;
  lr.req = r;
  pending_.emplace(r.id, std::move(lr));
  return true;
}

void CheckpointRestart::begin_restart(sim::Simulation& sim, Seconds dead, Resubmit resubmit) {
  const Seconds new_ready = sim.now() + dead;
  stats_.restart_dead_time += new_ready - std::max(ready_at_, sim.now());
  ready_at_ = new_ready;
  ++stats_.reconfigurations;
  const int epoch = epoch_;
  sim.schedule_at(ready_at_, [this, &sim, epoch, resubmit = std::move(resubmit)] {
    if (stale(epoch)) return;  // superseded by a newer restart
    auto pending = std::move(pending_);
    pending_.clear();
    for (auto& [id, lr] : pending) resubmit(sim, lr.req);
  });
}

}  // namespace hetis::baselines
