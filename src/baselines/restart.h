// Checkpoint-and-restart bookkeeping shared by the static-parallelism
// baselines (Splitwise, HexGen).
//
// A static layout cannot absorb a device-set change online: the engine
// tears its pools down, reloads the model onto the new deployment (a dead
// window of restart_dead_time), and every in-flight request re-prefills.
// This helper owns the shared mechanics so the two engines cannot drift:
// the parked-request registry, the epoch counter that invalidates stale
// scheduled callbacks, the overlapping-dead-window accounting, and the
// flush that re-submits everything once the reload lands.
#pragma once

#include <functional>
#include <map>

#include "engine/instance.h"
#include "engine/metrics.h"
#include "engine/reconfigurable.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "sim/simulation.h"

namespace hetis::baselines {

/// Model-reload window of a restarted deployment: one full model copy
/// over the inter-host fabric (~2 s for Llama-13B on the paper's LAN).
Seconds restart_dead_time(const hw::Cluster& cluster, const model::ModelSpec& model);

class CheckpointRestart {
 public:
  using Resubmit = std::function<void(sim::Simulation&, const workload::Request&)>;

  /// Call at the START of a reconfigure: scheduled callbacks holding the
  /// previous epoch (migrations, flushes) become no-ops.
  void invalidate() { ++epoch_; }
  int epoch() const { return epoch_; }
  bool stale(int epoch) const { return epoch != epoch_; }

  /// Parks a drained request for the next flush.  Requests with prefill
  /// progress lose it (checkpoint-restart semantics), surfaced as a
  /// preemption on `metrics` and counted in the stats.
  void park(sim::Simulation& sim, engine::MetricsCollector& metrics, engine::LiveRequest lr);

  /// Parks a fresh arrival when it lands inside the reload window (the
  /// pending flush will submit it); returns false -- serve normally --
  /// otherwise.
  bool park_arrival(const sim::Simulation& sim, const workload::Request& r);

  /// Opens a `dead`-second reload window at sim.now() and schedules the
  /// flush that re-submits every parked request through `resubmit`.
  /// Overlapping windows only extend the pause -- the accounting charges
  /// the extension, not another full window -- and a newer begin()
  /// supersedes the older flush via the epoch guard.
  void begin_restart(sim::Simulation& sim, Seconds dead, Resubmit resubmit);

  engine::ReconfigStats& stats() { return stats_; }
  const engine::ReconfigStats& stats() const { return stats_; }

 private:
  // Keyed (= flushed) by id: arrival order.
  std::map<workload::RequestId, engine::LiveRequest> pending_;
  engine::ReconfigStats stats_;
  int epoch_ = 0;
  Seconds ready_at_ = 0;  // serving resumes at this sim time
};

}  // namespace hetis::baselines
