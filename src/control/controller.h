// The elastic control plane: a Controller that lives inside a simulated
// run, watches the live metric stream, replays a cluster churn script and
// re-deploys the engine online.
//
// Wiring (all per run, so parallel sweeps stay deterministic):
//
//   ControlSpec spec;                       // churn script + policy + knobs
//   control::Controller ctl(spec, cluster);
//   engine::RunOptions run;
//   run.on_start = ctl.starter();           // schedules events + ticks
//   engine::run_trace(*eng, trace, run);
//
// At attach time the Controller chains itself in front of the currently
// installed RunObserver (forwarding every event downstream), schedules the
// ChurnSpec's ClusterEvents and a periodic policy tick, and from then on:
//
//   * gpu_leave / gpu_join events update device availability and FORCE a
//     re-deploy through engine::Reconfigurable when the active set must
//     change (a vanished device cannot keep serving);
//   * each tick refreshes ControlSignals (queue depth, TTFT/TPOT EWMAs,
//     SLO-attainment EWMA, KV pressure) and asks the ScalePolicy for a
//     target device count; ELECTIVE changes respect the cooldown;
//   * the active set is always the `target` highest-power available
//     devices, never below min_devices.
//
// How the engine reacts is the engine's own Reconfigurable contract:
// HetisEngine replans and live-migrates, the baselines checkpoint-and-
// restart -- which is exactly the asymmetry bench_elastic measures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "control/events.h"
#include "control/policy.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "engine/reconfigurable.h"
#include "hw/topology.h"
#include "sim/simulation.h"

namespace hetis::telemetry {
class AuditTrail;
}

namespace hetis::control {

/// Declarative configuration of one controlled run; carried by
/// harness::ExperimentSpec::control so every sweep cell builds its own
/// Controller.
struct ControlSpec {
  ChurnSpec churn;                // device availability script
  std::string policy = "static";  // make_policy name
  Seconds tick = 0.5;             // signal refresh + policy period
  Seconds cooldown = 2.0;         // min gap between ELECTIVE re-deploys
  Seconds horizon = 60.0;         // stop ticking after this sim time
  int min_devices = 2;            // elastic floor for any decision
  int initial_devices = 0;        // 0 = start on every cluster device
  engine::SloSpec slo;            // targets behind the attainment signal
  ThresholdPolicyConfig threshold;
  SloPolicyConfig slo_policy;
  double signal_alpha = 0.3;      // EWMA weight of the newest sample
  /// Plan objective replanning engines use for every re-deploy this
  /// controller triggers (parallel/objective.h; the spec's `slo` targets
  /// ride along).  Empty keeps the engine's configured objective -- except
  /// under the "slo" policy, which defaults to "latency": a controller
  /// scaling FOR SLO attainment should not replan FOR raw throughput.
  std::string replan_objective;
  /// Placement tier replanning engines use for controller-triggered
  /// re-deploys (planner::make name: "exhaustive" | "flow" | "auto").
  /// Empty keeps the engine's configured planner.  Validated at
  /// construction so typos fail before any churn fires.
  std::string replan_planner;
  /// A device whose speed ratio or link scale crosses BELOW this counts as
  /// degraded (Hetu's straggler_threshold): crossing it -- in either
  /// direction -- notifies the engine through Reconfigurable::
  /// on_degradation so it may replan on the measured hardware.  Sub-
  /// threshold wobble (0.9 -> 0.95) never triggers a replan storm.
  double straggler_threshold = 0.85;
};

struct ControllerStats {
  int forced_reconfigs = 0;    // churn-driven device-set changes
  int elective_reconfigs = 0;  // policy-driven device-set changes
  int ticks = 0;
  int peak_active = 0;
  int min_active = 0;
  int degradation_events = 0;  // kDeviceSlow + kLinkDegrade applied
  int preempt_notices = 0;     // kPreemptNotice forwarded to the engine
};

class Controller final : public engine::RunObserver {
 public:
  /// `cluster` must be the cluster the engine was built on (the event
  /// script and device ranking are resolved against it) and must outlive
  /// the controller.  This overload cannot replay degradation events
  /// (kDeviceSlow / kLinkDegrade mutate the cluster's condition overlay):
  /// a script containing any throws std::invalid_argument at construction.
  Controller(ControlSpec spec, const hw::Cluster& cluster);

  /// Mutable-cluster overload: additionally replays degradation events by
  /// updating `cluster`'s speed/link overlay live, so the engine's cost
  /// model (which shares the cluster) immediately serves at measured
  /// speed, and notifies the engine via Reconfigurable::on_degradation
  /// when a device crosses the straggler threshold.
  Controller(ControlSpec spec, hw::Cluster& cluster);

  /// RunOptions::on_start adapter; keeps `this` alive only by reference,
  /// so the Controller must outlive the run_trace call.
  std::function<void(sim::Simulation&, engine::Engine&)> starter();

  /// Schedules the churn script + tick chain on `sim`, chains this
  /// controller in front of the engine's current observer, and applies
  /// `initial_devices` (re-deploying immediately when it shrinks the
  /// deployment).  Throws std::invalid_argument when the engine does not
  /// implement engine::Reconfigurable but the spec demands changes.
  void attach(sim::Simulation& sim, engine::Engine& engine);

  const ControllerStats& stats() const { return stats_; }
  const ControlSignals& signals() const { return signals_; }
  const std::string& policy_name() const { return policy_name_; }
  /// The objective this controller instructs replanning engines to use
  /// ("" when the engine keeps its own; see ControlSpec::replan_objective).
  const std::string& replan_objective() const { return replan_objective_; }
  /// The placement tier this controller instructs replanning engines to use
  /// ("" when the engine keeps its own; see ControlSpec::replan_planner).
  const std::string& replan_planner() const { return spec_.replan_planner; }
  /// Integral of the assigned device count over sim time [0, until] --
  /// the device-seconds this deployment occupied, the denominator of the
  /// harness's cost-efficiency columns.  `until` is typically the run's
  /// makespan; segments are closed by each re-deploy.
  double device_seconds(Seconds until) const;
  /// The generated churn script (for logging / tests).
  const std::vector<ClusterEvent>& events() const { return events_; }

  // RunObserver stream: updates the signal EWMAs, then forwards downstream.
  void on_arrival(const workload::Request& r) override;
  void on_prefill_start(workload::RequestId id, Seconds t) override;
  void on_prefill_done(workload::RequestId id, Seconds t) override;
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) override;
  void on_finish(workload::RequestId id, Seconds t) override;
  void on_preempt(workload::RequestId id, Seconds t) override;
  void on_migrate(workload::RequestId id, Seconds start, Seconds ready, int src_device,
                  int dst_device) override;
  void on_usage(const engine::UsageSample& s) override;

 private:
  /// Shared constructor; `mutable_cluster` is null for the const overload.
  Controller(ControlSpec spec, const hw::Cluster& cluster, hw::Cluster* mutable_cluster);

  void handle_event(sim::Simulation& sim, const ClusterEvent& ev);
  void tick(sim::Simulation& sim);
  /// Re-deploys onto the target active set when it differs from the
  /// current one.  Returns true when a reconfiguration was applied.
  bool apply_target(sim::Simulation& sim, bool forced);
  /// The `target_count_` highest-power available devices (>= min floor).
  std::vector<int> pick_active() const;
  int clamp_target(int target) const;
  void ewma(double& slot, double sample);

  /// Count of devices currently below the straggler threshold (speed or
  /// link), feeding ControlSignals::degraded_devices.
  int count_degraded() const;

  /// Appends one AuditRecord for an applied action (no-op when no telemetry
  /// session is attached).  The computed signals (queue depth, in-flight,
  /// kv pressure, device counts) are refreshed at DECISION time -- a forced
  /// churn re-deploy between ticks must not audit half-a-tick-old values --
  /// while the EWMAs carry their latest smoothed state as-is.
  /// `plan_before` is the engine's digest captured before the action.
  void audit_decision(sim::Simulation& sim, const std::string& action, bool forced,
                      std::vector<int> devices_before, std::vector<int> devices_after,
                      std::string plan_before);

  ControlSpec spec_;
  const hw::Cluster* cluster_;
  hw::Cluster* mutable_cluster_ = nullptr;  // non-null: may replay degradation
  std::unique_ptr<ScalePolicy> policy_;
  std::string policy_name_;
  std::vector<ClusterEvent> events_;

  engine::Engine* engine_ = nullptr;
  engine::Reconfigurable* reconfigurable_ = nullptr;
  engine::RunObserver* downstream_ = nullptr;
  std::string replan_objective_;

  /// Decision audit trail, discovered at attach from the run's telemetry
  /// session (nullptr when the run is untraced -- recording is then free).
  telemetry::AuditTrail* audit_ = nullptr;
  /// What fired the decision currently being applied ("initial", "gpu_leave",
  /// "gpu_join", "policy_tick", ...); set by each entry point before it can
  /// reach audit_decision, with the triggering device id where scoped.
  std::string pending_trigger_;
  int pending_device_ = -1;

  std::set<int> available_;     // device ids currently usable
  std::vector<int> active_;     // sorted; devices assigned to the engine
  // (time, assigned-device count) step function behind device_seconds().
  std::vector<std::pair<Seconds, int>> active_history_;
  int target_count_ = 0;
  Seconds last_elective_ = -1;  // cooldown reference

  // Signal state.
  ControlSignals signals_;
  ControllerStats stats_;
  std::size_t arrived_ = 0, prefilled_ = 0, finished_ = 0;
  std::set<workload::RequestId> reprefilling_;  // preempted, not yet decoding again
  std::size_t arrived_at_last_tick_ = 0;
  bool rate_seeded_ = false, ttft_seeded_ = false, tpot_seeded_ = false, slo_seeded_ = false;
  std::map<workload::RequestId, Seconds> arrival_time_;
  std::map<workload::RequestId, Seconds> first_token_time_;
  std::map<workload::RequestId, Seconds> last_token_time_;
  std::map<workload::RequestId, std::int64_t> generated_;
};

}  // namespace hetis::control
