#include "control/policy.h"

#include <algorithm>
#include <stdexcept>

namespace hetis::control {

namespace {

class StaticPolicy final : public ScalePolicy {
 public:
  std::string name() const override { return "static"; }
  int target_devices(const ControlSignals& s, int current_target) override {
    (void)s;
    return current_target;
  }
};

class ThresholdHysteresisPolicy final : public ScalePolicy {
 public:
  explicit ThresholdHysteresisPolicy(ThresholdPolicyConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "threshold"; }

  int target_devices(const ControlSignals& s, int current_target) override {
    if (cfg_.follow_forecast && s.load_forecast > 1.0) {
      // An announced surge: provision everything before the wave lands.
      return s.available_devices;
    }
    const double queue = static_cast<double>(s.queue_depth);
    if (queue > cfg_.up_queue || s.kv_pressure > cfg_.up_kv) {
      return current_target + cfg_.step;
    }
    if (queue < cfg_.down_queue && s.kv_pressure < cfg_.down_kv) {
      return current_target - cfg_.step;
    }
    return current_target;  // inside the hysteresis band
  }

 private:
  ThresholdPolicyConfig cfg_;
};

class SloAttainmentPolicy final : public ScalePolicy {
 public:
  explicit SloAttainmentPolicy(SloPolicyConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "slo"; }

  int target_devices(const ControlSignals& s, int current_target) override {
    if (s.slo_attainment < cfg_.target - cfg_.margin) {
      return current_target + cfg_.step;
    }
    // Only reclaim capacity when attainment is comfortably above target AND
    // nothing is queued -- shrinking under backlog would immediately regress.
    if (s.slo_attainment > cfg_.target + cfg_.margin && s.queue_depth == 0) {
      return current_target - cfg_.step;
    }
    return current_target;
  }

 private:
  SloPolicyConfig cfg_;
};

}  // namespace

std::unique_ptr<ScalePolicy> make_policy(const std::string& name,
                                         const ThresholdPolicyConfig& threshold,
                                         const SloPolicyConfig& slo) {
  if (name == "static") return std::make_unique<StaticPolicy>();
  if (name == "threshold") return std::make_unique<ThresholdHysteresisPolicy>(threshold);
  if (name == "slo") return std::make_unique<SloAttainmentPolicy>(slo);
  std::string all;
  for (const auto& n : policy_names()) {
    if (!all.empty()) all += ", ";
    all += n;
  }
  throw std::out_of_range("make_policy: unknown scale policy '" + name + "' (known: " + all +
                          ")");
}

std::vector<std::string> policy_names() { return {"slo", "static", "threshold"}; }

}  // namespace hetis::control
