// Pluggable autoscaling policies consumed by the Controller.
//
// A ScalePolicy maps the live signal snapshot (queue depth, latency EWMAs,
// KV pressure, load forecast) to a desired device count; the Controller
// clamps the answer to [min_devices, available] and re-deploys the engine
// when the resulting device set changes.  Policies are deliberately pure
// state machines over ControlSignals so the same policy drives every
// engine and stays deterministic under any sweep thread count.
//
//   static     never changes the target -- the deployment only moves when
//              churn forces it (the paper's fixed-parallelism posture)
//   threshold  hysteresis bands on queue depth and KV pressure, with
//              optional forecast-following (classic reactive autoscaling)
//   slo        targets an SLO-attainment level: scale out below the band,
//              reclaim devices above it when pressure is gone
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace hetis::control {

/// Live snapshot the Controller derives from the observer stream and the
/// engine's metric taps; everything a policy may condition on.
struct ControlSignals {
  Seconds now = 0;
  std::size_t queue_depth = 0;  // arrivals not yet prefilled
  std::size_t in_flight = 0;    // arrived - finished
  double arrival_rate = 0;      // EWMA req/s
  double ttft_ewma = 0;         // seconds, over prefill completions
  double tpot_ewma = 0;         // seconds/token, over decode tokens
  double slo_attainment = 1.0;  // EWMA of per-finish SLO pass/fail
  double kv_pressure = 0;       // engine worst-instance KV fill fraction
  double load_forecast = 1.0;   // last kLoadShift factor (1 = nominal)
  int active_devices = 0;
  int available_devices = 0;
  int min_devices = 1;
  // Devices whose speed ratio or link scale sits below the controller's
  // straggler threshold right now (ControlSpec::straggler_threshold).
  int degraded_devices = 0;
};

class ScalePolicy {
 public:
  virtual ~ScalePolicy() = default;
  virtual std::string name() const = 0;
  /// Desired device count for the next control interval.  `current_target`
  /// is the previous answer (clamped); the Controller clamps the return
  /// value to [min_devices, available_devices].
  virtual int target_devices(const ControlSignals& s, int current_target) = 0;
};

/// Threshold-hysteresis knobs.  Scale-up triggers when EITHER pressure
/// signal exceeds its up-threshold; scale-down requires BOTH below their
/// (strictly lower) down-thresholds -- the gap is the hysteresis band that
/// prevents flapping.
struct ThresholdPolicyConfig {
  double up_queue = 8;     // queue depth above this -> scale up
  double up_kv = 0.85;     // KV pressure above this -> scale up
  double down_queue = 1;   // scale down only when queue below this...
  double down_kv = 0.5;    // ...and KV pressure below this
  int step = 1;            // devices added/removed per decision
  bool follow_forecast = true;  // scale to max ahead of a >1x load shift
};

/// SLO-attainment target knobs.
struct SloPolicyConfig {
  double target = 0.9;   // desired attainment level
  double margin = 0.05;  // dead band around the target
  int step = 1;
};

/// Constructs a policy by name ("static" | "threshold" | "slo").  Throws
/// std::out_of_range listing the known names otherwise.
std::unique_ptr<ScalePolicy> make_policy(const std::string& name,
                                         const ThresholdPolicyConfig& threshold = {},
                                         const SloPolicyConfig& slo = {});

/// Names accepted by make_policy, sorted.
std::vector<std::string> policy_names();

}  // namespace hetis::control
