// Cluster churn scripts: deterministic, seeded event traces the elastic
// control plane replays against a run.
//
// Heterogeneous clusters live under churn -- spot GPUs are reclaimed and
// returned, capacity is borrowed by other jobs, load forecasts shift -- so
// the control plane consumes a ClusterEvent stream exactly like the
// workload layer consumes a request trace.  Generators mirror the
// workload::scenarios pattern: a ChurnSpec is deterministic in its seed
// alone, presets back the README table, and churn_by_name drives the
// benches' CLI.
//
//   none   empty script (elective autoscaling only)
//   dip    the k lowest-power devices leave together and rejoin later
//          (planned maintenance / reclaimed spot block)
//   spot   each preemptible device independently alternates exponential
//          up/down dwells (spot-instance churn)
//   surge  load-forecast shift events (no device change; predictive
//          policies may scale ahead of the announced surge)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/topology.h"

namespace hetis::control {

/// kGpuLeave models a GRACEFUL reclamation (a spot-instance drain notice,
/// planned maintenance): the device stops being schedulable but its memory
/// remains readable while the control plane re-deploys, which is why
/// HetisEngine may live-migrate KV off a leaving device.  Hard failures
/// (KV lost with the device) are deliberately out of scope here and named
/// as future work in the ROADMAP.
enum class ClusterEventKind : std::uint8_t { kGpuLeave, kGpuJoin, kLoadShift };

const char* to_string(ClusterEventKind k);

struct ClusterEvent {
  Seconds time = 0;
  ClusterEventKind kind = ClusterEventKind::kGpuLeave;
  int device = -1;      // kGpuLeave / kGpuJoin: cluster device id
  double factor = 1.0;  // kLoadShift: announced load multiplier
};

enum class Churn : std::uint8_t { kNone, kDip, kSpot, kSurge };

const char* to_string(Churn c);
/// Accepts the canonical names ("none", "dip", "spot", "surge"); throws
/// std::out_of_range otherwise.
Churn churn_by_name(const std::string& name);
/// Canonical names accepted by churn_by_name, sorted.
std::vector<std::string> churn_names();

struct ChurnSpec {
  Churn kind = Churn::kNone;
  std::uint64_t seed = 42;
  Seconds horizon = 60.0;  // no event lands at or past it

  // kDip: `leave_count` lowest-power devices leave at leave_frac * horizon
  // and rejoin at rejoin_frac * horizon.
  int leave_count = 2;
  double leave_frac = 0.25;
  double rejoin_frac = 0.65;

  // kSpot: the `spot_count` lowest-power devices independently alternate
  // exponential up/down dwell times (starting up).
  int spot_count = 4;
  Seconds mean_up = 20.0;
  Seconds mean_down = 8.0;

  // kSurge: forecast jumps to surge_factor at surge_from * horizon and back
  // to 1.0 at surge_to * horizon.
  double surge_factor = 3.0;
  double surge_from = 0.4;
  double surge_to = 0.7;
};

/// Devices a churn script may take away, ordered lowest-power first (ties
/// broken by id desc, so the highest-id cheap device churns first) -- the
/// spot-market shape: cheap capacity is preemptible, anchors stay.
std::vector<int> preemptible_devices(const hw::Cluster& cluster);

/// Generates the script's event trace over `cluster`: sorted by time (ties
/// by device id, leaves before joins).  Deterministic in the spec alone.
/// Throws std::invalid_argument on out-of-range parameters.
std::vector<ClusterEvent> generate_churn(const ChurnSpec& spec, const hw::Cluster& cluster);

/// A ready-to-run spec for `kind` over `horizon` seconds.
ChurnSpec churn_preset(Churn kind, Seconds horizon, std::uint64_t seed);

/// One-line human description ("dip: 2 devices down over [10s, 26s)").
std::string describe(const ChurnSpec& spec);

}  // namespace hetis::control
