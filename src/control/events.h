// Cluster churn scripts: deterministic, seeded event traces the elastic
// control plane replays against a run.
//
// Heterogeneous clusters live under churn -- spot GPUs are reclaimed and
// returned, capacity is borrowed by other jobs, load forecasts shift -- so
// the control plane consumes a ClusterEvent stream exactly like the
// workload layer consumes a request trace.  Generators mirror the
// workload::scenarios pattern: a ChurnSpec is deterministic in its seed
// alone, presets back the README table, and churn_by_name drives the
// benches' CLI.
//
//   none           empty script (elective autoscaling only)
//   dip            the k lowest-power devices leave together and rejoin
//                  later (planned maintenance / reclaimed spot block)
//   spot           each preemptible device independently alternates
//                  exponential up/down dwells (spot-instance churn)
//   surge          load-forecast shift events (no device change;
//                  predictive policies may scale ahead of the surge)
//   straggler      the k highest-power devices slow to a fraction of
//                  nameplate speed mid-run and recover later (the Hetis
//                  premise: measured != nameplate hardware)
//   throttle_wave  a staggered thermal-throttle wave crosses every device
//                  (each dips to throttle_ratio for a dwell, then recovers)
//   flaky_link     preemptible devices' links alternate between healthy
//                  and degraded bandwidth on exponential dwells
//   spot_notice    the spot script, but every reclamation is announced
//                  notice_lead seconds ahead (preemption warnings -- the
//                  realistic cloud failure mode)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/topology.h"

namespace hetis::control {

/// kGpuLeave models a GRACEFUL reclamation (a spot-instance drain notice,
/// planned maintenance): the device stops being schedulable but its memory
/// remains readable while the control plane re-deploys, which is why
/// HetisEngine may live-migrate KV off a leaving device.  Hard failures
/// (KV lost with the device) are deliberately out of scope here and named
/// as future work in the ROADMAP.
///
/// The degradation kinds model CONTINUOUS hardware condition changes --
/// a device keeps serving, just worse:
///   kDeviceSlow     device runs at `factor` of nameplate speed (a
///                   straggler / thermal throttle; 1.0 restores health)
///   kLinkDegrade    links incident to `device` run at `factor` of
///                   nameplate bandwidth (flaky NIC; 1.0 restores)
///   kPreemptNotice  advisory: `device` will be reclaimed `factor`
///                   seconds from this event (the paired kGpuLeave is a
///                   separate event) -- engines may pre-migrate KV
enum class ClusterEventKind : std::uint8_t {
  kGpuLeave,
  kGpuJoin,
  kLoadShift,
  kDeviceSlow,
  kLinkDegrade,
  kPreemptNotice,
};

const char* to_string(ClusterEventKind k);

/// True for event kinds that mutate the cluster's degradation overlay
/// (kDeviceSlow / kLinkDegrade) -- replaying them requires a mutable
/// hw::Cluster (the Controller's mutable-cluster constructor).
bool mutates_cluster(ClusterEventKind k);

struct ClusterEvent {
  Seconds time = 0;
  ClusterEventKind kind = ClusterEventKind::kGpuLeave;
  int device = -1;      // kGpuLeave / kGpuJoin / degradation: device id
  double factor = 1.0;  // kLoadShift: load multiplier; kDeviceSlow: speed
                        // ratio; kLinkDegrade: bandwidth scale;
                        // kPreemptNotice: lead time in seconds
};

enum class Churn : std::uint8_t {
  kNone,
  kDip,
  kSpot,
  kSurge,
  kStraggler,
  kThrottleWave,
  kFlakyLink,
  kSpotNotice,
};

const char* to_string(Churn c);
/// Accepts the canonical names (see churn_names()); throws
/// std::out_of_range listing every valid name otherwise.
Churn churn_by_name(const std::string& name);
/// Canonical names accepted by churn_by_name, sorted.
std::vector<std::string> churn_names();

struct ChurnSpec {
  Churn kind = Churn::kNone;
  std::uint64_t seed = 42;
  Seconds horizon = 60.0;  // no event lands at or past it

  // kDip: `leave_count` lowest-power devices leave at leave_frac * horizon
  // and rejoin at rejoin_frac * horizon.
  int leave_count = 2;
  double leave_frac = 0.25;
  double rejoin_frac = 0.65;

  // kSpot: the `spot_count` lowest-power devices independently alternate
  // exponential up/down dwell times (starting up).
  int spot_count = 4;
  Seconds mean_up = 20.0;
  Seconds mean_down = 8.0;

  // kSurge: forecast jumps to surge_factor at surge_from * horizon and back
  // to 1.0 at surge_to * horizon.
  double surge_factor = 3.0;
  double surge_from = 0.4;
  double surge_to = 0.7;

  // kStraggler: the `straggler_count` HIGHEST-power devices (the anchors --
  // a straggling flagship hurts most) slow to straggler_ratio of nameplate
  // speed.  Each device's onset lands in the first fifth of
  // [slow_frac, recover_frac] * horizon (seeded per-device jitter, so
  // onsets are staggered but always precede recovery); all recover
  // together at recover_frac * horizon.
  int straggler_count = 1;
  double straggler_ratio = 0.35;
  double slow_frac = 0.25;
  double recover_frac = 0.75;

  // kThrottleWave: a deterministic thermal wave crosses every device in id
  // order -- device i throttles to throttle_ratio at
  // wave_frac * horizon + i * wave_stagger for throttle_dwell seconds.
  double throttle_ratio = 0.6;
  Seconds throttle_dwell = 6.0;
  double wave_frac = 0.2;
  Seconds wave_stagger = 1.0;

  // kFlakyLink: the `flaky_count` lowest-power devices' links
  // independently alternate exponential healthy/degraded dwells (starting
  // healthy); degraded links run at link_degrade_scale of nameplate
  // bandwidth.
  int flaky_count = 2;
  double link_degrade_scale = 0.25;
  Seconds mean_healthy = 12.0;
  Seconds mean_flaky = 5.0;

  // kSpotNotice: the kSpot schedule (same seed -> same leaves/joins), with
  // every reclamation announced by a kPreemptNotice `notice_lead` seconds
  // ahead (clamped to after the device's previous rejoin).
  Seconds notice_lead = 3.0;
};

/// Devices a churn script may take away, ordered lowest-power first (ties
/// broken by id desc, so the highest-id cheap device churns first) -- the
/// spot-market shape: cheap capacity is preemptible, anchors stay.
std::vector<int> preemptible_devices(const hw::Cluster& cluster);

/// Generates the script's event trace over `cluster`: sorted by time (ties
/// by device id, leaves before joins).  Deterministic in the spec alone.
/// Throws std::invalid_argument on out-of-range parameters.
std::vector<ClusterEvent> generate_churn(const ChurnSpec& spec, const hw::Cluster& cluster);

/// A ready-to-run spec for `kind` over `horizon` seconds.
ChurnSpec churn_preset(Churn kind, Seconds horizon, std::uint64_t seed);

/// One-line human description ("dip: 2 devices down over [10s, 26s)").
std::string describe(const ChurnSpec& spec);

}  // namespace hetis::control
