#include "control/events.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/rng.h"

namespace hetis::control {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("generate_churn: ") + what);
}

void validate(const ChurnSpec& s) {
  require(s.horizon > 0, "horizon must be > 0");
  switch (s.kind) {
    case Churn::kDip:
      require(s.leave_count >= 0, "leave_count must be >= 0");
      require(s.leave_frac >= 0 && s.leave_frac <= 1, "leave_frac must be in [0, 1]");
      require(s.rejoin_frac >= s.leave_frac && s.rejoin_frac <= 1,
              "rejoin_frac must be in [leave_frac, 1]");
      break;
    case Churn::kSpot:
      require(s.spot_count >= 0, "spot_count must be >= 0");
      require(s.mean_up > 0 && s.mean_down > 0, "spot dwell times must be > 0");
      // One event pair is materialized per dwell cycle; bound the expected
      // count like the bursty scenario bounds its segments.
      require(s.horizon / std::min(s.mean_up, s.mean_down) <= 1e6,
              "spot dwell times too small for the horizon (would generate > ~1e6 events)");
      break;
    case Churn::kSurge:
      require(s.surge_factor >= 0, "surge_factor must be >= 0");
      require(s.surge_from >= 0 && s.surge_from <= 1, "surge_from must be in [0, 1]");
      require(s.surge_to >= s.surge_from && s.surge_to <= 1,
              "surge_to must be in [surge_from, 1]");
      break;
    case Churn::kStraggler:
      require(s.straggler_count >= 0, "straggler_count must be >= 0");
      require(s.straggler_ratio > 0 && s.straggler_ratio < 1,
              "straggler_ratio must be in (0, 1)");
      require(s.slow_frac >= 0 && s.slow_frac <= 1, "slow_frac must be in [0, 1]");
      require(s.recover_frac >= s.slow_frac && s.recover_frac <= 1,
              "recover_frac must be in [slow_frac, 1]");
      break;
    case Churn::kThrottleWave:
      require(s.throttle_ratio > 0 && s.throttle_ratio < 1,
              "throttle_ratio must be in (0, 1)");
      require(s.throttle_dwell > 0, "throttle_dwell must be > 0");
      require(s.wave_frac >= 0 && s.wave_frac <= 1, "wave_frac must be in [0, 1]");
      require(s.wave_stagger >= 0, "wave_stagger must be >= 0");
      break;
    case Churn::kFlakyLink:
      require(s.flaky_count >= 0, "flaky_count must be >= 0");
      require(s.link_degrade_scale > 0 && s.link_degrade_scale < 1,
              "link_degrade_scale must be in (0, 1)");
      require(s.mean_healthy > 0 && s.mean_flaky > 0, "flaky dwell times must be > 0");
      require(s.horizon / std::min(s.mean_healthy, s.mean_flaky) <= 1e6,
              "flaky dwell times too small for the horizon (would generate > ~1e6 events)");
      break;
    case Churn::kSpotNotice:
      require(s.spot_count >= 0, "spot_count must be >= 0");
      require(s.mean_up > 0 && s.mean_down > 0, "spot dwell times must be > 0");
      require(s.notice_lead > 0, "notice_lead must be > 0");
      require(s.horizon / std::min(s.mean_up, s.mean_down) <= 1e6,
              "spot dwell times too small for the horizon (would generate > ~1e6 events)");
      break;
    case Churn::kNone:
      break;
  }
}

void sort_events(std::vector<ClusterEvent>& events) {
  std::stable_sort(events.begin(), events.end(), [](const ClusterEvent& a,
                                                    const ClusterEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;  // leaves before joins
    return a.device < b.device;
  });
}

}  // namespace

const char* to_string(ClusterEventKind k) {
  switch (k) {
    case ClusterEventKind::kGpuLeave: return "gpu_leave";
    case ClusterEventKind::kGpuJoin: return "gpu_join";
    case ClusterEventKind::kLoadShift: return "load_shift";
    case ClusterEventKind::kDeviceSlow: return "device_slow";
    case ClusterEventKind::kLinkDegrade: return "link_degrade";
    case ClusterEventKind::kPreemptNotice: return "preempt_notice";
  }
  return "?";
}

bool mutates_cluster(ClusterEventKind k) {
  return k == ClusterEventKind::kDeviceSlow || k == ClusterEventKind::kLinkDegrade;
}

const char* to_string(Churn c) {
  switch (c) {
    case Churn::kNone: return "none";
    case Churn::kDip: return "dip";
    case Churn::kSpot: return "spot";
    case Churn::kSurge: return "surge";
    case Churn::kStraggler: return "straggler";
    case Churn::kThrottleWave: return "throttle_wave";
    case Churn::kFlakyLink: return "flaky_link";
    case Churn::kSpotNotice: return "spot_notice";
  }
  return "?";
}

Churn churn_by_name(const std::string& name) {
  if (name == "none") return Churn::kNone;
  if (name == "dip") return Churn::kDip;
  if (name == "spot") return Churn::kSpot;
  if (name == "surge") return Churn::kSurge;
  if (name == "straggler") return Churn::kStraggler;
  if (name == "throttle_wave") return Churn::kThrottleWave;
  if (name == "flaky_link") return Churn::kFlakyLink;
  if (name == "spot_notice") return Churn::kSpotNotice;
  throw std::out_of_range("churn_by_name: unknown churn script '" + name + "' (known: " + [] {
                            std::string all;
                            for (const auto& n : churn_names()) {
                              if (!all.empty()) all += ", ";
                              all += n;
                            }
                            return all;
                          }() + ")");
}

std::vector<std::string> churn_names() {
  return {"dip", "flaky_link", "none", "spot", "spot_notice",
          "straggler", "surge", "throttle_wave"};
}

std::vector<int> preemptible_devices(const hw::Cluster& cluster) {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(cluster.num_devices()));
  for (const auto& d : cluster.devices()) ids.push_back(d.id);
  std::sort(ids.begin(), ids.end(), [&cluster](int a, int b) {
    const double pa = cluster.device(a).spec().compute_power();
    const double pb = cluster.device(b).spec().compute_power();
    if (pa != pb) return pa < pb;
    return a > b;
  });
  return ids;
}

std::vector<ClusterEvent> generate_churn(const ChurnSpec& spec, const hw::Cluster& cluster) {
  validate(spec);
  std::vector<ClusterEvent> events;
  const std::vector<int> spot = preemptible_devices(cluster);
  switch (spec.kind) {
    case Churn::kNone:
      break;
    case Churn::kDip: {
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.leave_count));
      const Seconds leave_at = spec.leave_frac * spec.horizon;
      const Seconds rejoin_at = spec.rejoin_frac * spec.horizon;
      for (std::size_t i = 0; i < n; ++i) {
        events.push_back({leave_at, ClusterEventKind::kGpuLeave, spot[i], 1.0});
        if (rejoin_at < spec.horizon) {
          events.push_back({rejoin_at, ClusterEventKind::kGpuJoin, spot[i], 1.0});
        }
      }
      break;
    }
    case Churn::kSpot:
    case Churn::kSpotNotice: {
      // Shared dwell walk (same seed -> same leave/join schedule for both
      // scripts); kSpotNotice additionally announces each leave
      // notice_lead seconds ahead, clamped to after the device's previous
      // rejoin so the warning never predates the capacity it warns about.
      const bool notice = spec.kind == Churn::kSpotNotice;
      Rng rng(spec.seed);
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.spot_count));
      for (std::size_t i = 0; i < n; ++i) {
        // Per-device fork so adding a spot device leaves the others' event
        // sub-streams unchanged (mirrors the multi-tenant generator).
        Rng dev_rng = rng.fork(100 + i);
        Seconds t = 0;
        Seconds prev = 0;  // time of the device's previous state change
        bool up = true;
        for (;;) {
          t += dev_rng.exponential(1.0 / (up ? spec.mean_up : spec.mean_down));
          if (t >= spec.horizon) break;
          if (up && notice) {
            const Seconds at = std::max(prev, t - spec.notice_lead);
            events.push_back({at, ClusterEventKind::kPreemptNotice, spot[i], t - at});
          }
          events.push_back({t, up ? ClusterEventKind::kGpuLeave : ClusterEventKind::kGpuJoin,
                            spot[i], 1.0});
          prev = t;
          up = !up;
        }
      }
      break;
    }
    case Churn::kSurge: {
      events.push_back(
          {spec.surge_from * spec.horizon, ClusterEventKind::kLoadShift, -1, spec.surge_factor});
      // surge_to is a FRACTION of the horizon; at exactly 1.0 the reset
      // would land on the horizon itself, which the contract forbids.
      if (spec.surge_to < 1.0) {
        events.push_back({spec.surge_to * spec.horizon, ClusterEventKind::kLoadShift, -1, 1.0});
      }
      break;
    }
    case Churn::kStraggler: {
      // The ANCHORS straggle: preemptible_devices is lowest-power first,
      // so take from the back.  Onsets are jittered into the first fifth
      // of the slow window (seeded, per-device), recovery is synchronized.
      Rng rng(spec.seed);
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.straggler_count));
      const Seconds recover_at = spec.recover_frac * spec.horizon;
      for (std::size_t i = 0; i < n; ++i) {
        const int dev = spot[spot.size() - 1 - i];
        Rng dev_rng = rng.fork(200 + i);
        const double window = spec.recover_frac - spec.slow_frac;
        const Seconds onset =
            (spec.slow_frac + 0.2 * window * dev_rng.uniform()) * spec.horizon;
        if (onset >= spec.horizon) continue;
        events.push_back({onset, ClusterEventKind::kDeviceSlow, dev, spec.straggler_ratio});
        if (recover_at < spec.horizon) {
          events.push_back({recover_at, ClusterEventKind::kDeviceSlow, dev, 1.0});
        }
      }
      break;
    }
    case Churn::kThrottleWave: {
      // Deterministic (like kDip): the wave crosses devices in id order.
      for (const auto& d : cluster.devices()) {
        const Seconds onset =
            spec.wave_frac * spec.horizon + static_cast<double>(d.id) * spec.wave_stagger;
        if (onset >= spec.horizon) continue;
        events.push_back({onset, ClusterEventKind::kDeviceSlow, d.id, spec.throttle_ratio});
        const Seconds recover = onset + spec.throttle_dwell;
        if (recover < spec.horizon) {
          events.push_back({recover, ClusterEventKind::kDeviceSlow, d.id, 1.0});
        }
      }
      break;
    }
    case Churn::kFlakyLink: {
      // kSpot's alternating-dwell structure applied to link health: the
      // cheap devices' NICs flake (lowest-power first, like spot capacity).
      Rng rng(spec.seed);
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.flaky_count));
      for (std::size_t i = 0; i < n; ++i) {
        Rng dev_rng = rng.fork(300 + i);
        Seconds t = 0;
        bool healthy = true;
        for (;;) {
          t += dev_rng.exponential(1.0 / (healthy ? spec.mean_healthy : spec.mean_flaky));
          if (t >= spec.horizon) break;
          events.push_back({t, ClusterEventKind::kLinkDegrade, spot[i],
                            healthy ? spec.link_degrade_scale : 1.0});
          healthy = !healthy;
        }
      }
      break;
    }
  }
  sort_events(events);
  return events;
}

ChurnSpec churn_preset(Churn kind, Seconds horizon, std::uint64_t seed) {
  ChurnSpec s;
  s.kind = kind;
  s.horizon = horizon;
  s.seed = seed;
  return s;  // struct defaults are the tuned preset
}

std::string describe(const ChurnSpec& spec) {
  char buf[160];
  switch (spec.kind) {
    case Churn::kNone:
      std::snprintf(buf, sizeof(buf), "none: no churn over %.0fs", spec.horizon);
      break;
    case Churn::kDip:
      std::snprintf(buf, sizeof(buf), "dip: %d devices down over [%.0fs, %.0fs)",
                    spec.leave_count, spec.leave_frac * spec.horizon,
                    spec.rejoin_frac * spec.horizon);
      break;
    case Churn::kSpot:
      std::snprintf(buf, sizeof(buf), "spot: %d preemptible devices, dwell %.0fs up / %.0fs down",
                    spec.spot_count, spec.mean_up, spec.mean_down);
      break;
    case Churn::kSurge:
      std::snprintf(buf, sizeof(buf), "surge: %.1fx load forecast over [%.0fs, %.0fs)",
                    spec.surge_factor, spec.surge_from * spec.horizon,
                    spec.surge_to * spec.horizon);
      break;
    case Churn::kStraggler:
      std::snprintf(buf, sizeof(buf),
                    "straggler: %d anchors at %.0f%% speed over [%.0fs, %.0fs)",
                    spec.straggler_count, spec.straggler_ratio * 100.0,
                    spec.slow_frac * spec.horizon, spec.recover_frac * spec.horizon);
      break;
    case Churn::kThrottleWave:
      std::snprintf(buf, sizeof(buf),
                    "throttle_wave: every device at %.0f%% speed for %.0fs, wave from %.0fs "
                    "(stagger %.1fs)",
                    spec.throttle_ratio * 100.0, spec.throttle_dwell,
                    spec.wave_frac * spec.horizon, spec.wave_stagger);
      break;
    case Churn::kFlakyLink:
      std::snprintf(buf, sizeof(buf),
                    "flaky_link: %d devices' links at %.0f%% bandwidth, dwell %.0fs healthy / "
                    "%.0fs flaky",
                    spec.flaky_count, spec.link_degrade_scale * 100.0, spec.mean_healthy,
                    spec.mean_flaky);
      break;
    case Churn::kSpotNotice:
      std::snprintf(buf, sizeof(buf),
                    "spot_notice: %d preemptible devices, dwell %.0fs up / %.0fs down, "
                    "%.0fs notice",
                    spec.spot_count, spec.mean_up, spec.mean_down, spec.notice_lead);
      break;
  }
  return buf;
}

}  // namespace hetis::control
