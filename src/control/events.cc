#include "control/events.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/rng.h"

namespace hetis::control {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("generate_churn: ") + what);
}

void validate(const ChurnSpec& s) {
  require(s.horizon > 0, "horizon must be > 0");
  switch (s.kind) {
    case Churn::kDip:
      require(s.leave_count >= 0, "leave_count must be >= 0");
      require(s.leave_frac >= 0 && s.leave_frac <= 1, "leave_frac must be in [0, 1]");
      require(s.rejoin_frac >= s.leave_frac && s.rejoin_frac <= 1,
              "rejoin_frac must be in [leave_frac, 1]");
      break;
    case Churn::kSpot:
      require(s.spot_count >= 0, "spot_count must be >= 0");
      require(s.mean_up > 0 && s.mean_down > 0, "spot dwell times must be > 0");
      // One event pair is materialized per dwell cycle; bound the expected
      // count like the bursty scenario bounds its segments.
      require(s.horizon / std::min(s.mean_up, s.mean_down) <= 1e6,
              "spot dwell times too small for the horizon (would generate > ~1e6 events)");
      break;
    case Churn::kSurge:
      require(s.surge_factor >= 0, "surge_factor must be >= 0");
      require(s.surge_from >= 0 && s.surge_from <= 1, "surge_from must be in [0, 1]");
      require(s.surge_to >= s.surge_from && s.surge_to <= 1,
              "surge_to must be in [surge_from, 1]");
      break;
    case Churn::kNone:
      break;
  }
}

void sort_events(std::vector<ClusterEvent>& events) {
  std::stable_sort(events.begin(), events.end(), [](const ClusterEvent& a,
                                                    const ClusterEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;  // leaves before joins
    return a.device < b.device;
  });
}

}  // namespace

const char* to_string(ClusterEventKind k) {
  switch (k) {
    case ClusterEventKind::kGpuLeave: return "gpu_leave";
    case ClusterEventKind::kGpuJoin: return "gpu_join";
    case ClusterEventKind::kLoadShift: return "load_shift";
  }
  return "?";
}

const char* to_string(Churn c) {
  switch (c) {
    case Churn::kNone: return "none";
    case Churn::kDip: return "dip";
    case Churn::kSpot: return "spot";
    case Churn::kSurge: return "surge";
  }
  return "?";
}

Churn churn_by_name(const std::string& name) {
  if (name == "none") return Churn::kNone;
  if (name == "dip") return Churn::kDip;
  if (name == "spot") return Churn::kSpot;
  if (name == "surge") return Churn::kSurge;
  throw std::out_of_range("churn_by_name: unknown churn script '" + name + "' (known: " + [] {
                            std::string all;
                            for (const auto& n : churn_names()) {
                              if (!all.empty()) all += ", ";
                              all += n;
                            }
                            return all;
                          }() + ")");
}

std::vector<std::string> churn_names() { return {"dip", "none", "spot", "surge"}; }

std::vector<int> preemptible_devices(const hw::Cluster& cluster) {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(cluster.num_devices()));
  for (const auto& d : cluster.devices()) ids.push_back(d.id);
  std::sort(ids.begin(), ids.end(), [&cluster](int a, int b) {
    const double pa = cluster.device(a).spec().compute_power();
    const double pb = cluster.device(b).spec().compute_power();
    if (pa != pb) return pa < pb;
    return a > b;
  });
  return ids;
}

std::vector<ClusterEvent> generate_churn(const ChurnSpec& spec, const hw::Cluster& cluster) {
  validate(spec);
  std::vector<ClusterEvent> events;
  const std::vector<int> spot = preemptible_devices(cluster);
  switch (spec.kind) {
    case Churn::kNone:
      break;
    case Churn::kDip: {
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.leave_count));
      const Seconds leave_at = spec.leave_frac * spec.horizon;
      const Seconds rejoin_at = spec.rejoin_frac * spec.horizon;
      for (std::size_t i = 0; i < n; ++i) {
        events.push_back({leave_at, ClusterEventKind::kGpuLeave, spot[i], 1.0});
        if (rejoin_at < spec.horizon) {
          events.push_back({rejoin_at, ClusterEventKind::kGpuJoin, spot[i], 1.0});
        }
      }
      break;
    }
    case Churn::kSpot: {
      Rng rng(spec.seed);
      const std::size_t n =
          std::min<std::size_t>(spot.size(), static_cast<std::size_t>(spec.spot_count));
      for (std::size_t i = 0; i < n; ++i) {
        // Per-device fork so adding a spot device leaves the others' event
        // sub-streams unchanged (mirrors the multi-tenant generator).
        Rng dev_rng = rng.fork(100 + i);
        Seconds t = 0;
        bool up = true;
        for (;;) {
          t += dev_rng.exponential(1.0 / (up ? spec.mean_up : spec.mean_down));
          if (t >= spec.horizon) break;
          events.push_back({t, up ? ClusterEventKind::kGpuLeave : ClusterEventKind::kGpuJoin,
                            spot[i], 1.0});
          up = !up;
        }
      }
      break;
    }
    case Churn::kSurge: {
      events.push_back(
          {spec.surge_from * spec.horizon, ClusterEventKind::kLoadShift, -1, spec.surge_factor});
      // surge_to is a FRACTION of the horizon; at exactly 1.0 the reset
      // would land on the horizon itself, which the contract forbids.
      if (spec.surge_to < 1.0) {
        events.push_back({spec.surge_to * spec.horizon, ClusterEventKind::kLoadShift, -1, 1.0});
      }
      break;
    }
  }
  sort_events(events);
  return events;
}

ChurnSpec churn_preset(Churn kind, Seconds horizon, std::uint64_t seed) {
  ChurnSpec s;
  s.kind = kind;
  s.horizon = horizon;
  s.seed = seed;
  return s;  // struct defaults are the tuned preset
}

std::string describe(const ChurnSpec& spec) {
  char buf[160];
  switch (spec.kind) {
    case Churn::kNone:
      std::snprintf(buf, sizeof(buf), "none: no churn over %.0fs", spec.horizon);
      break;
    case Churn::kDip:
      std::snprintf(buf, sizeof(buf), "dip: %d devices down over [%.0fs, %.0fs)",
                    spec.leave_count, spec.leave_frac * spec.horizon,
                    spec.rejoin_frac * spec.horizon);
      break;
    case Churn::kSpot:
      std::snprintf(buf, sizeof(buf), "spot: %d preemptible devices, dwell %.0fs up / %.0fs down",
                    spec.spot_count, spec.mean_up, spec.mean_down);
      break;
    case Churn::kSurge:
      std::snprintf(buf, sizeof(buf), "surge: %.1fx load forecast over [%.0fs, %.0fs)",
                    spec.surge_factor, spec.surge_from * spec.horizon,
                    spec.surge_to * spec.horizon);
      break;
  }
  return buf;
}

}  // namespace hetis::control
