#include "control/controller.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "parallel/objective.h"
#include "planner/planner.h"
#include "telemetry/telemetry.h"

namespace hetis::control {

Controller::Controller(ControlSpec spec, const hw::Cluster& cluster)
    : Controller(std::move(spec), cluster, nullptr) {}

Controller::Controller(ControlSpec spec, hw::Cluster& cluster)
    : Controller(std::move(spec), cluster, &cluster) {}

Controller::Controller(ControlSpec spec, const hw::Cluster& cluster,
                       hw::Cluster* mutable_cluster)
    : spec_(std::move(spec)), cluster_(&cluster), mutable_cluster_(mutable_cluster) {
  policy_ = make_policy(spec_.policy, spec_.threshold, spec_.slo_policy);
  policy_name_ = policy_->name();
  events_ = generate_churn(spec_.churn, cluster);
  if (!mutable_cluster_) {
    // Degradation events mutate the cluster's condition overlay; replaying
    // them against a const cluster would silently serve at nameplate speed.
    for (const ClusterEvent& ev : events_) {
      if (mutates_cluster(ev.kind)) {
        throw std::invalid_argument(
            "Controller: churn script '" + std::string(to_string(spec_.churn.kind)) +
            "' contains degradation events (" + to_string(ev.kind) +
            "); construct the Controller with a mutable hw::Cluster&");
      }
    }
  }
  for (const auto& d : cluster.devices()) available_.insert(d.id);
  const int total = cluster.num_devices();
  if (spec_.min_devices < 1 || spec_.min_devices > total) {
    throw std::invalid_argument("Controller: min_devices must be in [1, cluster size]");
  }
  if (spec_.initial_devices < 0 || spec_.initial_devices > total) {
    throw std::invalid_argument("Controller: initial_devices must be in [0, cluster size]");
  }
  if (!(spec_.straggler_threshold > 0) || spec_.straggler_threshold > 1) {
    throw std::invalid_argument("Controller: straggler_threshold must be in (0, 1]");
  }
  target_count_ = spec_.initial_devices == 0 ? total : spec_.initial_devices;
  target_count_ = clamp_target(target_count_);
  signals_.min_devices = spec_.min_devices;
  if (!spec_.replan_objective.empty()) {
    parallel::make_objective(spec_.replan_objective);  // typo -> throw at build
                                                       // time, not mid-churn
  }
  planner::validate(spec_.replan_planner);  // "" = keep the engine's planner
}

std::function<void(sim::Simulation&, engine::Engine&)> Controller::starter() {
  return [this](sim::Simulation& sim, engine::Engine& engine) { attach(sim, engine); };
}

void Controller::attach(sim::Simulation& sim, engine::Engine& engine) {
  engine_ = &engine;
  reconfigurable_ = dynamic_cast<engine::Reconfigurable*>(&engine);
  if (!reconfigurable_) {
    // A pure observer attachment (no churn, no elective scaling) is fine;
    // anything that could demand a re-deploy is not.
    const bool needs_reconfig = !events_.empty() || spec_.policy != "static" ||
                                (spec_.initial_devices != 0 &&
                                 spec_.initial_devices != cluster_->num_devices());
    if (needs_reconfig) {
      throw std::invalid_argument("Controller: engine '" + engine.name() +
                                  "' does not implement engine::Reconfigurable");
    }
  }

  // An SLO-attainment controller replans for latency, not raw throughput,
  // unless the spec pins a different objective explicitly.
  replan_objective_ = spec_.replan_objective;
  if (replan_objective_.empty() && spec_.policy == "slo") replan_objective_ = "latency";
  if (!replan_objective_.empty() && reconfigurable_) {
    reconfigurable_->set_plan_objective({replan_objective_, spec_.slo});
  }
  if (!spec_.replan_planner.empty() && reconfigurable_) {
    reconfigurable_->set_planner(spec_.replan_planner);
  }

  // Chain in front of whatever observer run_trace installed.
  downstream_ = engine.metrics().observer();
  engine.metrics().set_observer(this);

  // Traced run: every decision from here on lands in the session's audit
  // trail (run_trace installs the session before calling on_start, so the
  // initial deployment below is already recorded).
  if (telemetry::Telemetry* t = engine.metrics().telemetry()) audit_ = &t->audit();

  // The construction deployment was planned over the whole cluster, so the
  // assigned set starts as every device; pick_active() shrinks it below.
  active_.assign(available_.begin(), available_.end());
  active_history_.emplace_back(sim.now(), static_cast<int>(active_.size()));
  stats_.peak_active = static_cast<int>(active_.size());
  stats_.min_active = static_cast<int>(active_.size());

  // An initial_devices cap below the construction deployment applies
  // before the first arrival (the engine pays its own transition cost --
  // with nothing in flight this is cheap for every engine).
  pending_trigger_ = "initial";
  pending_device_ = -1;
  apply_target(sim, /*forced=*/true);

  for (const ClusterEvent& ev : events_) {
    sim.schedule_at(ev.time, [this, &sim, ev] { handle_event(sim, ev); });
  }
  if (spec_.tick > 0) {
    sim.schedule_in(spec_.tick, [this, &sim] { tick(sim); });
  }
}

int Controller::clamp_target(int target) const {
  const int avail = static_cast<int>(available_.size());
  return std::max(std::min(target, avail), std::min(spec_.min_devices, avail));
}

std::vector<int> Controller::pick_active() const {
  // Rank available devices by EFFECTIVE compute power -- nameplate scaled
  // by the live degradation overlay (desc, id asc on ties) -- and keep the
  // strongest `target_count_`: churn takes whatever it takes, elective
  // scaling always sheds the weakest devices first, where "weakest" means
  // measured, not nameplate (a straggling A100 at 35% ranks below a
  // healthy 3090).  On healthy clusters every ratio is 1.0 and the
  // ranking is byte-identical to the historical nameplate order.
  std::vector<int> ranked(available_.begin(), available_.end());
  std::sort(ranked.begin(), ranked.end(), [this](int a, int b) {
    const double pa = cluster_->device(a).spec().compute_power() * cluster_->device_speed(a);
    const double pb = cluster_->device(b).spec().compute_power() * cluster_->device_speed(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  const std::size_t n = static_cast<std::size_t>(clamp_target(target_count_));
  ranked.resize(std::min(ranked.size(), n));
  std::sort(ranked.begin(), ranked.end());
  return ranked;
}

bool Controller::apply_target(sim::Simulation& sim, bool forced) {
  if (!reconfigurable_) return false;
  std::vector<int> want = pick_active();
  if (want == active_) return false;
  if (!forced) {
    if (last_elective_ >= 0 && sim.now() - last_elective_ < spec_.cooldown) return false;
    last_elective_ = sim.now();
  }
  std::string plan_before;
  std::vector<int> before;
  if (audit_) {
    plan_before = reconfigurable_->plan_digest();
    before = active_;
  }
  reconfigurable_->reconfigure(sim, want);
  if (audit_) {
    audit_decision(sim, "redeploy", forced, std::move(before), want, std::move(plan_before));
  }
  active_ = std::move(want);
  active_history_.emplace_back(sim.now(), static_cast<int>(active_.size()));
  (forced ? stats_.forced_reconfigs : stats_.elective_reconfigs) += 1;
  stats_.peak_active = std::max(stats_.peak_active, static_cast<int>(active_.size()));
  stats_.min_active = std::min(stats_.min_active, static_cast<int>(active_.size()));
  HETIS_INFO("Controller: " << (forced ? "forced" : "elective") << " re-deploy to "
                            << active_.size() << " devices at t=" << sim.now());
  return true;
}

void Controller::handle_event(sim::Simulation& sim, const ClusterEvent& ev) {
  switch (ev.kind) {
    case ClusterEventKind::kGpuLeave: {
      if (available_.erase(ev.device) == 0) return;  // already gone
      if (available_.empty()) {
        throw std::invalid_argument("Controller: churn script removed every device");
      }
      // Ask the ENGINE whether it actually serves on the device: a pinned
      // or pruned plan may leave an assigned device idle, and re-deploying
      // over a spare that served nothing would charge a restart window (or
      // a migration storm) for no reason.  Idle leaves are bookkeeping.
      bool serving = false;
      if (reconfigurable_) {
        const std::vector<int> used = reconfigurable_->active_devices();
        serving = std::find(used.begin(), used.end(), ev.device) != used.end();
      }
      if (serving) {
        pending_trigger_ = "gpu_leave";
        pending_device_ = ev.device;
        apply_target(sim, /*forced=*/true);
      } else {
        active_ = pick_active();
      }
      break;
    }
    case ClusterEventKind::kGpuJoin:
      if (!available_.insert(ev.device).second) return;  // already here
      // A join never invalidates the running deployment -- adopting the
      // returned capacity is an optimization, so it is ELECTIVE (cooldown
      // applies).  Simultaneous rejoins therefore coalesce: the first one
      // re-deploys, the rest land on a later tick instead of charging one
      // teardown per device.
      pending_trigger_ = "gpu_join";
      pending_device_ = ev.device;
      apply_target(sim, /*forced=*/false);
      break;
    case ClusterEventKind::kLoadShift:
      signals_.load_forecast = ev.factor;
      break;
    case ClusterEventKind::kDeviceSlow:
    case ClusterEventKind::kLinkDegrade: {
      // Apply the measured condition to the shared cluster: the engine's
      // cost model prices it from the next iteration on.  The engine is
      // nudged to REPLAN only when the device crosses the straggler
      // threshold (either direction); sub-threshold wobble changes serving
      // speed but never triggers a re-deploy storm.
      const bool is_speed = ev.kind == ClusterEventKind::kDeviceSlow;
      const double before = is_speed ? mutable_cluster_->device_speed(ev.device)
                                     : mutable_cluster_->device_link_scale(ev.device);
      if (is_speed) {
        mutable_cluster_->set_device_speed(ev.device, ev.factor);
      } else {
        mutable_cluster_->set_device_link_scale(ev.device, ev.factor);
      }
      ++stats_.degradation_events;
      signals_.degraded_devices = count_degraded();
      const bool was = before < spec_.straggler_threshold;
      const bool now = ev.factor < spec_.straggler_threshold;
      if (was != now && reconfigurable_) {
        HETIS_INFO("Controller: device " << ev.device << " " << to_string(ev.kind) << " -> "
                                         << ev.factor << " at t=" << sim.now()
                                         << (now ? " (degraded)" : " (recovered)"));
        pending_trigger_ = now ? "straggler_crossing" : "recovery_crossing";
        pending_device_ = ev.device;
        std::string plan_before;
        std::vector<int> devs_before;
        if (audit_) {
          plan_before = reconfigurable_->plan_digest();
          devs_before = reconfigurable_->active_devices();
        }
        reconfigurable_->on_degradation(sim);
        if (audit_) {
          // Same device set, possibly a new layout (e.g. a straggling
          // primary demoted to an Attention worker).
          audit_decision(sim, "replan_in_place", /*forced=*/true, std::move(devs_before),
                         reconfigurable_->active_devices(), std::move(plan_before));
        }
      }
      break;
    }
    case ClusterEventKind::kPreemptNotice:
      ++stats_.preempt_notices;
      if (reconfigurable_) {
        pending_trigger_ = "preempt_notice";
        pending_device_ = ev.device;
        std::string plan_before;
        std::vector<int> devs_before;
        if (audit_) {
          plan_before = reconfigurable_->plan_digest();
          devs_before = reconfigurable_->active_devices();
        }
        reconfigurable_->on_preempt_notice(sim, ev.device, ev.time + ev.factor);
        if (audit_) {
          audit_decision(sim, "evacuate", /*forced=*/true, std::move(devs_before),
                         reconfigurable_->active_devices(), std::move(plan_before));
        }
      }
      break;
  }
}

int Controller::count_degraded() const {
  int n = 0;
  for (const auto& d : cluster_->devices()) {
    if (cluster_->device_speed(d.id) < spec_.straggler_threshold ||
        cluster_->device_link_scale(d.id) < spec_.straggler_threshold) {
      ++n;
    }
  }
  return n;
}

void Controller::tick(sim::Simulation& sim) {
  ++stats_.ticks;
  signals_.now = sim.now();
  // Requests re-prefilling after a preemption/restart count as queued:
  // on_prefill_done is deduped per request at the metrics layer, so the
  // arrived-minus-prefilled difference alone would go blind to restart
  // backlogs -- exactly when a reactive policy must see pressure.
  signals_.queue_depth = arrived_ - prefilled_ + reprefilling_.size();
  signals_.in_flight = arrived_ - finished_;
  signals_.kv_pressure = engine_ ? engine_->kv_fill_fraction() : 0.0;
  signals_.active_devices = static_cast<int>(active_.size());
  signals_.available_devices = static_cast<int>(available_.size());
  signals_.degraded_devices = count_degraded();
  const double inst_rate =
      static_cast<double>(arrived_ - arrived_at_last_tick_) / spec_.tick;
  arrived_at_last_tick_ = arrived_;
  if (!rate_seeded_) {
    signals_.arrival_rate = inst_rate;
    rate_seeded_ = true;
  } else {
    ewma(signals_.arrival_rate, inst_rate);
  }

  // The STANDING target is clamped to the cluster, not to current
  // availability: a static 12-device target must survive a dip to 8
  // available so the rejoin restores the full deployment.  pick_active()
  // applies the availability clamp at selection time.
  target_count_ = std::min(std::max(policy_->target_devices(signals_, target_count_),
                                    spec_.min_devices),
                           cluster_->num_devices());
  pending_trigger_ = "policy_tick";
  pending_device_ = -1;
  apply_target(sim, /*forced=*/false);

  if (sim.now() + spec_.tick <= spec_.horizon) {
    sim.schedule_in(spec_.tick, [this, &sim] { tick(sim); });
  }
}

double Controller::device_seconds(Seconds until) const {
  // Before attach (empty history) the construction deployment spans the
  // whole cluster for the whole window.
  if (active_history_.empty()) return cluster_->num_devices() * std::max<Seconds>(0, until);
  double total = 0;
  for (std::size_t i = 0; i < active_history_.size(); ++i) {
    const Seconds start = active_history_[i].first;
    const Seconds end = std::min(
        i + 1 < active_history_.size() ? active_history_[i + 1].first : until, until);
    if (end <= start) continue;  // zero-width (same-instant re-deploys) or past `until`
    total += (end - start) * active_history_[i].second;
  }
  return total;
}

void Controller::ewma(double& slot, double sample) {
  slot = spec_.signal_alpha * sample + (1.0 - spec_.signal_alpha) * slot;
}

void Controller::audit_decision(sim::Simulation& sim, const std::string& action, bool forced,
                                std::vector<int> devices_before,
                                std::vector<int> devices_after, std::string plan_before) {
  if (!audit_) return;
  telemetry::AuditRecord rec;
  rec.time = sim.now();
  rec.trigger = pending_trigger_.empty() ? "policy_tick" : pending_trigger_;
  rec.action = action;
  rec.forced = forced;
  rec.device = pending_device_;
  // EWMAs carry their latest smoothed state; the computed signals are
  // re-derived NOW, so a churn-driven decision between ticks audits the
  // queue it actually saw.
  rec.signals = signals_;
  rec.signals.now = sim.now();
  rec.signals.queue_depth = arrived_ - prefilled_ + reprefilling_.size();
  rec.signals.in_flight = arrived_ - finished_;
  rec.signals.kv_pressure = engine_ ? engine_->kv_fill_fraction() : 0.0;
  rec.signals.active_devices = static_cast<int>(devices_before.size());
  rec.signals.available_devices = static_cast<int>(available_.size());
  rec.signals.degraded_devices = count_degraded();
  rec.devices_before = std::move(devices_before);
  rec.devices_after = std::move(devices_after);
  rec.plan_before = std::move(plan_before);
  if (reconfigurable_) {
    rec.plan_after = reconfigurable_->plan_digest();
    if (const parallel::SearchDiagnostics* d = reconfigurable_->last_search_diagnostics()) {
      rec.has_diagnostics = true;
      rec.diagnostics = *d;
      // Host wall-clock, the one non-sim field: zeroed so every audit
      // artifact stays byte-reproducible across runs and --jobs levels
      // (bench_search_overhead measures search wall time where it belongs).
      rec.diagnostics.wall_time = 0;
    }
  }
  audit_->record(std::move(rec));
}

void Controller::on_arrival(const workload::Request& r) {
  ++arrived_;
  arrival_time_[r.id] = r.arrival;
  if (downstream_) downstream_->on_arrival(r);
}

void Controller::on_prefill_done(workload::RequestId id, Seconds t) {
  ++prefilled_;
  reprefilling_.erase(id);
  first_token_time_[id] = t;
  last_token_time_[id] = t;
  auto it = arrival_time_.find(id);
  if (it != arrival_time_.end()) {
    const double ttft = t - it->second;
    if (!ttft_seeded_) {
      signals_.ttft_ewma = ttft;
      ttft_seeded_ = true;
    } else {
      ewma(signals_.ttft_ewma, ttft);
    }
  }
  if (downstream_) downstream_->on_prefill_done(id, t);
}

void Controller::on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
  auto it = last_token_time_.find(id);
  if (it != last_token_time_.end() && t > it->second) {
    const double gap = t - it->second;
    if (!tpot_seeded_) {
      signals_.tpot_ewma = gap;
      tpot_seeded_ = true;
    } else {
      ewma(signals_.tpot_ewma, gap);
    }
  }
  last_token_time_[id] = t;
  generated_[id] = generated;
  reprefilling_.erase(id);  // decode resumed: the re-prefill completed
  if (downstream_) downstream_->on_token(id, t, generated);
}

void Controller::on_finish(workload::RequestId id, Seconds t) {
  ++finished_;
  // Grade the finish against the spec's SLO with run_trace's conventions:
  // targets <= 0 are vacuous, single-token outputs meet TPOT trivially.
  bool ok = true;
  const auto arr = arrival_time_.find(id);
  const auto ft = first_token_time_.find(id);
  if (spec_.slo.ttft > 0) {
    ok = arr != arrival_time_.end() && ft != first_token_time_.end() &&
         (ft->second - arr->second) <= spec_.slo.ttft;
  }
  if (ok && spec_.slo.tpot > 0) {
    const auto gen = generated_.find(id);
    if (gen != generated_.end() && gen->second > 1 && ft != first_token_time_.end()) {
      const double tpot = (t - ft->second) / static_cast<double>(gen->second - 1);
      ok = tpot <= spec_.slo.tpot;
    }
  }
  const double sample = ok ? 1.0 : 0.0;
  if (!slo_seeded_) {
    signals_.slo_attainment = sample;
    slo_seeded_ = true;
  } else {
    ewma(signals_.slo_attainment, sample);
  }
  arrival_time_.erase(id);
  first_token_time_.erase(id);
  last_token_time_.erase(id);
  generated_.erase(id);
  reprefilling_.erase(id);
  if (downstream_) downstream_->on_finish(id, t);
}

void Controller::on_preempt(workload::RequestId id, Seconds t) {
  reprefilling_.insert(id);  // back in the admission queue until it decodes
  if (downstream_) downstream_->on_preempt(id, t);
}

void Controller::on_prefill_start(workload::RequestId id, Seconds t) {
  if (downstream_) downstream_->on_prefill_start(id, t);
}

void Controller::on_migrate(workload::RequestId id, Seconds start, Seconds ready,
                            int src_device, int dst_device) {
  if (downstream_) downstream_->on_migrate(id, start, ready, src_device, dst_device);
}

void Controller::on_usage(const engine::UsageSample& s) {
  if (downstream_) downstream_->on_usage(s);
}

}  // namespace hetis::control
