// The Dispatcher (paper §5): dynamic head-wise dispatching, re-dispatching
// and device-local eviction for one Hetis serving instance.
//
// Logical-device model.  Attention placement decisions see:
//   * the PRIMARY side: every pipeline stage's TP group.  Heads NOT
//     offloaded ("local" heads) are computed by whichever stage owns the
//     current layer, so a request's local head count is the same on every
//     stage; the LP therefore treats the primary side as one merged
//     logical device whose time coefficients come from the slowest stage
//     and whose free memory is the tightest stage's (per-layer units).
//   * each pooled Attention worker as an individual device with its own
//     fitted tau (Eq. 3) and transfer rho (Eq. 4) models.
//
// Time model.  All f_i are per-layer quantities; the decode-iteration
// attention latency is sum_k layers_k * max(tau_stage_k, max_w f_w), which
// instantiates the paper's objective (Eq. 7a) at the iteration level.
//
// Memory model.  All quantities in bytes.  One query head of a request
// with context l holds l * bph bytes per layer, bph = 2*head_dim*dtype/r;
// a stage hosts its layer slab for local heads, a worker hosts all L
// layers for its offloaded heads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/units.h"
#include "costmodel/attention_model.h"
#include "lp/minmax.h"
#include "lp/workspace.h"
#include "workload/request.h"

namespace hetis::dispatch {

struct StageDesc {
  std::vector<int> devices;  // physical ids (TP group)
  int layers = 0;
  costmodel::AttnParams attn;  // per-physical-device Eq. 3 fit
  Bytes capacity = 0;          // KV byte budget across the group
};

struct WorkerDesc {
  int device = -1;
  costmodel::AttnParams attn;
  costmodel::TransferParams transfer;  // to the slowest-link primary
  Bytes capacity = 0;
};

struct DispatcherConfig {
  std::vector<StageDesc> stages;
  std::vector<WorkerDesc> workers;
  int heads = 0;       // H: query heads per request
  int group_size = 1;  // r: GQA ratio (head-group granularity)
  double bytes_per_head_token_layer = 0;  // bph
  int total_layers = 0;
  double theta = 0.5;  // re-dispatch trigger threshold (paper default)
  bool use_lp = true;  // false = greedy waterfilling only (ablation)
};

/// Per-request head placement: local (primary) heads + per-worker heads.
struct PlacementCounts {
  int local = 0;
  std::vector<int> worker_heads;

  int total() const;
};

/// A planned placement change for one request (re-dispatch or rescue).
struct Rebalance {
  workload::RequestId victim = -1;
  PlacementCounts from;
  PlacementCounts to;
  double moved_heads = 0;
  Bytes moved_bytes = 0;
  int src_device = -1;  // representative hauler endpoints
  int dst_device = -1;
  bool valid = false;
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherConfig cfg);

  // --- Request lifecycle ---

  /// Dispatches new requests (Eq. 7).  On success registers them and
  /// returns one PlacementCounts per request (same order).  Returns
  /// nullopt when the instance cannot host them (caller keeps waiting).
  std::optional<std::vector<PlacementCounts>> dispatch(
      const std::vector<std::pair<workload::RequestId, std::int64_t>>& new_requests,
      Seconds now);

  /// Grows a request's context by one token (Eq. 8 state update).
  void append_token(workload::RequestId id);

  /// Batched append_token for one decode iteration's survivors.  `ids` must
  /// be strictly ascending (the engine's decode batches are built in id
  /// order); the whole batch is applied with one walk of the request map
  /// instead of one lookup per id.  Throws std::out_of_range on any unknown
  /// id, like append_token.
  void append_tokens(const std::vector<workload::RequestId>& ids);

  /// Removes a finished/preempted request and frees its accounting.
  void remove(workload::RequestId id);

  bool contains(workload::RequestId id) const { return requests_.count(id) > 0; }
  std::size_t size() const { return requests_.size(); }
  const PlacementCounts& placement(workload::RequestId id) const;
  std::int64_t context(workload::RequestId id) const;

  // --- Time model ---

  /// Per-layer attention+transfer time of logical device i right now.
  Seconds device_time(std::size_t logical) const;
  /// Decode-iteration attention latency: sum_k layers_k * max(tau_k, W).
  Seconds attention_iteration_time() const;
  /// max_i f_i (the per-layer bottleneck; re-dispatch trigger input).
  Seconds worst_per_layer() const;
  /// f*: ideal per-layer time if ALL requests were re-dispatched, under the
  /// cluster-wide memory constraint (§5.3.1).  Computed by waterfilling
  /// (documented approximation of the paper's LP).
  Seconds ideal_per_layer() const;

  // --- Re-dispatching (§5.3) ---

  /// True when worst exceeds (1 + theta) * ideal.
  bool should_rebalance() const;
  /// Plans moving the dominant request off the bottleneck device (§5.3.1).
  Rebalance plan_rebalance() const;
  /// Plans re-dispatching `victim` to relieve memory pressure (§5.3.2).
  Rebalance plan_rescue(workload::RequestId victim) const;
  /// Commits a planned rebalance (memory accounting moves immediately; the
  /// engine suspends the victim until the Hauler transfer lands).
  void apply(const Rebalance& rb);

  // --- Memory state ---

  /// Logical device with the highest used/capacity ratio above 1, if any.
  std::optional<std::size_t> first_overflowed() const;
  /// Modified-LIFO victim: latest-arrival request holding cache on the
  /// given logical device (§5.3.2); -1 when none.
  workload::RequestId evict_candidate_on(std::size_t logical) const;
  /// True when the cluster still has spare cache overall.
  bool has_global_spare() const;

  Bytes device_capacity(std::size_t logical) const;
  Bytes device_used(std::size_t logical) const;
  std::size_t num_logical() const { return 1 + cfg_.workers.size(); }

  // --- Introspection (Fig. 14) ---

  /// Total query heads resident on a physical device.
  double physical_heads(int device) const;
  /// Cache fill fraction of a physical device's budget.
  double physical_cache_fraction(int device) const;

  const DispatcherConfig& config() const { return cfg_; }

  /// Solver-workspace counters (lp_solves / lp_warm_hits) accumulated by
  /// this dispatcher's memoized LP and greedy calls.
  const lp::WorkspaceStats& lp_stats() const { return lp_ws_.stats(); }

 private:
  struct ReqState {
    std::int64_t ctx = 0;
    Seconds arrival = 0;
    PlacementCounts counts;
  };

  struct Aggregates {
    double local_heads = 0;
    double local_head_tokens = 0;  // sum over requests of local*ctx
    std::vector<double> worker_heads;
    std::vector<double> worker_head_tokens;
  };
  /// Current aggregates, cached behind a dirty flag: every mutation
  /// (dispatch / append / remove / apply) marks the cache stale and the
  /// next reader recomputes.  The recompute walks requests_ in the same
  /// map order with the same summation order as always, so a cached read
  /// is bit-identical to an eager one.  The reference is valid until the
  /// next mutation.
  const Aggregates& aggregate() const;

  /// Builds the min-max problem for `new_requests` given current state.
  /// Excludes `exclude` (for single-request re-dispatch).  Fills the
  /// reusable prob_ buffer in place (every field assigned, including a
  /// global_memory_only reset); the reference is valid until the next
  /// build_problem call.
  const lp::MinMaxProblem& build_problem(
      const std::vector<std::pair<workload::RequestId, std::int64_t>>& new_requests,
      workload::RequestId exclude) const;

  /// Writes the device-side rows (base_time / head_cost / cache_cost /
  /// mem_free, plus group_size) for the given aggregates into `p`.  Shared
  /// by build_problem and the ideal_per_layer base (whose rows use all-zero
  /// aggregates and therefore depend only on the immutable config).
  void fill_device_rows(const Aggregates& agg, lp::MinMaxProblem& p) const;

  /// Per-layer tau of stage k under given local aggregates.
  Seconds stage_time(std::size_t k, double local_heads, double local_head_tokens) const;
  /// Per-layer f of worker w under given aggregates.
  Seconds worker_time(std::size_t w, double heads, double head_tokens) const;

  /// Index of the stage with the largest per-layer time (LP coefficients).
  std::size_t bottleneck_stage(double local_heads, double local_head_tokens) const;

  Rebalance plan_single(workload::RequestId victim) const;

  DispatcherConfig cfg_;
  std::map<workload::RequestId, ReqState> requests_;
  double bph_ = 0;  // bytes per head-token per layer

  // Hot-path scratch and memo state.  All mutable: the accessors above are
  // logically const (every cached value is bit-identical to an eager
  // recompute), and the Dispatcher is single-threaded like the rest of the
  // simulator.
  mutable Aggregates agg_cache_;
  mutable bool agg_dirty_ = true;
  mutable Aggregates agg_scratch_;       // exclude-adjusted copy (plan_single)
  mutable lp::MinMaxProblem prob_;       // build_problem's reusable buffer
  mutable lp::MinMaxProblem ideal_prob_; // ideal_per_layer's reusable buffer
  mutable bool ideal_base_ready_ = false;
  mutable lp::SolveWorkspace lp_ws_;
};

}  // namespace hetis::dispatch
