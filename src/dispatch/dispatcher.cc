#include "dispatch/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/log.h"

namespace hetis::dispatch {

namespace {
// Per-head per-layer transfer volume: (2 + 2/r) * head_dim-share.  We fold
// the model geometry into the config's bph and gqa ratio: d_head * dtype =
// bph * r / 2, so per-head volume = (2 + 2/r) * bph * r / 2 = (r + 1) * bph.
double per_head_layer_volume(const DispatcherConfig& cfg) {
  return (static_cast<double>(cfg.group_size) + 1.0) * cfg.bytes_per_head_token_layer;
}
}  // namespace

int PlacementCounts::total() const {
  int t = local;
  for (int h : worker_heads) t += h;
  return t;
}

Dispatcher::Dispatcher(DispatcherConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.stages.empty()) throw std::invalid_argument("Dispatcher: no stages");
  if (cfg_.heads <= 0 || cfg_.group_size <= 0 || cfg_.heads % cfg_.group_size != 0) {
    throw std::invalid_argument("Dispatcher: bad head/group configuration");
  }
  bph_ = cfg_.bytes_per_head_token_layer;
  if (bph_ <= 0) throw std::invalid_argument("Dispatcher: bytes_per_head_token_layer <= 0");
}

const Dispatcher::Aggregates& Dispatcher::aggregate() const {
  if (!agg_dirty_) return agg_cache_;
  Aggregates& agg = agg_cache_;
  agg.local_heads = 0.0;
  agg.local_head_tokens = 0.0;
  agg.worker_heads.assign(cfg_.workers.size(), 0.0);
  agg.worker_head_tokens.assign(cfg_.workers.size(), 0.0);
  for (const auto& [id, st] : requests_) {
    agg.local_heads += st.counts.local;
    agg.local_head_tokens += static_cast<double>(st.counts.local) * st.ctx;
    for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
      agg.worker_heads[w] += st.counts.worker_heads[w];
      agg.worker_head_tokens[w] += static_cast<double>(st.counts.worker_heads[w]) * st.ctx;
    }
  }
  agg_dirty_ = false;
  return agg_cache_;
}

Seconds Dispatcher::stage_time(std::size_t k, double local_heads,
                               double local_head_tokens) const {
  const StageDesc& s = cfg_.stages[k];
  const double tp = static_cast<double>(s.devices.size());
  // TP spreads local heads and their cache evenly across the group.
  double h = local_heads / tp;
  double g = local_head_tokens * bph_ / tp;  // per-layer bytes per device
  if (h <= 0.0) return 0.0;
  return s.attn.time(h, g);
}

Seconds Dispatcher::worker_time(std::size_t w, double heads, double head_tokens) const {
  if (heads <= 0.0) return 0.0;
  const WorkerDesc& wk = cfg_.workers[w];
  double g = head_tokens * bph_;
  Bytes volume = static_cast<Bytes>(per_head_layer_volume(cfg_) * heads);
  return wk.attn.time(heads, g) + wk.transfer.time(volume);
}

std::size_t Dispatcher::bottleneck_stage(double local_heads, double local_head_tokens) const {
  std::size_t best = 0;
  Seconds worst = -1;
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    // Evaluate with a nominal head so empty state still ranks stages.
    Seconds t = stage_time(k, std::max(1.0, local_heads), std::max(1.0, local_head_tokens));
    if (t > worst) {
      worst = t;
      best = k;
    }
  }
  return best;
}

Seconds Dispatcher::device_time(std::size_t logical) const {
  const Aggregates& agg = aggregate();
  if (logical == 0) {
    Seconds worst = 0;
    for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
      worst = std::max(worst, stage_time(k, agg.local_heads, agg.local_head_tokens));
    }
    return worst;
  }
  std::size_t w = logical - 1;
  return worker_time(w, agg.worker_heads[w], agg.worker_head_tokens[w]);
}

Seconds Dispatcher::attention_iteration_time() const {
  const Aggregates& agg = aggregate();
  Seconds worker_worst = 0;
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    worker_worst =
        std::max(worker_worst, worker_time(w, agg.worker_heads[w], agg.worker_head_tokens[w]));
  }
  Seconds total = 0;
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    Seconds per_layer =
        std::max(stage_time(k, agg.local_heads, agg.local_head_tokens), worker_worst);
    total += per_layer * cfg_.stages[k].layers;
  }
  return total;
}

Seconds Dispatcher::worst_per_layer() const {
  Seconds worst = 0;
  for (std::size_t i = 0; i < num_logical(); ++i) worst = std::max(worst, device_time(i));
  return worst;
}

Bytes Dispatcher::device_capacity(std::size_t logical) const {
  if (logical == 0) {
    // Per-layer-normalized merged capacity would be misleading; report the
    // raw sum across stages.
    Bytes total = 0;
    for (const auto& s : cfg_.stages) total += s.capacity;
    return total;
  }
  return cfg_.workers[logical - 1].capacity;
}

Bytes Dispatcher::device_used(std::size_t logical) const {
  const Aggregates& agg = aggregate();
  if (logical == 0) {
    // Sum over stages: local head-tokens * bph * layers_k.
    double used = 0;
    for (const auto& s : cfg_.stages) {
      used += agg.local_head_tokens * bph_ * s.layers;
    }
    return static_cast<Bytes>(used);
  }
  std::size_t w = logical - 1;
  return static_cast<Bytes>(agg.worker_head_tokens[w] * bph_ * cfg_.total_layers);
}

std::optional<std::size_t> Dispatcher::first_overflowed() const {
  // Primary overflow must be judged per stage (the tightest stage binds).
  const Aggregates& agg = aggregate();
  double worst_ratio = 1.0;
  std::optional<std::size_t> out;
  for (const auto& s : cfg_.stages) {
    if (s.capacity <= 0) continue;
    double used = agg.local_head_tokens * bph_ * s.layers;
    double ratio = used / static_cast<double>(s.capacity);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      out = 0;
    }
  }
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    if (cfg_.workers[w].capacity <= 0) continue;
    double used = agg.worker_head_tokens[w] * bph_ * cfg_.total_layers;
    double ratio = used / static_cast<double>(cfg_.workers[w].capacity);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      out = 1 + w;
    }
  }
  return out;
}

workload::RequestId Dispatcher::evict_candidate_on(std::size_t logical) const {
  workload::RequestId victim = -1;
  Seconds latest = -std::numeric_limits<double>::infinity();
  for (const auto& [id, st] : requests_) {
    int heads_here = logical == 0 ? st.counts.local : st.counts.worker_heads[logical - 1];
    if (heads_here <= 0) continue;
    // Modified LIFO (§5.3.2): latest arrival on the exhausted device; ties
    // break toward the newest id so older requests keep their progress.
    if (st.arrival > latest || (st.arrival == latest && id > victim)) {
      latest = st.arrival;
      victim = id;
    }
  }
  return victim;
}

bool Dispatcher::has_global_spare() const {
  Bytes cap = 0, used = 0;
  for (std::size_t i = 0; i < num_logical(); ++i) {
    cap += device_capacity(i);
    used += device_used(i);
  }
  return used < cap;
}

double Dispatcher::physical_heads(int device) const {
  const Aggregates& agg = aggregate();
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    const auto& devs = cfg_.stages[k].devices;
    if (std::find(devs.begin(), devs.end(), device) != devs.end()) {
      return agg.local_heads / static_cast<double>(devs.size());
    }
  }
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    if (cfg_.workers[w].device == device) return agg.worker_heads[w];
  }
  return 0.0;
}

double Dispatcher::physical_cache_fraction(int device) const {
  const Aggregates& agg = aggregate();
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    const auto& s = cfg_.stages[k];
    if (std::find(s.devices.begin(), s.devices.end(), device) != s.devices.end()) {
      if (s.capacity <= 0) return 0.0;
      double used = agg.local_head_tokens * bph_ * s.layers;
      return std::min(1.0, used / static_cast<double>(s.capacity));
    }
  }
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    if (cfg_.workers[w].device == device) {
      if (cfg_.workers[w].capacity <= 0) return 0.0;
      double used = agg.worker_head_tokens[w] * bph_ * cfg_.total_layers;
      return std::min(1.0, used / static_cast<double>(cfg_.workers[w].capacity));
    }
  }
  return 0.0;
}

void Dispatcher::fill_device_rows(const Aggregates& agg, lp::MinMaxProblem& p) const {
  p.group_size = cfg_.group_size;
  const std::size_t d = 1 + cfg_.workers.size();
  p.base_time.resize(d);
  p.head_cost.resize(d);
  p.cache_cost.resize(d);
  p.mem_free.resize(d);

  // Logical device 0: merged primary.  Time coefficients from the slowest
  // stage; per-layer free memory from the tightest stage.
  std::size_t bk = bottleneck_stage(agg.local_heads, agg.local_head_tokens);
  {
    const StageDesc& s = cfg_.stages[bk];
    const double tp = static_cast<double>(s.devices.size());
    p.base_time[0] = stage_time(bk, agg.local_heads, agg.local_head_tokens);
    p.head_cost[0] = s.attn.a / tp;
    p.cache_cost[0] = s.attn.b / tp;
    double free_pl = std::numeric_limits<double>::infinity();
    for (const auto& stg : cfg_.stages) {
      double used = agg.local_head_tokens * bph_ * stg.layers;
      double free_here = (static_cast<double>(stg.capacity) - used) / stg.layers;
      free_pl = std::min(free_pl, free_here);
    }
    p.mem_free[0] = std::max(0.0, free_pl);
  }
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    const WorkerDesc& wk = cfg_.workers[w];
    double used = agg.worker_head_tokens[w] * bph_ * cfg_.total_layers;
    // Base includes the transfer constants unconditionally (paper Eq. 7's
    // f_i for Attention workers); this biases against premature offload.
    p.base_time[1 + w] = wk.attn.time(std::max(0.0, agg.worker_heads[w]),
                                      agg.worker_head_tokens[w] * bph_) +
                         wk.transfer.beta;
    p.head_cost[1 + w] = wk.attn.a + wk.transfer.gamma * per_head_layer_volume(cfg_);
    p.cache_cost[1 + w] = wk.attn.b;
    p.mem_free[1 + w] =
        std::max(0.0, (static_cast<double>(wk.capacity) - used) / cfg_.total_layers);
  }
}

const lp::MinMaxProblem& Dispatcher::build_problem(
    const std::vector<std::pair<workload::RequestId, std::int64_t>>& new_requests,
    workload::RequestId exclude) const {
  const Aggregates* aggp = &aggregate();
  if (exclude >= 0) {
    auto it = requests_.find(exclude);
    if (it != requests_.end()) {
      // Copy-and-subtract into the scratch aggregates so the shared cache
      // stays untouched.
      agg_scratch_ = *aggp;
      const ReqState& st = it->second;
      agg_scratch_.local_heads -= st.counts.local;
      agg_scratch_.local_head_tokens -= static_cast<double>(st.counts.local) * st.ctx;
      for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
        agg_scratch_.worker_heads[w] -= st.counts.worker_heads[w];
        agg_scratch_.worker_head_tokens[w] -=
            static_cast<double>(st.counts.worker_heads[w]) * st.ctx;
      }
      aggp = &agg_scratch_;
    }
  }

  lp::MinMaxProblem& p = prob_;
  p.global_memory_only = false;  // reset: the buffer is recycled
  fill_device_rows(*aggp, p);

  p.demand.clear();
  p.cache_per_head.clear();
  p.demand.reserve(new_requests.size());
  p.cache_per_head.reserve(new_requests.size());
  for (const auto& [id, ctx] : new_requests) {
    p.demand.push_back(static_cast<double>(cfg_.heads));
    p.cache_per_head.push_back(static_cast<double>(ctx) * bph_);
  }
  return p;
}

std::optional<std::vector<PlacementCounts>> Dispatcher::dispatch(
    const std::vector<std::pair<workload::RequestId, std::int64_t>>& new_requests,
    Seconds now) {
  if (new_requests.empty()) return std::vector<PlacementCounts>{};
  const lp::MinMaxProblem& p = build_problem(new_requests, /*exclude=*/-1);

  // `heads` points at either the locally rounded LP solution or the
  // workspace's cached greedy assignment; round_to_groups always returns a
  // d-row matrix (d >= 1 here), so "LP path taken" == relaxed.ok(), exactly
  // as the old empty()-check did.
  std::vector<std::vector<int>> rounded;
  const std::vector<std::vector<int>>* heads = nullptr;
  if (cfg_.use_lp) {
    const lp::MinMaxSolution& relaxed = lp::solve_relaxed(p, lp_ws_);
    if (relaxed.ok()) {
      rounded = lp::round_to_groups(p, relaxed);
      heads = &rounded;
    }
  }
  if (heads == nullptr) heads = &lp::greedy_dispatch(p, lp_ws_);

  // Verify every request received its full head count (greedy may fall
  // short when the cluster is memory-exhausted).
  for (std::size_t j = 0; j < new_requests.size(); ++j) {
    int total = 0;
    for (std::size_t i = 0; i < heads->size(); ++i) total += (*heads)[i][j];
    if (total != cfg_.heads) return std::nullopt;
  }

  agg_dirty_ = true;
  std::vector<PlacementCounts> out(new_requests.size());
  for (std::size_t j = 0; j < new_requests.size(); ++j) {
    PlacementCounts pc;
    pc.local = (*heads)[0][j];
    pc.worker_heads.assign(cfg_.workers.size(), 0);
    for (std::size_t w = 0; w < cfg_.workers.size(); ++w) pc.worker_heads[w] = (*heads)[1 + w][j];
    ReqState st;
    st.ctx = new_requests[j].second;
    st.arrival = now;
    st.counts = pc;
    requests_[new_requests[j].first] = st;
    out[j] = std::move(pc);
  }
  return out;
}

void Dispatcher::append_token(workload::RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) throw std::out_of_range("Dispatcher::append_token: unknown id");
  it->second.ctx += 1;
  agg_dirty_ = true;
}

void Dispatcher::append_tokens(const std::vector<workload::RequestId>& ids) {
  if (ids.empty()) return;
  auto it = requests_.begin();
  for (workload::RequestId id : ids) {
    // `ids` ascends, so the map walk only ever advances.
    while (it != requests_.end() && it->first < id) ++it;
    if (it == requests_.end() || it->first != id) {
      throw std::out_of_range("Dispatcher::append_tokens: unknown id");
    }
    it->second.ctx += 1;
    ++it;
  }
  agg_dirty_ = true;
}

void Dispatcher::remove(workload::RequestId id) {
  requests_.erase(id);
  agg_dirty_ = true;
}

const PlacementCounts& Dispatcher::placement(workload::RequestId id) const {
  auto it = requests_.find(id);
  if (it == requests_.end()) throw std::out_of_range("Dispatcher::placement: unknown id");
  return it->second.counts;
}

std::int64_t Dispatcher::context(workload::RequestId id) const {
  auto it = requests_.find(id);
  if (it == requests_.end()) throw std::out_of_range("Dispatcher::context: unknown id");
  return it->second.ctx;
}

Seconds Dispatcher::ideal_per_layer() const {
  if (requests_.empty()) return 0.0;
  // Re-dispatch everything from scratch: empty base state, all requests as
  // "new", single global memory constraint; solved by waterfilling (fast
  // approximation of §5.3.1's LP).
  if (!ideal_base_ready_) {
    // The empty-state device rows depend only on the immutable config
    // (every aggregate is zero -- what a fresh Dispatcher(cfg_) would
    // report), so they are computed once; each call only refills the
    // request columns below.
    Aggregates zero;
    zero.worker_heads.assign(cfg_.workers.size(), 0.0);
    zero.worker_head_tokens.assign(cfg_.workers.size(), 0.0);
    fill_device_rows(zero, ideal_prob_);
    // Global memory (7b relaxed to the cluster-wide constraint).
    ideal_prob_.global_memory_only = true;
    ideal_base_ready_ = true;
  }
  lp::MinMaxProblem& p = ideal_prob_;
  p.demand.clear();
  p.cache_per_head.clear();
  p.demand.reserve(requests_.size());
  p.cache_per_head.reserve(requests_.size());
  for (const auto& [id, st] : requests_) {
    p.demand.push_back(static_cast<double>(cfg_.heads));
    p.cache_per_head.push_back(static_cast<double>(st.ctx) * bph_);
  }
  // The waterfill is an upper bound on the true f*; the current placement
  // is itself feasible for the re-dispatch problem, so f* can also never
  // exceed the present bottleneck.
  return std::min(lp::greedy_makespan(p, lp_ws_), worst_per_layer());
}

bool Dispatcher::should_rebalance() const {
  if (requests_.empty()) return false;
  Seconds ideal = ideal_per_layer();
  if (ideal <= 0) return false;
  return worst_per_layer() > (1.0 + cfg_.theta) * ideal;
}

Rebalance Dispatcher::plan_single(workload::RequestId victim) const {
  Rebalance rb;
  rb.victim = victim;
  auto it = requests_.find(victim);
  if (it == requests_.end()) return rb;
  rb.from = it->second.counts;

  std::vector<std::pair<workload::RequestId, std::int64_t>> one{{victim, it->second.ctx}};
  const lp::MinMaxProblem& p = build_problem(one, /*exclude=*/victim);
  std::vector<std::vector<int>> rounded;
  const std::vector<std::vector<int>>* heads = nullptr;
  if (cfg_.use_lp) {
    const lp::MinMaxSolution& relaxed = lp::solve_relaxed(p, lp_ws_);
    if (relaxed.ok()) {
      rounded = lp::round_to_groups(p, relaxed);
      heads = &rounded;
    }
  }
  if (heads == nullptr) heads = &lp::greedy_dispatch(p, lp_ws_);
  int total = 0;
  for (std::size_t i = 0; i < heads->size(); ++i) total += (*heads)[i][0];
  if (total != cfg_.heads) return rb;  // infeasible

  rb.to.local = (*heads)[0][0];
  rb.to.worker_heads.assign(cfg_.workers.size(), 0);
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) rb.to.worker_heads[w] = (*heads)[1 + w][0];

  // Moved heads: overlap-preserving reassignment means only net deltas move.
  double moved = std::max(0, rb.to.local - rb.from.local);
  int src = cfg_.stages.front().devices.front();
  int dst = src;
  double biggest_gain = -1;
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    int delta = rb.to.worker_heads[w] - rb.from.worker_heads[w];
    if (delta > 0) {
      moved += delta;
      if (delta > biggest_gain) {
        biggest_gain = delta;
        dst = cfg_.workers[w].device;
      }
    } else if (delta < 0 && -delta > biggest_gain) {
      src = cfg_.workers[w].device;
    }
  }
  rb.moved_heads = moved;
  rb.moved_bytes =
      static_cast<Bytes>(moved * static_cast<double>(it->second.ctx) * bph_ * cfg_.total_layers);
  rb.src_device = src;
  rb.dst_device = dst;
  rb.valid = moved > 0;
  return rb;
}

Rebalance Dispatcher::plan_rebalance() const {
  // Bottleneck logical device.
  std::size_t bottleneck = 0;
  Seconds worst = -1;
  for (std::size_t i = 0; i < num_logical(); ++i) {
    Seconds t = device_time(i);
    if (t > worst) {
      worst = t;
      bottleneck = i;
    }
  }
  // Dominant request on it: largest per-layer load contribution.
  workload::RequestId victim = -1;
  double biggest = -1;
  for (const auto& [id, st] : requests_) {
    int h = bottleneck == 0 ? st.counts.local : st.counts.worker_heads[bottleneck - 1];
    if (h <= 0) continue;
    double load = static_cast<double>(h) * st.ctx;
    if (load > biggest) {
      biggest = load;
      victim = id;
    }
  }
  if (victim < 0) return Rebalance{};
  return plan_single(victim);
}

Rebalance Dispatcher::plan_rescue(workload::RequestId victim) const { return plan_single(victim); }

void Dispatcher::apply(const Rebalance& rb) {
  if (!rb.valid) throw std::logic_error("Dispatcher::apply: invalid rebalance");
  auto it = requests_.find(rb.victim);
  if (it == requests_.end()) throw std::out_of_range("Dispatcher::apply: unknown victim");
  it->second.counts = rb.to;
  agg_dirty_ = true;
}

}  // namespace hetis::dispatch
