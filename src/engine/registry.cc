#include "engine/registry.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hetis::engine {

namespace detail {
// Link anchors defined next to each built-in engine's
// HETIS_REGISTER_ENGINE.  Calling them from global() forces the archive
// members holding the self-registering factories into any link that uses
// the registry (a plain data-symbol read would be dead-code-eliminated; an
// external call cannot be).
void hetis_engine_link_anchor();
void splitwise_engine_link_anchor();
void hexgen_engine_link_anchor();
}  // namespace detail

std::string ascii_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

Registry& Registry::global() {
  detail::hetis_engine_link_anchor();
  detail::splitwise_engine_link_anchor();
  detail::hexgen_engine_link_anchor();
  static Registry registry;
  return registry;
}

void Registry::add(const std::string& name, EngineFactory factory) {
  // Names flow into CSV rows unquoted; keep them identifier-shaped.
  const bool well_formed =
      !name.empty() && std::all_of(name.begin(), name.end(), [](unsigned char c) {
        return std::isalnum(c) || c == '_' || c == '-';
      });
  if (!well_formed) {
    throw std::invalid_argument("engine::Registry: engine name '" + name +
                                "' must be non-empty and use only [A-Za-z0-9_-]");
  }
  auto [it, inserted] = factories_.emplace(ascii_lower(name), std::move(factory));
  if (!inserted) {
    throw std::logic_error("engine::Registry: duplicate engine name '" + name + "'");
  }
}

std::unique_ptr<Engine> Registry::make(const std::string& name, const hw::Cluster& cluster,
                                       const model::ModelSpec& model,
                                       const EngineOptions& opts) const {
  auto it = factories_.find(ascii_lower(name));
  if (it == factories_.end()) {
    std::ostringstream oss;
    oss << "engine::make: unknown engine '" << name << "'; known engines:";
    for (const auto& [known, factory] : factories_) oss << " '" << known << "'";
    throw std::invalid_argument(oss.str());
  }
  return it->second(cluster, model, opts);
}

bool Registry::contains(const std::string& name) const {
  return factories_.count(ascii_lower(name)) > 0;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::unique_ptr<Engine> make(const std::string& name, const hw::Cluster& cluster,
                             const model::ModelSpec& model, const EngineOptions& opts) {
  return Registry::global().make(name, cluster, model, opts);
}

EngineRegistrar::EngineRegistrar(const char* name, EngineFactory factory) {
  Registry::global().add(name, std::move(factory));
}

}  // namespace hetis::engine
