#include "engine/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace hetis::engine {
namespace {

// Ids at or above this never enter the dense slot index (a hand-built test
// using id 10^9 must not allocate a 10^9-entry table); they resolve through
// binary search over the sorted record vector instead.
constexpr workload::RequestId kDenseLimit = workload::RequestId{1} << 24;

}  // namespace

void MetricsCollector::reserve(std::size_t n) {
  records_.reserve(n);
  slots_.reserve(n);
}

void MetricsCollector::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  // The hot-path forwards go through the base-class view; upcasting here
  // (not in the header) keeps metrics.h free of the telemetry headers.
  telemetry_sink_ = telemetry;
}

void MetricsCollector::index_slot(workload::RequestId id, std::size_t slot) {
  if (id < 0 || id >= kDenseLimit) return;
  const auto u = static_cast<std::size_t>(id);
  if (u >= slots_.size()) slots_.resize(u + 1, -1);
  slots_[u] = static_cast<std::int32_t>(slot);
}

const RequestRecord* MetricsCollector::find(workload::RequestId id) const {
  if (id >= 0 && static_cast<std::size_t>(id) < slots_.size()) {
    const std::int32_t s = slots_[static_cast<std::size_t>(id)];
    return s >= 0 ? &records_[static_cast<std::size_t>(s)] : nullptr;
  }
  auto it = std::lower_bound(
      records_.begin(), records_.end(), id,
      [](const RequestRecord& rec, workload::RequestId v) { return rec.id < v; });
  if (it != records_.end() && it->id == id) return &*it;
  return nullptr;
}

RequestRecord* MetricsCollector::find(workload::RequestId id) {
  return const_cast<RequestRecord*>(
      static_cast<const MetricsCollector*>(this)->find(id));
}

const RequestRecord& MetricsCollector::record(workload::RequestId id) const {
  const RequestRecord* rec = find(id);
  if (rec == nullptr) throw std::out_of_range("MetricsCollector: unknown request");
  return *rec;
}

void MetricsCollector::on_arrival(const workload::Request& r) {
  RequestRecord rec;
  rec.id = r.id;
  rec.arrival = r.arrival;
  rec.prompt_len = r.prompt_len;
  rec.output_len = r.output_len;
  rec.tenant = r.tenant;
  if (records_.empty() || r.id > records_.back().id) {
    // Trace ids ascend in arrival order, so this is the steady-state path.
    records_.push_back(rec);
    index_slot(r.id, records_.size() - 1);
  } else {
    auto it = std::lower_bound(
        records_.begin(), records_.end(), r.id,
        [](const RequestRecord& a, workload::RequestId v) { return a.id < v; });
    if (it != records_.end() && it->id == r.id) {
      throw std::logic_error("MetricsCollector: duplicate arrival");
    }
    const std::size_t pos = static_cast<std::size_t>(it - records_.begin());
    records_.insert(it, rec);
    for (std::size_t i = pos; i < records_.size(); ++i) index_slot(records_[i].id, i);
  }
  if (observer_) observer_->on_arrival(r);
  if (telemetry_sink_) telemetry_sink_->on_arrival(r);
}

void MetricsCollector::on_first_token(workload::RequestId id, Seconds t) {
  RequestRecord* rec = find(id);
  if (rec == nullptr) throw std::out_of_range("MetricsCollector: unknown request");
  // A preempted-and-recomputed request keeps its original first-token time,
  // and the observer sees exactly one prefill_done per request.  Telemetry
  // is told about EVERY completion -- a re-prefill closes a span too.
  if (rec->first_token < 0) {
    rec->first_token = t;
    if (observer_) observer_->on_prefill_done(id, t);
  }
  if (telemetry_sink_) telemetry_sink_->on_prefill_done(id, t);
}

void MetricsCollector::on_finish(workload::RequestId id, Seconds t) {
  RequestRecord* rec = find(id);
  if (rec == nullptr) throw std::out_of_range("MetricsCollector: unknown request");
  if (rec->finish < 0) ++finished_;
  rec->finish = t;
  if (observer_) observer_->on_finish(id, t);
  if (telemetry_sink_) telemetry_sink_->on_finish(id, t);
}

void MetricsCollector::on_preemption(workload::RequestId id, Seconds t) {
  RequestRecord* rec = find(id);
  if (rec == nullptr) throw std::out_of_range("MetricsCollector: unknown request");
  ++rec->preemptions;
  ++total_preemptions_;
  if (observer_) observer_->on_preempt(id, t);
  if (telemetry_sink_) telemetry_sink_->on_preempt(id, t);
}

void MetricsCollector::add_decode_module_sample(Seconds mlp_time, Seconds attn_time) {
  mlp_module_.add(mlp_time);
  attn_module_.add(attn_time);
}

Summary MetricsCollector::norm_latency() const {
  Summary s;
  for (const RequestRecord& rec : records_) {
    if (rec.finished()) s.add(rec.norm_latency());
  }
  return s;
}

Summary MetricsCollector::ttft() const {
  Summary s;
  for (const RequestRecord& rec : records_) {
    if (rec.first_token >= 0) s.add(rec.ttft());
  }
  return s;
}

Summary MetricsCollector::tpot() const {
  Summary s;
  for (const RequestRecord& rec : records_) {
    if (rec.finished() && rec.output_len > 1) s.add(rec.tpot());
  }
  return s;
}

std::string MetricsCollector::summary_string() const {
  std::ostringstream oss;
  oss << "arrived=" << arrived() << " finished=" << finished()
      << " norm_latency(mean)=" << norm_latency().mean() << "s/tok"
      << " ttft(p95)=" << ttft().p95() << "s tpot(p95)=" << tpot().p95() << "s"
      << " preemptions=" << total_preemptions();
  return oss.str();
}

}  // namespace hetis::engine
