#include "engine/metrics.h"

#include <sstream>
#include <stdexcept>

namespace hetis::engine {

void MetricsCollector::on_arrival(const workload::Request& r) {
  RequestRecord rec;
  rec.id = r.id;
  rec.arrival = r.arrival;
  rec.prompt_len = r.prompt_len;
  rec.output_len = r.output_len;
  rec.tenant = r.tenant;
  auto [it, inserted] = records_.emplace(r.id, rec);
  if (!inserted) throw std::logic_error("MetricsCollector: duplicate arrival");
  if (observer_) observer_->on_arrival(r);
}

void MetricsCollector::on_first_token(workload::RequestId id, Seconds t) {
  auto it = records_.find(id);
  if (it == records_.end()) throw std::out_of_range("MetricsCollector: unknown request");
  // A preempted-and-recomputed request keeps its original first-token time,
  // and the observer sees exactly one prefill_done per request.
  if (it->second.first_token < 0) {
    it->second.first_token = t;
    if (observer_) observer_->on_prefill_done(id, t);
  }
}

void MetricsCollector::on_finish(workload::RequestId id, Seconds t) {
  auto it = records_.find(id);
  if (it == records_.end()) throw std::out_of_range("MetricsCollector: unknown request");
  it->second.finish = t;
  if (observer_) observer_->on_finish(id, t);
}

void MetricsCollector::on_preemption(workload::RequestId id, Seconds t) {
  auto it = records_.find(id);
  if (it == records_.end()) throw std::out_of_range("MetricsCollector: unknown request");
  ++it->second.preemptions;
  if (observer_) observer_->on_preempt(id, t);
}

void MetricsCollector::add_decode_module_sample(Seconds mlp_time, Seconds attn_time) {
  mlp_module_.add(mlp_time);
  attn_module_.add(attn_time);
}

std::size_t MetricsCollector::finished() const {
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.finished()) ++n;
  }
  return n;
}

Summary MetricsCollector::norm_latency() const {
  Summary s;
  for (const auto& [id, rec] : records_) {
    if (rec.finished()) s.add(rec.norm_latency());
  }
  return s;
}

Summary MetricsCollector::ttft() const {
  Summary s;
  for (const auto& [id, rec] : records_) {
    if (rec.first_token >= 0) s.add(rec.ttft());
  }
  return s;
}

Summary MetricsCollector::tpot() const {
  Summary s;
  for (const auto& [id, rec] : records_) {
    if (rec.finished() && rec.output_len > 1) s.add(rec.tpot());
  }
  return s;
}

int MetricsCollector::total_preemptions() const {
  int n = 0;
  for (const auto& [id, rec] : records_) n += rec.preemptions;
  return n;
}

std::string MetricsCollector::summary_string() const {
  std::ostringstream oss;
  oss << "arrived=" << arrived() << " finished=" << finished()
      << " norm_latency(mean)=" << norm_latency().mean() << "s/tok"
      << " ttft(p95)=" << ttft().p95() << "s tpot(p95)=" << tpot().p95() << "s"
      << " preemptions=" << total_preemptions();
  return oss.str();
}

}  // namespace hetis::engine
