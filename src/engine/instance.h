// PipelineInstance: the shared serving-instance implementation used by the
// static-parallelism baselines (HexGen, and both pools of Splitwise).
//
// Semantics:
//  * continuous batching: waiting queue + running batch; prefill-priority
//    iterations with a token budget (vLLM default policy).
//  * memory: per-stage KV accounting.  Stage k holds kv_per_token * layers_k
//    bytes per cached token of EVERY running request (token-wise, all-head
//    blocks, like vLLM).  Admission requires every stage to fit the prompt.
//  * iterations are serialized; iteration latency is the sum of stage
//    latencies (single batch in flight -- the standard PP decode model,
//    also what HexGen's cost model assumes).
//  * on out-of-memory during decode: LIFO recompute preemption (vLLM
//    §4.5): the latest-arrived running request is dropped back to the
//    waiting queue and later re-prefills from scratch.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "engine/exec.h"
#include "engine/metrics.h"
#include "parallel/plan.h"
#include "sim/simulation.h"
#include "workload/request.h"

namespace hetis::engine {

struct LiveRequest {
  workload::Request req;
  std::int64_t generated = 0;
  bool prefilled = false;

  std::int64_t context() const { return req.prompt_len + generated; }
  bool done() const { return generated >= req.output_len; }
};

struct InstanceOptions {
  std::int64_t max_prefill_tokens = 8192;  // prefill-iteration token budget
  std::size_t max_batch = 256;             // decode batch cap
  bool decode_only = false;                // Splitwise decode pool: requests
                                           // arrive pre-filled
  bool prefill_only = false;               // Splitwise prefill pool
  bool defer_first_token = false;          // Splitwise: the first token is
                                           // only emitted decode-side, after
                                           // the KV migration lands
};

/// Inserts `lr` into an admission queue honoring per-tenant priorities
/// (higher first, id order within a class).  With empty `priorities` this
/// is plain FCFS -- push_back, or push_front when `requeue_front`
/// (preemption retry) -- byte-identical to the historical behavior.
void priority_enqueue(std::deque<LiveRequest>& queue, LiveRequest lr,
                      const std::vector<int>& priorities, bool requeue_front);

/// The priority of `lr` under `priorities` (0 for unknown tenants).
int tenant_priority(const std::vector<int>& priorities, const LiveRequest& lr);

/// Live state drained out of a retiring instance when the control plane
/// re-deploys an engine.  `fresh` requests never completed prefill here
/// (still waiting, or mid-prefill -- returned reset to generated = 0);
/// `live` requests are prefilled and carry their decode progress.  Both
/// are sorted by request id (arrival order).
struct DrainedRequests {
  std::vector<LiveRequest> fresh;
  std::vector<LiveRequest> live;
};

class PipelineInstance {
 public:
  /// `on_prefill_done`: Splitwise hook -- called instead of joining the
  /// local running batch when prefill_only is set.
  using PrefillHandoff = std::function<void(sim::Simulation&, const LiveRequest&)>;

  PipelineInstance(const ExecModel& exec, parallel::InstanceConfig cfg,
                   MetricsCollector& metrics, InstanceOptions opts, int id);

  /// Enqueues a fresh request (will be prefilled here unless decode_only).
  void submit(sim::Simulation& sim, const workload::Request& r);

  /// Splitwise: enqueues an already-prefilled request with `context` cached
  /// tokens to decode here.  Returns false if the prompt can never fit.
  bool submit_prefilled(sim::Simulation& sim, const LiveRequest& lr);

  /// Splitwise migration protocol: the engine reserves space in the decode
  /// pool when a migration STARTS (so concurrent decode growth cannot
  /// steal it), then converts the reservation when the transfer lands.
  bool reserve_incoming(std::int64_t tokens);
  void submit_reserved(sim::Simulation& sim, const LiveRequest& lr);

  /// True if the decode pool currently has room for a request of `tokens`
  /// cached tokens (prompt + margin).  Splitwise uses this to gate
  /// migrations.
  bool has_room(std::int64_t tokens) const;

  void set_prefill_handoff(PrefillHandoff cb) { handoff_ = std::move(cb); }

  /// Installs per-tenant admission priorities (see priority_enqueue).
  /// Call before the first submit; empty keeps strict FCFS.
  void set_tenant_priorities(std::vector<int> priorities) {
    priorities_ = std::move(priorities);
  }

  /// Retires this instance for elastic reconfiguration: drains every live
  /// request out and turns all still-scheduled simulation events into
  /// no-ops (the engine keeps the retired instance alive until the run
  /// ends, so pending callbacks stay safe).  Idempotent only in the sense
  /// that a second call returns nothing.
  DrainedRequests retire();

  /// Splitwise: frees the prompt KV a handed-off request still occupies in
  /// the prefill pool (call when its migration to the decode pool ends).
  void release_prefilled(const LiveRequest& lr);

  bool idle() const { return inflight_ == 0 && waiting_.empty() && running_.empty(); }
  std::size_t running_count() const { return running_.size(); }
  std::size_t waiting_count() const { return waiting_.size(); }

  /// Total KV budget across stages (bytes).
  Bytes kv_capacity() const;
  /// Usable KV capacity: bounded by the tightest stage relative to its
  /// share of per-token bytes (a parameter-split deployment cannot fill
  /// other stages once one is exhausted -- the paper's Fig. 1b).
  Bytes usable_kv_capacity() const;
  Bytes kv_used() const;
  /// Used fraction of the tightest stage.
  double fill_fraction() const;

  const parallel::InstanceConfig& config() const { return cfg_; }

 private:
  // Pipelined issue model: consecutive iterations overlap across pipeline
  // stages (issue interval = slowest stage), except that a decode
  // iteration depends on the previous decode's state and therefore
  // serializes behind it.  Single-stage instances degenerate to strict
  // serialization.
  void kick(sim::Simulation& sim);     // alias of pump
  void pump(sim::Simulation& sim);     // decide + issue iterations
  void finish_prefill_iteration(sim::Simulation& sim, std::vector<LiveRequest> batch);
  void finish_decode_iteration(sim::Simulation& sim);

  bool admit(const LiveRequest& lr);              // reserve prompt memory
  void reserve_tokens(std::int64_t tokens);       // all stages
  void release_tokens(std::int64_t tokens);
  bool can_reserve(std::int64_t tokens) const;
  void preempt_lifo(sim::Simulation& sim);

  const ExecModel* exec_;
  parallel::InstanceConfig cfg_;
  MetricsCollector* metrics_;
  InstanceOptions opts_;
  int id_;

  std::deque<LiveRequest> waiting_;
  std::vector<LiveRequest> running_;
  // Requests inside an in-flight prefill iteration: without this registry a
  // retire() could not hand them to the new deployment (the batch itself
  // lives in the scheduled completion lambda).  Unordered (retire() sorts
  // its output); bounded by max_batch x pipeline depth, so linear removal
  // beats node-based storage.
  std::vector<LiveRequest> prefilling_;
  std::vector<int> priorities_;    // per-tenant admission priorities
  bool retired_ = false;           // pending events become no-ops
  int inflight_ = 0;               // iterations currently in the pipeline
  bool decode_inflight_ = false;   // at most one decode at a time
  Seconds head_free_ = 0;          // when the first stage frees up
  Seconds decode_done_ = 0;        // completion of the last decode

  // Per-stage memory accounting.
  std::vector<Bytes> stage_cap_;
  std::vector<Bytes> stage_used_;
  std::vector<Bytes> per_token_;  // kv bytes per cached token, per stage

  // Hot-path scratch: lifecycle events buffer in batch_ and flush before
  // each event handler returns; the vectors below recycle their capacity
  // across iterations so the steady state allocates nothing.
  MetricsBatch batch_;
  std::vector<std::int64_t> scratch_lens_;
  IterationTime scratch_it_;
  std::vector<std::vector<LiveRequest>> batch_pool_;

  PrefillHandoff handoff_;
};

/// Parameter bytes resident on each device of a stage (layer shard / TP +
/// embedding share on the first and last pipeline stages).
Bytes stage_param_bytes_per_device(const model::ModelSpec& m, const parallel::StageConfig& s,
                                   bool first, bool last);

}  // namespace hetis::engine
