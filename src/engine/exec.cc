#include "engine/exec.h"

#include <algorithm>
#include <stdexcept>

namespace hetis::engine {

Seconds IterationTime::latency() const {
  Seconds t = 0;
  for (const auto& s : stages) t += s.total();
  return t;
}

Seconds IterationTime::interval() const {
  Seconds worst = 0;
  for (const auto& s : stages) worst = std::max(worst, s.total());
  return worst;
}

Seconds IterationTime::mlp_module_latency() const {
  Seconds worst = 0;
  for (const auto& s : stages) worst = std::max(worst, s.dense);
  return worst * static_cast<double>(stages.size());
}

Seconds IterationTime::attn_module_latency() const {
  Seconds worst = 0;
  for (const auto& s : stages) worst = std::max(worst, s.attention);
  return worst * static_cast<double>(stages.size());
}

double ExecModel::stage_speed(const parallel::StageConfig& stage) const {
  if (!cluster_->degraded()) return 1.0;
  double speed = 1.0;
  for (int dev : stage.devices) speed = std::min(speed, cluster_->device_speed(dev));
  return speed;
}

Seconds ExecModel::stage_dense_time(const parallel::StageConfig& stage,
                                    std::int64_t tokens) const {
  if (stage.devices.empty() || stage.layers == 0 || tokens <= 0) return 0.0;
  if (!cache_enabled_ || stage.devices.size() > kMaxCachedStageWidth) {
    return stage_dense_time_uncached(stage, tokens);
  }
  refresh_cache_epoch();
  DenseStageKey key;
  key.tokens = tokens;
  key.layers = stage.layers;
  key.ndev = static_cast<std::int32_t>(stage.devices.size());
  for (std::size_t i = 0; i < stage.devices.size(); ++i) {
    key.devices[i] = stage.devices[i];
  }
  if (const Seconds* hit = dense_cache_.find(key)) return *hit;
  const Seconds t = stage_dense_time_uncached(stage, tokens);
  dense_cache_.insert(key, t);
  return t;
}

Seconds ExecModel::stage_dense_time_uncached(const parallel::StageConfig& stage,
                                             std::int64_t tokens) const {
  const hw::GpuSpec& gpu = cluster_->device(stage.devices.front()).spec();
  Seconds per_layer = kernel_.dense_layer_time(gpu, *model_, tokens, stage.tp());
  Seconds collectives = 0;
  if (stage.tp() > 1) {
    Bytes hidden_bytes = tokens * model_->hidden * model_->dtype_bytes;
    // Two all-reduces per layer (post-attention projection, post-MLP).
    collectives = 2.0 * comm_.allreduce(stage.devices, hidden_bytes);
  }
  Seconds t = (per_layer + collectives) * stage.layers;
  const double speed = stage_speed(stage);
  // Exact no-op when healthy: x / 1.0 == x bit-for-bit, but the branch
  // documents (and the golden tests enforce) the byte-identity contract.
  if (speed != 1.0) t /= speed;
  return t;
}

Seconds ExecModel::stage_attention_decode(const parallel::StageConfig& stage,
                                          const std::vector<std::int64_t>& ctxs,
                                          int heads) const {
  if (stage.devices.empty() || stage.layers == 0 || ctxs.empty()) return 0.0;
  const hw::GpuSpec& gpu = cluster_->device(stage.devices.front()).spec();
  int heads_per_dev = std::max(1, heads / stage.tp());
  Seconds per_layer =
      cache_enabled_
          ? kernel_.decode_attention_time(gpu, *model_, ctxs, heads_per_dev, &work_cache_)
          : kernel_.decode_attention_time(gpu, *model_, ctxs, heads_per_dev);
  Seconds t = per_layer * stage.layers;
  const double speed = stage_speed(stage);
  if (speed != 1.0) t /= speed;
  return t;
}

Seconds ExecModel::stage_attention_prefill(const parallel::StageConfig& stage,
                                           const std::vector<std::int64_t>& lens,
                                           int heads) const {
  if (stage.devices.empty() || stage.layers == 0 || lens.empty()) return 0.0;
  const hw::GpuSpec& gpu = cluster_->device(stage.devices.front()).spec();
  int heads_per_dev = std::max(1, heads / stage.tp());
  Seconds per_layer = kernel_.prefill_attention_time(gpu, *model_, lens, heads_per_dev);
  Seconds t = per_layer * stage.layers;
  const double speed = stage_speed(stage);
  if (speed != 1.0) t /= speed;
  return t;
}

Seconds ExecModel::interstage_comm(const parallel::StageConfig& from,
                                   const parallel::StageConfig& to,
                                   std::int64_t tokens) const {
  if (from.devices.empty() || to.devices.empty()) return 0.0;
  Bytes hidden_bytes = tokens * model_->hidden * model_->dtype_bytes;
  return comm_.p2p(from.devices.front(), to.devices.front(), hidden_bytes);
}

IterationTime ExecModel::iteration_time(const parallel::InstanceConfig& inst,
                                        const std::vector<std::int64_t>& lens,
                                        bool prefill) const {
  IterationTime out;
  iteration_time(inst, lens, prefill, out);
  return out;
}

void ExecModel::iteration_time(const parallel::InstanceConfig& inst,
                               const std::vector<std::int64_t>& lens, bool prefill,
                               IterationTime& out) const {
  std::int64_t tokens = 0;
  if (prefill) {
    for (std::int64_t l : lens) tokens += l;
  } else {
    tokens = static_cast<std::int64_t>(lens.size());
  }
  out.stages.resize(inst.stages.size());
  for (std::size_t k = 0; k < inst.stages.size(); ++k) {
    const auto& stage = inst.stages[k];
    StageTime& st = out.stages[k];
    st.dense = stage_dense_time(stage, tokens);
    st.attention = prefill ? stage_attention_prefill(stage, lens, model_->heads)
                           : stage_attention_decode(stage, lens, model_->heads);
    // Assigned unconditionally: a reused `out` carries the previous call's
    // value in the last stage's slot otherwise.
    st.comm_out =
        k + 1 < inst.stages.size() ? interstage_comm(stage, inst.stages[k + 1], tokens) : 0.0;
  }
}

Bytes kv_budget(const hw::GpuSpec& gpu, Bytes param_bytes_on_device) {
  // Reserve ~6% of device memory for activations/workspace plus a 1 GiB
  // runtime footprint (CUDA context, NCCL buffers).
  Bytes reserve = static_cast<Bytes>(0.06 * static_cast<double>(gpu.memory)) + 1 * GiB;
  Bytes budget = gpu.memory - param_bytes_on_device - reserve;
  return std::max<Bytes>(0, budget);
}

}  // namespace hetis::engine
