// Serving-engine interface and the trace runner.
//
// An Engine owns serving instances and self-schedules iteration events on
// the simulation; the runner feeds it a request trace and collects the
// final metrics.  Splitwise, HexGen and Hetis all implement this interface
// so every experiment harness treats them uniformly.  Construct engines by
// name through engine/registry.h; configure a run through RunOptions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/metrics.h"
#include "sim/simulation.h"
#include "workload/request.h"

namespace hetis::telemetry {
class Telemetry;
}

namespace hetis::engine {

/// Hot-path accounting counters, cumulative over an engine's lifetime.
/// `lp_solves` counts memoized dispatch-solver entry points taken (warm or
/// cold), `lp_warm_hits` the subset served from the exact-match workspace
/// cache, `costmodel_hits` the cost-model memo hits (dense-stage +
/// decode-work tables).  Purely observational: the cached results are
/// bit-identical to recomputation, so these never change a decision.
struct PerfCounters {
  std::uint64_t lp_solves = 0;
  std::uint64_t lp_warm_hits = 0;
  std::uint64_t costmodel_hits = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Called once before any arrival (engines may schedule periodic events).
  virtual void start(sim::Simulation& sim) { (void)sim; }

  /// Called at each request's arrival time.
  virtual void submit(sim::Simulation& sim, const workload::Request& r) = 0;

  /// Total KV-cache bytes the deployment can actually use (Fig. 11).  For
  /// parameter-split systems this is limited by the first stage to fill up;
  /// see each engine's implementation.
  virtual Bytes usable_kv_capacity() const = 0;

  /// Fraction of the deployment's KV budget currently in use (worst
  /// instance) -- the control plane's memory-pressure signal.  Engines that
  /// do not track live usage may report 0.
  virtual double kv_fill_fraction() const { return 0.0; }

  /// Cumulative hot-path cache counters (see PerfCounters).  Engines that
  /// do not memoize report all-zero.
  virtual PerfCounters perf_counters() const { return {}; }

  MetricsCollector& metrics() { return metrics_; }
  const MetricsCollector& metrics() const { return metrics_; }

 protected:
  MetricsCollector metrics_;
};

/// Per-request latency targets (§7-style SLOs).  A target <= 0 disables
/// that term.  When set on RunOptions, the report gains attainment
/// fractions and goodput -- the headline metric of phase-split serving
/// evaluations (Splitwise, Helix).
struct SloSpec {
  Seconds ttft = 0;  // time-to-first-token target, per request
  Seconds tpot = 0;  // time-per-output-token target, per request
};

/// Configuration of one run_trace call.
struct RunOptions {
  RunOptions() = default;
  explicit RunOptions(Seconds drain) : drain_timeout(drain) {}

  /// Seconds to keep simulating after the last arrival.  When the engine
  /// has not drained by then the report sets `drain_timeout_hit` instead
  /// of silently truncating percentiles.
  Seconds drain_timeout = 600.0;
  /// Requests arriving before `warmup` seconds are served but excluded
  /// from latency percentiles, SLO attainment and goodput.
  Seconds warmup = 0.0;
  /// When set, the report includes SLO attainment and goodput.
  std::optional<SloSpec> slo;
  /// Optional per-request lifecycle stream (not owned; may be nullptr).
  RunObserver* observer = nullptr;
  /// Optional telemetry session (not owned; may be nullptr).  run_trace
  /// installs it as a second lifecycle sink beside `observer` and attaches
  /// its sampler to the run's simulation; export (write_artifacts) is the
  /// caller's job after the run returns.  Composes freely with `observer`
  /// and with a control plane installed through `on_start`.
  telemetry::Telemetry* telemetry = nullptr;
  /// Called once by run_trace after Engine::start and observer installation
  /// but before the first arrival -- the hook the elastic control plane
  /// (control::Controller::starter) uses to schedule churn events and
  /// policy ticks on the run's private simulation.
  std::function<void(sim::Simulation&, Engine&)> on_start;
};

struct RunReport {
  std::string engine;
  std::size_t arrived = 0;
  std::size_t finished = 0;
  std::size_t measured = 0;       // finished requests outside the warmup window
  double norm_latency_mean = 0;   // s/token
  double norm_latency_p95 = 0;
  double ttft_p95 = 0;
  double tpot_p95 = 0;
  double mlp_module_p95 = 0;
  double attn_module_p95 = 0;
  double throughput = 0;          // finished requests / makespan
  int preemptions = 0;
  Bytes usable_kv = 0;
  Seconds makespan = 0;
  /// True when the run was cut off by RunOptions::drain_timeout with
  /// requests still in flight -- percentiles then under-count the tail.
  bool drain_timeout_hit = false;

  // SLO block -- populated only when RunOptions::slo was set.  Attainment
  // fractions are over every post-warmup ARRIVAL: a request that never
  // finished counts as a miss, so truncated runs cannot grade only the
  // survivors.  Goodput divides by the measured span (first post-warmup
  // arrival to last post-warmup completion), the same population.
  bool slo_set = false;
  Seconds slo_ttft = 0;           // echoed targets
  Seconds slo_tpot = 0;
  double ttft_attainment = 0;     // fraction of post-warmup arrivals meeting TTFT
  double tpot_attainment = 0;
  double slo_attainment = 0;      // fraction meeting BOTH targets
  double goodput = 0;             // SLO-attaining requests / measured span

  /// Human-readable warning ("" when clean); non-empty iff drain_timeout_hit.
  std::string warning() const;

  // Stable flat serialization, shared by the harness sweep runner.  The
  // column order is fixed: appending columns is allowed, reordering is not.
  static std::string csv_header();
  std::string to_csv_row() const;
  std::string to_json() const;
  /// Inverse of to_csv_row (exact for doubles; used by the round-trip test
  /// and by scripts that re-load sweep CSVs).
  static RunReport from_csv_row(const std::string& row);
};

/// Feeds `trace` into the engine on a fresh simulation; runs until the
/// engine drains or `opts.drain_timeout` seconds pass after the last
/// arrival.  Installs `opts.observer` on the engine's metrics for the
/// duration of the run.
RunReport run_trace(Engine& engine, const std::vector<workload::Request>& trace,
                    const RunOptions& opts = RunOptions());

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).  Shared by RunReport::to_json and the
/// harness row writers.
std::string json_escape(const std::string& s);

// CSV helpers shared by RunReport and the harness sweep rows -- one
// implementation so the two serializations can never drift apart.

/// Formats a double as %.17g, which round-trips every finite value exactly.
std::string csv_double(double v);
/// Neutralizes the two characters that would break row framing (',' and
/// '\n' become spaces; rows are written unquoted).
std::string csv_field(std::string s);
/// Splits one row on bare commas (fields were csv_field-sanitized at write
/// time, so no quoting rules apply); a trailing comma yields an empty cell.
std::vector<std::string> split_csv_row(const std::string& row);

// run_trace's per-request SLO grading predicates, exported so every other
// grader (harness cost columns, per-tenant summaries) shares the exact
// conventions: targets <= 0 are vacuously met, TTFT needs a prefill
// completion, single-token outputs meet TPOT trivially.

bool meets_ttft_slo(const RequestRecord& rec, const SloSpec& slo);
bool meets_tpot_slo(const RequestRecord& rec, const SloSpec& slo);
/// Both targets at once -- the "SLO-attaining request" predicate behind
/// slo_attainment, goodput and device_seconds_per_slo_request.
bool meets_slo(const RequestRecord& rec, const SloSpec& slo);

}  // namespace hetis::engine
