// Serving-engine interface and the trace runner.
//
// An Engine owns serving instances and self-schedules iteration events on
// the simulation; the runner feeds it a request trace and collects the
// final metrics.  Splitwise, HexGen and Hetis all implement this interface
// so every experiment harness treats them uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/metrics.h"
#include "sim/simulation.h"
#include "workload/request.h"

namespace hetis::engine {

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Called once before any arrival (engines may schedule periodic events).
  virtual void start(sim::Simulation& sim) { (void)sim; }

  /// Called at each request's arrival time.
  virtual void submit(sim::Simulation& sim, const workload::Request& r) = 0;

  /// Total KV-cache bytes the deployment can actually use (Fig. 11).  For
  /// parameter-split systems this is limited by the first stage to fill up;
  /// see each engine's implementation.
  virtual Bytes usable_kv_capacity() const = 0;

  MetricsCollector& metrics() { return metrics_; }
  const MetricsCollector& metrics() const { return metrics_; }

 protected:
  MetricsCollector metrics_;
};

struct RunReport {
  std::string engine;
  std::size_t arrived = 0;
  std::size_t finished = 0;
  double norm_latency_mean = 0;   // s/token
  double norm_latency_p95 = 0;
  double ttft_p95 = 0;
  double tpot_p95 = 0;
  double mlp_module_p95 = 0;
  double attn_module_p95 = 0;
  double throughput = 0;          // finished requests / makespan
  int preemptions = 0;
  Bytes usable_kv = 0;
  Seconds makespan = 0;
};

/// Feeds `trace` into the engine on a fresh simulation; runs until the
/// engine drains or `drain_timeout` seconds pass after the last arrival.
RunReport run_trace(Engine& engine, const std::vector<workload::Request>& trace,
                    Seconds drain_timeout = 600.0);

}  // namespace hetis::engine
