// Iteration-time computation shared by all serving engines.
//
// A serving instance executes iterations (continuous batching); these
// helpers turn a batch description plus a pipeline configuration into
// stage-by-stage latencies using the roofline kernel model and the
// alpha-beta communication model.
#pragma once

#include <cstdint>
#include <vector>

#include "costmodel/comm_model.h"
#include "costmodel/kernel_model.h"
#include "model/llm.h"
#include "parallel/plan.h"

namespace hetis::engine {

/// Per-stage timing breakdown of one iteration.
struct StageTime {
  Seconds dense = 0;      // QKV + OutProj + MLP (+ TP collectives)
  Seconds attention = 0;  // self-attention for the stage's layers
  Seconds comm_out = 0;   // hidden-state handoff to the next stage

  Seconds total() const { return dense + attention + comm_out; }
};

struct IterationTime {
  std::vector<StageTime> stages;

  /// End-to-end latency of the iteration through the pipeline.
  Seconds latency() const;
  /// Steady-state issue interval under pipelining (slowest stage).
  Seconds interval() const;
  /// Paper §7.3 module metric: max per-stage module time x #stages.
  Seconds mlp_module_latency() const;
  Seconds attn_module_latency() const;
};

class ExecModel {
 public:
  ExecModel(const hw::Cluster& cluster, const model::ModelSpec& model)
      : cluster_(&cluster), model_(&model), comm_(cluster) {}

  /// Dense time of `tokens` tokens through one stage (all its layers),
  /// including per-layer TP all-reduces (2 per layer: after attention
  /// projection and after MLP).
  Seconds stage_dense_time(const parallel::StageConfig& stage, std::int64_t tokens) const;

  /// The stage's effective speed under the cluster's degradation overlay:
  /// a TP group advances in lock-step, so the slowest member gates every
  /// collective and the whole stage runs at min(device_speed) of its
  /// members.  1.0 on healthy clusters (the common fast path).
  double stage_speed(const parallel::StageConfig& stage) const;

  /// Stage-local attention: each TP member computes heads/tp query heads
  /// for every sequence.  `ctxs` are per-sequence KV lengths.
  Seconds stage_attention_decode(const parallel::StageConfig& stage,
                                 const std::vector<std::int64_t>& ctxs, int heads) const;
  Seconds stage_attention_prefill(const parallel::StageConfig& stage,
                                  const std::vector<std::int64_t>& lens, int heads) const;

  /// Hidden-state transfer between consecutive stages for `tokens` tokens.
  Seconds interstage_comm(const parallel::StageConfig& from, const parallel::StageConfig& to,
                          std::int64_t tokens) const;

  /// Full iteration through an instance pipeline.  For decode pass the
  /// per-sequence context lengths; for prefill pass prompt lengths and set
  /// `prefill` true (tokens = sum of lens).
  IterationTime iteration_time(const parallel::InstanceConfig& inst,
                               const std::vector<std::int64_t>& lens, bool prefill) const;

  /// Allocation-free variant for the per-iteration hot path: fills `out`
  /// in place, reusing its stages capacity across calls.
  void iteration_time(const parallel::InstanceConfig& inst,
                      const std::vector<std::int64_t>& lens, bool prefill,
                      IterationTime& out) const;

  const costmodel::KernelModel& kernel() const { return kernel_; }
  const costmodel::CommModel& comm() const { return comm_; }
  const model::ModelSpec& model_spec() const { return *model_; }
  const hw::Cluster& cluster() const { return *cluster_; }

  /// Total cost-model memo hits (dense-stage table + decode-work table);
  /// feeds the `costmodel_hits` bench/telemetry counter.
  std::uint64_t cost_cache_hits() const {
    return dense_cache_.hits() + work_cache_.hits();
  }

  /// Differential-test hook: with caching off every query recomputes from
  /// scratch.  Results must be byte-identical either way (the caches store
  /// exact outputs of the same code paths); tests/test_hotpath_cache.cc
  /// flips this to prove it.  Toggling clears both tables.
  void set_cost_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    dense_cache_.clear();
    work_cache_.clear();
  }
  bool cost_cache_enabled() const { return cache_enabled_; }

 private:
  /// Dense-stage memo key: exact (device set, layers, tokens) tuple.
  /// Padding-free: 8 + 10 x 4 = 48 bytes.  Stages wider than
  /// kMaxCachedStageWidth devices bypass the cache (none of the shipped
  /// presets produce one, and correctness never depends on a hit).
  static constexpr std::size_t kMaxCachedStageWidth = 8;
  struct DenseStageKey {
    std::int64_t tokens = 0;
    std::int32_t layers = 0;
    std::int32_t ndev = 0;
    std::int32_t devices[kMaxCachedStageWidth] = {};
  };

  Seconds stage_dense_time_uncached(const parallel::StageConfig& stage,
                                    std::int64_t tokens) const;

  /// Drops dense-stage entries when the cluster's condition overlay moved
  /// (cached times embed device speeds and link scales).  The decode-work
  /// table is exempt: Work is model geometry, independent of hardware state.
  void refresh_cache_epoch() const {
    const std::uint64_t e = cluster_->condition_epoch();
    if (e != cache_epoch_) {
      dense_cache_.clear();
      cache_epoch_ = e;
    }
  }

  const hw::Cluster* cluster_;
  const model::ModelSpec* model_;
  costmodel::KernelModel kernel_;
  costmodel::CommModel comm_;
  bool cache_enabled_ = true;
  mutable std::uint64_t cache_epoch_ = 0;
  // 32k slots: the key space (distinct token counts x stage shapes) runs to
  // thousands of entries per run; the default 1024 thrashes.
  mutable costmodel::EvalCache<DenseStageKey, Seconds> dense_cache_{1 << 15};
  mutable costmodel::DecodeWorkCache work_cache_;
};

/// KV-cache budget of a device after reserving parameters + activations.
/// `param_bytes_on_device` is the model shard resident there.
Bytes kv_budget(const hw::GpuSpec& gpu, Bytes param_bytes_on_device);

}  // namespace hetis::engine
