// Serving metrics (paper §7: normalized latency, TTFT, TPOT, module-level
// latency, cache usage time series) and the per-request lifecycle observer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "workload/request.h"

namespace hetis::engine {

/// Streams per-request lifecycle events off the simulation clock while a
/// run is in flight -- the hook point for live dashboards and online
/// autoscaling.  Install one via RunOptions::observer; every engine routes
/// its lifecycle through the MetricsCollector, which forwards here.
///
/// Per request the event order is:
///   on_arrival <= on_prefill_done <= on_token* <= on_finish
/// with on_preempt possible after prefill; a preempted request re-prefills,
/// so on_token restarts but on_prefill_done fires only once (the TTFT
/// reference).  The prefill-produced first token is signaled by
/// on_prefill_done; on_token covers decode-produced tokens only.
/// on_arrival's Request carries the workload tenant index, so observers can
/// attribute the whole lifecycle per tenant (see harness::tenant_summaries).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  virtual void on_arrival(const workload::Request& r) { (void)r; }
  virtual void on_prefill_done(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  virtual void on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
    (void)id;
    (void)t;
    (void)generated;
  }
  virtual void on_finish(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  virtual void on_preempt(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
};

struct RequestRecord {
  workload::RequestId id = -1;
  Seconds arrival = 0;
  Seconds first_token = -1;  // prefill completion (TTFT reference)
  Seconds finish = -1;
  std::int64_t prompt_len = 0;
  std::int64_t output_len = 0;
  int tenant = 0;  // copied from the request; indexes the generating
                   // scenario's tenant list for per-tenant attribution
  int preemptions = 0;

  bool finished() const { return finish >= 0; }
  Seconds ttft() const { return first_token - arrival; }
  /// Time-per-output-token over the decode phase.
  Seconds tpot() const {
    if (output_len <= 1) return 0.0;
    return (finish - first_token) / static_cast<double>(output_len - 1);
  }
  /// The paper's normalized end-to-end latency (s/token).
  Seconds norm_latency() const {
    return (finish - arrival) / static_cast<double>(std::max<std::int64_t>(1, output_len));
  }
};

/// One sample of the Fig. 14 time series.
struct UsageSample {
  Seconds time = 0;
  int device = -1;
  double cache_used_fraction = 0;  // of the device's KV budget
  double heads = 0;                // query heads resident
};

class MetricsCollector {
 public:
  /// Installs (or clears, with nullptr) the lifecycle-event observer.
  /// run_trace manages this automatically from RunOptions::observer.
  void set_observer(RunObserver* observer) { observer_ = observer; }
  /// The currently installed observer (the control plane chains itself in
  /// front of it and forwards every event downstream).
  RunObserver* observer() const { return observer_; }

  void on_arrival(const workload::Request& r);
  void on_first_token(workload::RequestId id, Seconds t);
  /// One decode-produced token appended for `id`; `generated` is the
  /// request's output-token count afterwards.  Feeds the observer only.
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
    if (observer_) observer_->on_token(id, t, generated);
  }
  void on_finish(workload::RequestId id, Seconds t);
  void on_preemption(workload::RequestId id, Seconds t);

  /// Module-latency accounting (§7.3): per decode iteration, the max
  /// per-stage module time multiplied by the number of stages.
  void add_decode_module_sample(Seconds mlp_time, Seconds attn_time);

  void add_usage_sample(const UsageSample& s) { usage_.push_back(s); }

  // --- Aggregation ---
  std::size_t arrived() const { return records_.size(); }
  std::size_t finished() const;

  /// Normalized latency (s/token) over finished requests.
  Summary norm_latency() const;
  Summary ttft() const;
  Summary tpot() const;
  Summary mlp_module_time() const { return mlp_module_; }
  Summary attn_module_time() const { return attn_module_; }
  int total_preemptions() const;

  const std::vector<UsageSample>& usage_series() const { return usage_; }
  const std::map<workload::RequestId, RequestRecord>& records() const { return records_; }

  std::string summary_string() const;

 private:
  std::map<workload::RequestId, RequestRecord> records_;
  Summary mlp_module_;
  Summary attn_module_;
  std::vector<UsageSample> usage_;
  RunObserver* observer_ = nullptr;
};

}  // namespace hetis::engine
