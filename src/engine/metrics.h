// Serving metrics (paper §7: normalized latency, TTFT, TPOT, module-level
// latency, cache usage time series) and the per-request lifecycle observer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "workload/request.h"

namespace hetis::telemetry {
class Telemetry;
}

namespace hetis::engine {

/// One sample of the Fig. 14 time series.
struct UsageSample {
  Seconds time = 0;
  int device = -1;
  double cache_used_fraction = 0;  // of the device's KV budget
  double heads = 0;                // query heads resident
};

/// Streams per-request lifecycle events off the simulation clock while a
/// run is in flight -- the hook point for live dashboards and online
/// autoscaling.  Install one via RunOptions::observer; every engine routes
/// its lifecycle through the MetricsCollector, which forwards here.
///
/// Per request the event order is:
///   on_arrival <= on_prefill_start <= on_prefill_done <= on_token* <= on_finish
/// with on_preempt possible after prefill; a preempted request re-prefills,
/// so on_prefill_start/on_token restart but on_prefill_done fires only once
/// through this chain (the TTFT reference; a telemetry session installed
/// via MetricsCollector::set_telemetry sees every completion).  The
/// prefill-produced first token is signaled by on_prefill_done; on_token
/// covers decode-produced tokens only.
/// on_arrival's Request carries the workload tenant index, so observers can
/// attribute the whole lifecycle per tenant (see harness::tenant_summaries).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  virtual void on_arrival(const workload::Request& r) { (void)r; }
  /// A prefill batch picked up `id` (fires again on re-prefills after
  /// preemption; a span-tracing observer sees every attempt).
  virtual void on_prefill_start(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  virtual void on_prefill_done(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  virtual void on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
    (void)id;
    (void)t;
    (void)generated;
  }
  virtual void on_finish(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  virtual void on_preempt(workload::RequestId id, Seconds t) {
    (void)id;
    (void)t;
  }
  /// `id`'s KV cache is being hauled from `src_device` to `dst_device`;
  /// decode resumes on the destination at `ready`.
  virtual void on_migrate(workload::RequestId id, Seconds start, Seconds ready, int src_device,
                          int dst_device) {
    (void)id;
    (void)start;
    (void)ready;
    (void)src_device;
    (void)dst_device;
  }
  /// A periodic per-device occupancy sample (engines that record the
  /// Fig. 14 series forward each point here as well).
  virtual void on_usage(const UsageSample& s) { (void)s; }
};

struct RequestRecord {
  workload::RequestId id = -1;
  Seconds arrival = 0;
  Seconds first_token = -1;  // prefill completion (TTFT reference)
  Seconds finish = -1;
  std::int64_t prompt_len = 0;
  std::int64_t output_len = 0;
  int tenant = 0;  // copied from the request; indexes the generating
                   // scenario's tenant list for per-tenant attribution
  int preemptions = 0;

  bool finished() const { return finish >= 0; }
  Seconds ttft() const { return first_token - arrival; }
  /// Time-per-output-token over the decode phase.
  Seconds tpot() const {
    if (output_len <= 1) return 0.0;
    return (finish - first_token) / static_cast<double>(output_len - 1);
  }
  /// The paper's normalized end-to-end latency (s/token).
  Seconds norm_latency() const {
    return (finish - arrival) / static_cast<double>(std::max<std::int64_t>(1, output_len));
  }
};

/// Aggregates per-request lifecycle events into RequestRecords.
///
/// Storage is a flat vector kept sorted by id plus a dense id->slot index,
/// so the million-request hot path pays an O(1) array lookup per lifecycle
/// event instead of a node-based map find.  Trace ids arrive in ascending
/// order (workload/trace.h assigns 0..n-1 in arrival order), so the sorted
/// invariant is maintained by plain push_back; out-of-order ids (hand-built
/// tests) take a one-off O(n) insertion.  records() therefore iterates in
/// ascending-id order -- the same order the previous std::map storage
/// produced -- which keeps every floating-point aggregate byte-identical.
class MetricsCollector {
 public:
  /// Installs (or clears, with nullptr) the lifecycle-event observer.
  /// run_trace manages this automatically from RunOptions::observer.
  void set_observer(RunObserver* observer) { observer_ = observer; }
  /// The currently installed observer (the control plane chains itself in
  /// front of it and forwards every event downstream).
  RunObserver* observer() const { return observer_; }

  /// Installs (or clears) the telemetry session -- a second lifecycle sink
  /// NEXT TO the observer chain, so span tracing composes with an installed
  /// Controller without either knowing about the other.  run_trace manages
  /// this from RunOptions::telemetry.  Defined in metrics.cc: the typed
  /// pointer (Controller discovers the audit trail through it) and the
  /// RunObserver-shaped sink used on the hot path are set together.
  void set_telemetry(telemetry::Telemetry* telemetry);
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Pre-sizes the record table (run_trace calls this with the trace
  /// length so million-request replays never re-grow it).
  void reserve(std::size_t n);

  void on_arrival(const workload::Request& r);
  /// A prefill batch picked up `id`.  Feeds the observer/telemetry sinks
  /// only -- the record table keys TTFT off prefill completion.
  void on_prefill_start(workload::RequestId id, Seconds t) {
    if (observer_) observer_->on_prefill_start(id, t);
    if (telemetry_sink_) telemetry_sink_->on_prefill_start(id, t);
  }
  void on_first_token(workload::RequestId id, Seconds t);
  /// One decode-produced token appended for `id`; `generated` is the
  /// request's output-token count afterwards.  Feeds the observer and
  /// telemetry sinks only.
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
    if (observer_) observer_->on_token(id, t, generated);
    if (telemetry_sink_) telemetry_sink_->on_token(id, t, generated);
  }
  void on_finish(workload::RequestId id, Seconds t);
  void on_preemption(workload::RequestId id, Seconds t);
  /// KV migration for `id` from `src_device` to `dst_device`, ready at
  /// `ready`.  Feeds the observer/telemetry sinks only.
  void on_migrate(workload::RequestId id, Seconds start, Seconds ready, int src_device,
                  int dst_device) {
    if (observer_) observer_->on_migrate(id, start, ready, src_device, dst_device);
    if (telemetry_sink_) telemetry_sink_->on_migrate(id, start, ready, src_device, dst_device);
  }

  /// Module-latency accounting (§7.3): per decode iteration, the max
  /// per-stage module time multiplied by the number of stages.
  void add_decode_module_sample(Seconds mlp_time, Seconds attn_time);

  void add_usage_sample(const UsageSample& s) {
    usage_.push_back(s);
    if (observer_) observer_->on_usage(s);
    if (telemetry_sink_) telemetry_sink_->on_usage(s);
  }

  // --- Aggregation ---
  std::size_t arrived() const { return records_.size(); }
  std::size_t finished() const { return finished_; }

  /// Normalized latency (s/token) over finished requests.
  Summary norm_latency() const;
  Summary ttft() const;
  Summary tpot() const;
  Summary mlp_module_time() const { return mlp_module_; }
  Summary attn_module_time() const { return attn_module_; }
  int total_preemptions() const { return total_preemptions_; }

  const std::vector<UsageSample>& usage_series() const { return usage_; }

  /// All records in ascending-id order (== arrival order for trace runs).
  const std::vector<RequestRecord>& records() const { return records_; }
  /// The record for `id`; throws std::out_of_range when unknown.
  const RequestRecord& record(workload::RequestId id) const;

  std::string summary_string() const;

 private:
  const RequestRecord* find(workload::RequestId id) const;
  RequestRecord* find(workload::RequestId id);
  void index_slot(workload::RequestId id, std::size_t slot);

  std::vector<RequestRecord> records_;  // sorted ascending by id
  /// slots_[id] is the index into records_ for 0 <= id < slots_.size()
  /// (-1 when absent); ids outside the dense range fall back to a linear
  /// scan (tests only -- trace ids are dense by construction).
  std::vector<std::int32_t> slots_;
  std::size_t finished_ = 0;
  int total_preemptions_ = 0;
  Summary mlp_module_;
  Summary attn_module_;
  std::vector<UsageSample> usage_;
  RunObserver* observer_ = nullptr;
  /// The telemetry session, twice: the typed pointer for discovery (the
  /// Controller pulls the audit trail off it) and the base-class view the
  /// inline hot-path forwards call through -- metrics.h never needs the
  /// telemetry headers.  Both are set together by set_telemetry.
  telemetry::Telemetry* telemetry_ = nullptr;
  RunObserver* telemetry_sink_ = nullptr;
};

/// Per-instance lifecycle buffer -- the simulator hot path's front end to
/// the MetricsCollector.
///
/// With an observer installed, every event streams through the collector
/// immediately: the control plane consumes lifecycle events on the
/// simulation clock and must not see them late.  Observer-off (the default
/// for sweeps and benches), record mutations buffer locally and flush once
/// per iteration event, so a 64-request decode batch touches the record
/// table once instead of 64 times.  Instances flush before returning to
/// the event loop -- a buffer never outlives the sim-time instant that
/// filled it -- so the collector is applied the exact event sequence the
/// streaming path would have produced and every aggregate is identical
/// (asserted by MetricsBatch tests in tests/test_engine.cc).
class MetricsBatch {
 public:
  explicit MetricsBatch(MetricsCollector* m) : m_(m) {}
  MetricsBatch(const MetricsBatch&) = delete;
  MetricsBatch& operator=(const MetricsBatch&) = delete;
  ~MetricsBatch() { flush(); }

  /// Prefill pickups feed the observer/telemetry sinks only (no record
  /// mutation), so like on_token there is nothing to buffer.
  void on_prefill_start(workload::RequestId id, Seconds t) { m_->on_prefill_start(id, t); }
  void on_first_token(workload::RequestId id, Seconds t) {
    if (m_->observer() != nullptr) {
      m_->on_first_token(id, t);
      return;
    }
    buf_.push_back(Ev{Ev::kFirstToken, id, t});
  }
  /// Tokens feed the observer only; with none installed this is a no-op,
  /// so there is nothing to buffer.
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
    m_->on_token(id, t, generated);
  }
  void on_finish(workload::RequestId id, Seconds t) {
    if (m_->observer() != nullptr) {
      m_->on_finish(id, t);
      return;
    }
    buf_.push_back(Ev{Ev::kFinish, id, t});
  }
  void on_preemption(workload::RequestId id, Seconds t) {
    if (m_->observer() != nullptr) {
      m_->on_preemption(id, t);
      return;
    }
    buf_.push_back(Ev{Ev::kPreempt, id, t});
  }

  /// Applies buffered events to the collector in emission order.  Owning
  /// instances call this before returning to the event loop.
  void flush() {
    for (const Ev& e : buf_) {
      switch (e.kind) {
        case Ev::kFirstToken:
          m_->on_first_token(e.id, e.t);
          break;
        case Ev::kFinish:
          m_->on_finish(e.id, e.t);
          break;
        case Ev::kPreempt:
          m_->on_preemption(e.id, e.t);
          break;
      }
    }
    buf_.clear();
  }

  std::size_t buffered() const { return buf_.size(); }
  MetricsCollector* collector() const { return m_; }

 private:
  struct Ev {
    enum Kind : std::uint8_t { kFirstToken, kFinish, kPreempt };
    Kind kind;
    workload::RequestId id;
    Seconds t;
  };

  MetricsCollector* m_;
  std::vector<Ev> buf_;
};

}  // namespace hetis::engine
