#include "engine/instance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/log.h"

namespace hetis::engine {

int tenant_priority(const std::vector<int>& priorities, const LiveRequest& lr) {
  const int tenant = lr.req.tenant;
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= priorities.size()) return 0;
  return priorities[static_cast<std::size_t>(tenant)];
}

void priority_enqueue(std::deque<LiveRequest>& queue, LiveRequest lr,
                      const std::vector<int>& priorities, bool requeue_front) {
  if (priorities.empty()) {
    // Historical FCFS path: preempted requests retry from the front.
    if (requeue_front) {
      queue.push_front(std::move(lr));
    } else {
      queue.push_back(std::move(lr));
    }
    return;
  }
  // Keep the queue sorted by (priority desc, id asc); a preempted request
  // naturally re-enters ahead of its class (its id is the oldest pending).
  const int p = tenant_priority(priorities, lr);
  auto it = std::find_if(queue.begin(), queue.end(), [&](const LiveRequest& e) {
    const int ep = tenant_priority(priorities, e);
    return ep < p || (ep == p && e.req.id > lr.req.id);
  });
  queue.insert(it, std::move(lr));
}

Bytes stage_param_bytes_per_device(const model::ModelSpec& m, const parallel::StageConfig& s,
                                   bool first, bool last) {
  Bytes layer_shard = m.layer_param_bytes() * s.layers / std::max(1, s.tp());
  Bytes embed = 0;
  Bytes embed_total = static_cast<Bytes>(m.vocab) * m.hidden * m.dtype_bytes;
  if (first) embed += embed_total / std::max(1, s.tp());
  if (last) embed += embed_total / std::max(1, s.tp());
  return layer_shard + embed;
}

PipelineInstance::PipelineInstance(const ExecModel& exec, parallel::InstanceConfig cfg,
                                   MetricsCollector& metrics, InstanceOptions opts, int id)
    : exec_(&exec), cfg_(std::move(cfg)), metrics_(&metrics), opts_(opts), id_(id),
      batch_(&metrics) {
  const model::ModelSpec& m = exec_->model_spec();
  stage_cap_.resize(cfg_.stages.size(), 0);
  stage_used_.resize(cfg_.stages.size(), 0);
  per_token_.resize(cfg_.stages.size(), 0);
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    const auto& stage = cfg_.stages[k];
    Bytes params = stage_param_bytes_per_device(m, stage, k == 0, k + 1 == cfg_.stages.size()) +
                   stage.extra_reserved;
    Bytes budget = 0;
    for (int dev : stage.devices) {
      budget += kv_budget(exec_->cluster().device(dev).spec(), params);
    }
    stage_cap_[k] = budget;
    per_token_[k] = m.kv_bytes_per_token_layer() * stage.layers;
  }
}

Bytes PipelineInstance::kv_capacity() const {
  Bytes total = 0;
  for (Bytes c : stage_cap_) total += c;
  return total;
}

Bytes PipelineInstance::usable_kv_capacity() const {
  // Tokens the tightest stage can hold bound the whole pipeline.
  double min_tokens = std::numeric_limits<double>::infinity();
  Bytes per_token_total = 0;
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    if (per_token_[k] <= 0) continue;
    min_tokens = std::min(min_tokens,
                          static_cast<double>(stage_cap_[k]) / static_cast<double>(per_token_[k]));
    per_token_total += per_token_[k];
  }
  if (!std::isfinite(min_tokens)) return 0;
  return static_cast<Bytes>(min_tokens * static_cast<double>(per_token_total));
}

Bytes PipelineInstance::kv_used() const {
  Bytes total = 0;
  for (Bytes u : stage_used_) total += u;
  return total;
}

double PipelineInstance::fill_fraction() const {
  double worst = 0;
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    if (stage_cap_[k] > 0) {
      worst = std::max(worst,
                       static_cast<double>(stage_used_[k]) / static_cast<double>(stage_cap_[k]));
    }
  }
  return worst;
}

bool PipelineInstance::can_reserve(std::int64_t tokens) const {
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    if (stage_used_[k] + per_token_[k] * tokens > stage_cap_[k]) return false;
  }
  return true;
}

void PipelineInstance::reserve_tokens(std::int64_t tokens) {
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    stage_used_[k] += per_token_[k] * tokens;
  }
}

void PipelineInstance::release_tokens(std::int64_t tokens) {
  for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
    stage_used_[k] -= per_token_[k] * tokens;
    if (stage_used_[k] < 0) throw std::logic_error("PipelineInstance: negative memory");
  }
}

bool PipelineInstance::has_room(std::int64_t tokens) const { return can_reserve(tokens); }

void PipelineInstance::release_prefilled(const LiveRequest& lr) { release_tokens(lr.context()); }

void PipelineInstance::submit(sim::Simulation& sim, const workload::Request& r) {
  LiveRequest lr;
  lr.req = r;
  priority_enqueue(waiting_, std::move(lr), priorities_, /*requeue_front=*/false);
  kick(sim);
}

DrainedRequests PipelineInstance::retire() {
  retired_ = true;
  DrainedRequests out;
  for (auto& lr : waiting_) out.fresh.push_back(lr);
  for (auto& lr : prefilling_) {
    // The prefill iteration is aborted with the deployment; the request
    // re-prefills wherever it lands next.
    LiveRequest f = lr;
    f.prefilled = false;
    f.generated = 0;
    out.fresh.push_back(std::move(f));
  }
  for (auto& lr : running_) out.live.push_back(lr);
  waiting_.clear();
  running_.clear();
  prefilling_.clear();
  auto by_id = [](const LiveRequest& a, const LiveRequest& b) { return a.req.id < b.req.id; };
  std::sort(out.fresh.begin(), out.fresh.end(), by_id);
  std::sort(out.live.begin(), out.live.end(), by_id);
  return out;
}

bool PipelineInstance::submit_prefilled(sim::Simulation& sim, const LiveRequest& lr) {
  // The caller (Splitwise migration path) must have checked has_room.
  if (!can_reserve(lr.context())) return false;
  reserve_tokens(lr.context());
  running_.push_back(lr);
  kick(sim);
  return true;
}

bool PipelineInstance::reserve_incoming(std::int64_t tokens) {
  if (!can_reserve(tokens)) return false;
  reserve_tokens(tokens);
  return true;
}

void PipelineInstance::submit_reserved(sim::Simulation& sim, const LiveRequest& lr) {
  // Space was taken by reserve_incoming; just activate the request.
  running_.push_back(lr);
  kick(sim);
}

bool PipelineInstance::admit(const LiveRequest& lr) {
  // Reserve the prompt plus the first output token so the memory invariant
  // (reserved == context()) holds from prefill completion onward.
  if (!can_reserve(lr.req.prompt_len + 1)) return false;
  reserve_tokens(lr.req.prompt_len + 1);
  return true;
}

void PipelineInstance::kick(sim::Simulation& sim) { pump(sim); }

void PipelineInstance::pump(sim::Simulation& sim) {
  if (retired_) return;
  const int max_inflight = std::max<int>(1, static_cast<int>(cfg_.stages.size()));
  while (inflight_ < max_inflight) {
    // Prefill-priority: admit waiting prompts up to the token budget.
    std::vector<LiveRequest> prefill_batch;
    if (!batch_pool_.empty()) {
      prefill_batch = std::move(batch_pool_.back());
      batch_pool_.pop_back();
    }
    std::int64_t budget = opts_.max_prefill_tokens;
    while (!waiting_.empty() && running_.size() + prefill_batch.size() < opts_.max_batch) {
      LiveRequest& head = waiting_.front();
      if (head.req.prompt_len > budget && !prefill_batch.empty()) break;
      if (!admit(head)) break;  // stage memory exhausted; decode instead
      budget -= head.req.prompt_len;
      prefill_batch.push_back(head);
      waiting_.pop_front();
      if (budget <= 0) break;
    }

    if (!prefill_batch.empty()) {
      scratch_lens_.clear();
      scratch_lens_.reserve(prefill_batch.size());
      for (const auto& lr : prefill_batch) {
        scratch_lens_.push_back(lr.req.prompt_len);
        prefilling_.push_back(lr);
        batch_.on_prefill_start(lr.req.id, sim.now());
      }
      exec_->iteration_time(cfg_, scratch_lens_, /*prefill=*/true, scratch_it_);
      const IterationTime& it = scratch_it_;
      Seconds issue = std::max(sim.now(), head_free_);
      head_free_ = issue + it.interval();
      ++inflight_;
      sim.schedule_at(issue + it.latency(),
                      [this, &sim, batch = std::move(prefill_batch)]() mutable {
                        finish_prefill_iteration(sim, std::move(batch));
                      });
      continue;
    }
    // Empty, but it may carry recycled capacity worth keeping.
    batch_pool_.push_back(std::move(prefill_batch));

    if (running_.empty() || decode_inflight_) return;

    // Decode iteration over the whole running batch.  It both depends on
    // and produces per-request state, so it serializes behind the previous
    // decode (decode_done_) in addition to waiting for the pipeline head.
    scratch_lens_.clear();
    scratch_lens_.reserve(running_.size());
    for (const auto& lr : running_) scratch_lens_.push_back(lr.context());
    exec_->iteration_time(cfg_, scratch_lens_, /*prefill=*/false, scratch_it_);
    const IterationTime& it = scratch_it_;
    metrics_->add_decode_module_sample(it.mlp_module_latency(), it.attn_module_latency());
    Seconds issue = std::max({sim.now(), head_free_, decode_done_});
    head_free_ = issue + it.interval();
    decode_done_ = issue + it.latency();
    decode_inflight_ = true;
    ++inflight_;
    sim.schedule_at(issue + it.latency(), [this, &sim] { finish_decode_iteration(sim); });
    return;
  }
}

void PipelineInstance::finish_prefill_iteration(sim::Simulation& sim,
                                                std::vector<LiveRequest> batch) {
  if (retired_) {
    // The batch was already handed to the new deployment by retire().
    --inflight_;
    return;
  }
  for (auto& lr : batch) {
    for (auto it = prefilling_.begin(); it != prefilling_.end(); ++it) {
      if (it->req.id == lr.req.id) {
        *it = std::move(prefilling_.back());
        prefilling_.pop_back();
        break;
      }
    }
    lr.prefilled = true;
    if (!opts_.defer_first_token) batch_.on_first_token(lr.req.id, sim.now());
    // The first output token is produced by prefill itself.
    lr.generated = 1;
    if (opts_.prefill_only && handoff_) {
      // Splitwise: hand the request (and its KV) to the decode pool; local
      // prompt memory is released by the engine once migration completes.
      handoff_(sim, lr);
    } else if (lr.done()) {
      release_tokens(lr.context());
      batch_.on_finish(lr.req.id, sim.now());
    } else {
      running_.push_back(lr);
    }
  }
  batch.clear();
  batch_pool_.push_back(std::move(batch));
  batch_.flush();
  --inflight_;
  pump(sim);
}

void PipelineInstance::finish_decode_iteration(sim::Simulation& sim) {
  if (retired_) {
    --inflight_;
    decode_inflight_ = false;
    return;
  }
  // Every surviving request appends one cached token on every stage.
  // First make room (LIFO recompute preemption), then commit the appends.
  while (!running_.empty() && !can_reserve(static_cast<std::int64_t>(running_.size()))) {
    preempt_lifo(sim);
  }
  for (auto& lr : running_) {
    lr.generated += 1;
    reserve_tokens(1);
    batch_.on_token(lr.req.id, sim.now(), lr.generated);
  }
  // Retire finished requests, compacting the batch in place (order
  // preserved; no per-iteration rebuild allocation).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < running_.size(); ++i) {
    LiveRequest& lr = running_[i];
    if (lr.done()) {
      release_tokens(lr.context());
      batch_.on_finish(lr.req.id, sim.now());
    } else {
      if (keep != i) running_[keep] = lr;
      ++keep;
    }
  }
  running_.resize(keep);
  batch_.flush();
  --inflight_;
  decode_inflight_ = false;
  pump(sim);
}

void PipelineInstance::preempt_lifo(sim::Simulation& sim) {
  if (running_.empty()) return;
  // Latest arrival leaves first (vLLM recompute preemption).  Ties break
  // toward the highest id (newest submission) so older requests keep their
  // progress -- preempting the oldest would lose the most work and can
  // livelock under sustained pressure.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < running_.size(); ++i) {
    const auto& cand = running_[i].req;
    const auto& cur = running_[victim].req;
    if (cand.arrival > cur.arrival || (cand.arrival == cur.arrival && cand.id > cur.id)) {
      victim = i;
    }
  }
  LiveRequest lr = running_[victim];
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(victim));
  release_tokens(lr.context());
  batch_.on_preemption(lr.req.id, sim.now());
  lr.prefilled = false;
  lr.generated = 0;  // recompute from scratch
  priority_enqueue(waiting_, std::move(lr), priorities_, /*requeue_front=*/true);
}

}  // namespace hetis::engine
