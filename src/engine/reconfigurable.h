// Online reconfiguration interface for the elastic control plane (§5.3).
//
// An engine that implements Reconfigurable can be re-deployed onto a new
// active device set MID-RUN: the control plane (src/control/) calls
// `reconfigure` when a GPU joins or leaves, or when a scale policy decides
// to grow/shrink the deployment.  The semantics of the transition are the
// engine's own -- and that asymmetry is the point of the benchmark:
//
//   * HetisEngine re-runs the Parallelizer over the new device set and
//     LIVE-MIGRATES prefilled requests: their KV caches move through the
//     Hauler and decoding resumes where it left off (dynamic parallelism,
//     §5.3).  Requests that do not fit the new deployment fall back to
//     recompute.  Device removals are graceful drains (see
//     control::ClusterEventKind) -- KV on a leaving device is still
//     readable during the migration; hard failures would force recompute
//     and are future work.
//   * Splitwise / HexGen implement checkpoint-and-restart: the deployment
//     is torn down, the model is re-loaded onto the new set (a dead window
//     of param_bytes / LAN bandwidth), and every in-flight request
//     re-prefills from scratch -- the cost of static parallelism.
//
// Implementations must keep MetricsCollector invariants intact: every
// arrival still finishes exactly once, restarted progress is surfaced as
// on_preempt, and on_prefill_done never fires twice for the same request.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "parallel/objective.h"
#include "sim/simulation.h"

namespace hetis::parallel {
struct SearchDiagnostics;
}

namespace hetis::engine {

/// Cumulative reconfiguration accounting, reported by bench_elastic.
struct ReconfigStats {
  int reconfigurations = 0;    // applied device-set changes
  int migrated_requests = 0;   // live-migrated with decode progress intact
  int restarted_requests = 0;  // lost their progress (checkpoint-restart or
                               // no room in the new deployment)
  Bytes migrated_kv_bytes = 0; // KV moved by live migrations
  Seconds restart_dead_time = 0;  // total serving gap paid for re-deploys
};

class Reconfigurable {
 public:
  virtual ~Reconfigurable() = default;

  /// Device ids (of the construction cluster) currently serving.
  virtual std::vector<int> active_devices() const = 0;

  /// Re-deploys the engine onto `devices` (a non-empty subset of the
  /// construction cluster's ids) at sim.now().  In-flight requests are
  /// carried over per the engine's semantics (see file header); no arrival
  /// may be lost or double-finished.  Throws std::invalid_argument when the
  /// device set cannot host the model at all.
  virtual void reconfigure(sim::Simulation& sim, const std::vector<int>& devices) = 0;

  /// Selects the plan objective subsequent `reconfigure` calls (and any
  /// other replanning) optimize for -- the control plane passes e.g. the
  /// latency objective when its SLO-attainment policy replans under churn.
  /// Engines without a planner (the checkpoint-restart baselines' fixed
  /// layouts) ignore it, hence the default no-op.
  virtual void set_plan_objective(const parallel::ObjectiveSpec& objective) {
    (void)objective;
  }

  /// Selects the placement tier subsequent replans run through (a
  /// planner::make name: "exhaustive" | "flow" | "auto").  The control
  /// plane sets this when churn pushes the surviving cluster past the
  /// scale the exhaustive search handles.  Default no-op for engines
  /// without a planner.
  virtual void set_planner(const std::string& planner) { (void)planner; }

  /// The cluster's degradation overlay changed materially (a device
  /// crossed the controller's straggler threshold, in either direction).
  /// HetisEngine replans over its CURRENT device set -- the cost model now
  /// prices the degraded hardware, so the search may DEMOTE a straggling
  /// primary to an Attention worker -- and re-deploys only when the plan
  /// actually changes.  The checkpoint-restart baselines keep the default
  /// no-op: they serve on (and suffer) the degraded hardware as-is, which
  /// is the "degrade naively" half of the benchmark's asymmetry.
  virtual void on_degradation(sim::Simulation& sim) { (void)sim; }

  /// Advance warning: `device` will be reclaimed at `leave_time` (a
  /// kPreemptNotice event; the kGpuLeave itself arrives separately).
  /// HetisEngine uses the lead time to re-deploy WITHOUT the doomed device
  /// and pre-migrate its KV through the Hauler while the device is still
  /// up; engines that cannot act early keep the default no-op and pay the
  /// full restart at the actual leave.
  virtual void on_preempt_notice(sim::Simulation& sim, int device, Seconds leave_time) {
    (void)sim;
    (void)device;
    (void)leave_time;
  }

  virtual const ReconfigStats& reconfig_stats() const = 0;

  /// Diagnostics of the most recent plan search (tier, configurations
  /// evaluated, LP solves, wall time), or nullptr for engines that never
  /// replan.  The control plane copies these into its audit trail so every
  /// replan record names the planner tier that produced it.
  virtual const parallel::SearchDiagnostics* last_search_diagnostics() const { return nullptr; }

  /// One-line fingerprint of the current deployment plan ("" when the
  /// engine has none), e.g. "hetis:3inst[pp2,tp1+2attn,...]".  The audit
  /// trail stores the digest before/after each action as the plan diff --
  /// human-scannable, not parseable.
  virtual std::string plan_digest() const { return ""; }
};

}  // namespace hetis::engine
