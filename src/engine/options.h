// Engine configuration for the unified serving front-end.
//
// `EngineOptions` is the single configuration type accepted by every
// registered engine factory (see engine/registry.h).  It is a tagged
// union: the caller either passes defaults (`EngineOptions{}` works for
// every engine) or the config struct of the system being constructed
// (`EngineOptions(HetisConfig{...})`).  Passing a config tagged for a
// different system is a hard error -- factories throw instead of silently
// ignoring knobs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/units.h"
#include "parallel/parallelizer.h"
#include "parallel/plan.h"

namespace hetis::engine {

/// Hetis-specific dials (paper §4-§6).  This is the struct previously
/// known as `core::HetisOptions`; that name remains as an alias.
struct HetisConfig {
  double theta = 0.5;              // re-dispatch trigger (paper default)
  bool enable_redispatch = true;   // Fig. 15a ablation: false = plain LIFO
  bool use_lp = true;              // false = greedy dispatch (ablation)
  int redispatch_period = 16;      // decode iterations between f* checks
  std::int64_t max_prefill_tokens = 8192;
  std::size_t max_batch = 256;

  // Profiling controls (Fig. 16b).
  std::uint64_t profile_seed = 2025;
  double profile_error = 0.0;      // +-fraction applied to fitted coefficients
  // Which coefficient family the error hits (the paper sweeps each of
  // a, b, c, gamma, beta separately).
  enum class ErrorTarget { kAll, kA, kB, kC, kGamma, kBeta };
  ErrorTarget profile_error_target = ErrorTarget::kAll;

  // Fig. 14 instrumentation: sample device usage every `sample_interval`
  // seconds (0 disables).
  Seconds sample_interval = 0.0;
  Seconds sample_horizon = 0.0;

  // Parallelizer inputs.
  parallel::WorkloadProfile workload;
  parallel::ParallelizerOptions search;

  // When set, serve on this externally-fixed plan instead of running the
  // Parallelizer (ablations, the cluster-planner example, tests).
  std::optional<parallel::ParallelPlan> plan;
};

/// Splitwise baseline knobs: continuous-batching limits shared by both
/// phase pools.  The phase split itself is the paper's fixed layout.
struct SplitwiseConfig {
  std::int64_t max_prefill_tokens = 8192;
  std::size_t max_batch = 256;
};

/// HexGen baseline knobs: batching limits plus an optional fixed plan
/// (the default is the paper's asymmetric per-type pipeline).
struct HexgenConfig {
  std::int64_t max_prefill_tokens = 8192;
  std::size_t max_batch = 256;
  std::optional<parallel::ParallelPlan> plan;
};

/// Tagged engine configuration.  `std::monostate` means "defaults for
/// whichever engine is constructed"; a concrete alternative must match the
/// engine it is passed to.
struct EngineOptions {
  EngineOptions() = default;
  EngineOptions(HetisConfig c) : system(std::move(c)) {}          // NOLINT(google-explicit-constructor)
  EngineOptions(SplitwiseConfig c) : system(std::move(c)) {}      // NOLINT(google-explicit-constructor)
  EngineOptions(HexgenConfig c) : system(std::move(c)) {}         // NOLINT(google-explicit-constructor)

  std::variant<std::monostate, HetisConfig, SplitwiseConfig, HexgenConfig> system;

  /// Per-tenant admission priorities, indexed by workload::Request::tenant
  /// (higher = admitted first; ties and tenants beyond the vector fall back
  /// to arrival order).  Empty (the default) keeps strict FCFS admission --
  /// the historical behavior, byte-identical to pre-priority builds.  The
  /// harness fills this automatically from a multi_tenant scenario's
  /// TenantSpec::priority values; it applies to every engine, hence it
  /// lives outside the per-system variant.
  std::vector<int> tenant_priorities;

  bool is_default() const { return std::holds_alternative<std::monostate>(system); }

  /// Factory helper: returns the config for `engine_name`, default-constructed
  /// when no config was supplied, and throws std::invalid_argument when the
  /// options are tagged for a different system.
  template <typename Config>
  Config get_or_default(const std::string& engine_name) const {
    if (is_default()) return Config{};
    if (const auto* cfg = std::get_if<Config>(&system)) return *cfg;
    throw std::invalid_argument("EngineOptions tagged for a different system were passed to '" +
                                engine_name + "'");
  }
};

}  // namespace hetis::engine
