// Engine registry: construct any serving system by name.
//
//   auto eng = engine::make("hetis", cluster, model, EngineOptions(cfg));
//
// Factories self-register from their own translation units (see the
// HETIS_REGISTER_ENGINE uses in hetis_engine.cc / splitwise.cc /
// hexgen.cc), so callers select systems by name and never include a
// concrete engine header.  Names are matched case-insensitively.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/options.h"
#include "hw/topology.h"
#include "model/llm.h"

namespace hetis::engine {

using EngineFactory = std::function<std::unique_ptr<Engine>(
    const hw::Cluster&, const model::ModelSpec&, const EngineOptions&)>;

/// ASCII lowercase, used for the registry's case-insensitive name matching
/// (the experiment harness matches per-engine options the same way).
std::string ascii_lower(const std::string& s);

class Registry {
 public:
  /// The process-wide registry holding the built-in engines plus anything
  /// registered by downstream code.
  static Registry& global();

  /// Registers a factory under `name` (case-insensitive).  Throws
  /// std::logic_error on duplicates -- two systems must not share a name --
  /// and std::invalid_argument when `name` is empty or contains characters
  /// outside [A-Za-z0-9_-] (names flow into CSV rows unquoted).
  void add(const std::string& name, EngineFactory factory);

  /// Constructs the engine registered under `name`.  Throws
  /// std::invalid_argument with the known names on an unknown name.
  std::unique_ptr<Engine> make(const std::string& name, const hw::Cluster& cluster,
                               const model::ModelSpec& model, const EngineOptions& opts) const;

  bool contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, EngineFactory> factories_;  // keyed by lowercase name
};

/// Convenience forwarder to Registry::global().
std::unique_ptr<Engine> make(const std::string& name, const hw::Cluster& cluster,
                             const model::ModelSpec& model,
                             const EngineOptions& opts = EngineOptions());

/// Registers `factory` at static-initialization time.  Use through
/// HETIS_REGISTER_ENGINE from the engine's .cc file.
struct EngineRegistrar {
  EngineRegistrar(const char* name, EngineFactory factory);
};

}  // namespace hetis::engine

/// Self-registration hook.  Expands to (a) a no-op link anchor and (b) the
/// registrar itself.  Invoke at global scope in the engine's translation
/// unit.
///
/// Static-library caveat: a registrar only runs if its object file makes it
/// into the link.  For the built-in engines, Registry::global() calls their
/// anchors, which forces exactly that.  A NEW engine registered with this
/// macro from another static library must itself guarantee the TU is
/// linked -- either by having the binary reference any symbol of that TU
/// (e.g. call its `<tag>_engine_link_anchor()`), or by adding the anchor
/// call to Registry::global() for new built-ins.
#define HETIS_REGISTER_ENGINE(tag, factory)                                   \
  namespace hetis::engine::detail {                                           \
  void tag##_engine_link_anchor() {}                                          \
  }                                                                           \
  static const ::hetis::engine::EngineRegistrar hetis_registrar_##tag(#tag, (factory))
