#include "engine/engine.h"

#include <algorithm>

namespace hetis::engine {

RunReport run_trace(Engine& engine, const std::vector<workload::Request>& trace,
                    Seconds drain_timeout) {
  sim::Simulation sim;
  engine.start(sim);
  for (const auto& r : trace) {
    sim.schedule_at(r.arrival, [&engine, &sim, r] { engine.submit(sim, r); });
  }
  Seconds last_arrival = trace.empty() ? 0.0 : trace.back().arrival;
  sim.run_until(last_arrival + drain_timeout);

  RunReport rep;
  rep.engine = engine.name();
  const MetricsCollector& m = engine.metrics();
  rep.arrived = m.arrived();
  rep.finished = m.finished();
  rep.norm_latency_mean = m.norm_latency().mean();
  rep.norm_latency_p95 = m.norm_latency().p95();
  rep.ttft_p95 = m.ttft().p95();
  rep.tpot_p95 = m.tpot().p95();
  rep.mlp_module_p95 = m.mlp_module_time().p95();
  rep.attn_module_p95 = m.attn_module_time().p95();
  rep.preemptions = m.total_preemptions();
  rep.usable_kv = engine.usable_kv_capacity();
  // Serving span: first arrival to last completion (not the idle drain).
  Seconds first = 0, last = 0;
  bool any = false;
  for (const auto& [id, rec] : m.records()) {
    if (!rec.finished()) continue;
    if (!any || rec.arrival < first) first = rec.arrival;
    if (!any || rec.finish > last) last = rec.finish;
    any = true;
  }
  rep.makespan = any ? last - first : 0.0;
  rep.throughput = any ? static_cast<double>(rep.finished) / std::max(1e-9, rep.makespan) : 0.0;
  return rep;
}

}  // namespace hetis::engine
