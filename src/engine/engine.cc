#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace hetis::engine {

namespace {

// Stable CSV column order.  Append-only: scripts key on these names.
constexpr const char* kCsvColumns =
    "engine,arrived,finished,measured,norm_latency_mean,norm_latency_p95,ttft_p95,tpot_p95,"
    "mlp_module_p95,attn_module_p95,throughput,preemptions,usable_kv_bytes,makespan,"
    "drain_timeout_hit,slo_set,slo_ttft,slo_tpot,ttft_attainment,tpot_attainment,"
    "slo_attainment,goodput";

std::size_t csv_column_count() {
  const std::string header = kCsvColumns;
  return static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) + 1;
}

}  // namespace

std::string csv_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string csv_field(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n') c = ' ';
  }
  return s;
}

std::vector<std::string> split_csv_row(const std::string& row) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream iss(row);
  while (std::getline(iss, cell, ',')) out.push_back(cell);
  if (!row.empty() && row.back() == ',') out.emplace_back();
  return out;
}

bool meets_ttft_slo(const RequestRecord& rec, const SloSpec& slo) {
  return slo.ttft <= 0 || (rec.first_token >= 0 && rec.ttft() <= slo.ttft);
}

bool meets_tpot_slo(const RequestRecord& rec, const SloSpec& slo) {
  return slo.tpot <= 0 || rec.output_len <= 1 || rec.tpot() <= slo.tpot;
}

bool meets_slo(const RequestRecord& rec, const SloSpec& slo) {
  return meets_ttft_slo(rec, slo) && meets_tpot_slo(rec, slo);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string RunReport::warning() const {
  // Built lazily, and only on truncation: a clean drain must not pay for
  // (or ever observe) the assembled message -- see the invariant check at
  // the end of run_trace.
  if (!drain_timeout_hit) return "";
  std::ostringstream oss;
  oss << engine << ": drain timeout hit with " << (arrived - finished) << "/" << arrived
      << " requests unfinished; latency percentiles under-count the tail";
  return oss.str();
}

std::string RunReport::csv_header() { return kCsvColumns; }

std::string RunReport::to_csv_row() const {
  std::ostringstream oss;
  oss << csv_field(engine) << ',' << arrived << ',' << finished << ',' << measured << ','
      << csv_double(norm_latency_mean) << ',' << csv_double(norm_latency_p95) << ',' << csv_double(ttft_p95) << ','
      << csv_double(tpot_p95) << ',' << csv_double(mlp_module_p95) << ',' << csv_double(attn_module_p95) << ','
      << csv_double(throughput) << ',' << preemptions << ',' << usable_kv << ',' << csv_double(makespan) << ','
      << (drain_timeout_hit ? 1 : 0) << ',' << (slo_set ? 1 : 0) << ',' << csv_double(slo_ttft) << ','
      << csv_double(slo_tpot) << ',' << csv_double(ttft_attainment) << ',' << csv_double(tpot_attainment) << ','
      << csv_double(slo_attainment) << ',' << csv_double(goodput);
  return oss.str();
}

RunReport RunReport::from_csv_row(const std::string& row) {
  std::vector<std::string> cells = split_csv_row(row);
  // Accept extra trailing cells so today's reader still loads rows written
  // after columns are appended (the column order is append-only).
  if (cells.size() < csv_column_count()) {
    throw std::invalid_argument("RunReport::from_csv_row: expected at least " +
                                std::to_string(csv_column_count()) + " cells, got " +
                                std::to_string(cells.size()));
  }
  RunReport r;
  std::size_t i = 0;
  r.engine = cells[i++];
  r.arrived = static_cast<std::size_t>(std::stoull(cells[i++]));
  r.finished = static_cast<std::size_t>(std::stoull(cells[i++]));
  r.measured = static_cast<std::size_t>(std::stoull(cells[i++]));
  r.norm_latency_mean = std::stod(cells[i++]);
  r.norm_latency_p95 = std::stod(cells[i++]);
  r.ttft_p95 = std::stod(cells[i++]);
  r.tpot_p95 = std::stod(cells[i++]);
  r.mlp_module_p95 = std::stod(cells[i++]);
  r.attn_module_p95 = std::stod(cells[i++]);
  r.throughput = std::stod(cells[i++]);
  r.preemptions = std::stoi(cells[i++]);
  r.usable_kv = static_cast<Bytes>(std::stoll(cells[i++]));
  r.makespan = std::stod(cells[i++]);
  r.drain_timeout_hit = cells[i++] == "1";
  r.slo_set = cells[i++] == "1";
  r.slo_ttft = std::stod(cells[i++]);
  r.slo_tpot = std::stod(cells[i++]);
  r.ttft_attainment = std::stod(cells[i++]);
  r.tpot_attainment = std::stod(cells[i++]);
  r.slo_attainment = std::stod(cells[i++]);
  r.goodput = std::stod(cells[i++]);
  return r;
}

std::string RunReport::to_json() const {
  std::ostringstream oss;
  oss << "{\"engine\":\"" << json_escape(engine) << "\",\"arrived\":" << arrived
      << ",\"finished\":" << finished << ",\"measured\":" << measured
      << ",\"norm_latency_mean\":" << csv_double(norm_latency_mean)
      << ",\"norm_latency_p95\":" << csv_double(norm_latency_p95) << ",\"ttft_p95\":" << csv_double(ttft_p95)
      << ",\"tpot_p95\":" << csv_double(tpot_p95) << ",\"mlp_module_p95\":" << csv_double(mlp_module_p95)
      << ",\"attn_module_p95\":" << csv_double(attn_module_p95) << ",\"throughput\":" << csv_double(throughput)
      << ",\"preemptions\":" << preemptions << ",\"usable_kv_bytes\":" << usable_kv
      << ",\"makespan\":" << csv_double(makespan)
      << ",\"drain_timeout_hit\":" << (drain_timeout_hit ? "true" : "false")
      << ",\"slo_set\":" << (slo_set ? "true" : "false") << ",\"slo_ttft\":" << csv_double(slo_ttft)
      << ",\"slo_tpot\":" << csv_double(slo_tpot) << ",\"ttft_attainment\":" << csv_double(ttft_attainment)
      << ",\"tpot_attainment\":" << csv_double(tpot_attainment)
      << ",\"slo_attainment\":" << csv_double(slo_attainment) << ",\"goodput\":" << csv_double(goodput) << "}";
  return oss.str();
}

RunReport run_trace(Engine& engine, const std::vector<workload::Request>& trace,
                    const RunOptions& opts) {
  sim::Simulation sim;
  // Detach on every exit path: if the run throws, the engine must not keep
  // a pointer to a caller-owned observer (or telemetry session) that may
  // die first.
  struct ObserverGuard {
    MetricsCollector& metrics;
    ~ObserverGuard() {
      metrics.set_observer(nullptr);
      metrics.set_telemetry(nullptr);
    }
  } guard{engine.metrics()};
  engine.metrics().set_observer(opts.observer);
  engine.metrics().set_telemetry(opts.telemetry);
  engine.metrics().reserve(trace.size());
  engine.start(sim);
  // The sampler attaches before on_start so the control plane (which runs
  // its initial deployment from on_start) can already see the session and
  // its audit trail through engine.metrics().telemetry().
  if (opts.telemetry != nullptr) opts.telemetry->attach(sim, engine);
  if (opts.on_start) opts.on_start(sim, engine);
  for (const auto& r : trace) {
    // Captures the request by reference -- the caller-owned trace outlives
    // the run, and the small capture keeps the event in EventTask's inline
    // buffer (no allocation for the million pre-scheduled arrivals).
    sim.schedule_at(r.arrival, [&engine, &sim, &r] { engine.submit(sim, r); });
  }
  Seconds last_arrival = trace.empty() ? 0.0 : trace.back().arrival;
  sim.run_until(last_arrival + opts.drain_timeout);

  RunReport rep;
  rep.engine = engine.name();
  const MetricsCollector& m = engine.metrics();
  rep.arrived = m.arrived();
  rep.finished = m.finished();
  rep.mlp_module_p95 = m.mlp_module_time().p95();
  rep.attn_module_p95 = m.attn_module_time().p95();
  rep.preemptions = m.total_preemptions();
  rep.usable_kv = engine.usable_kv_capacity();
  // Keyed on unfinished requests, not on sim.idle(): engines may keep
  // benign periodic events (e.g. usage sampling) queued past the deadline.
  rep.drain_timeout_hit = rep.finished < rep.arrived;

  const SloSpec* slo = opts.slo ? &*opts.slo : nullptr;
  Summary norm, ttft, tpot;
  // Attainment denominator: every post-warmup ARRIVAL.  A request that
  // never finished cannot have met its SLO, so a truncated or saturated
  // run reports honestly low attainment instead of grading only the
  // survivors.
  std::size_t slo_denom = 0, ttft_ok = 0, tpot_ok = 0, slo_ok = 0;
  // Serving span: first arrival to last completion (not the idle drain).
  // The measured span covers only post-warmup requests so goodput uses the
  // same population as the attainment fractions.
  Seconds first = 0, last = 0, mfirst = 0, mlast = 0;
  bool any = false, many = false;
  for (const RequestRecord& rec : m.records()) {
    const bool in_window = rec.arrival >= opts.warmup;
    if (in_window) ++slo_denom;
    // TTFT is defined for any prefilled request, finished or not (it keeps
    // the prefill tail visible even when decode is still in flight).
    if (in_window && rec.first_token >= 0) ttft.add(rec.ttft());
    if (!rec.finished()) continue;
    if (!any || rec.arrival < first) first = rec.arrival;
    if (!any || rec.finish > last) last = rec.finish;
    any = true;
    if (!in_window) continue;
    if (!many || rec.arrival < mfirst) mfirst = rec.arrival;
    if (!many || rec.finish > mlast) mlast = rec.finish;
    many = true;
    ++rep.measured;
    norm.add(rec.norm_latency());
    if (rec.output_len > 1) tpot.add(rec.tpot());
    if (slo) {
      const bool meets_ttft = meets_ttft_slo(rec, *slo);
      const bool meets_tpot = meets_tpot_slo(rec, *slo);
      if (meets_ttft) ++ttft_ok;
      if (meets_tpot) ++tpot_ok;
      if (meets_ttft && meets_tpot) ++slo_ok;
    }
  }
  rep.norm_latency_mean = norm.mean();
  rep.norm_latency_p95 = norm.p95();
  rep.ttft_p95 = ttft.p95();
  rep.tpot_p95 = tpot.p95();
  rep.makespan = any ? last - first : 0.0;
  rep.throughput = any ? static_cast<double>(rep.finished) / std::max(1e-9, rep.makespan) : 0.0;
  if (slo) {
    rep.slo_set = true;
    rep.slo_ttft = slo->ttft;
    rep.slo_tpot = slo->tpot;
    const double denom = std::max<std::size_t>(1, slo_denom);
    rep.ttft_attainment = static_cast<double>(ttft_ok) / denom;
    rep.tpot_attainment = static_cast<double>(tpot_ok) / denom;
    rep.slo_attainment = static_cast<double>(slo_ok) / denom;
    rep.goodput = many ? static_cast<double>(slo_ok) / std::max(1e-9, mlast - mfirst) : 0.0;
  }
  // Invariant: the drain-timeout warning exists iff truncation occurred; a
  // clean drain reports an empty warning (the sweep tests rely on this).
  assert(rep.drain_timeout_hit ? !rep.warning().empty() : rep.warning().empty());
  return rep;
}

}  // namespace hetis::engine
