// GPU device catalog.
//
// Each GpuSpec carries the physical peak numbers of a device plus three
// *calibration* fractions fitted once against the paper's Table 1
// (OPT-2.7B iteration times on A100 / RTX-3090 / P100).  The fractions
// play the role of the paper's offline Profiler: they capture how much of
// the peak a real serving kernel achieves on that microarchitecture.
//
//   dense_eff        fraction of peak FP16 FLOPs achieved by large GEMMs
//                    (prefill, large-batch decode MLP/QKV/proj)
//   dense_membw_eff  fraction of HBM bandwidth achieved by weight-streaming
//                    GEMV/GEMM kernels in decode (tensor-core-less devices
//                    such as the P100 are very poor here, which is exactly
//                    the paper's 7.93x decode gap)
//   attn_membw_eff   fraction of HBM bandwidth achieved by paged-attention
//                    KV streaming (efficient on all devices; this is why
//                    the paper's Fig. 2b attention gap is only ~3x while
//                    the MLP gap is ~25-40x)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hetis::hw {

/// Identifies a GPU *type* (model line), not an instance.
enum class GpuType : std::uint8_t {
  kA100_80G,
  kRTX3090,
  kP100,
  kV100_32G,
  kT4,
  kL4,
  kA6000,
  kH100_80G,
};

/// Printable short name ("A100", "3090", ...).
const char* to_string(GpuType type);

struct GpuSpec {
  GpuType type;
  std::string name;

  Bytes memory = 0;                 // total device memory
  FlopsPerSec peak_fp16_flops = 0;  // dense tensor peak (FP16/BF16)
  BytesPerSec mem_bandwidth = 0;    // HBM/GDDR peak

  // Calibration (see file header).
  double dense_eff = 0.5;
  double dense_membw_eff = 0.5;
  double attn_membw_eff = 0.5;

  Seconds kernel_overhead = micros(3);  // per-kernel launch + sync cost

  // Per-query-head scheduling/contention cost of the decode-attention
  // kernel (paper Fig. 7c: time grows with #heads at fixed cache because
  // more heads contend for SM and HBM resources).  ~20 ns/head on A100.
  Seconds attn_head_cost = 20e-9;

  /// Effective dense throughput (FLOPs/s) after calibration.
  FlopsPerSec eff_flops() const { return peak_fp16_flops * dense_eff; }
  /// Effective bandwidth for dense weight streaming.
  BytesPerSec eff_dense_bw() const { return mem_bandwidth * dense_membw_eff; }
  /// Effective bandwidth for attention KV streaming.
  BytesPerSec eff_attn_bw() const { return mem_bandwidth * attn_membw_eff; }

  /// Relative compute power used for ordering low-end -> high-end in the
  /// Parallelizer's pruning pass (§4.1).
  double compute_power() const { return eff_flops(); }
};

/// Returns the calibrated spec for a known GPU type.
const GpuSpec& gpu_spec(GpuType type);

/// All catalog entries (for enumeration in tests / planners).
const std::vector<GpuSpec>& gpu_catalog();

/// A physical device instance placed in the cluster.
struct Device {
  int id = -1;        // cluster-unique
  int host = -1;      // host index
  GpuType type{};

  const GpuSpec& spec() const { return gpu_spec(type); }
};

}  // namespace hetis::hw
