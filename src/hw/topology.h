// Cluster topology: hosts, devices, and the link table.
//
// The paper's testbed: one host with 4xA100-80G, two hosts with 2x3090
// each, one host with 4xP100; hosts on a 100 Gbps LAN, GPUs within a host
// on PCIe.  `Cluster::paper_cluster()` builds exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/gpu.h"

namespace hetis::hw {

/// A point-to-point link characterized by the alpha-beta model:
/// transfer(bytes) = latency + bytes / bandwidth.
struct Link {
  Seconds latency = 0;       // alpha
  BytesPerSec bandwidth = 0; // 1/beta

  Seconds transfer_time(Bytes bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

struct Host {
  int id = -1;
  std::string name;
  std::vector<int> device_ids;  // indices into Cluster::devices()
};

/// A description of the hardware: topology (hosts, devices, fabric) plus a
/// live CONDITION overlay.  The topology is immutable after construction --
/// build once, share by reference everywhere -- while the condition overlay
/// (per-device speed ratios, per-device link scales) tracks measured
/// degradation: stragglers, thermal throttling, flaky links.  The overlay
/// defaults to healthy (every ratio 1.0) and is mutated only by the elastic
/// control plane, so uncontrolled runs never observe it changing.
class Cluster {
 public:
  Cluster() = default;

  /// Adds a host with `count` GPUs of `type`; returns the host id.
  int add_host(const std::string& name, GpuType type, int count);

  /// Adds a host with an explicit mixed device list.
  int add_host(const std::string& name, const std::vector<GpuType>& types);

  const std::vector<Device>& devices() const { return devices_; }
  const std::vector<Host>& hosts() const { return hosts_; }
  const Device& device(int id) const { return devices_.at(static_cast<std::size_t>(id)); }
  int num_devices() const { return static_cast<int>(devices_.size()); }

  /// All device ids of a given type, in id order.
  std::vector<int> devices_of_type(GpuType type) const;
  /// Distinct types present, ordered high-end -> low-end by compute power.
  std::vector<GpuType> types_by_power_desc() const;

  /// Link between two devices (intra-host PCIe or inter-host LAN).
  /// a == b yields an infinite-bandwidth zero-latency link.
  Link link(int a, int b) const;

  bool same_host(int a, int b) const;

  /// Sets the fabric parameters.  Defaults: PCIe 16 GB/s @ 5 us,
  /// LAN 12.5 GB/s (100 Gbps) @ 20 us.
  void set_intra_host_link(Link l) { intra_ = l; }
  void set_inter_host_link(Link l) { inter_ = l; }
  const Link& intra_host_link() const { return intra_; }
  const Link& inter_host_link() const { return inter_; }

  /// Per-host intra-host fabric override: host `host` uses `l` for its
  /// device-to-device links instead of the cluster-wide default.  Real
  /// heterogeneous fleets mix NVLink flagships with PCIe boxes; the `dc*`
  /// presets use this so the planner prices interconnect heterogeneity, not
  /// just compute heterogeneity.  Preserved by subcluster().
  void set_host_intra_link(int host, Link l);
  /// The intra-host link host `host` actually uses (override or default).
  const Link& host_intra_link(int host) const;

  /// Total memory across all devices.
  Bytes total_memory() const;

  /// Live condition overlay: device `id` currently runs at `ratio` of its
  /// nameplate speed (1.0 = healthy, 0.35 = a straggler at 35%).  The cost
  /// model divides compute times by this ratio; the planners consume it so
  /// mid-run plans reflect measured -- not nameplate -- hardware.  Ratios
  /// must be in (0, 1]; setting 1.0 erases the entry (restores health).
  /// Throws std::invalid_argument on out-of-range id or ratio.
  void set_device_speed(int id, double ratio);
  /// The current speed ratio of device `id` (1.0 when healthy).
  double device_speed(int id) const;

  /// Live condition overlay for the fabric: every link incident to device
  /// `id` runs at `scale` of its nameplate bandwidth (a flaky NIC or PCIe
  /// riser degrades all of that device's traffic).  link() applies the
  /// worse endpoint's scale.  Same (0, 1] contract as set_device_speed.
  void set_device_link_scale(int id, double scale);
  /// The current link bandwidth scale of device `id` (1.0 when healthy).
  double device_link_scale(int id) const;

  /// True when any device carries a speed ratio or link scale below 1.0.
  bool degraded() const { return !speed_ratio_.empty() || !link_scale_.empty(); }

  /// Monotonic generation counter for the condition overlay: bumped on every
  /// set_device_speed / set_device_link_scale call (even no-op resets to
  /// 1.0).  Cost-model memo tables key their validity on this -- a cached
  /// evaluation is only reusable while the overlay that priced it is
  /// unchanged -- so callers compare epochs instead of diffing the maps.
  std::uint64_t condition_epoch() const { return condition_epoch_; }

  /// Builds the sub-cluster containing exactly `device_ids` of this
  /// cluster, renumbered 0..n-1 in the given order.  Host structure,
  /// fabric parameters and the degradation overlay (speed ratios / link
  /// scales of the kept devices) are preserved (hosts that lose every
  /// device are dropped).  When `original_ids` is non-null it receives the new-id ->
  /// original-id mapping, so plans computed on the sub-cluster can be
  /// remapped back onto this cluster's device ids.  Used by the elastic
  /// control plane to replan over the surviving device set after churn.
  /// Throws std::invalid_argument on empty, duplicate or out-of-range ids.
  Cluster subcluster(const std::vector<int>& device_ids,
                     std::vector<int>* original_ids = nullptr) const;

  /// The paper's evaluation cluster (§7.1).
  static Cluster paper_cluster();

  /// A small single-host mixed cluster used by the Fig. 14 ablation:
  /// one A100 plus two 3090s.
  static Cluster ablation_cluster();

  /// Synthetic large cluster: `types` GPU kinds x `per_type` devices,
  /// 4 GPUs per host.  Used by the search-overhead experiment (§7.4).
  static Cluster synthetic_cluster(const std::vector<GpuType>& types, int per_type);

  std::string to_string() const;

 private:
  std::vector<Device> devices_;
  std::vector<Host> hosts_;
  Link intra_{micros(5), 16e9};
  Link inter_{micros(20), 12.5e9};
  std::map<int, Link> host_intra_;  // per-host overrides (see set_host_intra_link)
  // Degradation overlay, sparse: only devices below 1.0 carry an entry, so
  // the healthy fast path (every run without degradation churn) stays a
  // pair of empty-map checks.
  std::map<int, double> speed_ratio_;
  std::map<int, double> link_scale_;
  std::uint64_t condition_epoch_ = 0;
};

}  // namespace hetis::hw
