#include "hw/gpu.h"

#include <stdexcept>

namespace hetis::hw {

const char* to_string(GpuType type) {
  switch (type) {
    case GpuType::kA100_80G: return "A100";
    case GpuType::kRTX3090: return "3090";
    case GpuType::kP100: return "P100";
    case GpuType::kV100_32G: return "V100";
    case GpuType::kT4: return "T4";
    case GpuType::kL4: return "L4";
    case GpuType::kA6000: return "A6000";
    case GpuType::kH100_80G: return "H100";
  }
  return "?";
}

namespace {

// Calibration notes (targets are the paper's Table 1; OPT-2.7B, prefill
// batch 3 x 256 tokens, decode batch 25 @ ctx 256):
//   A100 : prefill 0.060 s, decode 0.0097 s    (reference device)
//   3090 : prefill 2.45x A100, decode 1.47x
//   P100 : prefill 24.5x A100, decode 7.93x
// bench_table1_device_gap verifies the reproduction.
std::vector<GpuSpec> make_catalog() {
  std::vector<GpuSpec> specs;

  specs.push_back(GpuSpec{
      .type = GpuType::kA100_80G,
      .name = "A100",
      .memory = 80 * GiB,
      .peak_fp16_flops = 312 * TERA,
      .mem_bandwidth = 2039e9,
      .dense_eff = 0.50,
      .dense_membw_eff = 0.55,
      .attn_membw_eff = 0.55,
      .kernel_overhead = micros(3),
      .attn_head_cost = 20e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kRTX3090,
      .name = "3090",
      .memory = 24 * GiB,
      .peak_fp16_flops = 142 * TERA,
      .mem_bandwidth = 936e9,
      .dense_eff = 0.45,
      .dense_membw_eff = 0.60,
      .attn_membw_eff = 0.65,
      .kernel_overhead = micros(4),
      .attn_head_cost = 45e-9,
  });
  specs.push_back(GpuSpec{
      // The paper's cluster hosts the 12 GB PCIe variant.
      .type = GpuType::kP100,
      .name = "P100",
      .memory = 12 * GiB,
      .peak_fp16_flops = 19.05 * TERA,
      .mem_bandwidth = 549e9,      // 12GB variant bandwidth
      .dense_eff = 0.33,           // no tensor cores; poor GEMM efficiency
      .dense_membw_eff = 0.22,     // decode GEMV on Pascal is notoriously bad
      .attn_membw_eff = 0.62,      // streaming attention is still fine
      .kernel_overhead = micros(8),
      .attn_head_cost = 110e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kV100_32G,
      .name = "V100",
      .memory = 32 * GiB,
      .peak_fp16_flops = 125 * TERA,
      .mem_bandwidth = 900e9,
      .dense_eff = 0.45,
      .dense_membw_eff = 0.55,
      .attn_membw_eff = 0.58,
      .kernel_overhead = micros(4),
      .attn_head_cost = 40e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kT4,
      .name = "T4",
      .memory = 16 * GiB,
      .peak_fp16_flops = 65 * TERA,
      .mem_bandwidth = 300e9,
      .dense_eff = 0.35,
      .dense_membw_eff = 0.50,
      .attn_membw_eff = 0.60,
      .kernel_overhead = micros(6),
      .attn_head_cost = 90e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kL4,
      .name = "L4",
      .memory = 24 * GiB,
      .peak_fp16_flops = 121 * TERA,
      .mem_bandwidth = 300e9,
      .dense_eff = 0.45,
      .dense_membw_eff = 0.55,
      .attn_membw_eff = 0.62,
      .kernel_overhead = micros(4),
      .attn_head_cost = 60e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kA6000,
      .name = "A6000",
      .memory = 48 * GiB,
      .peak_fp16_flops = 155 * TERA,
      .mem_bandwidth = 768e9,
      .dense_eff = 0.47,
      .dense_membw_eff = 0.58,
      .attn_membw_eff = 0.62,
      .kernel_overhead = micros(4),
      .attn_head_cost = 45e-9,
  });
  specs.push_back(GpuSpec{
      .type = GpuType::kH100_80G,
      .name = "H100",
      .memory = 80 * GiB,
      .peak_fp16_flops = 989 * TERA,
      .mem_bandwidth = 3350e9,
      .dense_eff = 0.50,
      .dense_membw_eff = 0.60,
      .attn_membw_eff = 0.60,
      .kernel_overhead = micros(3),
      .attn_head_cost = 12e-9,
  });
  return specs;
}

}  // namespace

const std::vector<GpuSpec>& gpu_catalog() {
  static const std::vector<GpuSpec> catalog = make_catalog();
  return catalog;
}

const GpuSpec& gpu_spec(GpuType type) {
  for (const auto& s : gpu_catalog()) {
    if (s.type == type) return s;
  }
  throw std::out_of_range("gpu_spec: unknown GpuType");
}

}  // namespace hetis::hw
