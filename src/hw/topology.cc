#include "hw/topology.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hetis::hw {

int Cluster::add_host(const std::string& name, GpuType type, int count) {
  return add_host(name, std::vector<GpuType>(static_cast<std::size_t>(count), type));
}

int Cluster::add_host(const std::string& name, const std::vector<GpuType>& types) {
  Host host;
  host.id = static_cast<int>(hosts_.size());
  host.name = name;
  for (GpuType t : types) {
    Device d;
    d.id = static_cast<int>(devices_.size());
    d.host = host.id;
    d.type = t;
    host.device_ids.push_back(d.id);
    devices_.push_back(d);
  }
  hosts_.push_back(std::move(host));
  return hosts_.back().id;
}

std::vector<int> Cluster::devices_of_type(GpuType type) const {
  std::vector<int> out;
  for (const auto& d : devices_) {
    if (d.type == type) out.push_back(d.id);
  }
  return out;
}

std::vector<GpuType> Cluster::types_by_power_desc() const {
  std::vector<GpuType> types;
  for (const auto& d : devices_) {
    if (std::find(types.begin(), types.end(), d.type) == types.end()) types.push_back(d.type);
  }
  std::sort(types.begin(), types.end(), [](GpuType a, GpuType b) {
    return gpu_spec(a).compute_power() > gpu_spec(b).compute_power();
  });
  return types;
}

bool Cluster::same_host(int a, int b) const { return device(a).host == device(b).host; }

Link Cluster::link(int a, int b) const {
  if (a == b) return Link{0.0, std::numeric_limits<double>::infinity()};
  Link l = same_host(a, b) ? host_intra_link(device(a).host) : inter_;
  if (!link_scale_.empty()) {
    // A transfer is gated by its worse endpoint; healthy clusters skip this
    // entirely so undegraded runs keep their exact historical link values.
    const double scale = std::min(device_link_scale(a), device_link_scale(b));
    if (scale != 1.0) l.bandwidth *= scale;
  }
  return l;
}

namespace {

void check_ratio(double ratio, const char* what) {
  if (!(ratio > 0.0) || ratio > 1.0) {
    throw std::invalid_argument(std::string("Cluster::") + what +
                                ": ratio must be in (0, 1], got " + std::to_string(ratio));
  }
}

}  // namespace

void Cluster::set_device_speed(int id, double ratio) {
  if (id < 0 || static_cast<std::size_t>(id) >= devices_.size()) {
    throw std::invalid_argument("Cluster::set_device_speed: device id out of range");
  }
  check_ratio(ratio, "set_device_speed");
  ++condition_epoch_;
  if (ratio == 1.0) {
    speed_ratio_.erase(id);
  } else {
    speed_ratio_[id] = ratio;
  }
}

double Cluster::device_speed(int id) const {
  auto it = speed_ratio_.find(id);
  return it == speed_ratio_.end() ? 1.0 : it->second;
}

void Cluster::set_device_link_scale(int id, double scale) {
  if (id < 0 || static_cast<std::size_t>(id) >= devices_.size()) {
    throw std::invalid_argument("Cluster::set_device_link_scale: device id out of range");
  }
  check_ratio(scale, "set_device_link_scale");
  ++condition_epoch_;
  if (scale == 1.0) {
    link_scale_.erase(id);
  } else {
    link_scale_[id] = scale;
  }
}

double Cluster::device_link_scale(int id) const {
  auto it = link_scale_.find(id);
  return it == link_scale_.end() ? 1.0 : it->second;
}

void Cluster::set_host_intra_link(int host, Link l) {
  if (host < 0 || static_cast<std::size_t>(host) >= hosts_.size()) {
    throw std::invalid_argument("Cluster::set_host_intra_link: host id out of range");
  }
  host_intra_[host] = l;
}

const Link& Cluster::host_intra_link(int host) const {
  if (host < 0 || static_cast<std::size_t>(host) >= hosts_.size()) {
    throw std::invalid_argument("Cluster::host_intra_link: host id out of range");
  }
  auto it = host_intra_.find(host);
  return it == host_intra_.end() ? intra_ : it->second;
}

Bytes Cluster::total_memory() const {
  Bytes total = 0;
  for (const auto& d : devices_) total += d.spec().memory;
  return total;
}

Cluster Cluster::subcluster(const std::vector<int>& device_ids,
                            std::vector<int>* original_ids) const {
  if (device_ids.empty()) throw std::invalid_argument("Cluster::subcluster: empty device set");
  std::vector<bool> seen(devices_.size(), false);
  for (int id : device_ids) {
    if (id < 0 || static_cast<std::size_t>(id) >= devices_.size()) {
      throw std::invalid_argument("Cluster::subcluster: device id out of range");
    }
    if (seen[static_cast<std::size_t>(id)]) {
      throw std::invalid_argument("Cluster::subcluster: duplicate device id");
    }
    seen[static_cast<std::size_t>(id)] = true;
  }

  Cluster sub;
  sub.intra_ = intra_;
  sub.inter_ = inter_;
  // Hosts are emitted in original host order so inter/intra-host structure
  // (and therefore link selection) matches the parent cluster.
  std::vector<int> new_ids;
  for (const Host& host : hosts_) {
    std::vector<GpuType> kept_types;
    std::vector<int> kept_ids;
    for (int id : host.device_ids) {
      if (seen[static_cast<std::size_t>(id)]) {
        kept_types.push_back(device(id).type);
        kept_ids.push_back(id);
      }
    }
    if (kept_types.empty()) continue;
    int new_host = sub.add_host(host.name, kept_types);
    auto it = host_intra_.find(host.id);
    if (it != host_intra_.end()) sub.host_intra_[new_host] = it->second;
    new_ids.insert(new_ids.end(), kept_ids.begin(), kept_ids.end());
  }
  // Carry the degradation overlay onto the renumbered ids: a replan over
  // the surviving devices must see the same measured hardware the parent
  // cluster does, or the planner would price a straggler at nameplate.
  for (std::size_t new_id = 0; new_id < new_ids.size(); ++new_id) {
    const int old_id = new_ids[new_id];
    auto sp = speed_ratio_.find(old_id);
    if (sp != speed_ratio_.end()) sub.speed_ratio_[static_cast<int>(new_id)] = sp->second;
    auto ls = link_scale_.find(old_id);
    if (ls != link_scale_.end()) sub.link_scale_[static_cast<int>(new_id)] = ls->second;
  }
  if (original_ids) *original_ids = new_ids;
  return sub;
}

Cluster Cluster::paper_cluster() {
  Cluster c;
  c.add_host("host-a100", GpuType::kA100_80G, 4);
  c.add_host("host-3090-a", GpuType::kRTX3090, 2);
  c.add_host("host-3090-b", GpuType::kRTX3090, 2);
  c.add_host("host-p100", GpuType::kP100, 4);
  return c;
}

Cluster Cluster::ablation_cluster() {
  Cluster c;
  c.add_host("host-a100", GpuType::kA100_80G, 1);
  c.add_host("host-3090", GpuType::kRTX3090, 2);
  return c;
}

Cluster Cluster::synthetic_cluster(const std::vector<GpuType>& types, int per_type) {
  Cluster c;
  constexpr int kGpusPerHost = 4;
  for (GpuType t : types) {
    int remaining = per_type;
    int host_idx = 0;
    while (remaining > 0) {
      int n = std::min(kGpusPerHost, remaining);
      std::ostringstream name;
      name << "host-" << hw::to_string(t) << "-" << host_idx++;
      c.add_host(name.str(), t, n);
      remaining -= n;
    }
  }
  return c;
}

std::string Cluster::to_string() const {
  std::ostringstream oss;
  oss << "Cluster{" << hosts_.size() << " hosts, " << devices_.size() << " devices:";
  for (const auto& h : hosts_) {
    oss << " [" << h.name << ":";
    for (int id : h.device_ids) oss << " " << hw::to_string(device(id).type);
    oss << "]";
  }
  oss << "}";
  return oss.str();
}

}  // namespace hetis::hw
