// HetisEngine: the paper's system (§3-§6) assembled on the simulation
// substrate.
//
// Pipeline: Profiler fits Eq. 3/4 per device -> Parallelizer (§4.1) selects
// primary stages + Attention workers -> each instance runs continuous
// batching where decode Attention is placed per request, at head
// granularity, by the Dispatcher's LP (§5.2), re-balanced online (§5.3),
// with KV movement executed by the Hauler on a low-priority channel (§6).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "costmodel/profiler.h"
#include "dispatch/dispatcher.h"
#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/options.h"
#include "engine/reconfigurable.h"
#include "hauler/hauler.h"
#include "parallel/parallelizer.h"

namespace hetis::core {

/// Hetis's knobs live in engine/options.h so the registry front-end can
/// carry them without including this header; the historical name remains.
using HetisOptions = engine::HetisConfig;

class HetisInstance;

class HetisEngine : public engine::Engine, public engine::Reconfigurable {
 public:
  HetisEngine(const hw::Cluster& cluster, const model::ModelSpec& model, HetisOptions opts = {});
  /// With an externally-fixed plan (ablations / tests).
  HetisEngine(const hw::Cluster& cluster, const model::ModelSpec& model, HetisOptions opts,
              parallel::ParallelPlan plan);
  ~HetisEngine() override;

  std::string name() const override { return "Hetis"; }
  void start(sim::Simulation& sim) override;
  void submit(sim::Simulation& sim, const workload::Request& r) override;
  Bytes usable_kv_capacity() const override;
  double kv_fill_fraction() const override;
  /// Sums solver-workspace stats over live AND retired instances (a
  /// reconfigure must not zero the cumulative counters) plus the shared
  /// cost-model caches.
  engine::PerfCounters perf_counters() const override;

  /// Per-tenant admission priorities (engine/options.h); call before the
  /// first submit.  Survives reconfiguration.
  void set_tenant_priorities(std::vector<int> priorities);

  // Reconfigurable: dynamic parallelism (§5.3) applied to cluster churn --
  // the Parallelizer re-plans over the new device set and prefilled
  // requests LIVE-MIGRATE: their KV moves through the Hauler and decoding
  // resumes with progress intact (no dead window, no recompute unless the
  // new deployment cannot host them).
  std::vector<int> active_devices() const override;
  void reconfigure(sim::Simulation& sim, const std::vector<int>& devices) override;
  /// Subsequent replans (and only replans -- the running deployment is not
  /// torn down) search under this objective; the control plane's
  /// SLO-attainment policy passes the latency objective here.
  void set_plan_objective(const parallel::ObjectiveSpec& objective) override;
  /// Selects the placement tier ("exhaustive" | "flow" | "auto") subsequent
  /// replans run through.  Validates eagerly: a typo fails here, not
  /// mid-churn on a replan.
  void set_planner(const std::string& planner) override;
  /// Degradation response (§4.1's Delta-pruning applied online): replan
  /// over the CURRENT device set -- the shared cluster's condition overlay
  /// makes the cost model price measured hardware -- and re-deploy only if
  /// the layout changed.  A straggling primary is typically DEMOTED to an
  /// Attention worker (memory-bound attention tolerates a slow device far
  /// better than the dense pipeline does), never dropped.
  void on_degradation(sim::Simulation& sim) override;
  /// Preemption warning: re-deploys without the doomed device while its KV
  /// is still readable, so the Hauler pre-migrates during the lead window
  /// and the actual gpu_leave finds nothing left to rescue.
  void on_preempt_notice(sim::Simulation& sim, int device, Seconds leave_time) override;
  const engine::ReconfigStats& reconfig_stats() const override { return stats_; }
  const parallel::SearchDiagnostics* last_search_diagnostics() const override {
    return &search_diag_;
  }
  /// "hetis:<n>inst[pp<stages>/dev<count>+<w>aw,...]" -- the audit trail's
  /// plan diff.
  std::string plan_digest() const override;

  const parallel::ParallelPlan& plan() const { return plan_; }
  /// The objective the next plan search would use (construction value until
  /// set_plan_objective overrides it).
  const parallel::ObjectiveSpec& plan_objective() const { return opts_.search.objective; }
  /// Diagnostics of the most recent plan search (whichever planner tier ran
  /// it); default-constructed when the engine serves on an externally
  /// pinned plan.
  const parallel::SearchDiagnostics& search_diagnostics() const { return search_diag_; }
  const costmodel::ProfileResult& profile() const { return profile_; }
  Bytes migrated_bytes() const { return hauler_.total_bytes(); }
  std::int64_t migrations() const { return hauler_.total_migrations(); }
  int rescue_redispatches() const;
  int balance_redispatches() const;

 private:
  void build_instances(const hw::Cluster& cluster, const model::ModelSpec& model);
  /// Least-filled-instance routing shared by submit and re-admission.
  HetisInstance* least_filled();
  /// Runs the configured planner tier over the subcluster of `devices` and
  /// remaps the result back onto construction-cluster ids.  Pure planning:
  /// does not touch the running deployment (so on_degradation can compare
  /// before committing).
  parallel::ParallelPlan compute_plan(const std::vector<int>& devices);
  /// Tears down the current instances, installs `plan`, live-migrates what
  /// it can (see reconfigure's contract).
  void apply_plan(sim::Simulation& sim, parallel::ParallelPlan plan);

  HetisOptions opts_;
  engine::ExecModel exec_;
  parallel::ParallelPlan plan_;
  parallel::SearchDiagnostics search_diag_;
  costmodel::ProfileResult profile_;
  hauler::Hauler hauler_;
  std::vector<int> tenant_priorities_;
  std::vector<std::unique_ptr<HetisInstance>> instances_;
  // Instances retired by reconfigure stay alive until the engine dies so
  // their still-scheduled simulation events remain safe no-ops.
  std::vector<std::unique_ptr<HetisInstance>> retired_;
  engine::ReconfigStats stats_;
  // Owner of the self-chaining usage-sampling event (see start()); the
  // scheduled copies hold only weak_ptrs, so no reference cycle survives
  // the engine.
  std::shared_ptr<std::function<void()>> usage_chain_;
};

/// One Hetis serving instance (primary pipeline + attention-worker pool).
class HetisInstance {
 public:
  HetisInstance(const engine::ExecModel& exec, const parallel::InstanceConfig& cfg,
                const costmodel::ProfileResult& profile, engine::MetricsCollector& metrics,
                hauler::Hauler& hauler, const HetisOptions& opts, int id);

  void submit(sim::Simulation& sim, const workload::Request& r);
  void sample_usage(sim::Simulation& sim);

  /// Enqueues an unprefilled request carried over from a retired
  /// deployment (no arrival recording; keeps the original request state).
  void enqueue(sim::Simulation& sim, engine::LiveRequest lr);

  /// Adopts a prefilled request with decode progress intact (elastic live
  /// migration): its heads are dispatched into this instance and decoding
  /// stays suspended until `resume_at` (the Hauler's KV-landing time).
  /// Returns false when the dispatcher cannot host the request.
  bool adopt(sim::Simulation& sim, const engine::LiveRequest& lr, Seconds resume_at);

  /// Per-tenant admission priorities (empty = FCFS).
  void set_tenant_priorities(std::vector<int> priorities) {
    priorities_ = std::move(priorities);
  }

  /// Retires this instance for elastic reconfiguration (see
  /// PipelineInstance::retire for the contract).
  engine::DrainedRequests retire();

  /// Representative primary device (Hauler endpoint for migrations).
  int primary_device() const { return cfg_.stages.front().devices.front(); }

  /// Fill fraction for routing (max over logical devices).
  double fill_fraction() const;
  Bytes kv_capacity() const;

  int rescue_redispatches() const { return rescue_count_; }
  int balance_redispatches() const { return balance_count_; }
  const dispatch::Dispatcher& dispatcher() const { return dispatcher_; }

 private:
  void kick(sim::Simulation& sim);   // alias of pump
  void pump(sim::Simulation& sim);   // pipelined iteration issue
  void finish_prefill(sim::Simulation& sim, std::vector<engine::LiveRequest> batch);
  void finish_decode(sim::Simulation& sim, std::vector<workload::RequestId> decoded);
  void resolve_memory_pressure(sim::Simulation& sim);
  void maybe_rebalance(sim::Simulation& sim);
  void preempt(sim::Simulation& sim, workload::RequestId id);
  /// Iterator to the first running request with id >= `id`.
  std::vector<engine::LiveRequest>::iterator running_lower_bound(workload::RequestId id);
  /// Inserts (or replaces) `lr` in running_, keeping the id order.
  void insert_running(engine::LiveRequest lr);
  /// Post-prefill: ship offloaded heads' prompt KV to workers; returns the
  /// completion time (== now when nothing is offloaded).
  Seconds ship_offloaded_kv(sim::Simulation& sim, workload::RequestId id);
  /// Executes a planned rebalance: apply + migrate + suspend the victim.
  void execute_rebalance(sim::Simulation& sim, const dispatch::Rebalance& rb);

  dispatch::DispatcherConfig make_dispatcher_config(const parallel::InstanceConfig& cfg,
                                                    const costmodel::ProfileResult& profile,
                                                    const HetisOptions& opts) const;

  const engine::ExecModel* exec_;
  parallel::InstanceConfig cfg_;
  engine::MetricsCollector* metrics_;
  hauler::Hauler* hauler_;
  HetisOptions opts_;
  int id_;

  dispatch::Dispatcher dispatcher_;
  std::deque<engine::LiveRequest> waiting_;
  // Sorted by request id: the decode loop walks it in id order (the same
  // order the historical std::map storage iterated), and the batch is
  // bounded by max_batch so binary-search + shifting beats node churn.
  std::vector<engine::LiveRequest> running_;
  // Requests inside an in-flight prefill iteration (see
  // PipelineInstance::prefilling_ for why retire() needs this).  Unordered;
  // retire() sorts its output.
  std::vector<engine::LiveRequest> prefilling_;
  std::map<workload::RequestId, Seconds> suspended_until_;
  std::vector<int> priorities_;  // per-tenant admission priorities
  bool retired_ = false;         // pending events become no-ops
  int inflight_ = 0;
  bool decode_inflight_ = false;
  bool wake_scheduled_ = false;
  Seconds head_free_ = 0;
  Seconds decode_done_ = 0;
  std::int64_t decode_iterations_ = 0;
  int rescue_count_ = 0;
  int balance_count_ = 0;

  // Hot-path scratch (see PipelineInstance): lifecycle events buffer in
  // batch_ and flush before each event handler returns; the containers
  // below recycle capacity so steady-state iterations allocate nothing.
  engine::MetricsBatch batch_;
  parallel::InstanceConfig primary_only_;  // prefill runs on primary stages
  engine::IterationTime scratch_it_;
  std::vector<std::int64_t> scratch_lens_;
  std::vector<std::pair<workload::RequestId, std::int64_t>> scratch_one_;
  std::vector<std::vector<engine::LiveRequest>> batch_pool_;
  std::vector<std::vector<workload::RequestId>> decoded_pool_;
};

}  // namespace hetis::core
