#include "hetis/hetis_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "planner/planner.h"

namespace hetis::core {

namespace {

/// Applies the Fig. 16(b) error-injection: each fitted coefficient is
/// scaled by (1 +- profile_error), sign chosen by a seeded coin so errors
/// do not systematically cancel.
costmodel::ProfileResult inject_error(costmodel::ProfileResult profile, double err,
                                      std::uint64_t seed,
                                      HetisOptions::ErrorTarget target) {
  if (err == 0.0) return profile;
  using ET = HetisOptions::ErrorTarget;
  Rng rng(seed ^ 0xE44Au);
  auto sign = [&rng] { return rng.bernoulli(0.5) ? 1.0 : -1.0; };
  auto err_if = [&](ET which) {
    double s = err * sign();  // consume the stream deterministically
    return (target == ET::kAll || target == which) ? s : 0.0;
  };
  for (auto& [dev, prof] : profile.devices) {
    prof.attn = prof.attn.perturbed(err_if(ET::kA), err_if(ET::kB), err_if(ET::kC));
  }
  for (auto& [link, prof] : profile.links) {
    prof.transfer = prof.transfer.perturbed(err_if(ET::kGamma), err_if(ET::kBeta));
  }
  return profile;
}

}  // namespace

HetisEngine::HetisEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                         HetisOptions opts)
    : opts_(opts), exec_(cluster, model), hauler_(cluster) {
  if (opts_.plan) {
    plan_ = *opts_.plan;
  } else {
    auto planner = planner::make(opts_.search.planner, cluster, model, opts_.search);
    plan_ = planner->plan(opts_.workload);
    search_diag_ = planner->diagnostics();
  }
  costmodel::ProfilerOptions popts;
  popts.seed = opts_.profile_seed;
  costmodel::Profiler profiler(cluster, model, popts);
  profile_ = inject_error(profiler.profile_all(), opts_.profile_error, opts_.profile_seed,
                          opts_.profile_error_target);
  build_instances(cluster, model);
}

HetisEngine::HetisEngine(const hw::Cluster& cluster, const model::ModelSpec& model,
                         HetisOptions opts, parallel::ParallelPlan plan)
    : opts_(opts), exec_(cluster, model), plan_(std::move(plan)), hauler_(cluster) {
  costmodel::ProfilerOptions popts;
  popts.seed = opts_.profile_seed;
  costmodel::Profiler profiler(cluster, model, popts);
  profile_ = inject_error(profiler.profile_all(), opts_.profile_error, opts_.profile_seed,
                          opts_.profile_error_target);
  build_instances(cluster, model);
}

HetisEngine::~HetisEngine() = default;

void HetisEngine::build_instances(const hw::Cluster& cluster, const model::ModelSpec& model) {
  (void)cluster;
  (void)model;
  int id = static_cast<int>(retired_.size()) * 8;  // distinct ids per epoch
  for (const auto& inst : plan_.instances) {
    instances_.push_back(std::make_unique<HetisInstance>(exec_, inst, profile_, metrics_,
                                                         hauler_, opts_, id++));
    instances_.back()->set_tenant_priorities(tenant_priorities_);
  }
}

void HetisEngine::set_plan_objective(const parallel::ObjectiveSpec& objective) {
  parallel::make_objective(objective);  // validate eagerly: a typo must fail
                                        // here, not mid-churn on a replan
  opts_.search.objective = objective;
}

void HetisEngine::set_planner(const std::string& planner) {
  planner::validate(planner);  // same eager-failure contract as objectives
  opts_.search.planner = planner;
}

void HetisEngine::set_tenant_priorities(std::vector<int> priorities) {
  tenant_priorities_ = std::move(priorities);
  for (auto& inst : instances_) inst->set_tenant_priorities(tenant_priorities_);
}

void HetisEngine::start(sim::Simulation& sim) {
  if (opts_.sample_interval > 0) {
    // Periodic Fig. 14 usage sampling via a self-chaining event.  The
    // engine owns the chain; the lambda re-schedules through a weak_ptr so
    // the closure does not keep itself alive (a shared_ptr capture here is
    // a reference cycle that LeakSanitizer rightly reports).
    usage_chain_ = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = usage_chain_;
    *usage_chain_ = [this, &sim, weak]() {
      for (auto& inst : instances_) inst->sample_usage(sim);
      if (opts_.sample_horizon <= 0 || sim.now() < opts_.sample_horizon) {
        if (auto chain = weak.lock()) sim.schedule_in(opts_.sample_interval, *chain);
      }
    };
    sim.schedule_in(opts_.sample_interval, *usage_chain_);
  }
}

HetisInstance* HetisEngine::least_filled() {
  HetisInstance* best = instances_.front().get();
  for (auto& inst : instances_) {
    if (inst->fill_fraction() < best->fill_fraction()) best = inst.get();
  }
  return best;
}

void HetisEngine::submit(sim::Simulation& sim, const workload::Request& r) {
  metrics_.on_arrival(r);
  least_filled()->submit(sim, r);
}

std::string HetisEngine::plan_digest() const {
  std::ostringstream os;
  os << "hetis:" << plan_.instances.size() << "inst[";
  for (std::size_t i = 0; i < plan_.instances.size(); ++i) {
    const parallel::InstanceConfig& inst = plan_.instances[i];
    os << (i ? "," : "") << "pp" << inst.stages.size() << "/dev" << inst.primary_devices().size()
       << "+" << inst.attention_workers.size() << "aw";
  }
  os << "]";
  return os.str();
}

std::vector<int> HetisEngine::active_devices() const {
  std::vector<int> devs;
  for (const auto& inst : plan_.instances) {
    for (int d : inst.primary_devices()) devs.push_back(d);
    devs.insert(devs.end(), inst.attention_workers.begin(), inst.attention_workers.end());
  }
  std::sort(devs.begin(), devs.end());
  return devs;
}

parallel::ParallelPlan HetisEngine::compute_plan(const std::vector<int>& devices) {
  // §5.3 applied to churn: re-plan over the device set through the
  // configured planner tier (the search itself is sub-second and off the
  // serving critical path).  subcluster() carries the degradation overlay,
  // so the search prices measured -- not nameplate -- hardware.
  std::vector<int> original_ids;
  hw::Cluster sub = exec_.cluster().subcluster(devices, &original_ids);
  auto planner = planner::make(opts_.search.planner, sub, exec_.model_spec(), opts_.search);
  parallel::ParallelPlan plan = planner->plan(opts_.workload);
  search_diag_ = planner->diagnostics();
  parallel::remap_device_ids(plan, original_ids);
  return plan;
}

void HetisEngine::reconfigure(sim::Simulation& sim, const std::vector<int>& devices) {
  // Plan BEFORE draining: an infeasible device set throws here and leaves
  // the running deployment untouched.
  apply_plan(sim, compute_plan(devices));
}

void HetisEngine::on_degradation(sim::Simulation& sim) {
  // The device set is unchanged -- only its measured condition moved.
  // Replan over the same devices and commit only a genuine layout change
  // (typically the straggler demoted from a primary stage to an Attention
  // worker); an identical plan means the degradation was not worth a
  // migration cycle.
  parallel::ParallelPlan fresh = compute_plan(active_devices());
  if (fresh == plan_) return;
  apply_plan(sim, std::move(fresh));
}

void HetisEngine::on_preempt_notice(sim::Simulation& sim, int device, Seconds leave_time) {
  (void)leave_time;  // the lead window is implicit: act NOW, leave later
  std::vector<int> devices = active_devices();
  auto it = std::find(devices.begin(), devices.end(), device);
  if (it == devices.end()) return;  // not serving on it: nothing at risk
  if (devices.size() <= 1) return;  // nowhere to evacuate to
  devices.erase(it);
  // Re-deploy without the doomed device while its KV is still readable:
  // apply_plan's migrations ride the Hauler during the lead window, so the
  // later kGpuLeave sees an idle device and costs nothing.
  reconfigure(sim, devices);
}

void HetisEngine::apply_plan(sim::Simulation& sim, parallel::ParallelPlan plan) {
  // Drain the current deployment.  Prefilled requests keep their decode
  // progress; each remembers its old primary device as the KV source.
  struct Carried {
    engine::LiveRequest lr;
    int src_device;
  };
  std::vector<Carried> live;
  std::vector<engine::LiveRequest> fresh;
  for (auto& inst : instances_) {
    const int src = inst->primary_device();
    engine::DrainedRequests d = inst->retire();
    for (auto& lr : d.fresh) fresh.push_back(std::move(lr));
    for (auto& lr : d.live) live.push_back(Carried{std::move(lr), src});
    retired_.push_back(std::move(inst));
  }
  instances_.clear();
  std::sort(live.begin(), live.end(),
            [](const Carried& a, const Carried& b) { return a.lr.req.id < b.lr.req.id; });

  plan_ = std::move(plan);
  build_instances(exec_.cluster(), exec_.model_spec());
  ++stats_.reconfigurations;

  const model::ModelSpec& m = exec_.model_spec();
  // Live-migrate prefilled requests: ship their KV to the new deployment
  // through the Hauler and resume decoding once it lands.  Requests the new
  // deployment cannot host fall back to recompute.
  for (auto& c : live) {
    HetisInstance* dst = least_filled();
    const Bytes kv = m.kv_bytes_per_token() * c.lr.context();
    const Seconds done = hauler_.migrate(c.src_device, dst->primary_device(), kv, sim.now());
    if (dst->adopt(sim, c.lr, done)) {
      metrics_.on_migrate(c.lr.req.id, sim.now(), done, c.src_device, dst->primary_device());
      ++stats_.migrated_requests;
      stats_.migrated_kv_bytes += kv;
    } else {
      metrics_.on_preemption(c.lr.req.id, sim.now());
      ++stats_.restarted_requests;
      c.lr.prefilled = false;
      c.lr.generated = 0;
      fresh.push_back(c.lr);
    }
  }
  // Fresh requests (waiting, mid-prefill, or migration fallbacks) re-queue
  // in arrival order.
  std::sort(fresh.begin(), fresh.end(),
            [](const engine::LiveRequest& a, const engine::LiveRequest& b) {
              return a.req.id < b.req.id;
            });
  for (auto& lr : fresh) least_filled()->enqueue(sim, std::move(lr));
}

Bytes HetisEngine::usable_kv_capacity() const {
  // Head-wise placement makes every byte of every pool usable (§2.4 O2).
  Bytes total = 0;
  for (const auto& inst : instances_) total += inst->kv_capacity();
  return total;
}

double HetisEngine::kv_fill_fraction() const {
  double worst = 0;
  for (const auto& inst : instances_) worst = std::max(worst, inst->fill_fraction());
  return worst;
}

engine::PerfCounters HetisEngine::perf_counters() const {
  engine::PerfCounters pc;
  for (const auto& inst : instances_) {
    const lp::WorkspaceStats& s = inst->dispatcher().lp_stats();
    pc.lp_solves += s.solves;
    pc.lp_warm_hits += s.warm_hits;
  }
  for (const auto& inst : retired_) {
    const lp::WorkspaceStats& s = inst->dispatcher().lp_stats();
    pc.lp_solves += s.solves;
    pc.lp_warm_hits += s.warm_hits;
  }
  pc.costmodel_hits = exec_.cost_cache_hits();
  return pc;
}

int HetisEngine::rescue_redispatches() const {
  int n = 0;
  for (const auto& inst : instances_) n += inst->rescue_redispatches();
  return n;
}

int HetisEngine::balance_redispatches() const {
  int n = 0;
  for (const auto& inst : instances_) n += inst->balance_redispatches();
  return n;
}

// ---------------------------------------------------------------------------
// HetisInstance
// ---------------------------------------------------------------------------

dispatch::DispatcherConfig HetisInstance::make_dispatcher_config(
    const parallel::InstanceConfig& cfg, const costmodel::ProfileResult& profile,
    const HetisOptions& opts) const {
  const model::ModelSpec& m = exec_->model_spec();
  dispatch::DispatcherConfig dc;
  dc.heads = m.heads;
  dc.group_size = m.gqa_ratio();
  dc.bytes_per_head_token_layer =
      2.0 * m.head_dim() * m.dtype_bytes / static_cast<double>(m.gqa_ratio());
  dc.total_layers = m.layers;
  dc.theta = opts.theta;
  dc.use_lp = opts.use_lp;

  // Condition overlay: a degraded device's attention really runs at
  // speed s < 1, so the LP must price its heads 1/s more expensive or it
  // will keep loading the straggler as if it were healthy.
  const auto degraded_attn = [this, &profile](int dev, double speed) {
    costmodel::AttnParams a = profile.attn(dev);
    if (speed != 1.0) {
      const double err = 1.0 / speed - 1.0;
      a = a.perturbed(err, err, err);
    }
    return a;
  };

  for (std::size_t k = 0; k < cfg.stages.size(); ++k) {
    const auto& s = cfg.stages[k];
    dispatch::StageDesc sd;
    sd.devices = s.devices;
    sd.layers = s.layers;
    double speed = 1.0;
    for (int dev : s.devices) speed = std::min(speed, exec_->cluster().device_speed(dev));
    sd.attn = degraded_attn(s.devices.front(), speed);
    Bytes params =
        engine::stage_param_bytes_per_device(m, s, k == 0, k + 1 == cfg.stages.size());
    Bytes cap = 0;
    for (int dev : s.devices) cap += engine::kv_budget(exec_->cluster().device(dev).spec(), params);
    sd.capacity = cap;
    dc.stages.push_back(std::move(sd));
  }
  for (int dev : cfg.attention_workers) {
    dispatch::WorkerDesc wd;
    wd.device = dev;
    wd.attn = degraded_attn(dev, exec_->cluster().device_speed(dev));
    // Worst-case link to any stage representative (conservative).
    costmodel::TransferParams worst{};
    for (const auto& s : cfg.stages) {
      if (profile.has_link(s.devices.front(), dev)) {
        const auto& tp = profile.transfer(s.devices.front(), dev);
        worst.gamma = std::max(worst.gamma, tp.gamma);
        worst.beta = std::max(worst.beta, tp.beta);
      }
    }
    wd.transfer = worst;
    wd.capacity = engine::kv_budget(exec_->cluster().device(dev).spec(), 0);
    dc.workers.push_back(std::move(wd));
  }
  return dc;
}

HetisInstance::HetisInstance(const engine::ExecModel& exec, const parallel::InstanceConfig& cfg,
                             const costmodel::ProfileResult& profile,
                             engine::MetricsCollector& metrics, hauler::Hauler& hauler,
                             const HetisOptions& opts, int id)
    : exec_(&exec),
      cfg_(cfg),
      metrics_(&metrics),
      hauler_(&hauler),
      opts_(opts),
      id_(id),
      dispatcher_(make_dispatcher_config(cfg, profile, opts)),
      batch_(&metrics) {
  // Prefill (dense + attention) runs entirely on the primary pipeline
  // (design idea I1: compute-intensive phases stay on capable devices).
  primary_only_.stages = cfg_.stages;
}

std::vector<engine::LiveRequest>::iterator HetisInstance::running_lower_bound(
    workload::RequestId id) {
  return std::lower_bound(running_.begin(), running_.end(), id,
                          [](const engine::LiveRequest& lr, workload::RequestId v) {
                            return lr.req.id < v;
                          });
}

void HetisInstance::insert_running(engine::LiveRequest lr) {
  auto it = running_lower_bound(lr.req.id);
  if (it != running_.end() && it->req.id == lr.req.id) {
    *it = std::move(lr);
  } else {
    running_.insert(it, std::move(lr));
  }
}

double HetisInstance::fill_fraction() const {
  double worst = 0;
  for (std::size_t i = 0; i < dispatcher_.num_logical(); ++i) {
    Bytes cap = dispatcher_.device_capacity(i);
    if (cap > 0) {
      worst = std::max(worst, static_cast<double>(dispatcher_.device_used(i)) /
                                  static_cast<double>(cap));
    }
  }
  return worst;
}

Bytes HetisInstance::kv_capacity() const {
  Bytes total = 0;
  for (std::size_t i = 0; i < dispatcher_.num_logical(); ++i) {
    total += dispatcher_.device_capacity(i);
  }
  return total;
}

void HetisInstance::submit(sim::Simulation& sim, const workload::Request& r) {
  engine::LiveRequest lr;
  lr.req = r;
  enqueue(sim, std::move(lr));
}

void HetisInstance::enqueue(sim::Simulation& sim, engine::LiveRequest lr) {
  engine::priority_enqueue(waiting_, std::move(lr), priorities_, /*requeue_front=*/false);
  kick(sim);
}

bool HetisInstance::adopt(sim::Simulation& sim, const engine::LiveRequest& lr,
                          Seconds resume_at) {
  scratch_one_.clear();
  scratch_one_.emplace_back(lr.req.id, lr.context());
  if (!dispatcher_.dispatch(scratch_one_, sim.now())) return false;
  insert_running(lr);
  if (resume_at > sim.now()) suspended_until_[lr.req.id] = resume_at;
  kick(sim);
  return true;
}

engine::DrainedRequests HetisInstance::retire() {
  retired_ = true;
  engine::DrainedRequests out;
  for (auto& lr : waiting_) out.fresh.push_back(lr);
  for (auto& lr : prefilling_) {
    engine::LiveRequest f = lr;
    f.prefilled = false;
    f.generated = 0;
    out.fresh.push_back(std::move(f));
  }
  for (auto& lr : running_) out.live.push_back(lr);
  waiting_.clear();
  running_.clear();
  prefilling_.clear();
  suspended_until_.clear();
  auto by_id = [](const engine::LiveRequest& a, const engine::LiveRequest& b) {
    return a.req.id < b.req.id;
  };
  std::sort(out.fresh.begin(), out.fresh.end(), by_id);
  std::sort(out.live.begin(), out.live.end(), by_id);
  return out;
}

void HetisInstance::sample_usage(sim::Simulation& sim) {
  for (const auto& s : cfg_.stages) {
    for (int dev : s.devices) {
      metrics_->add_usage_sample(engine::UsageSample{
          sim.now(), dev, dispatcher_.physical_cache_fraction(dev),
          dispatcher_.physical_heads(dev)});
    }
  }
  for (int dev : cfg_.attention_workers) {
    metrics_->add_usage_sample(engine::UsageSample{sim.now(), dev,
                                                   dispatcher_.physical_cache_fraction(dev),
                                                   dispatcher_.physical_heads(dev)});
  }
}

void HetisInstance::kick(sim::Simulation& sim) { pump(sim); }

void HetisInstance::pump(sim::Simulation& sim) {
  if (retired_) return;
  const int max_inflight = std::max<int>(1, static_cast<int>(cfg_.stages.size()));
  while (inflight_ < max_inflight) {
    // --- Prefill-priority admission via the dispatch LP (Eq. 7) ---
    std::vector<engine::LiveRequest> prefill_batch;
    if (!batch_pool_.empty()) {
      prefill_batch = std::move(batch_pool_.back());
      batch_pool_.pop_back();
    }
    std::int64_t budget = opts_.max_prefill_tokens;
    while (!waiting_.empty() && running_.size() + prefill_batch.size() < opts_.max_batch &&
           budget > 0) {
      engine::LiveRequest& head = waiting_.front();
      if (head.req.prompt_len > budget && !prefill_batch.empty()) break;
      // Dispatch this request's heads (reserves memory at its destinations).
      scratch_one_.clear();
      scratch_one_.emplace_back(head.req.id, head.req.prompt_len + 1);
      auto placed = dispatcher_.dispatch(scratch_one_, sim.now());
      if (!placed) break;  // instance cannot host it right now
      budget -= head.req.prompt_len;
      prefill_batch.push_back(head);
      waiting_.pop_front();
    }

    if (!prefill_batch.empty()) {
      scratch_lens_.clear();
      for (const auto& lr : prefill_batch) {
        scratch_lens_.push_back(lr.req.prompt_len);
        prefilling_.push_back(lr);
        batch_.on_prefill_start(lr.req.id, sim.now());
      }
      exec_->iteration_time(primary_only_, scratch_lens_, /*prefill=*/true, scratch_it_);
      const engine::IterationTime& it = scratch_it_;
      Seconds issue = std::max(sim.now(), head_free_);
      head_free_ = issue + it.interval();
      ++inflight_;
      sim.schedule_at(issue + it.latency(),
                      [this, &sim, batch = std::move(prefill_batch)]() mutable {
                        finish_prefill(sim, std::move(batch));
                      });
      continue;
    }
    // Empty, but it may carry recycled capacity worth keeping.
    batch_pool_.push_back(std::move(prefill_batch));

    if (decode_inflight_) return;

    // --- Decode iteration over non-suspended running requests ---
    std::vector<workload::RequestId> decoded;
    if (!decoded_pool_.empty()) {
      decoded = std::move(decoded_pool_.back());
      decoded_pool_.pop_back();
    }
    for (auto& lr : running_) {
      const workload::RequestId id = lr.req.id;
      if (!suspended_until_.empty()) {
        auto sit = suspended_until_.find(id);
        if (sit != suspended_until_.end()) {
          if (sim.now() < sit->second) continue;
          suspended_until_.erase(sit);
        }
      }
      decoded.push_back(id);
    }

    if (decoded.empty()) {
      decoded_pool_.push_back(std::move(decoded));
      // Any entry already expired here is an orphan: an expired entry whose
      // request is still running was consumed (and erased) by the scan
      // above.  Waking on an orphan would re-enter pump at the current
      // instant and spin the simulation forever.
      for (auto it = suspended_until_.begin(); it != suspended_until_.end();) {
        if (it->second <= sim.now()) {
          it = suspended_until_.erase(it);
        } else {
          ++it;
        }
      }
      if (!suspended_until_.empty() && !wake_scheduled_) {
        // Wake when the earliest migration lands.
        Seconds wake = std::numeric_limits<double>::infinity();
        for (const auto& [id, t] : suspended_until_) wake = std::min(wake, t);
        wake_scheduled_ = true;
        sim.schedule_at(wake, [this, &sim] {
          wake_scheduled_ = false;
          pump(sim);
        });
      }
      return;
    }

    // Dense part on the primary pipeline; attention via the dispatcher's
    // fine-grained placement.
    Seconds dense = 0;
    Seconds worst_stage = 0;
    for (std::size_t k = 0; k < cfg_.stages.size(); ++k) {
      Seconds stage = exec_->stage_dense_time(cfg_.stages[k],
                                              static_cast<std::int64_t>(decoded.size()));
      dense += stage;
      worst_stage = std::max(worst_stage, stage);
      if (k + 1 < cfg_.stages.size()) {
        dense += exec_->interstage_comm(cfg_.stages[k], cfg_.stages[k + 1],
                                        static_cast<std::int64_t>(decoded.size()));
      }
    }
    Seconds attn = dispatcher_.attention_iteration_time();

    // Module metrics (§7.3): max per-stage dense x #stages; attention total.
    metrics_->add_decode_module_sample(worst_stage * static_cast<double>(cfg_.stages.size()),
                                       attn);

    Seconds latency = dense + attn;
    // The slowest stage (including its attention share) gates the pipeline.
    Seconds interval =
        worst_stage + attn / static_cast<double>(std::max<std::size_t>(1, cfg_.stages.size()));
    Seconds issue = std::max({sim.now(), head_free_, decode_done_});
    head_free_ = issue + interval;
    decode_done_ = issue + latency;
    decode_inflight_ = true;
    ++inflight_;
    sim.schedule_at(issue + latency, [this, &sim, decoded = std::move(decoded)]() mutable {
      finish_decode(sim, std::move(decoded));
    });
    return;
  }
}

Seconds HetisInstance::ship_offloaded_kv(sim::Simulation& sim, workload::RequestId id) {
  const dispatch::PlacementCounts& pc = dispatcher_.placement(id);
  const model::ModelSpec& m = exec_->model_spec();
  const double bph = 2.0 * m.head_dim() * m.dtype_bytes / m.gqa_ratio();
  std::int64_t ctx = dispatcher_.context(id);
  int src = cfg_.stages.front().devices.front();
  Seconds done = sim.now();
  for (std::size_t w = 0; w < pc.worker_heads.size(); ++w) {
    if (pc.worker_heads[w] <= 0) continue;
    Bytes bytes = static_cast<Bytes>(static_cast<double>(pc.worker_heads[w]) * ctx * bph *
                                     m.layers);
    int dst = cfg_.attention_workers[w];
    done = std::max(done, hauler_->migrate(src, dst, bytes, sim.now()));
  }
  return done;
}

void HetisInstance::finish_prefill(sim::Simulation& sim, std::vector<engine::LiveRequest> batch) {
  if (retired_) {
    // The batch was already handed to the new deployment by retire().
    --inflight_;
    return;
  }
  for (auto& lr : batch) {
    for (auto it = prefilling_.begin(); it != prefilling_.end(); ++it) {
      if (it->req.id == lr.req.id) {
        *it = std::move(prefilling_.back());
        prefilling_.pop_back();
        break;
      }
    }
    lr.prefilled = true;
    lr.generated = 1;
    batch_.on_first_token(lr.req.id, sim.now());
    if (lr.done()) {
      dispatcher_.remove(lr.req.id);
      // A rebalance may have suspended this request mid-prefill; it never
      // reaches running_, so drop the entry or it outlives the request.
      suspended_until_.erase(lr.req.id);
      batch_.on_finish(lr.req.id, sim.now());
      continue;
    }
    // Ship offloaded heads' prompt KV in the background; the request only
    // resumes decoding once its cache is in place.
    Seconds ready = ship_offloaded_kv(sim, lr.req.id);
    if (ready > sim.now()) suspended_until_[lr.req.id] = ready;
    insert_running(lr);
  }
  batch.clear();
  batch_pool_.push_back(std::move(batch));
  batch_.flush();
  --inflight_;
  pump(sim);
}

void HetisInstance::finish_decode(sim::Simulation& sim,
                                  std::vector<workload::RequestId> decoded) {
  if (retired_) {
    --inflight_;
    decode_inflight_ = false;
    return;
  }
  ++decode_iterations_;
  // Survivors are compacted back into `decoded` (already id-ascending, and
  // only positions at or behind the read cursor are overwritten) so their
  // context growth lands in one append_tokens map walk instead of a
  // per-request lookup.  Nothing in this loop reads dispatcher state, so
  // deferring the appends to the end changes no observable value.
  std::size_t survivors = 0;
  for (workload::RequestId id : decoded) {
    auto it = running_lower_bound(id);
    if (it == running_.end() || it->req.id != id) continue;  // preempted mid-flight
    it->generated += 1;
    batch_.on_token(id, sim.now(), it->generated);
    if (it->done()) {
      dispatcher_.remove(id);
      suspended_until_.erase(id);
      batch_.on_finish(id, sim.now());
      running_.erase(it);
    } else {
      decoded[survivors++] = id;
    }
  }
  decoded.resize(survivors);
  dispatcher_.append_tokens(decoded);
  decoded.clear();
  decoded_pool_.push_back(std::move(decoded));
  resolve_memory_pressure(sim);
  if (opts_.enable_redispatch && decode_iterations_ % opts_.redispatch_period == 0) {
    maybe_rebalance(sim);
  }
  batch_.flush();
  --inflight_;
  decode_inflight_ = false;
  pump(sim);
}

void HetisInstance::resolve_memory_pressure(sim::Simulation& sim) {
  // §5.3.2: on exhaustion, prefer re-dispatching the device-local LIFO
  // victim into the cluster's spare memory; preempt only when no spare
  // memory remains.
  for (int guard = 0; guard < 64; ++guard) {
    auto over = dispatcher_.first_overflowed();
    if (!over) return;
    workload::RequestId victim = dispatcher_.evict_candidate_on(*over);
    if (victim < 0) return;
    if (opts_.enable_redispatch && dispatcher_.has_global_spare()) {
      dispatch::Rebalance rb = dispatcher_.plan_rescue(victim);
      if (rb.valid) {
        // The rescue must actually relieve the overflowed device.
        execute_rebalance(sim, rb);
        ++rescue_count_;
        auto still = dispatcher_.first_overflowed();
        if (still && *still == *over) {
          // No relief: fall through to preemption of the next candidate.
          preempt(sim, dispatcher_.evict_candidate_on(*over));
        }
        continue;
      }
    }
    preempt(sim, victim);
  }
}

void HetisInstance::maybe_rebalance(sim::Simulation& sim) {
  // §5.3.1: trigger when the bottleneck exceeds (1 + Theta) x ideal.
  if (!dispatcher_.should_rebalance()) return;
  dispatch::Rebalance rb = dispatcher_.plan_rebalance();
  if (!rb.valid) return;
  execute_rebalance(sim, rb);
  ++balance_count_;
}

void HetisInstance::execute_rebalance(sim::Simulation& sim, const dispatch::Rebalance& rb) {
  dispatcher_.apply(rb);
  if (rb.moved_bytes > 0 && rb.src_device != rb.dst_device) {
    Seconds done = hauler_->migrate(rb.src_device, rb.dst_device, rb.moved_bytes, sim.now());
    if (done > sim.now()) {
      auto it = suspended_until_.find(rb.victim);
      suspended_until_[rb.victim] =
          it == suspended_until_.end() ? done : std::max(it->second, done);
    }
  }
}

void HetisInstance::preempt(sim::Simulation& sim, workload::RequestId id) {
  if (id < 0) return;
  auto it = running_lower_bound(id);
  if (it == running_.end() || it->req.id != id) return;
  engine::LiveRequest lr = *it;
  running_.erase(it);
  suspended_until_.erase(id);
  dispatcher_.remove(id);
  batch_.on_preemption(id, sim.now());
  lr.prefilled = false;
  lr.generated = 0;
  engine::priority_enqueue(waiting_, std::move(lr), priorities_, /*requeue_front=*/true);
}

}  // namespace hetis::core

// Self-registration with the engine registry (engine/registry.h): callers
// construct Hetis by name and configure it through EngineOptions.
#include "engine/registry.h"

HETIS_REGISTER_ENGINE(hetis, [](const hetis::hw::Cluster& cluster,
                                const hetis::model::ModelSpec& model,
                                const hetis::engine::EngineOptions& opts)
                                 -> std::unique_ptr<hetis::engine::Engine> {
  auto cfg = opts.get_or_default<hetis::engine::HetisConfig>("hetis");
  auto eng = std::make_unique<hetis::core::HetisEngine>(cluster, model, cfg);
  if (!opts.tenant_priorities.empty()) eng->set_tenant_priorities(opts.tenant_priorities);
  return eng;
});
