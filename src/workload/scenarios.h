// Scenario workload generators: parameterized request mixes beyond the
// paper's fixed (dataset, rate) traces.
//
// Heterogeneous-cluster conclusions only hold across varied request mixes
// (Helix, Tangram), so every scenario stresses a different axis of the
// serving stack while emitting the plain workload::Request trace type --
// every registered engine (hetis / splitwise / hexgen) serves scenarios
// through the registry unchanged:
//
//   poisson       stationary baseline, identical to build_trace
//   bursty        Markov-modulated on/off Poisson (burst absorption,
//                 preemption churn)
//   diurnal       sinusoidal rate curve (slow load swings; autoscaling and
//                 re-dispatch behavior)
//   ramp          linear rate ramp to a peak (capacity-knee discovery)
//   multi_tenant  independent per-tenant Poisson streams, each with its own
//                 dataset and SLO targets; requests carry the tenant index
//                 for attribution
//   long_context  prefill-heavy blend: each request is LongBench-length with
//                 probability `long_context_fraction`, else the base dataset
//
// Generation is deterministic in ScenarioSpec::seed alone -- the same spec
// reproduces the identical trace on any machine or thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/request.h"
#include "workload/trace.h"

namespace hetis::workload {

enum class Scenario : std::uint8_t {
  kPoisson,
  kBursty,
  kDiurnal,
  kRamp,
  kMultiTenant,
  kLongContext,
};

const char* to_string(Scenario s);
/// Accepts the canonical snake_case names ("multi_tenant") and their
/// dash-separated spellings; throws std::out_of_range otherwise.
Scenario scenario_by_name(const std::string& name);
/// Canonical names accepted by scenario_by_name, sorted.
std::vector<std::string> scenario_names();

/// One tenant of a kMultiTenant mix.  SLO targets <= 0 disable that term
/// (same convention as engine::SloSpec; kept as plain Seconds so the
/// workload layer stays engine-independent).
struct TenantSpec {
  std::string name = "tenant";
  double rate = 1.0;  // req/s of this tenant's independent Poisson stream
  Dataset dataset = Dataset::kShareGPT;
  Seconds ttft_slo = 0;
  Seconds tpot_slo = 0;
  // Admission priority (higher = admitted first; 0 = best effort).  The
  // harness forwards the per-tenant vector to every engine through
  // engine::EngineOptions::tenant_priorities; all-zero mixes keep strict
  // FCFS admission.
  int priority = 0;
};

struct ScenarioSpec {
  Scenario kind = Scenario::kPoisson;
  std::uint64_t seed = 42;
  Seconds horizon = 60.0;  // arrival window; no arrival lands at or past it
  double rate = 1.0;       // base rate in req/s (see per-kind notes below)
  Dataset dataset = Dataset::kShareGPT;

  // kBursty: two-state Markov modulation.  The process alternates
  // exponential dwell times (mean_on / mean_off) between an on-state at
  // rate * burst_multiplier and an off-state at rate * idle_multiplier.
  double burst_multiplier = 4.0;
  double idle_multiplier = 0.1;
  Seconds mean_on = 4.0;
  Seconds mean_off = 8.0;

  // kDiurnal: rate(t) = rate * (1 + diurnal_amplitude * sin(2*pi*t/period)),
  // discretized into diurnal_segment-long constant-rate segments.  period 0
  // defaults to the horizon (one full day per run).
  double diurnal_amplitude = 0.8;  // in [0, 1]
  Seconds diurnal_period = 0;
  Seconds diurnal_segment = 1.0;

  // kRamp: rate climbs linearly from rate * ramp_start_fraction to rate at
  // the horizon (same segment discretization as diurnal).
  double ramp_start_fraction = 0.1;

  // kMultiTenant: the tenant mix.  Empty uses default_tenant_mix(rate).
  std::vector<TenantSpec> tenants;

  // kLongContext: probability a request draws LongBench lengths instead of
  // `dataset` lengths.
  double long_context_fraction = 0.5;
};

/// The default 3-tenant mix (chat / code / batch-summarization), scaled so
/// the aggregate rate is `total_rate`:
///   chat   60% ShareGPT,  interactive TTFT+TPOT targets
///   code   30% HumanEval, tight TPOT target
///   batch  10% LongBench, no SLO (best effort)
std::vector<TenantSpec> default_tenant_mix(double total_rate);

/// The tenant list a kMultiTenant spec actually generates with: its own
/// `tenants`, or default_tenant_mix(rate) when empty.  Empty for every
/// other kind.  Harness-side attribution must use this, not spec.tenants.
std::vector<TenantSpec> effective_tenants(const ScenarioSpec& spec);

/// Generates the scenario's request trace: sorted by arrival, ids 0..n-1 in
/// arrival order, tenant indices per effective_tenants (0 outside
/// kMultiTenant).  Deterministic in the spec; throws std::invalid_argument
/// on out-of-range parameters.
std::vector<Request> generate_scenario(const ScenarioSpec& spec);

/// A ready-to-run spec for `kind` with tuned parameters at aggregate rate
/// `rate` (req/s) over `horizon` seconds.  The presets back the README's
/// scenario table and bench_scenarios.
ScenarioSpec scenario_preset(Scenario kind, double rate, Seconds horizon, std::uint64_t seed);

/// One-line human description of a spec ("bursty: 8.0/0.2 req/s, dwell
/// 4s/8s, ShareGPT"), used by the benches and examples.
std::string describe(const ScenarioSpec& spec);

}  // namespace hetis::workload
