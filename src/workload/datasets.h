// Synthetic dataset samplers (paper §7.1 workloads).
//
// We cannot ship ShareGPT / HumanEval / LongBench, but the serving system
// only ever observes the (prompt_len, output_len) marginals, so seeded
// log-normal samplers matched to each dataset's published length statistics
// preserve everything the experiments depend on:
//
//   ShareGPT  (SG, chatbot):        medium prompts, medium-long outputs,
//                                   heavy tail on both.
//   HumanEval (HE, code completion): short prompts, short outputs -- this is
//                                   why the paper drives it at 15-75 req/s.
//   LongBench (LB, summarization):  very long prompts (multi-k tokens),
//                                   short-to-medium outputs; the long-context
//                                   stress test for re-dispatching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/request.h"

namespace hetis::workload {

enum class Dataset : std::uint8_t { kShareGPT, kHumanEval, kLongBench };

const char* to_string(Dataset d);
Dataset dataset_by_name(const std::string& name);  // "SG" | "HE" | "LB" (or full names)

struct LengthSample {
  std::int64_t prompt_len;
  std::int64_t output_len;
};

/// Draws one (prompt, output) length pair for the dataset.
LengthSample sample_lengths(Dataset d, Rng& rng);

/// Mean prompt/output lengths of the sampler (analytic targets, used by
/// capacity planning and the tests).
struct DatasetStats {
  double mean_prompt;
  double mean_output;
};
DatasetStats dataset_stats(Dataset d);

}  // namespace hetis::workload
