#include "workload/datasets.h"

#include <cmath>
#include <stdexcept>

namespace hetis::workload {

const char* to_string(Dataset d) {
  switch (d) {
    case Dataset::kShareGPT: return "ShareGPT";
    case Dataset::kHumanEval: return "HumanEval";
    case Dataset::kLongBench: return "LongBench";
  }
  return "?";
}

Dataset dataset_by_name(const std::string& name) {
  if (name == "SG" || name == "ShareGPT" || name == "sharegpt") return Dataset::kShareGPT;
  if (name == "HE" || name == "HumanEval" || name == "humaneval") return Dataset::kHumanEval;
  if (name == "LB" || name == "LongBench" || name == "longbench") return Dataset::kLongBench;
  throw std::out_of_range("dataset_by_name: unknown dataset '" + name + "'");
}

namespace {

struct LogNormalSpec {
  double mu;      // of the underlying normal
  double sigma;
  double lo, hi;  // truncation bounds (tokens)
};

// Parameterization: mu = ln(median).  Values chosen to match the commonly
// reported length statistics of each dataset (e.g. ShareGPT prompt/output
// means of roughly 160/240 tokens with heavy tails; HumanEval prompts of
// ~130 tokens with ~80-token completions; LongBench multi-k contexts).
struct DatasetSpec {
  LogNormalSpec prompt;
  LogNormalSpec output;
};

const DatasetSpec& spec_of(Dataset d) {
  static const DatasetSpec kShareGPT{
      {std::log(140.0), 0.95, 4, 2048},
      {std::log(180.0), 0.85, 8, 1024},
  };
  static const DatasetSpec kHumanEval{
      {std::log(130.0), 0.40, 30, 512},
      {std::log(75.0), 0.55, 12, 320},
  };
  static const DatasetSpec kLongBench{
      // Truncated to serving-scale contexts (the paper's testbed sustains
      // 0.4-1.6 req/s of LongBench prefill on Llama-70B, which bounds the
      // usable prompt length to a few thousand tokens).
      {std::log(2800.0), 0.50, 1024, 8192},
      {std::log(130.0), 0.60, 24, 512},
  };
  switch (d) {
    case Dataset::kShareGPT: return kShareGPT;
    case Dataset::kHumanEval: return kHumanEval;
    case Dataset::kLongBench: return kLongBench;
  }
  throw std::logic_error("spec_of: bad dataset");
}

std::int64_t draw(const LogNormalSpec& s, Rng& rng) {
  return static_cast<std::int64_t>(std::llround(rng.lognormal_trunc(s.mu, s.sigma, s.lo, s.hi)));
}

double truncated_mean(const LogNormalSpec& s) {
  // Monte-Carlo-free approximation: use the untruncated log-normal mean,
  // clamped into the bounds; accurate enough for capacity planning.
  double mean = std::exp(s.mu + s.sigma * s.sigma / 2.0);
  return std::min(std::max(mean, s.lo), s.hi);
}

}  // namespace

LengthSample sample_lengths(Dataset d, Rng& rng) {
  const DatasetSpec& spec = spec_of(d);
  return LengthSample{draw(spec.prompt, rng), draw(spec.output, rng)};
}

DatasetStats dataset_stats(Dataset d) {
  const DatasetSpec& spec = spec_of(d);
  return DatasetStats{truncated_mean(spec.prompt), truncated_mean(spec.output)};
}

}  // namespace hetis::workload
