#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hetis::workload {

namespace {

// Stable record/replay column order; kept append-only like the report CSVs.
constexpr const char* kTraceHeader = "id,arrival,prompt_len,output_len,tenant";

}  // namespace

std::string Request::to_string() const {
  std::ostringstream oss;
  oss << "Request{" << id << " @" << arrival << "s, prompt=" << prompt_len
      << ", output=" << output_len;
  if (tenant != 0) oss << ", tenant=" << tenant;
  oss << "}";
  return oss.str();
}

std::vector<Request> assemble_trace(const std::vector<Seconds>& times, Dataset dataset,
                                    Rng& length_rng) {
  std::vector<Request> trace;
  trace.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    LengthSample len = sample_lengths(dataset, length_rng);
    Request r;
    r.id = static_cast<RequestId>(i);
    r.arrival = times[i];
    r.prompt_len = len.prompt_len;
    r.output_len = len.output_len;
    trace.push_back(r);
  }
  return trace;
}

std::vector<Request> build_trace(const TraceOptions& opts) {
  Rng rng(opts.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);

  std::vector<Seconds> times =
      opts.segments.empty() ? generate_poisson(opts.rate, opts.horizon, arrival_rng)
                            : generate_arrivals(opts.segments, arrival_rng);
  return assemble_trace(times, opts.dataset, length_rng);
}

void save_trace(std::ostream& os, const std::vector<Request>& trace) {
  os << kTraceHeader << '\n';
  char arrival[64];
  for (const Request& r : trace) {
    // %.17g round-trips every finite double exactly (same discipline as
    // RunReport::to_csv_row).
    std::snprintf(arrival, sizeof(arrival), "%.17g", r.arrival);
    os << r.id << ',' << arrival << ',' << r.prompt_len << ',' << r.output_len << ','
       << r.tenant << '\n';
  }
}

void save_trace(const std::string& path, const std::vector<Request>& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_trace: cannot write '" + path + "'");
  save_trace(os, trace);
  if (!os) throw std::runtime_error("save_trace: write to '" + path + "' failed");
}

std::vector<Request> load_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kTraceHeader) {
    throw std::invalid_argument("load_trace: missing or unexpected header (want '" +
                                std::string(kTraceHeader) + "')");
  }
  std::vector<Request> trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    std::vector<std::string> fields;
    while (std::getline(cells, cell, ',')) fields.push_back(cell);
    if (fields.size() != 5) {
      throw std::invalid_argument("load_trace: line " + std::to_string(line_no) +
                                  " has " + std::to_string(fields.size()) +
                                  " cells, expected 5");
    }
    // Whole-cell parses: stoll/stod alone accept numeric prefixes ("12abc"
    // -> 12), which would silently corrupt a "byte-identical" replay.
    auto bad = [&]() -> std::invalid_argument {
      return std::invalid_argument("load_trace: line " + std::to_string(line_no) +
                                   " is not numeric: '" + line + "'");
    };
    try {
      std::size_t pos = 0;
      Request r;
      r.id = static_cast<RequestId>(std::stoll(fields[0], &pos));
      if (pos != fields[0].size()) throw bad();
      r.arrival = std::stod(fields[1], &pos);
      if (pos != fields[1].size()) throw bad();
      r.prompt_len = std::stoll(fields[2], &pos);
      if (pos != fields[2].size()) throw bad();
      r.output_len = std::stoll(fields[3], &pos);
      if (pos != fields[3].size()) throw bad();
      r.tenant = std::stoi(fields[4], &pos);
      if (pos != fields[4].size()) throw bad();
      trace.push_back(r);
    } catch (const std::invalid_argument&) {
      throw bad();
    } catch (const std::out_of_range&) {
      throw bad();
    }
  }
  return trace;
}

std::vector<Request> load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_trace: cannot read '" + path + "'");
  return load_trace(is);
}

TraceStats trace_stats(const std::vector<Request>& trace) {
  TraceStats s;
  s.count = trace.size();
  if (trace.empty()) return s;
  double prompt_sum = 0, output_sum = 0;
  for (const auto& r : trace) {
    prompt_sum += static_cast<double>(r.prompt_len);
    output_sum += static_cast<double>(r.output_len);
  }
  s.mean_prompt = prompt_sum / static_cast<double>(trace.size());
  s.mean_output = output_sum / static_cast<double>(trace.size());
  s.span = trace.back().arrival - trace.front().arrival;
  return s;
}

}  // namespace hetis::workload
