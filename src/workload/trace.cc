#include "workload/trace.h"

#include <sstream>

namespace hetis::workload {

std::string Request::to_string() const {
  std::ostringstream oss;
  oss << "Request{" << id << " @" << arrival << "s, prompt=" << prompt_len
      << ", output=" << output_len;
  if (tenant != 0) oss << ", tenant=" << tenant;
  oss << "}";
  return oss.str();
}

std::vector<Request> assemble_trace(const std::vector<Seconds>& times, Dataset dataset,
                                    Rng& length_rng) {
  std::vector<Request> trace;
  trace.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    LengthSample len = sample_lengths(dataset, length_rng);
    Request r;
    r.id = static_cast<RequestId>(i);
    r.arrival = times[i];
    r.prompt_len = len.prompt_len;
    r.output_len = len.output_len;
    trace.push_back(r);
  }
  return trace;
}

std::vector<Request> build_trace(const TraceOptions& opts) {
  Rng rng(opts.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);

  std::vector<Seconds> times =
      opts.segments.empty() ? generate_poisson(opts.rate, opts.horizon, arrival_rng)
                            : generate_arrivals(opts.segments, arrival_rng);
  return assemble_trace(times, opts.dataset, length_rng);
}

TraceStats trace_stats(const std::vector<Request>& trace) {
  TraceStats s;
  s.count = trace.size();
  if (trace.empty()) return s;
  double prompt_sum = 0, output_sum = 0;
  for (const auto& r : trace) {
    prompt_sum += static_cast<double>(r.prompt_len);
    output_sum += static_cast<double>(r.output_len);
  }
  s.mean_prompt = prompt_sum / static_cast<double>(trace.size());
  s.mean_output = output_sum / static_cast<double>(trace.size());
  s.span = trace.back().arrival - trace.front().arrival;
  return s;
}

}  // namespace hetis::workload
