#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "workload/arrivals.h"

namespace hetis::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("generate_scenario: ") + what);
}

void validate(const ScenarioSpec& s) {
  require(s.horizon > 0, "horizon must be > 0");
  require(s.rate >= 0, "rate must be >= 0");
  switch (s.kind) {
    case Scenario::kBursty:
      require(s.burst_multiplier >= 0 && s.idle_multiplier >= 0,
              "bursty multipliers must be >= 0");
      require(s.mean_on > 0 && s.mean_off > 0, "bursty dwell times must be > 0");
      // One RateSegment is materialized per dwell; bound the expected
      // segment count so a tiny dwell time cannot exhaust memory.
      require(s.horizon / std::min(s.mean_on, s.mean_off) <= 1e6,
              "bursty dwell times too small for the horizon (would generate > ~1e6 segments)");
      break;
    case Scenario::kDiurnal:
      require(s.diurnal_amplitude >= 0 && s.diurnal_amplitude <= 1,
              "diurnal_amplitude must be in [0, 1]");
      require(s.diurnal_segment > 0, "diurnal_segment must be > 0");
      require(s.horizon / s.diurnal_segment <= 1e6,
              "diurnal_segment too small for the horizon (would generate > 1e6 segments)");
      require(s.diurnal_period >= 0, "diurnal_period must be >= 0");
      break;
    case Scenario::kRamp:
      require(s.ramp_start_fraction >= 0 && s.ramp_start_fraction <= 1,
              "ramp_start_fraction must be in [0, 1]");
      require(s.diurnal_segment > 0, "diurnal_segment must be > 0");
      require(s.horizon / s.diurnal_segment <= 1e6,
              "diurnal_segment too small for the horizon (would generate > 1e6 segments)");
      break;
    case Scenario::kMultiTenant:
      for (const TenantSpec& t : s.tenants) require(t.rate >= 0, "tenant rate must be >= 0");
      break;
    case Scenario::kLongContext:
      require(s.long_context_fraction >= 0 && s.long_context_fraction <= 1,
              "long_context_fraction must be in [0, 1]");
      break;
    case Scenario::kPoisson:
      break;
  }
}

/// Discretizes a continuous rate curve into segment-long constant-rate
/// pieces covering [0, horizon), sampling the curve at each segment's
/// midpoint.  The final segment is truncated so no arrival lands past the
/// horizon.
template <typename RateFn>
std::vector<RateSegment> discretize(Seconds horizon, Seconds segment, RateFn&& rate_at) {
  std::vector<RateSegment> segments;
  for (Seconds t = 0; t < horizon; t += segment) {
    Seconds dur = std::min(segment, horizon - t);
    segments.push_back(RateSegment{dur, std::max(0.0, rate_at(t + dur / 2))});
  }
  return segments;
}

std::vector<Request> generate_bursty(const ScenarioSpec& s) {
  Rng rng(s.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);
  Rng mod_rng = rng.fork(3);
  // Two-state Markov modulation: alternate exponential dwell times starting
  // in the on-state; the final dwell is truncated at the horizon.
  std::vector<RateSegment> segments;
  bool on = true;
  for (Seconds t = 0; t < s.horizon; on = !on) {
    Seconds dwell = mod_rng.exponential(1.0 / (on ? s.mean_on : s.mean_off));
    Seconds dur = std::min(dwell, s.horizon - t);
    segments.push_back(
        RateSegment{dur, s.rate * (on ? s.burst_multiplier : s.idle_multiplier)});
    t += dur;
  }
  auto times = generate_arrivals(segments, arrival_rng);
  return assemble_trace(times, s.dataset, length_rng);
}

std::vector<Request> generate_diurnal(const ScenarioSpec& s) {
  Rng rng(s.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);
  const Seconds period = s.diurnal_period > 0 ? s.diurnal_period : s.horizon;
  auto segments = discretize(s.horizon, s.diurnal_segment, [&](Seconds t) {
    return s.rate * (1.0 + s.diurnal_amplitude * std::sin(2.0 * kPi * t / period));
  });
  auto times = generate_arrivals(segments, arrival_rng);
  return assemble_trace(times, s.dataset, length_rng);
}

std::vector<Request> generate_ramp(const ScenarioSpec& s) {
  Rng rng(s.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);
  const double start = s.rate * s.ramp_start_fraction;
  auto segments = discretize(s.horizon, s.diurnal_segment, [&](Seconds t) {
    return start + (s.rate - start) * (t / s.horizon);
  });
  auto times = generate_arrivals(segments, arrival_rng);
  return assemble_trace(times, s.dataset, length_rng);
}

std::vector<Request> generate_multi_tenant(const ScenarioSpec& s) {
  const std::vector<TenantSpec> tenants = effective_tenants(s);
  Rng rng(s.seed);
  // Per-tenant independent streams with per-tenant forks, so adding a
  // tenant to the mix leaves every other tenant's sub-trace unchanged.
  std::vector<Request> all;
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    Rng arrival_rng = rng.fork(100 + 2 * ti);
    Rng length_rng = rng.fork(101 + 2 * ti);
    auto times = generate_poisson(tenants[ti].rate, s.horizon, arrival_rng);
    auto reqs = assemble_trace(times, tenants[ti].dataset, length_rng);
    for (Request& r : reqs) {
      r.tenant = static_cast<int>(ti);
      all.push_back(r);
    }
  }
  // Stable sort keeps tenant order on (measure-zero) arrival ties, so the
  // merge is deterministic; ids are reassigned in global arrival order.
  std::stable_sort(all.begin(), all.end(),
                   [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  for (std::size_t i = 0; i < all.size(); ++i) all[i].id = static_cast<RequestId>(i);
  return all;
}

std::vector<Request> generate_long_context(const ScenarioSpec& s) {
  Rng rng(s.seed);
  Rng arrival_rng = rng.fork(1);
  Rng length_rng = rng.fork(2);
  Rng mix_rng = rng.fork(3);
  auto times = generate_poisson(s.rate, s.horizon, arrival_rng);
  std::vector<Request> trace;
  trace.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const Dataset d =
        mix_rng.bernoulli(s.long_context_fraction) ? Dataset::kLongBench : s.dataset;
    LengthSample len = sample_lengths(d, length_rng);
    Request r;
    r.id = static_cast<RequestId>(i);
    r.arrival = times[i];
    r.prompt_len = len.prompt_len;
    r.output_len = len.output_len;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kPoisson: return "poisson";
    case Scenario::kBursty: return "bursty";
    case Scenario::kDiurnal: return "diurnal";
    case Scenario::kRamp: return "ramp";
    case Scenario::kMultiTenant: return "multi_tenant";
    case Scenario::kLongContext: return "long_context";
  }
  return "?";
}

Scenario scenario_by_name(const std::string& name) {
  if (name == "poisson") return Scenario::kPoisson;
  if (name == "bursty") return Scenario::kBursty;
  if (name == "diurnal") return Scenario::kDiurnal;
  if (name == "ramp") return Scenario::kRamp;
  if (name == "multi_tenant" || name == "multi-tenant") return Scenario::kMultiTenant;
  if (name == "long_context" || name == "long-context") return Scenario::kLongContext;
  throw std::out_of_range("scenario_by_name: unknown scenario '" + name +
                          "' (known: " + [] {
                            std::string all;
                            for (const auto& n : scenario_names()) {
                              if (!all.empty()) all += ", ";
                              all += n;
                            }
                            return all;
                          }() + ")");
}

std::vector<std::string> scenario_names() {
  return {"bursty", "diurnal", "long_context", "multi_tenant", "poisson", "ramp"};
}

std::vector<TenantSpec> default_tenant_mix(double total_rate) {
  // Priorities follow the SLO tightness: interactive chat outranks code
  // completion, batch summarization is best effort.
  return {
      TenantSpec{"chat", 0.6 * total_rate, Dataset::kShareGPT, 2.0, 0.2, /*priority=*/2},
      TenantSpec{"code", 0.3 * total_rate, Dataset::kHumanEval, 1.0, 0.1, /*priority=*/1},
      TenantSpec{"batch", 0.1 * total_rate, Dataset::kLongBench, 0, 0, /*priority=*/0},
  };
}

std::vector<TenantSpec> effective_tenants(const ScenarioSpec& spec) {
  if (spec.kind != Scenario::kMultiTenant) return {};
  return spec.tenants.empty() ? default_tenant_mix(spec.rate) : spec.tenants;
}

std::vector<Request> generate_scenario(const ScenarioSpec& spec) {
  validate(spec);
  switch (spec.kind) {
    case Scenario::kPoisson: {
      // Byte-identical to build_trace: a fixed (dataset, rate) point IS the
      // poisson scenario, so classic sweeps and scenario sweeps agree.
      TraceOptions opts;
      opts.dataset = spec.dataset;
      opts.seed = spec.seed;
      opts.rate = spec.rate;
      opts.horizon = spec.horizon;
      return build_trace(opts);
    }
    case Scenario::kBursty: return generate_bursty(spec);
    case Scenario::kDiurnal: return generate_diurnal(spec);
    case Scenario::kRamp: return generate_ramp(spec);
    case Scenario::kMultiTenant: return generate_multi_tenant(spec);
    case Scenario::kLongContext: return generate_long_context(spec);
  }
  throw std::logic_error("generate_scenario: bad scenario kind");
}

ScenarioSpec scenario_preset(Scenario kind, double rate, Seconds horizon, std::uint64_t seed) {
  ScenarioSpec s;
  s.kind = kind;
  s.rate = rate;
  s.horizon = horizon;
  s.seed = seed;
  switch (kind) {
    case Scenario::kPoisson:
    case Scenario::kBursty:
    case Scenario::kDiurnal:
    case Scenario::kRamp:
      break;  // struct defaults are the tuned preset
    case Scenario::kMultiTenant:
      s.tenants = default_tenant_mix(rate);
      break;
    case Scenario::kLongContext:
      s.long_context_fraction = 0.5;
      break;
  }
  return s;
}

std::string describe(const ScenarioSpec& spec) {
  char buf[192];
  switch (spec.kind) {
    case Scenario::kPoisson:
      std::snprintf(buf, sizeof(buf), "poisson: %.2f req/s, %s", spec.rate,
                    to_string(spec.dataset));
      break;
    case Scenario::kBursty:
      std::snprintf(buf, sizeof(buf), "bursty: %.2f/%.2f req/s on/off, dwell %.1fs/%.1fs, %s",
                    spec.rate * spec.burst_multiplier, spec.rate * spec.idle_multiplier,
                    spec.mean_on, spec.mean_off, to_string(spec.dataset));
      break;
    case Scenario::kDiurnal:
      std::snprintf(buf, sizeof(buf), "diurnal: %.2f req/s +/- %.0f%%, period %.0fs, %s",
                    spec.rate, 100 * spec.diurnal_amplitude,
                    spec.diurnal_period > 0 ? spec.diurnal_period : spec.horizon,
                    to_string(spec.dataset));
      break;
    case Scenario::kRamp:
      std::snprintf(buf, sizeof(buf), "ramp: %.2f -> %.2f req/s over %.0fs, %s",
                    spec.rate * spec.ramp_start_fraction, spec.rate, spec.horizon,
                    to_string(spec.dataset));
      break;
    case Scenario::kMultiTenant: {
      const auto tenants = effective_tenants(spec);
      std::string mix;
      for (const TenantSpec& t : tenants) {
        char one[64];
        std::snprintf(one, sizeof(one), "%s%s %.2f req/s %s", mix.empty() ? "" : ", ",
                      t.name.c_str(), t.rate, to_string(t.dataset));
        mix += one;
      }
      std::snprintf(buf, sizeof(buf), "multi_tenant: %s", mix.c_str());
      break;
    }
    case Scenario::kLongContext:
      std::snprintf(buf, sizeof(buf), "long_context: %.2f req/s, %.0f%% LongBench / %.0f%% %s",
                    spec.rate, 100 * spec.long_context_fraction,
                    100 * (1 - spec.long_context_fraction), to_string(spec.dataset));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "scenario");
  }
  return buf;
}

}  // namespace hetis::workload
