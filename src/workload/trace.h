// Trace builder: arrival process x dataset sampler -> request list.
#pragma once

#include <vector>

#include "workload/arrivals.h"
#include "workload/datasets.h"
#include "workload/request.h"

namespace hetis::workload {

struct TraceOptions {
  Dataset dataset = Dataset::kShareGPT;
  std::uint64_t seed = 42;
  // Stationary mode: rate > 0 with horizon.
  double rate = 1.0;
  Seconds horizon = 60.0;
  // When non-empty, overrides (rate, horizon) with piecewise segments.
  std::vector<RateSegment> segments;
};

/// Builds a sorted request trace.  Ids are assigned 0..n-1 in arrival
/// order.
std::vector<Request> build_trace(const TraceOptions& opts);

/// Assembles a trace from precomputed arrival times: ids 0..n-1 in arrival
/// order, one (prompt, output) length pair drawn from `dataset` per request
/// in that same order.  Shared by build_trace and the scenario generators so
/// both consume the length RNG with the identical discipline.
std::vector<Request> assemble_trace(const std::vector<Seconds>& times, Dataset dataset,
                                    Rng& length_rng);

/// Summary statistics of a trace for logging.
struct TraceStats {
  std::size_t count = 0;
  double mean_prompt = 0;
  double mean_output = 0;
  Seconds span = 0;
};
TraceStats trace_stats(const std::vector<Request>& trace);

}  // namespace hetis::workload
