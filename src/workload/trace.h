// Trace builder: arrival process x dataset sampler -> request list.
// Plus trace record/replay: any generated trace (build_trace or a scenario)
// can be persisted as CSV and replayed byte-identically across runs and
// machines -- the arrival column round-trips doubles exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/arrivals.h"
#include "workload/datasets.h"
#include "workload/request.h"

namespace hetis::workload {

struct TraceOptions {
  Dataset dataset = Dataset::kShareGPT;
  std::uint64_t seed = 42;
  // Stationary mode: rate > 0 with horizon.
  double rate = 1.0;
  Seconds horizon = 60.0;
  // When non-empty, overrides (rate, horizon) with piecewise segments.
  std::vector<RateSegment> segments;
};

/// Builds a sorted request trace.  Ids are assigned 0..n-1 in arrival
/// order.
std::vector<Request> build_trace(const TraceOptions& opts);

/// Assembles a trace from precomputed arrival times: ids 0..n-1 in arrival
/// order, one (prompt, output) length pair drawn from `dataset` per request
/// in that same order.  Shared by build_trace and the scenario generators so
/// both consume the length RNG with the identical discipline.
std::vector<Request> assemble_trace(const std::vector<Seconds>& times, Dataset dataset,
                                    Rng& length_rng);

/// Writes `trace` as CSV with header `id,arrival,prompt_len,output_len,
/// tenant`; arrivals use %.17g so every finite double round-trips exactly.
void save_trace(std::ostream& os, const std::vector<Request>& trace);
/// File overload; throws std::runtime_error when `path` cannot be written.
void save_trace(const std::string& path, const std::vector<Request>& trace);

/// Inverse of save_trace.  Validates the header and every row arity;
/// throws std::invalid_argument on malformed input.  load_trace(save_trace
/// (t)) == t field-for-field, so replayed experiments are byte-identical
/// to the generating run.
std::vector<Request> load_trace(std::istream& is);
/// File overload; throws std::runtime_error when `path` cannot be read.
std::vector<Request> load_trace(const std::string& path);

/// Summary statistics of a trace for logging.
struct TraceStats {
  std::size_t count = 0;
  double mean_prompt = 0;
  double mean_output = 0;
  Seconds span = 0;
};
TraceStats trace_stats(const std::vector<Request>& trace);

}  // namespace hetis::workload
