// Arrival processes: stationary Poisson and piecewise-rate Poisson
// (the paper's Fig. 14 drives rates 5 -> 0 -> 2.5 -> 0 over time).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace hetis::workload {

/// A rate segment: `rate` requests/second for `duration` seconds.
struct RateSegment {
  Seconds duration;
  double rate;  // may be 0 (silence)
};

/// Generates arrival timestamps for a piecewise-constant-rate Poisson
/// process over the given segments (thinning-free: per-segment exponential
/// gaps).  Returns sorted times starting at 0.
std::vector<Seconds> generate_arrivals(const std::vector<RateSegment>& segments, Rng& rng);

/// Stationary helper: `rate` req/s for `horizon` seconds.
std::vector<Seconds> generate_poisson(double rate, Seconds horizon, Rng& rng);

}  // namespace hetis::workload
