#include "workload/arrivals.h"

#include <stdexcept>

namespace hetis::workload {

std::vector<Seconds> generate_arrivals(const std::vector<RateSegment>& segments, Rng& rng) {
  std::vector<Seconds> times;
  Seconds segment_start = 0.0;
  for (const auto& seg : segments) {
    if (seg.duration < 0.0 || seg.rate < 0.0) {
      throw std::invalid_argument("generate_arrivals: negative duration or rate");
    }
    if (seg.rate > 0.0) {
      Seconds t = segment_start + rng.exponential(seg.rate);
      while (t < segment_start + seg.duration) {
        times.push_back(t);
        t += rng.exponential(seg.rate);
      }
    }
    segment_start += seg.duration;
  }
  return times;
}

std::vector<Seconds> generate_poisson(double rate, Seconds horizon, Rng& rng) {
  return generate_arrivals({RateSegment{horizon, rate}}, rng);
}

}  // namespace hetis::workload
