// Inference request descriptor.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hetis::workload {

using RequestId = std::int64_t;

struct Request {
  RequestId id = -1;
  Seconds arrival = 0.0;
  std::int64_t prompt_len = 0;   // tokens in the prompt (prefill work)
  std::int64_t output_len = 0;   // tokens to generate (decode iterations);
                                 // the engine treats this as the point where
                                 // EOS fires -- unknown to the scheduler a
                                 // priori, exactly like real serving.
  int tenant = 0;                // index into the generating scenario's tenant
                                 // list (0 for single-tenant workloads); flows
                                 // through the metrics observer so per-tenant
                                 // SLO attainment can be attributed.

  std::int64_t total_len() const { return prompt_len + output_len; }
  std::string to_string() const;
};

}  // namespace hetis::workload
