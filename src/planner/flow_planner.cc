#include "planner/flow_planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/log.h"
#include "lp/simplex.h"

namespace hetis::planner {

namespace {

using parallel::InstanceConfig;
using parallel::PlanEstimate;
using parallel::StageConfig;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The relaxation ladder: each rounded candidate trades bottleneck cost
/// (C* scaled by 1 + delta) for fewer primaries, sweeping the pruning-depth
/// axis the exhaustive search enumerates device by device.
constexpr double kLadder[] = {0.0, 0.05, 0.15, 0.3, 0.6, 1.0};

/// TP x PP cross products larger than this refine by coordinate descent
/// instead of full enumeration (d = 1 on a 256-GPU pod has thousands of
/// combinations; the descent visits a few dozen).
constexpr std::size_t kMaxCrossProduct = 1024;

// One GPU type's per-instance aggregate: the only granularity the LP sees.
struct TypeAgg {
  hw::GpuType type;
  std::vector<int> share_ids;  // instance-0 device ids, cluster order
  double tau1 = 0;             // per-layer cost of ONE device (perfect scaling)
  double mem = 0;              // parameter bytes one device may hold
};

// Largest-remainder layer split proportional to stage speed.  Identical
// arithmetic to the exhaustive search's balance step so the oracle-anchor
// candidate carries the very same layer counts.
std::vector<int> balance_layers(int total, const std::vector<double>& per_layer_cost) {
  const std::size_t n = per_layer_cost.size();
  if (n == 0) return {};
  if (n == 1) return {total};
  double inv_sum = 0.0;
  for (double c : per_layer_cost) inv_sum += 1.0 / c;
  std::vector<double> frac(n);
  std::vector<int> layers(n);
  int assigned = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double ideal = total * (1.0 / per_layer_cost[k]) / inv_sum;
    layers[k] = static_cast<int>(std::floor(ideal));
    frac[k] = ideal - layers[k];
    assigned += layers[k];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&frac](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t k = 0; assigned < total; ++k) {
    layers[order[k % n]] += 1;
    ++assigned;
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (layers[k] == 0) {
      std::size_t donor = static_cast<std::size_t>(
          std::max_element(layers.begin(), layers.end()) - layers.begin());
      if (layers[donor] > 1) {
        --layers[donor];
        ++layers[k];
      }
    }
  }
  return layers;
}

// Feasibility LP for bottleneck cost C.  Variables [f_0..f_{T-1},
// l_0..l_{T-1}]: primaries and layers per type.
struct LpOutcome {
  bool feasible = false;
  std::vector<double> f;  // continuous primaries per type
};

LpOutcome solve_placement_lp(const std::vector<TypeAgg>& types, double C, int layers,
                             double layer_bytes, parallel::SearchDiagnostics& diag) {
  const std::size_t T = types.size();
  lp::Problem p;
  p.num_vars = 2 * T;
  p.objective.assign(2 * T, 0.0);
  for (std::size_t t = 0; t < T; ++t) p.objective[t] = types[t].tau1;

  std::vector<double> row(2 * T, 0.0);
  for (std::size_t t = 0; t < T; ++t) row[T + t] = 1.0;
  p.add_eq(row, static_cast<double>(layers));  // sum l_t = L
  for (std::size_t t = 0; t < T; ++t) {
    row.assign(2 * T, 0.0);
    row[T + t] = types[t].tau1;  // tau_t * l_t <= C * f_t
    row[t] = -C;
    p.add_le(row, 0.0);
  }
  for (std::size_t t = 0; t < T; ++t) {
    row.assign(2 * T, 0.0);
    row[t] = 1.0;  // f_t <= n_t
    p.add_le(row, static_cast<double>(types[t].share_ids.size()));
  }
  for (std::size_t t = 0; t < T; ++t) {
    row.assign(2 * T, 0.0);
    row[T + t] = layer_bytes;  // parameters of l_t layers fit on f_t devices
    row[t] = -types[t].mem;
    p.add_le(row, 0.0);
  }
  row.assign(2 * T, 0.0);
  for (std::size_t t = 0; t < T; ++t) row[t] = 1.0;
  p.add_ge(row, 1.0);  // at least one primary

  lp::Solution sol = lp::solve(p);
  ++diag.lp_solves;
  diag.solver_iterations += sol.iterations;
  LpOutcome out;
  out.feasible = sol.ok();
  if (sol.ok()) out.f.assign(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(T));
  return out;
}

}  // namespace

FlowPlanner::FlowPlanner(const hw::Cluster& cluster, const model::ModelSpec& model,
                         parallel::ParallelizerOptions opts)
    : cluster_(&cluster),
      model_(&model),
      opts_(std::move(opts)),
      oracle_(cluster, model, opts_) {}

parallel::ParallelPlan FlowPlanner::plan(const parallel::WorkloadProfile& profile) {
  const auto t0 = std::chrono::steady_clock::now();
  diag_ = parallel::SearchDiagnostics{};
  diag_.planner = "flow";
  std::unique_ptr<parallel::PlanObjective> objective = parallel::make_objective(opts_.objective);
  diag_.objective = objective->name();

  const parallel::PlanEvaluator& evaluator = oracle_.evaluator();
  const int L = model_->layers;
  const double layer_bytes = static_cast<double>(model_->layer_param_bytes());

  // Within a type, degraded devices (condition overlay) sort first; the
  // share layout below takes primaries from the END of the share and
  // demotes from the FRONT, so a straggler is the first of its type to
  // become an Attention worker -- mirroring the exhaustive tier's walk
  // order.  Stable, so healthy clusters keep id order byte-for-byte.
  const std::vector<hw::GpuType> types = cluster_->types_by_power_desc();
  std::map<hw::GpuType, std::vector<int>> by_type;
  for (hw::GpuType t : types) {
    std::vector<int> devs = cluster_->devices_of_type(t);
    if (cluster_->degraded()) {
      std::stable_sort(devs.begin(), devs.end(), [&](int a, int b) {
        return cluster_->device_speed(a) < cluster_->device_speed(b);
      });
    }
    by_type[t] = std::move(devs);
  }

  // DP instance counts d that divide every type's count (as exhaustive).
  std::vector<int> candidates_d{1};
  if (opts_.allow_dp) {
    int max_d = std::numeric_limits<int>::max();
    for (const auto& [t, devs] : by_type) {
      max_d = std::min(max_d, static_cast<int>(devs.size()));
    }
    for (int d = 2; d <= max_d; ++d) {
      bool divides = true;
      for (const auto& [t, devs] : by_type) {
        if (static_cast<int>(devs.size()) % d != 0) divides = false;
      }
      if (divides) candidates_d.push_back(d);
    }
  }
  diag_.instances_considered = static_cast<int>(candidates_d.size());

  struct Winner {
    InstanceConfig inst;
    double score = kInf;
    PlanEstimate est;
    int d = 1;
    int pruned = 0;
    double c_star = 0;  // LP bound on the bottleneck stage cost
  };
  std::vector<Winner> per_d(candidates_d.size());

  for (std::size_t di = 0; di < candidates_d.size(); ++di) {
    const int d = candidates_d[di];
    parallel::WorkloadProfile share = profile;
    share.prefill_tokens = std::max<std::int64_t>(1, profile.prefill_tokens / d);
    share.decode_batch = std::max<std::int64_t>(1, profile.decode_batch / d);

    // --- 1. Type aggregation over instance 0's device share ---
    std::vector<TypeAgg> aggs;
    for (hw::GpuType t : types) {
      const auto& devs = by_type.at(t);
      int per = static_cast<int>(devs.size()) / d;
      if (per == 0) continue;
      TypeAgg a;
      a.type = t;
      a.share_ids.assign(devs.begin(), devs.begin() + per);
      a.tau1 = oracle_.perfect_scaling_cost({{t, 1}}, share) / L;
      // Leave 10% of device memory as activation/runtime headroom; the
      // evaluator's hosts_model() check is the exact arbiter downstream.
      a.mem = 0.9 * static_cast<double>(hw::gpu_spec(t).memory);
      aggs.push_back(std::move(a));
    }
    if (aggs.empty()) continue;
    const std::size_t T = aggs.size();

    Winner& best = per_d[di];
    best.d = d;

    // Exact scoring: replicate instance 0's estimate to the d-wide plan and
    // apply the same KV feasibility filter as the exhaustive search.
    auto score_config = [&](const InstanceConfig& cfg, double* score_out,
                            PlanEstimate* est_out) {
      ++diag_.configurations_evaluated;
      PlanEstimate est = parallel::replicate_estimate(evaluator.evaluate(cfg, share), d);
      *est_out = est;
      *score_out = est.kv_capacity < profile.min_kv_bytes ? kInf : objective->score(est);
    };

    // Builds the unified-stage candidate for per-type primary counts `f`.
    // Convention shared with the exhaustive search: pruning removes the
    // FIRST ids of a type's share, low-end types first, so the oracle
    // anchor reproduces the Delta walk's exact device sets.
    auto build_config = [&](const std::vector<int>& f, bool keep_workers) {
      InstanceConfig cfg;
      std::vector<std::size_t> used;
      std::vector<double> per_layer;
      for (std::size_t t = 0; t < T; ++t) {
        if (f[t] <= 0) continue;
        used.push_back(t);
        per_layer.push_back(oracle_.perfect_scaling_cost({{aggs[t].type, f[t]}}, share) / L);
      }
      if (used.empty()) return cfg;  // no primaries: infeasible marker
      std::vector<int> layers = balance_layers(L, per_layer);
      for (std::size_t k = 0; k < used.size(); ++k) {
        if (layers[k] == 0) continue;  // degenerate split; devices stay idle
        const TypeAgg& a = aggs[used[k]];
        StageConfig stage;
        stage.devices.assign(a.share_ids.end() - f[used[k]], a.share_ids.end());
        stage.layers = layers[k];
        cfg.stages.push_back(std::move(stage));
      }
      if (cfg.stages.empty()) return cfg;
      if (keep_workers) {
        // Low-end types first, front-of-share ids first: the walk order.
        for (std::size_t t = T; t-- > 0;) {
          const TypeAgg& a = aggs[t];
          int demoted = static_cast<int>(a.share_ids.size()) - f[t];
          cfg.attention_workers.insert(cfg.attention_workers.end(), a.share_ids.begin(),
                                       a.share_ids.begin() + demoted);
        }
      }
      return cfg;
    };

    std::set<std::pair<std::vector<int>, bool>> seen;
    auto consider = [&](const std::vector<int>& f, bool keep_workers, bool require_hosts_model) {
      if (!seen.insert({f, keep_workers}).second) return;
      InstanceConfig cfg = build_config(f, keep_workers);
      if (cfg.stages.empty()) return;
      if (require_hosts_model && !evaluator.hosts_model(cfg)) return;
      double score = kInf;
      PlanEstimate est;
      score_config(cfg, &score, &est);
      if (score >= best.score) return;
      best.score = score;
      best.est = est;
      best.inst = std::move(cfg);
      best.pruned = 0;
      for (std::size_t t = 0; t < T; ++t) {
        best.pruned += static_cast<int>(aggs[t].share_ids.size()) - f[t];
      }
    };

    // --- Oracle anchors ---
    std::vector<int> all(T);
    for (std::size_t t = 0; t < T; ++t) all[t] = static_cast<int>(aggs[t].share_ids.size());
    consider(all, /*keep_workers=*/false, /*require_hosts_model=*/false);

    if (opts_.enable_pruning) {
      // The paper's Delta walk on the aggregated counts: remove devices
      // low-end first while the perfect-scaling cost degrades by <= Delta.
      std::vector<int> f = all;
      auto counts = [&](const std::vector<int>& fv) {
        std::vector<std::pair<hw::GpuType, int>> c;
        for (std::size_t t = 0; t < T; ++t) c.emplace_back(aggs[t].type, fv[t]);
        return c;
      };
      double current = oracle_.perfect_scaling_cost(counts(f), share);
      for (std::size_t t = T; t-- > 0;) {
        while (f[t] > 0) {
          std::vector<int> attempt = f;
          --attempt[t];
          int remaining = std::accumulate(attempt.begin(), attempt.end(), 0);
          if (remaining == 0) break;
          double without = oracle_.perfect_scaling_cost(counts(attempt), share);
          if (without / current <= 1.0 + opts_.delta) {
            f = std::move(attempt);
            current = without;
          } else {
            break;
          }
        }
      }
      consider(f, /*keep_workers=*/true, /*require_hosts_model=*/false);

      // Dense anchor sweep along the oracle's low-end-first removal order.
      // Depth-exploring objectives (latency, goodput) often win by demoting
      // or dropping ALL of a low-end tier -- far past the Delta frontier and
      // invisible to the bottleneck LP, whose ladder only relaxes cost.  On
      // shares the exhaustive tier could afford we anchor every per-device
      // depth (keeping the oracle-equivalence bound tight); at datacenter
      // scale only whole-tier removals are anchored and the LP ladder
      // interpolates between them.
      if (objective->explores_depth()) {
        const int n_share = std::accumulate(all.begin(), all.end(), 0);
        std::vector<int> depths;
        if (n_share <= kAutoExhaustiveMaxDevices) {
          for (int depth = 1; depth < n_share; ++depth) depths.push_back(depth);
        } else {
          int cum = 0;
          for (std::size_t t = T; t-- > 1;) {
            cum += all[t];
            depths.push_back(cum);
          }
        }
        for (int depth : depths) {
          std::vector<int> fd = all;
          int left = depth;
          for (std::size_t t = T; t-- > 0 && left > 0;) {
            int take = std::min(fd[t], left);
            fd[t] -= take;
            left -= take;
          }
          consider(fd, /*keep_workers=*/true, /*require_hosts_model=*/true);
          consider(fd, /*keep_workers=*/false, /*require_hosts_model=*/true);
        }
      }

      // --- 2-3. Bisection on the bottleneck cost + the rounding ladder ---
      double c_lo = 0.0;
      for (const TypeAgg& a : aggs) {
        c_lo += static_cast<double>(a.share_ids.size()) / a.tau1;
      }
      c_lo = L / c_lo;  // all devices, perfect balance: unbeatable bound
      double c_hi = c_lo;
      bool lp_feasible = false;
      for (int i = 0; i < 60; ++i) {
        if (solve_placement_lp(aggs, c_hi, L, layer_bytes, diag_).feasible) {
          lp_feasible = true;
          break;
        }
        c_lo = c_hi;
        c_hi *= 2.0;
      }
      if (lp_feasible) {
        while (c_hi - c_lo > 1e-3 * c_hi) {
          double mid = 0.5 * (c_lo + c_hi);
          if (solve_placement_lp(aggs, mid, L, layer_bytes, diag_).feasible) {
            c_hi = mid;
          } else {
            c_lo = mid;
          }
        }
        best.c_star = c_hi;
        for (double delta : kLadder) {
          LpOutcome lp = solve_placement_lp(aggs, c_hi * (1.0 + delta), L, layer_bytes, diag_);
          if (!lp.feasible) continue;
          std::vector<int> rounded(T, 0);
          int total = 0;
          for (std::size_t t = 0; t < T; ++t) {
            if (lp.f[t] > 1e-6) {
              rounded[t] = std::min(static_cast<int>(aggs[t].share_ids.size()),
                                    static_cast<int>(std::ceil(lp.f[t] - 1e-6)));
            }
            total += rounded[t];
          }
          if (total == 0) continue;
          consider(rounded, /*keep_workers=*/true, /*require_hosts_model=*/true);
          consider(rounded, /*keep_workers=*/false, /*require_hosts_model=*/true);
        }
      }
    }

    if (best.inst.stages.empty()) continue;

    // --- 4. TP x PP refinement of this grouping's winner ---
    // The candidates above run each type as one TP-wide stage; the true
    // optimum may split a stage into pp sub-stages of narrower TP.  Stage
    // groups re-derive from the winner (devices keep their order).
    {
      const InstanceConfig base = best.inst;
      const std::vector<int> worker_ids = base.attention_workers;
      std::vector<std::vector<int>> devs;
      std::vector<int> layer_split;
      for (const StageConfig& s : base.stages) {
        devs.push_back(s.devices);
        layer_split.push_back(s.layers);
      }
      std::vector<std::vector<std::pair<int, int>>> options(devs.size());
      std::size_t combos = 1;
      for (std::size_t k = 0; k < devs.size(); ++k) {
        int n = static_cast<int>(devs[k].size());
        for (int tp = 1; tp <= n; ++tp) {
          if (n % tp != 0) continue;
          int pp = n / tp;
          if (pp > layer_split[k]) continue;
          options[k].emplace_back(tp, pp);
        }
        if (options[k].empty()) options[k].emplace_back(n, 1);
        combos *= options[k].size();
      }
      auto build_choice = [&](const std::vector<std::size_t>& choice) {
        InstanceConfig cfg;
        for (std::size_t k = 0; k < devs.size(); ++k) {
          auto [tp, pp] = options[k][choice[k]];
          int layers_left = layer_split[k];
          for (int sub = 0; sub < pp; ++sub) {
            StageConfig stage;
            stage.devices.assign(devs[k].begin() + sub * tp, devs[k].begin() + (sub + 1) * tp);
            stage.layers = layers_left / (pp - sub);
            layers_left -= stage.layers;
            cfg.stages.push_back(std::move(stage));
          }
        }
        cfg.attention_workers = worker_ids;
        return cfg;
      };
      auto try_choice = [&](const std::vector<std::size_t>& choice) {
        InstanceConfig cfg = build_choice(choice);
        double score = kInf;
        PlanEstimate est;
        score_config(cfg, &score, &est);
        if (score < best.score) {
          best.score = score;
          best.est = est;
          best.inst = std::move(cfg);
        }
      };
      std::vector<std::size_t> choice(devs.size(), 0);
      if (combos <= kMaxCrossProduct) {
        for (;;) {
          try_choice(choice);
          std::size_t k = 0;
          while (k < choice.size()) {
            if (++choice[k] < options[k].size()) break;
            choice[k] = 0;
            ++k;
          }
          if (k == choice.size()) break;
        }
      } else {
        // Coordinate descent: refine one stage at a time, repeat until a
        // full pass stops improving (at most 4 passes).
        for (int pass = 0; pass < 4; ++pass) {
          double before = best.score;
          for (std::size_t k = 0; k < options.size(); ++k) {
            std::size_t best_opt = choice[k];
            for (std::size_t o = 0; o < options[k].size(); ++o) {
              choice[k] = o;
              double prev = best.score;
              try_choice(choice);
              if (best.score < prev) best_opt = o;
            }
            choice[k] = best_opt;
          }
          if (best.score >= before * 0.9999) break;
        }
      }
    }
  }

  // --- Grouping selection: exhaustive's 0.1% tie band, earlier d wins ---
  std::size_t best_i = per_d.size();
  for (std::size_t i = 0; i < per_d.size(); ++i) {
    if (per_d[i].inst.stages.empty() || !std::isfinite(per_d[i].score)) continue;
    if (best_i == per_d.size()) {
      best_i = i;
      continue;
    }
    const double incumbent = per_d[best_i].score;
    const double threshold = incumbent >= 0 ? incumbent * 0.999 : incumbent * 1.001;
    if (per_d[i].score < threshold) best_i = i;
  }

  if (best_i == per_d.size()) {
    // Nothing survived rounding + KV filtering: defer to the oracle, which
    // enumerates the exact candidate space the LP abstracted away.
    diag_.fallback_reason = "no feasible flow candidate (rounding/KV filter)";
    const auto saved = diag_;
    parallel::ParallelPlan plan = oracle_.plan(profile, *objective);
    diag_ = oracle_.diagnostics();
    diag_.planner = "flow";
    diag_.lp_solves = saved.lp_solves;
    diag_.solver_iterations = saved.solver_iterations;
    diag_.fallback_reason = saved.fallback_reason;
    diag_.configurations_evaluated += saved.configurations_evaluated;
    diag_.wall_time =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return plan;
  }

  const Winner& win = per_d[best_i];
  diag_.pruned_devices = win.pruned;
  diag_.best_cost = win.score;
  if (win.c_star > 0) {
    diag_.relaxation_gap =
        std::max(0.0, win.est.iteration_cost() / win.c_star - 1.0);
  }

  // Replicate instance 0 across the d instances (per-type block offsets, as
  // the exhaustive search does).
  parallel::ParallelPlan plan;
  const int d = win.d;
  for (int rep = 0; rep < d; ++rep) {
    InstanceConfig copy = win.inst;
    auto shift = [&](int& dev) {
      hw::GpuType t = cluster_->device(dev).type;
      const auto& all = by_type.at(t);
      int per = static_cast<int>(all.size()) / d;
      auto pos = std::find(all.begin(), all.end(), dev) - all.begin();
      dev = all[static_cast<std::size_t>(pos + rep * per)];
    };
    for (auto& stage : copy.stages) {
      for (int& dev : stage.devices) shift(dev);
    }
    for (int& dev : copy.attention_workers) shift(dev);
    plan.instances.push_back(std::move(copy));
  }
  diag_.wall_time =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  HETIS_INFO("FlowPlanner: " << plan.to_string(*cluster_, &diag_));
  return plan;
}

}  // namespace hetis::planner
