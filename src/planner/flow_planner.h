// FlowPlanner: datacenter-scale placement via LP relaxation + exact
// re-scoring.
//
// The exhaustive search's cost is a product over device-grouping, pruning
// depth and per-stage TP x PP choices -- fine at testbed scale, hopeless at
// hundreds of GPUs.  Helix's observation (PAPERS.md) is that heterogeneous
// placement is a max-flow problem over *device types*: what matters is how
// many primaries of each type serve a pipeline and how many layers they
// carry, not which identical GPU gets which slot.  The flow planner adopts
// that framing against our own cost model:
//
//   1. Aggregate: per GPU type t, a per-instance share of n_t devices, a
//      profiled per-layer cost tau_t (one device, prefill + weighted
//      decode -- the same perfect-scaling cost the exhaustive pruning phase
//      uses) and a per-device parameter budget.
//   2. Bisect on the bottleneck stage cost C.  Feasibility of a given C is
//      one small LP over f_t (primaries of type t) and l_t (layers on type
//      t): layers sum to L, tau_t * l_t <= C * f_t (perfect scaling),
//      f_t <= n_t, parameters must fit, at least one primary; minimize
//      sum tau_t * f_t so slow types are shed first (the LP analogue of the
//      paper's Delta-pruning, which demotes weak GPUs to Attention
//      workers).  LP size is O(#types), independent of #devices.
//   3. Round a ladder of primal solutions -- C* relaxed by 0%..100% -- into
//      integer per-type primary counts; each in two placements (demoted
//      devices kept as Attention workers, or dropped from the deployment).
//      Two oracle-anchor candidates (all primaries; the paper's Delta walk)
//      keep the small-cluster behaviour honest.
//   4. Score every candidate EXACTLY through the PlanEvaluator under the
//      configured PlanObjective, with the same KV-capacity filter as the
//      exhaustive search; refine the per-grouping winner's TP x PP split.
//      The LP only proposes; measured cost disposes.
//
// When no candidate survives, the planner falls back to the exhaustive
// oracle and records why in SearchDiagnostics::fallback_reason.
#pragma once

#include "planner/planner.h"

namespace hetis::planner {

class FlowPlanner : public Planner {
 public:
  FlowPlanner(const hw::Cluster& cluster, const model::ModelSpec& model,
              parallel::ParallelizerOptions opts);

  parallel::ParallelPlan plan(const parallel::WorkloadProfile& profile) override;
  const parallel::SearchDiagnostics& diagnostics() const override { return diag_; }
  std::string name() const override { return "flow"; }

 private:
  const hw::Cluster* cluster_;
  const model::ModelSpec* model_;
  parallel::ParallelizerOptions opts_;
  // Shares the cost model (perfect_scaling_cost, PlanEvaluator) and serves
  // as the fallback oracle.
  parallel::Parallelizer oracle_;
  parallel::SearchDiagnostics diag_;
};

}  // namespace hetis::planner
