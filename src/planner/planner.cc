#include "planner/planner.h"

#include <sstream>
#include <stdexcept>

#include "planner/flow_planner.h"

namespace hetis::planner {

ExhaustivePlanner::ExhaustivePlanner(const hw::Cluster& cluster, const model::ModelSpec& model,
                                     parallel::ParallelizerOptions opts)
    : search_(cluster, model, std::move(opts)) {}

parallel::ParallelPlan ExhaustivePlanner::plan(const parallel::WorkloadProfile& profile) {
  return search_.plan(profile);
}

std::vector<std::string> planner_names() { return {"auto", "exhaustive", "flow"}; }

void validate(const std::string& name) {
  if (name.empty()) return;  // "" means "auto" (the ParallelizerOptions default)
  for (const auto& known : planner_names()) {
    if (name == known) return;
  }
  std::ostringstream oss;
  oss << "planner: unknown planner '" << name << "'; known planners:";
  for (const auto& known : planner_names()) oss << " '" << known << "'";
  throw std::invalid_argument(oss.str());
}

std::unique_ptr<Planner> make(const std::string& name, const hw::Cluster& cluster,
                              const model::ModelSpec& model,
                              const parallel::ParallelizerOptions& opts) {
  validate(name);
  std::string which = name.empty() ? "auto" : name;
  if (which == "auto") {
    which = cluster.num_devices() <= kAutoExhaustiveMaxDevices ? "exhaustive" : "flow";
  }
  if (which == "exhaustive") return std::make_unique<ExhaustivePlanner>(cluster, model, opts);
  return std::make_unique<FlowPlanner>(cluster, model, opts);
}

}  // namespace hetis::planner
