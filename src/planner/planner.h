// Placement planners: interchangeable tiers that turn (cluster, model,
// workload) into a ParallelPlan.
//
//   "exhaustive" -- the paper's hierarchical search (parallel/parallelizer.h)
//                   wrapped as a Planner.  Optimal within the paper's
//                   candidate space; its grouping x pruning x TP/PP
//                   enumeration is priced per candidate, which is fine for
//                   testbed-sized clusters and hopeless for datacenters.
//   "flow"       -- LP relaxation over the same cost model
//                   (planner/flow_planner.h): aggregates devices by type,
//                   bisects on the bottleneck stage cost with small
//                   feasibility LPs, rounds a ladder of primal solutions
//                   into concrete candidates and re-scores them EXACTLY
//                   through the PlanEvaluator, so the LP only decides what
//                   to look at, never what wins.  Planning cost grows with
//                   the number of GPU *types*, not GPUs.
//   "auto"       -- exhaustive up to kAutoExhaustiveMaxDevices devices
//                   (keeping small-cluster plans byte-identical to the
//                   legacy search), flow beyond.
//
// Every planner ranks candidates with the same pluggable PlanObjective and
// reports how it searched through SearchDiagnostics, so the engine, the
// control plane and the harness treat the tiers interchangeably.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "model/llm.h"
#include "parallel/parallelizer.h"

namespace hetis::planner {

/// Device count at or below which "auto" keeps the exhaustive oracle.
inline constexpr int kAutoExhaustiveMaxDevices = 16;

class Planner {
 public:
  virtual ~Planner() = default;

  /// Produces a plan for `profile`; diagnostics() describes the search
  /// afterwards.  Throws std::runtime_error when no feasible configuration
  /// exists (mirrors Parallelizer::plan).
  virtual parallel::ParallelPlan plan(const parallel::WorkloadProfile& profile) = 0;

  /// Diagnostics of the most recent plan() call.
  virtual const parallel::SearchDiagnostics& diagnostics() const = 0;

  virtual std::string name() const = 0;
};

/// The exhaustive hierarchical search as a Planner: the small-cluster
/// oracle the flow tier is validated against (tests/test_planner.cc).
class ExhaustivePlanner : public Planner {
 public:
  ExhaustivePlanner(const hw::Cluster& cluster, const model::ModelSpec& model,
                    parallel::ParallelizerOptions opts);

  parallel::ParallelPlan plan(const parallel::WorkloadProfile& profile) override;
  const parallel::SearchDiagnostics& diagnostics() const override {
    return search_.diagnostics();
  }
  std::string name() const override { return "exhaustive"; }

 private:
  parallel::Parallelizer search_;
};

/// Builds a planner by name ("exhaustive" | "flow" | "auto"; "" counts as
/// "auto", the ParallelizerOptions default).  Throws std::invalid_argument
/// listing the known names otherwise.  `cluster` and `model` must outlive
/// the planner.
std::unique_ptr<Planner> make(const std::string& name, const hw::Cluster& cluster,
                              const model::ModelSpec& model,
                              const parallel::ParallelizerOptions& opts);

/// Names accepted by make(), sorted.
std::vector<std::string> planner_names();

/// Validates a planner name without building one (config paths fail fast on
/// typos, before any replan fires).  Throws std::invalid_argument like make().
void validate(const std::string& name);

}  // namespace hetis::planner
