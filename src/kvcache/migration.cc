#include "kvcache/migration.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hetis::kvcache {

Bytes group_cache_bytes(const model::ModelSpec& m, std::int64_t len) {
  // One head group = one KV head: 2 (K+V) * head_dim * dtype per token per
  // layer.
  return static_cast<Bytes>(2) * m.head_dim() * m.dtype_bytes * len * m.layers;
}

MigrationPlan plan_migration(const model::ModelSpec& m, SeqId seq, std::int64_t len,
                             const Placement& from, const Placement& to) {
  // Build group -> device maps.
  std::map<int, int> old_loc;
  for (const auto& [dev, groups] : from) {
    for (int g : groups) {
      if (!old_loc.emplace(g, dev).second) {
        throw std::invalid_argument("plan_migration: group duplicated in `from`");
      }
    }
  }
  std::map<int, int> new_loc;
  for (const auto& [dev, groups] : to) {
    for (int g : groups) {
      if (!new_loc.emplace(g, dev).second) {
        throw std::invalid_argument("plan_migration: group duplicated in `to`");
      }
    }
  }

  MigrationPlan plan;
  const Bytes per_group = group_cache_bytes(m, len);
  for (const auto& [g, dst] : new_loc) {
    auto it = old_loc.find(g);
    if (it == old_loc.end()) {
      throw std::invalid_argument("plan_migration: group in `to` missing from `from`");
    }
    if (it->second == dst) {
      ++plan.groups_reused;
      continue;
    }
    plan.moves.push_back(Move{seq, g, it->second, dst, per_group});
    plan.total_bytes += per_group;
    ++plan.groups_moved;
  }
  return plan;
}

Placement assign_groups_preserving_overlap(const Placement& from,
                                           const std::map<int, int>& new_counts) {
  // Collect all concrete group ids.
  std::vector<int> all_groups;
  std::map<int, int> old_loc;
  for (const auto& [dev, groups] : from) {
    for (int g : groups) {
      all_groups.push_back(g);
      old_loc[g] = dev;
    }
  }
  std::sort(all_groups.begin(), all_groups.end());

  int total_new = 0;
  for (const auto& [dev, cnt] : new_counts) total_new += cnt;
  if (total_new != static_cast<int>(all_groups.size())) {
    throw std::invalid_argument(
        "assign_groups_preserving_overlap: group count mismatch between schemes");
  }

  Placement out;
  std::set<int> placed;
  // Pass 1: keep groups on their old device up to the new count.
  std::map<int, int> remaining = new_counts;
  for (const auto& [dev, cnt] : new_counts) {
    auto fit = from.find(dev);
    if (fit == from.end()) continue;
    for (int g : fit->second) {
      if (remaining[dev] == 0) break;
      out[dev].push_back(g);
      placed.insert(g);
      --remaining[dev];
    }
  }
  // Pass 2: distribute displaced groups into leftover capacity
  // (deterministic: ascending group id, ascending device id).
  for (int g : all_groups) {
    if (placed.count(g)) continue;
    for (auto& [dev, cnt] : remaining) {
      if (cnt > 0) {
        out[dev].push_back(g);
        placed.insert(g);
        --cnt;
        break;
      }
    }
  }
  for (auto& [dev, groups] : out) std::sort(groups.begin(), groups.end());
  return out;
}

}  // namespace hetis::kvcache
