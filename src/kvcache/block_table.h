// Block tables: the logical->physical mapping for KV caches.
//
// TokenBlockTable implements vLLM semantics: one block stream per sequence,
// each block holding `block_size` tokens of ALL heads' K/V.
//
// HeadBlockTable implements Hetis semantics (§6 "KV cache management"):
// blocks are further split along the head dimension, so the unit of
// placement is a (sequence, head-group) share.  A head group is one KV head
// plus the r query heads attached to it (r = GQA ratio), which is the
// smallest unit dynamic Attention parallelism can move between devices.
// Caches are addressed by (sequence id, position, head group) exactly as
// the paper's custom CUDA kernels do.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kvcache/allocator.h"

namespace hetis::kvcache {

using SeqId = std::int64_t;

/// vLLM-style per-sequence block list.
class TokenBlockTable {
 public:
  /// `block_size`: tokens per block; `alloc` must outlive the table.
  TokenBlockTable(BlockAllocator& alloc, int block_size);

  /// Registers a sequence with `len` tokens already cached (prefill).
  /// Returns false (and allocates nothing) if space is insufficient.
  bool add_sequence(SeqId seq, std::int64_t len);

  /// Extends a sequence by one token; false on out-of-memory.
  bool append_token(SeqId seq);

  /// Frees all blocks of a sequence.
  void remove_sequence(SeqId seq);

  bool contains(SeqId seq) const { return seqs_.count(seq) > 0; }
  std::int64_t length(SeqId seq) const;
  const std::vector<BlockId>& blocks(SeqId seq) const;

  /// Physical slot of (seq, pos): block_id * block_size + offset.
  std::int64_t slot(SeqId seq, std::int64_t pos) const;

  int block_size() const { return block_size_; }
  std::size_t num_sequences() const { return seqs_.size(); }

 private:
  struct Entry {
    std::int64_t len = 0;
    std::vector<BlockId> blocks;
  };
  BlockAllocator* alloc_;
  int block_size_;
  std::unordered_map<SeqId, Entry> seqs_;
};

/// Hetis head-granular block table.  One allocator per device; a device's
/// table only tracks the head groups hosted locally.
class HeadBlockTable {
 public:
  /// `block_size`: tokens per block (per head group; a head-group block is
  /// proportionally smaller in bytes than a token-wise block).
  HeadBlockTable(BlockAllocator& alloc, int block_size);

  /// Registers `groups` head-group shares of a sequence with `len` cached
  /// tokens each.  All-or-nothing; false on out-of-memory.
  bool add_groups(SeqId seq, const std::vector<int>& groups, std::int64_t len);

  /// Appends one token to every locally-hosted group of `seq`.
  /// All-or-nothing; false on out-of-memory.
  bool append_token(SeqId seq);

  /// Drops one head group's share (used when migrating a group away).
  void remove_group(SeqId seq, int group);

  /// Drops everything this device holds for `seq`.
  void remove_sequence(SeqId seq);

  bool contains(SeqId seq) const { return seqs_.count(seq) > 0; }
  bool has_group(SeqId seq, int group) const;
  std::vector<int> groups_of(SeqId seq) const;  // sorted
  std::int64_t length(SeqId seq) const;
  std::size_t num_sequences() const { return seqs_.size(); }

  /// Physical slot of (seq, group, pos).
  std::int64_t slot(SeqId seq, int group, std::int64_t pos) const;

  const std::vector<BlockId>& blocks(SeqId seq, int group) const;

  int block_size() const { return block_size_; }

  /// Total storage operations performed (block allocations); the Fig. 15(b)
  /// "storage overhead" metric counts these.
  std::uint64_t storage_ops() const { return storage_ops_; }

 private:
  struct GroupEntry {
    std::vector<BlockId> blocks;
  };
  struct SeqEntry {
    std::int64_t len = 0;
    std::unordered_map<int, GroupEntry> groups;
  };

  bool ensure_capacity(GroupEntry& ge, std::int64_t len);

  BlockAllocator* alloc_;
  int block_size_;
  std::unordered_map<SeqId, SeqEntry> seqs_;
  std::uint64_t storage_ops_ = 0;
};

}  // namespace hetis::kvcache
