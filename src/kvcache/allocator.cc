#include "kvcache/allocator.h"

#include <stdexcept>

namespace hetis::kvcache {

BlockAllocator::BlockAllocator(Bytes capacity, Bytes block_bytes)
    : total_(0), block_bytes_(block_bytes) {
  if (block_bytes <= 0) throw std::invalid_argument("BlockAllocator: block_bytes <= 0");
  if (capacity < 0) throw std::invalid_argument("BlockAllocator: negative capacity");
  total_ = static_cast<std::size_t>(capacity / block_bytes);
  free_list_.reserve(total_);
  // Push in reverse so blocks are handed out in ascending id order.
  for (std::size_t i = total_; i-- > 0;) {
    free_list_.push_back(static_cast<BlockId>(i));
  }
  allocated_.assign(total_, false);
}

std::optional<BlockId> BlockAllocator::allocate() {
  if (free_list_.empty()) return std::nullopt;
  BlockId id = free_list_.back();
  free_list_.pop_back();
  allocated_[static_cast<std::size_t>(id)] = true;
  return id;
}

std::vector<BlockId> BlockAllocator::allocate_n(std::size_t n) {
  std::vector<BlockId> out;
  if (n > free_list_.size()) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(*allocate());
  }
  return out;
}

void BlockAllocator::free_block(BlockId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= total_) {
    throw std::out_of_range("BlockAllocator::free_block: bad id");
  }
  if (!allocated_[static_cast<std::size_t>(id)]) {
    throw std::logic_error("BlockAllocator::free_block: double free");
  }
  allocated_[static_cast<std::size_t>(id)] = false;
  free_list_.push_back(id);
}

void BlockAllocator::free_blocks(const std::vector<BlockId>& ids) {
  for (BlockId id : ids) free_block(id);
}

}  // namespace hetis::kvcache
