// Gather-index construction for the decode-phase attention kernel.
//
// Before each decode step the engine must translate every (sequence,
// head-group, position) into a physical cache slot -- the "compute-
// intensive block indexing process" the paper accelerates with multi-core
// CPU parallelization (§6).  This module is real CPU code and is measured
// for real by bench_fig15b_head_mgmt: the serial token-wise path models
// vLLM, the parallel head-wise path models Hetis (+13% storage ops, -26%
// fetch time in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "kvcache/block_table.h"

namespace hetis::kvcache {

/// One decode-attention work item: gather all cached positions of one
/// (sequence, head-group) pair.
struct GatherItem {
  SeqId seq = 0;
  int group = 0;         // ignored by the token-wise builder
  std::int64_t len = 0;  // positions [0, len) are gathered
};

/// Flat gather plan: slots[item_offsets[k] .. item_offsets[k+1]) are the
/// physical slots of item k, in position order.
struct GatherPlan {
  std::vector<std::int64_t> slots;
  std::vector<std::size_t> item_offsets;  // size = items + 1

  std::size_t num_items() const {
    return item_offsets.empty() ? 0 : item_offsets.size() - 1;
  }
};

/// Token-wise (vLLM) index build: expands each item from the per-sequence
/// block list; `group` is ignored (every head group shares the sequence's
/// blocks, the kernel applies the head offset).  The *_into variants reuse
/// the output buffers (serving engines keep pinned index buffers across
/// steps; re-zeroing them every iteration would dominate the measurement).
GatherPlan build_token_index(const TokenBlockTable& table,
                             const std::vector<GatherItem>& items);
void build_token_index_into(const TokenBlockTable& table, const std::vector<GatherItem>& items,
                            GatherPlan& out);

/// Head-wise (Hetis) index build, serial reference implementation.
GatherPlan build_head_index_serial(const HeadBlockTable& table,
                                   const std::vector<GatherItem>& items);
void build_head_index_serial_into(const HeadBlockTable& table,
                                  const std::vector<GatherItem>& items, GatherPlan& out);

/// Head-wise index build parallelized over items on `pool` (§6's multi-core
/// acceleration).  Bit-identical output to the serial version.
GatherPlan build_head_index_parallel(const HeadBlockTable& table,
                                     const std::vector<GatherItem>& items, ThreadPool& pool);
void build_head_index_parallel_into(const HeadBlockTable& table,
                                    const std::vector<GatherItem>& items, ThreadPool& pool,
                                    GatherPlan& out);

}  // namespace hetis::kvcache
