#include "kvcache/block_table.h"

#include <algorithm>
#include <stdexcept>

namespace hetis::kvcache {

namespace {
std::size_t blocks_for(std::int64_t len, int block_size) {
  if (len <= 0) return 0;
  return static_cast<std::size_t>((len + block_size - 1) / block_size);
}
}  // namespace

TokenBlockTable::TokenBlockTable(BlockAllocator& alloc, int block_size)
    : alloc_(&alloc), block_size_(block_size) {
  if (block_size <= 0) throw std::invalid_argument("TokenBlockTable: block_size <= 0");
}

bool TokenBlockTable::add_sequence(SeqId seq, std::int64_t len) {
  if (seqs_.count(seq)) throw std::logic_error("TokenBlockTable: duplicate sequence");
  std::vector<BlockId> blocks = alloc_->allocate_n(blocks_for(len, block_size_));
  if (blocks.empty() && len > 0) return false;
  seqs_.emplace(seq, Entry{len, std::move(blocks)});
  return true;
}

bool TokenBlockTable::append_token(SeqId seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("TokenBlockTable: unknown sequence");
  Entry& e = it->second;
  std::size_t need = blocks_for(e.len + 1, block_size_);
  if (need > e.blocks.size()) {
    auto blk = alloc_->allocate();
    if (!blk) return false;
    e.blocks.push_back(*blk);
  }
  ++e.len;
  return true;
}

void TokenBlockTable::remove_sequence(SeqId seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) return;
  alloc_->free_blocks(it->second.blocks);
  seqs_.erase(it);
}

std::int64_t TokenBlockTable::length(SeqId seq) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("TokenBlockTable: unknown sequence");
  return it->second.len;
}

const std::vector<BlockId>& TokenBlockTable::blocks(SeqId seq) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("TokenBlockTable: unknown sequence");
  return it->second.blocks;
}

std::int64_t TokenBlockTable::slot(SeqId seq, std::int64_t pos) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("TokenBlockTable: unknown sequence");
  const Entry& e = it->second;
  if (pos < 0 || pos >= e.len) throw std::out_of_range("TokenBlockTable: position out of range");
  BlockId blk = e.blocks[static_cast<std::size_t>(pos / block_size_)];
  return static_cast<std::int64_t>(blk) * block_size_ + pos % block_size_;
}

HeadBlockTable::HeadBlockTable(BlockAllocator& alloc, int block_size)
    : alloc_(&alloc), block_size_(block_size) {
  if (block_size <= 0) throw std::invalid_argument("HeadBlockTable: block_size <= 0");
}

bool HeadBlockTable::ensure_capacity(GroupEntry& ge, std::int64_t len) {
  std::size_t need = blocks_for(len, block_size_);
  while (ge.blocks.size() < need) {
    auto blk = alloc_->allocate();
    if (!blk) return false;
    ge.blocks.push_back(*blk);
    ++storage_ops_;
  }
  return true;
}

bool HeadBlockTable::add_groups(SeqId seq, const std::vector<int>& groups, std::int64_t len) {
  if (groups.empty()) return true;
  auto& entry = seqs_[seq];
  if (entry.groups.empty()) entry.len = len;
  if (entry.len != len) {
    throw std::logic_error("HeadBlockTable::add_groups: length mismatch with hosted groups");
  }
  // All-or-nothing: try to allocate every group; roll back on failure.
  std::vector<int> added;
  for (int g : groups) {
    if (entry.groups.count(g)) {
      throw std::logic_error("HeadBlockTable::add_groups: group already hosted");
    }
    GroupEntry ge;
    if (!ensure_capacity(ge, len)) {
      alloc_->free_blocks(ge.blocks);
      for (int rollback : added) remove_group(seq, rollback);
      if (seqs_.count(seq) && seqs_[seq].groups.empty()) seqs_.erase(seq);
      return false;
    }
    entry.groups.emplace(g, std::move(ge));
    added.push_back(g);
  }
  return true;
}

bool HeadBlockTable::append_token(SeqId seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("HeadBlockTable: unknown sequence");
  SeqEntry& e = it->second;
  std::int64_t new_len = e.len + 1;
  // Check capacity first so failure leaves no partial allocation.
  std::size_t need = blocks_for(new_len, block_size_);
  std::size_t extra = 0;
  for (auto& [g, ge] : e.groups) {
    if (ge.blocks.size() < need) ++extra;
  }
  if (extra > alloc_->free_blocks_count()) return false;
  for (auto& [g, ge] : e.groups) {
    bool ok = ensure_capacity(ge, new_len);
    (void)ok;  // guaranteed by the pre-check
  }
  e.len = new_len;
  return true;
}

void HeadBlockTable::remove_group(SeqId seq, int group) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) return;
  auto git = it->second.groups.find(group);
  if (git == it->second.groups.end()) return;
  alloc_->free_blocks(git->second.blocks);
  it->second.groups.erase(git);
  if (it->second.groups.empty()) seqs_.erase(it);
}

void HeadBlockTable::remove_sequence(SeqId seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) return;
  for (auto& [g, ge] : it->second.groups) alloc_->free_blocks(ge.blocks);
  seqs_.erase(it);
}

bool HeadBlockTable::has_group(SeqId seq, int group) const {
  auto it = seqs_.find(seq);
  return it != seqs_.end() && it->second.groups.count(group) > 0;
}

std::vector<int> HeadBlockTable::groups_of(SeqId seq) const {
  std::vector<int> out;
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) return out;
  out.reserve(it->second.groups.size());
  for (const auto& [g, ge] : it->second.groups) out.push_back(g);
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t HeadBlockTable::length(SeqId seq) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("HeadBlockTable: unknown sequence");
  return it->second.len;
}

std::int64_t HeadBlockTable::slot(SeqId seq, int group, std::int64_t pos) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("HeadBlockTable: unknown sequence");
  const SeqEntry& e = it->second;
  auto git = e.groups.find(group);
  if (git == e.groups.end()) throw std::out_of_range("HeadBlockTable: group not hosted");
  if (pos < 0 || pos >= e.len) throw std::out_of_range("HeadBlockTable: position out of range");
  BlockId blk = git->second.blocks[static_cast<std::size_t>(pos / block_size_)];
  return static_cast<std::int64_t>(blk) * block_size_ + pos % block_size_;
}

const std::vector<BlockId>& HeadBlockTable::blocks(SeqId seq, int group) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) throw std::out_of_range("HeadBlockTable: unknown sequence");
  auto git = it->second.groups.find(group);
  if (git == it->second.groups.end()) throw std::out_of_range("HeadBlockTable: group not hosted");
  return git->second.blocks;
}

}  // namespace hetis::kvcache
