// Migration planning for head-wise KV caches (paper §5.3 / §6).
//
// When the re-dispatcher moves a request from an old head-placement to a
// new one, only the head groups that *changed device* need their cached
// K/V moved -- the overlap is reused in place ("partial cache
// transmission").  This module computes the minimal move set and its
// byte volume; hauler/ executes the moves on the background channel.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "kvcache/block_table.h"
#include "model/llm.h"

namespace hetis::kvcache {

/// Placement of one request: device id -> head groups hosted there.
using Placement = std::map<int, std::vector<int>>;

struct Move {
  SeqId seq = 0;
  int group = 0;
  int src = -1;
  int dst = -1;
  Bytes bytes = 0;
};

struct MigrationPlan {
  std::vector<Move> moves;
  Bytes total_bytes = 0;
  int groups_moved = 0;
  int groups_reused = 0;

  bool empty() const { return moves.empty(); }
};

/// Bytes of one head-group's K+V share for `len` tokens across all layers.
Bytes group_cache_bytes(const model::ModelSpec& m, std::int64_t len);

/// Plans the minimal move set from `from` to `to` for a request of length
/// `len`.  Groups present in both placements on the same device are reused;
/// groups that change device are moved; a group in `to` but absent from
/// `from` is invalid (caches cannot be conjured) and throws.
MigrationPlan plan_migration(const model::ModelSpec& m, SeqId seq, std::int64_t len,
                             const Placement& from, const Placement& to);

/// Maps old->new placements maximizing overlap: given per-device group
/// *counts* for the new scheme (the LP decides counts, not identities),
/// chooses which concrete group ids go where so that as many groups as
/// possible stay put.  Returns the concrete new placement.
Placement assign_groups_preserving_overlap(const Placement& from,
                                           const std::map<int, int>& new_counts);

}  // namespace hetis::kvcache
