// Paged KV-cache block allocator (vLLM-style), one per device.
//
// Memory is carved into fixed-size blocks; sequences (or, in Hetis,
// per-head-group shares of sequences) own integer numbers of blocks.  The
// allocator is a simple LIFO free list: O(1) allocate/free, deterministic
// reuse order (good for reproducibility and cache locality of the index
// builder's physical ids).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.h"

namespace hetis::kvcache {

using BlockId = std::int32_t;
inline constexpr BlockId kInvalidBlock = -1;

class BlockAllocator {
 public:
  /// `capacity` bytes of cache space divided into blocks of `block_bytes`.
  BlockAllocator(Bytes capacity, Bytes block_bytes);

  /// Allocates one block; nullopt when exhausted.
  std::optional<BlockId> allocate();

  /// Allocates `n` blocks all-or-nothing.  Empty vector (with n>0) means
  /// insufficient space; no partial allocation escapes.
  std::vector<BlockId> allocate_n(std::size_t n);

  /// Returns a block to the free list.  Double-free is detected and throws.
  void free_block(BlockId id);
  void free_blocks(const std::vector<BlockId>& ids);

  std::size_t total_blocks() const { return total_; }
  std::size_t free_blocks_count() const { return free_list_.size(); }
  std::size_t used_blocks() const { return total_ - free_list_.size(); }

  Bytes block_bytes() const { return block_bytes_; }
  Bytes capacity() const { return static_cast<Bytes>(total_) * block_bytes_; }
  Bytes used_bytes() const { return static_cast<Bytes>(used_blocks()) * block_bytes_; }
  Bytes free_bytes() const { return static_cast<Bytes>(free_blocks_count()) * block_bytes_; }
  double utilization() const {
    return total_ == 0 ? 0.0 : static_cast<double>(used_blocks()) / static_cast<double>(total_);
  }

 private:
  std::size_t total_;
  Bytes block_bytes_;
  std::vector<BlockId> free_list_;
  std::vector<bool> allocated_;  // double-free / foreign-free detection
};

}  // namespace hetis::kvcache
