#include "kvcache/index_builder.h"

#include <numeric>

namespace hetis::kvcache {

namespace {

/// Computes item_offsets from per-item lengths (exclusive prefix sum),
/// reusing `out`'s storage.
void offsets_from(const std::vector<GatherItem>& items, std::vector<std::size_t>& out) {
  out.resize(items.size() + 1);
  out[0] = 0;
  for (std::size_t k = 0; k < items.size(); ++k) {
    out[k + 1] = out[k] + static_cast<std::size_t>(items[k].len);
  }
}

/// Expands one item's block list into physical slots.  Writing via the raw
/// pointer keeps the hot loop free of bounds checks.
template <typename BlocksFn>
void expand_item(const GatherItem& item, int block_size, BlocksFn&& blocks_of,
                 std::int64_t* out) {
  const std::vector<BlockId>& blocks = blocks_of(item);
  std::int64_t pos = 0;
  for (std::size_t b = 0; pos < item.len; ++b) {
    const std::int64_t base = static_cast<std::int64_t>(blocks[b]) * block_size;
    const std::int64_t limit = std::min<std::int64_t>(item.len - pos, block_size);
    for (std::int64_t off = 0; off < limit; ++off) {
      out[pos++] = base + off;
    }
  }
}

}  // namespace

void build_token_index_into(const TokenBlockTable& table, const std::vector<GatherItem>& items,
                            GatherPlan& plan) {
  offsets_from(items, plan.item_offsets);
  plan.slots.resize(plan.item_offsets.back());
  for (std::size_t k = 0; k < items.size(); ++k) {
    expand_item(
        items[k], table.block_size(),
        [&table](const GatherItem& it) -> const std::vector<BlockId>& {
          return table.blocks(it.seq);
        },
        plan.slots.data() + plan.item_offsets[k]);
  }
}

GatherPlan build_token_index(const TokenBlockTable& table,
                             const std::vector<GatherItem>& items) {
  GatherPlan plan;
  build_token_index_into(table, items, plan);
  return plan;
}

void build_head_index_serial_into(const HeadBlockTable& table,
                                  const std::vector<GatherItem>& items, GatherPlan& plan) {
  offsets_from(items, plan.item_offsets);
  plan.slots.resize(plan.item_offsets.back());
  for (std::size_t k = 0; k < items.size(); ++k) {
    expand_item(
        items[k], table.block_size(),
        [&table](const GatherItem& it) -> const std::vector<BlockId>& {
          return table.blocks(it.seq, it.group);
        },
        plan.slots.data() + plan.item_offsets[k]);
  }
}

GatherPlan build_head_index_serial(const HeadBlockTable& table,
                                   const std::vector<GatherItem>& items) {
  GatherPlan plan;
  build_head_index_serial_into(table, items, plan);
  return plan;
}

void build_head_index_parallel_into(const HeadBlockTable& table,
                                    const std::vector<GatherItem>& items, ThreadPool& pool,
                                    GatherPlan& plan) {
  offsets_from(items, plan.item_offsets);
  plan.slots.resize(plan.item_offsets.back());
  std::int64_t* out = plan.slots.data();
  const std::vector<std::size_t>& offsets = plan.item_offsets;
  pool.parallel_for_chunked(0, items.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      expand_item(
          items[k], table.block_size(),
          [&table](const GatherItem& it) -> const std::vector<BlockId>& {
            return table.blocks(it.seq, it.group);
          },
          out + offsets[k]);
    }
  });
}

GatherPlan build_head_index_parallel(const HeadBlockTable& table,
                                     const std::vector<GatherItem>& items, ThreadPool& pool) {
  GatherPlan plan;
  build_head_index_parallel_into(table, items, pool, plan);
  return plan;
}

}  // namespace hetis::kvcache
