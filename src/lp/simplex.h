// Dense two-phase primal simplex.
//
// The paper solves its head-dispatching problem (Eq. 7) as a linear
// program with cvxpy/MOSEK; we carry our own solver so the repository is
// self-contained.  Problems are small (tens of rows, a few hundred
// columns), so a dense tableau with Bland's anti-cycling rule is simple,
// exact, and fast enough to sit on the serving hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetis::lp {

enum class Relation : std::uint8_t { kLe, kGe, kEq };

struct Constraint {
  std::vector<double> coeffs;  // size == num_vars
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// min objective . x  subject to constraints, x >= 0.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  /// Convenience builders.
  void add_le(std::vector<double> coeffs, double rhs);
  void add_ge(std::vector<double> coeffs, double rhs);
  void add_eq(std::vector<double> coeffs, double rhs);
};

/// Solver outcome.  kMalformed reports numerically-broken inputs (NaN or
/// infinite coefficients) that a structurally-valid formulation can still
/// produce -- e.g. a flow-planner cost term derived from an impossible
/// configuration -- so callers branch on a typed status instead of chasing
/// poisoned arithmetic through the tableau.
enum class Status : std::uint8_t { kOptimal, kInfeasible, kUnbounded, kIterLimit, kMalformed };

const char* to_string(Status s);

struct Solution {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t iterations = 0;  // simplex pivots across both phases

  bool ok() const { return status == Status::kOptimal; }
};

struct SolverOptions {
  std::size_t max_iterations = 50'000;
  double eps = 1e-9;  // pivot / feasibility tolerance
};

/// Solves the LP; never throws on solver-status outcomes (they are reported
/// via Solution::status, including kMalformed for non-finite coefficients),
/// throws std::invalid_argument on shape errors (wrong vector sizes), which
/// are API misuse rather than problem-instance pathologies.
Solution solve(const Problem& problem, const SolverOptions& opts = {});

}  // namespace hetis::lp
