// Dense two-phase primal simplex.
//
// The paper solves its head-dispatching problem (Eq. 7) as a linear
// program with cvxpy/MOSEK; we carry our own solver so the repository is
// self-contained.  Problems are small (tens of rows, a few hundred
// columns), so a dense tableau with Bland's anti-cycling rule is simple,
// exact, and fast enough to sit on the serving hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetis::lp {

enum class Relation : std::uint8_t { kLe, kGe, kEq };

struct Constraint {
  std::vector<double> coeffs;  // size == num_vars
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// min objective . x  subject to constraints, x >= 0.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  /// Convenience builders.
  void add_le(std::vector<double> coeffs, double rhs);
  void add_ge(std::vector<double> coeffs, double rhs);
  void add_eq(std::vector<double> coeffs, double rhs);
};

/// Solver outcome.  kMalformed reports numerically-broken inputs (NaN or
/// infinite coefficients) that a structurally-valid formulation can still
/// produce -- e.g. a flow-planner cost term derived from an impossible
/// configuration -- so callers branch on a typed status instead of chasing
/// poisoned arithmetic through the tableau.
enum class Status : std::uint8_t { kOptimal, kInfeasible, kUnbounded, kIterLimit, kMalformed };

const char* to_string(Status s);

struct Solution {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t iterations = 0;  // simplex pivots across both phases

  bool ok() const { return status == Status::kOptimal; }
};

struct SolverOptions {
  std::size_t max_iterations = 50'000;
  double eps = 1e-9;  // pivot / feasibility tolerance
};

/// Solves the LP; never throws on solver-status outcomes (they are reported
/// via Solution::status, including kMalformed for non-finite coefficients),
/// throws std::invalid_argument on shape errors (wrong vector sizes), which
/// are API misuse rather than problem-instance pathologies.
Solution solve(const Problem& problem, const SolverOptions& opts = {});

/// Reusable solver workspace.  solve() here runs the same two-phase
/// algorithm as the free function -- same pivot sequence, same
/// floating-point order, bit-identical Solutions -- but the tableau, basis
/// and bookkeeping buffers persist across calls, so a caller solving a
/// stream of same-shaped problems (the dispatch hot path) allocates
/// nothing in steady state.  Not thread-safe; one workspace per caller.
class Simplex {
 public:
  Solution solve(const Problem& problem, const SolverOptions& opts = {});

 private:
  double& at(std::size_t r, std::size_t c) { return tab_[r * cols_ + c]; }
  void pivot(std::size_t pr, std::size_t pc);
  Status iterate(std::size_t max_iter);

  std::vector<double> tab_;          // (m + 1) x cols, row-major
  std::vector<std::size_t> basis_;   // basis[r] = column basic in row r
  std::vector<int> row_sign_;
  std::vector<Relation> rel_;
  std::vector<std::size_t> art_cols_;
  std::size_t m_ = 0;
  std::size_t cols_ = 0;
  double eps_ = 1e-9;
  std::size_t pivots_ = 0;
};

}  // namespace hetis::lp
