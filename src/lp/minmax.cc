#include "lp/minmax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace hetis::lp {

void MinMaxProblem::validate() const {
  const std::size_t d = num_devices();
  if (head_cost.size() != d || cache_cost.size() != d || mem_free.size() != d) {
    throw std::invalid_argument("MinMaxProblem: device array size mismatch");
  }
  if (cache_per_head.size() != num_requests()) {
    throw std::invalid_argument("MinMaxProblem: request array size mismatch");
  }
  if (group_size < 1) throw std::invalid_argument("MinMaxProblem: group_size < 1");
  for (double h : demand) {
    if (h <= 0 || std::fmod(h, group_size) != 0.0) {
      throw std::invalid_argument("MinMaxProblem: demand must be a positive multiple of r");
    }
  }
}

namespace {

bool all_finite(const std::vector<double>& v) {
  return std::all_of(v.begin(), v.end(), [](double x) { return std::isfinite(x); });
}

}  // namespace

MinMaxSolution solve_relaxed(const MinMaxProblem& p) {
  Problem lp;
  Simplex solver;
  return solve_relaxed(p, lp, solver);
}

MinMaxSolution solve_relaxed(const MinMaxProblem& p, Problem& lp, Simplex& solver) {
  // Non-finite numeric inputs (a profiler fit gone wrong, an impossible
  // cost-model query) come back as a typed kMalformed status before the
  // shape validation below, which throws only on API misuse.
  if (!all_finite(p.base_time) || !all_finite(p.head_cost) || !all_finite(p.cache_cost) ||
      !all_finite(p.mem_free) || !all_finite(p.demand) || !all_finite(p.cache_per_head)) {
    MinMaxSolution bad;
    bad.status = Status::kMalformed;
    return bad;
  }
  p.validate();
  const std::size_t d = p.num_devices();
  const std::size_t j = p.num_requests();
  MinMaxSolution out;
  if (j == 0 || d == 0) {
    out.status = Status::kOptimal;
    out.objective = d == 0 ? 0.0
                           : *std::max_element(p.base_time.begin(), p.base_time.end());
    out.heads.assign(d, std::vector<double>(j, 0.0));
    return out;
  }

  // Variable layout: [t, x_00..x_0(J-1), x_10.., ...] (device-major).
  const std::size_t n = 1 + d * j;
  auto xvar = [j](std::size_t dev, std::size_t req) { return 1 + dev * j + req; };

  // The LP is filled in place -- every coefficient below is assigned, so a
  // recycled `lp` only contributes its vectors' capacity, never values.
  lp.num_vars = n;
  lp.objective.assign(n, 0.0);
  lp.objective[0] = 1.0;  // min t
  // Min-max objectives are massively degenerate: loading an idle device up
  // to the current max is "free".  A tiny secondary objective proportional
  // to each assignment's own cost steers the solver toward the placement
  // with the least total (communication-inclusive) work, so heads stay
  // local unless offloading actually lowers the bottleneck.
  const double kTieBreak = 1e-3;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t r = 0; r < j; ++r) {
      lp.objective[xvar(i, r)] =
          kTieBreak * (p.head_cost[i] + p.cache_cost[i] * p.cache_per_head[r]);
    }
  }

  lp.constraints.resize(d + j + (p.global_memory_only ? 1 : d));
  std::size_t cr = 0;
  auto next_row = [&lp, &cr, n](Relation relation, double rhs) -> std::vector<double>& {
    Constraint& c = lp.constraints[cr++];
    c.coeffs.assign(n, 0.0);
    c.rel = relation;
    c.rhs = rhs;
    return c.coeffs;
  };

  // f_i - t <= -base[i]  (rearranged so rhs is constant).
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<double>& row = next_row(Relation::kLe, -p.base_time[i]);
    row[0] = -1.0;
    for (std::size_t r = 0; r < j; ++r) {
      row[xvar(i, r)] = p.head_cost[i] + p.cache_cost[i] * p.cache_per_head[r];
    }
  }
  // Head integrity.
  for (std::size_t r = 0; r < j; ++r) {
    std::vector<double>& row = next_row(Relation::kEq, p.demand[r]);
    for (std::size_t i = 0; i < d; ++i) row[xvar(i, r)] = 1.0;
  }
  // Memory.
  if (p.global_memory_only) {
    double total = std::accumulate(p.mem_free.begin(), p.mem_free.end(), 0.0);
    std::vector<double>& row = next_row(Relation::kLe, total);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t r = 0; r < j; ++r) row[xvar(i, r)] = p.cache_per_head[r];
    }
  } else {
    for (std::size_t i = 0; i < d; ++i) {
      std::vector<double>& row = next_row(Relation::kLe, std::max(0.0, p.mem_free[i]));
      for (std::size_t r = 0; r < j; ++r) row[xvar(i, r)] = p.cache_per_head[r];
    }
  }

  Solution sol = solver.solve(lp);
  out.status = sol.status;
  if (!sol.ok()) return out;
  out.objective = sol.x[0];
  out.heads.assign(d, std::vector<double>(j, 0.0));
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t r = 0; r < j; ++r) out.heads[i][r] = sol.x[xvar(i, r)];
  }
  return out;
}

namespace {

double device_load(const MinMaxProblem& p, std::size_t i,
                   const std::vector<std::vector<int>>& heads) {
  double load = p.base_time[i];
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    load += (p.head_cost[i] + p.cache_cost[i] * p.cache_per_head[r]) * heads[i][r];
  }
  return load;
}

double device_mem_used(const MinMaxProblem& p, std::size_t i,
                       const std::vector<std::vector<int>>& heads) {
  double used = 0.0;
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    used += p.cache_per_head[r] * heads[i][r];
  }
  return used;
}

}  // namespace

double eval_makespan(const MinMaxProblem& p, const std::vector<std::vector<int>>& heads) {
  double worst = 0.0;
  for (std::size_t i = 0; i < p.num_devices(); ++i) {
    worst = std::max(worst, device_load(p, i, heads));
  }
  return worst;
}

std::vector<std::vector<int>> round_to_groups(const MinMaxProblem& p,
                                              const MinMaxSolution& relaxed) {
  const std::size_t d = p.num_devices();
  const std::size_t j = p.num_requests();
  std::vector<std::vector<int>> heads(d, std::vector<int>(j, 0));
  if (!relaxed.ok()) return heads;
  const int r_sz = p.group_size;

  // Largest-remainder rounding per request (column sums must equal demand).
  for (std::size_t r = 0; r < j; ++r) {
    const int groups_needed = static_cast<int>(p.demand[r]) / r_sz;
    std::vector<double> frac(d);
    int assigned = 0;
    for (std::size_t i = 0; i < d; ++i) {
      double g = relaxed.heads[i][r] / r_sz;
      int whole = static_cast<int>(std::floor(g + 1e-9));
      heads[i][r] = whole * r_sz;
      assigned += whole;
      frac[i] = g - whole;
    }
    // Distribute the remaining groups to the largest fractional parts.
    std::vector<std::size_t> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&frac](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
    for (std::size_t k = 0; assigned < groups_needed && k < d; ++k) {
      heads[order[k]][r] += r_sz;
      ++assigned;
    }
    // Over-assignment can't happen with floor(), but guard anyway.
    for (std::size_t k = d; assigned > groups_needed && k-- > 0;) {
      std::size_t i = order[k];
      while (heads[i][r] >= r_sz && assigned > groups_needed) {
        heads[i][r] -= r_sz;
        --assigned;
      }
    }
  }

  // Memory repair: move whole groups off over-committed devices onto the
  // device with the most free memory (then least load).
  for (std::size_t i = 0; i < d; ++i) {
    int guard = 0;
    while (device_mem_used(p, i, heads) > p.mem_free[i] + 1e-6 && guard++ < 4096) {
      // Pick the request with the largest cache-per-head footprint on i.
      std::size_t victim = j;
      for (std::size_t r = 0; r < j; ++r) {
        if (heads[i][r] >= p.group_size &&
            (victim == j || p.cache_per_head[r] > p.cache_per_head[victim])) {
          victim = r;
        }
      }
      if (victim == j) break;  // nothing movable
      // Receiver: feasible device with minimal resulting load.
      std::size_t best = d;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < d; ++k) {
        if (k == i) continue;
        double need = p.cache_per_head[victim] * p.group_size;
        if (device_mem_used(p, k, heads) + need > p.mem_free[k] + 1e-6) continue;
        double load = device_load(p, k, heads);
        if (load < best_load) {
          best_load = load;
          best = k;
        }
      }
      if (best == d) break;  // cluster exhausted; caller handles eviction
      heads[i][victim] -= p.group_size;
      heads[best][victim] += p.group_size;
    }
  }
  return heads;
}

std::vector<std::vector<int>> greedy_dispatch(const MinMaxProblem& p) {
  p.validate();
  std::vector<std::vector<int>> heads;
  std::vector<double> load;
  std::vector<double> mem_used;
  greedy_dispatch_into(p, heads, load, mem_used);
  return heads;
}

void greedy_dispatch_into(const MinMaxProblem& p, std::vector<std::vector<int>>& heads,
                          std::vector<double>& load, std::vector<double>& mem_used) {
  const std::size_t d = p.num_devices();
  const std::size_t j = p.num_requests();
  heads.resize(d);
  for (std::vector<int>& row : heads) row.assign(j, 0);
  load.assign(p.base_time.begin(), p.base_time.end());
  mem_used.assign(d, 0.0);

  for (std::size_t r = 0; r < j; ++r) {
    const int groups = static_cast<int>(p.demand[r]) / p.group_size;
    for (int g = 0; g < groups; ++g) {
      std::size_t best = d;
      double best_load = std::numeric_limits<double>::infinity();
      const double mem_need = p.cache_per_head[r] * p.group_size;
      for (std::size_t i = 0; i < d; ++i) {
        if (mem_used[i] + mem_need > p.mem_free[i] + 1e-6) continue;
        double new_load =
            load[i] + (p.head_cost[i] + p.cache_cost[i] * p.cache_per_head[r]) * p.group_size;
        if (new_load < best_load) {
          best_load = new_load;
          best = i;
        }
      }
      if (best == d) return;  // out of memory; caller must evict
      heads[best][r] += p.group_size;
      load[best] = best_load;
      mem_used[best] += mem_need;
    }
  }
}

}  // namespace hetis::lp
