#include "lp/workspace.h"

#include <cstring>

namespace hetis::lp {

namespace {

constexpr std::size_t kProbeWindow = 8;

/// FNV-1a over the raw bytes of a double vector, folded 8 bytes at a time
/// (the arrays are 8-byte aligned, and key comparison is memcmp-exact, so
/// hashing bit patterns -- not values -- is precisely what we want: -0.0
/// and 0.0, or two NaN payloads, must key differently iff they differ).
std::uint64_t mix_vector(std::uint64_t h, const std::vector<double>& v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  h = (h ^ v.size()) * kPrime;
  for (double d : v) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    h = (h ^ bits) * kPrime;
  }
  return h;
}

std::uint64_t problem_hash(const MinMaxProblem& p) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = mix_vector(h, p.base_time);
  h = mix_vector(h, p.head_cost);
  h = mix_vector(h, p.cache_cost);
  h = mix_vector(h, p.mem_free);
  h = mix_vector(h, p.demand);
  h = mix_vector(h, p.cache_per_head);
  h = (h ^ static_cast<std::uint64_t>(p.group_size)) * 1099511628211ull;
  h = (h ^ static_cast<std::uint64_t>(p.global_memory_only)) * 1099511628211ull;
  return h;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Bitwise problem identity -- NOT operator== semantics on doubles (which
/// would conflate -0.0/0.0 and reject NaN self-matches).
bool problems_identical(const MinMaxProblem& a, const MinMaxProblem& b) {
  return a.group_size == b.group_size && a.global_memory_only == b.global_memory_only &&
         bits_equal(a.base_time, b.base_time) && bits_equal(a.head_cost, b.head_cost) &&
         bits_equal(a.cache_cost, b.cache_cost) && bits_equal(a.mem_free, b.mem_free) &&
         bits_equal(a.demand, b.demand) && bits_equal(a.cache_per_head, b.cache_per_head);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SolveWorkspace::SolveWorkspace(std::size_t slots) {
  const std::size_t n = round_up_pow2(slots < 2 ? 2 : slots);
  mask_ = n - 1;
  relaxed_.resize(n);
  greedy_.resize(n);
}

template <typename Value>
SolveWorkspace::Entry<Value>& SolveWorkspace::locate(std::vector<Entry<Value>>& table,
                                                     const MinMaxProblem& p,
                                                     std::size_t hash, bool* found) {
  std::size_t victim = hash & mask_;
  std::uint64_t victim_stamp = table[victim].stamp;
  for (std::size_t k = 0; k < kProbeWindow; ++k) {
    Entry<Value>& e = table[(hash + k) & mask_];
    if (e.used && e.hash == hash && problems_identical(e.key, p)) {
      *found = true;
      return e;
    }
    if (!e.used) {
      *found = false;
      return e;  // first free slot in the window
    }
    if (e.stamp < victim_stamp) {
      victim_stamp = e.stamp;
      victim = (hash + k) & mask_;
    }
  }
  *found = false;
  return table[victim];
}

const MinMaxSolution& solve_relaxed(const MinMaxProblem& p, SolveWorkspace& ws) {
  ++ws.stats_.solves;
  const std::size_t hash = problem_hash(p);
  bool found = false;
  auto& e = ws.locate(ws.relaxed_, p, hash, &found);
  if (found) {
    ++ws.stats_.warm_hits;
    return e.value;
  }
  // Cold solve first: validate() may throw, and a throwing problem must
  // never occupy a slot.
  MinMaxSolution sol = solve_relaxed(p, ws.lp_buffer_, ws.solver_);
  e.used = true;
  e.stamp = ++ws.clock_;
  e.hash = hash;
  e.key = p;
  e.value = std::move(sol);
  return e.value;
}

SolveWorkspace::GreedyValue& SolveWorkspace::greedy_entry(const MinMaxProblem& p) {
  ++stats_.solves;
  const std::size_t hash = problem_hash(p);
  bool found = false;
  auto& e = locate(greedy_, p, hash, &found);
  if (found) {
    ++stats_.warm_hits;
    return e.value;
  }
  // Validate before touching the entry: a throwing problem must neither
  // occupy a slot nor clobber the (possibly still-live) victim's value.
  // Past validate() the fill is in place -- the entry's heads rows and the
  // workspace scratch keep their capacity across misses, so the steady
  // state allocates nothing.
  p.validate();
  greedy_dispatch_into(p, e.value.heads, greedy_load_, greedy_mem_);
  e.used = true;
  e.stamp = ++clock_;
  e.hash = hash;
  e.key = p;
  e.value.makespan_set = false;
  return e.value;
}

const std::vector<std::vector<int>>& greedy_dispatch(const MinMaxProblem& p,
                                                     SolveWorkspace& ws) {
  return ws.greedy_entry(p).heads;
}

double greedy_makespan(const MinMaxProblem& p, SolveWorkspace& ws) {
  SolveWorkspace::GreedyValue& v = ws.greedy_entry(p);
  if (!v.makespan_set) {
    v.makespan = eval_makespan(p, v.heads);
    v.makespan_set = true;
  }
  return v.makespan;
}

}  // namespace hetis::lp
