// Min-max head-dispatch LP (paper Eq. 7) and integral rounding.
//
// Variables: x[i][j] = query heads of request j placed on device i, plus
// the epigraph variable t:
//
//   min t
//   s.t.  base[i] + sum_j (head_cost[i] + cache_cost[i]*cache_per_head[j]) x[i][j] <= t
//         sum_i x[i][j] = demand[j]                    (head integrity, Eq. 5/7c)
//         sum_j cache_per_head[j] * x[i][j] <= mem_free[i]   (Eq. 7b)
//         x >= 0
//
// The continuous optimum is then rounded to the head-group lattice
// (x/r integral, §5.2.1) by largest-remainder with a memory-feasibility
// repair pass.  `solve_relaxed` alone is also used to compute the ideal
// attention time f* that drives the re-dispatching trigger (§5.3.1); that
// variant replaces the per-device memory constraints with the paper's
// single cluster-wide constraint.
#pragma once

#include <vector>

#include "lp/simplex.h"

namespace hetis::lp {

struct MinMaxProblem {
  // Device side (size D).
  std::vector<double> base_time;       // constant part of f_i (existing load)
  std::vector<double> head_cost;       // df_i per assigned head
  std::vector<double> cache_cost;      // df_i per byte of assigned cache
  std::vector<double> mem_free;        // free cache bytes on device i
  // Request side (size J).
  std::vector<double> demand;          // heads required (H), per request
  std::vector<double> cache_per_head;  // cache bytes one head drags along

  int group_size = 1;                  // GQA ratio r: x must be multiple of r

  // When true, the per-device memory rows are replaced by one global row
  // sum_ij cache_per_head[j] x[i][j] <= sum_i mem_free[i]  (§5.3.1's f*).
  bool global_memory_only = false;

  std::size_t num_devices() const { return base_time.size(); }
  std::size_t num_requests() const { return demand.size(); }
  void validate() const;  // throws std::invalid_argument on shape errors
};

struct MinMaxSolution {
  Status status = Status::kIterLimit;
  double objective = 0.0;               // relaxed (continuous) optimum of t
  // heads[i][j], continuous.
  std::vector<std::vector<double>> heads;

  bool ok() const { return status == Status::kOptimal; }
};

/// Solves the continuous relaxation exactly via simplex.
MinMaxSolution solve_relaxed(const MinMaxProblem& problem);

/// Cold-path variant with recycled buffers: builds the epigraph LP into
/// `lp_buffer` (reusing its row capacity) and solves through `solver`'s
/// persistent tableau.  Bit-identical results to the plain overload -- the
/// buffers only recycle allocations, never values.  SolveWorkspace
/// (lp/workspace.h) adds the exact-match memo layer on top of this.
MinMaxSolution solve_relaxed(const MinMaxProblem& problem, Problem& lp_buffer,
                             Simplex& solver);

/// Rounds a continuous solution to integral multiples of group_size per
/// (device, request) while preserving column sums (= demand) and repairing
/// per-device memory violations.  Returns integer head counts.
std::vector<std::vector<int>> round_to_groups(const MinMaxProblem& problem,
                                              const MinMaxSolution& relaxed);

/// Greedy waterfilling dispatcher: assigns each request's head groups one
/// group at a time to the device with the smallest resulting f_i that has
/// memory room.  Used as a fallback when the LP fails and as the
/// "no-LP" ablation.  Returns integer head counts (may leave a request
/// short only if the cluster is out of memory; callers must check).
std::vector<std::vector<int>> greedy_dispatch(const MinMaxProblem& problem);

/// Allocation-reusing form of greedy_dispatch: writes the assignment into
/// `heads` and uses `load` / `mem_used` as scratch, all resized in place
/// (capacity is kept across calls -- the dispatch hot path runs this once
/// per decode iteration).  Identical arithmetic and iteration order to
/// greedy_dispatch, so results match bit for bit.  Does NOT validate the
/// problem; callers must run problem.validate() first.
void greedy_dispatch_into(const MinMaxProblem& problem, std::vector<std::vector<int>>& heads,
                          std::vector<double>& load, std::vector<double>& mem_used);

/// Evaluates max_i f_i for an integral assignment.
double eval_makespan(const MinMaxProblem& problem,
                     const std::vector<std::vector<int>>& heads);

}  // namespace hetis::lp
