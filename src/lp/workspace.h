// Reusable dispatch-LP workspace: warm-start memo + recycled solver buffers.
//
// The dispatch hot path (per-admission Eq. 7 solves, per-probe f*
// waterfills) revisits recurring instance states -- an idle instance
// admitting two equal-length prompts poses the same problem twice -- so a
// solve memo turns those repeats into lookups.  Repeat rates are workload
// dependent (steady saturated traces repeat rarely; bursty and replayed
// ones much more), so the miss path matters as much as the hit path: cold
// solves run in recycled buffers and fill their table entry in place,
// making a miss cost a hash plus the solve itself, with no steady-state
// allocation.
//
// Warm-start contract.  A genuinely basis-seeded simplex cannot guarantee
// bit-identical solutions to a cold solve: a different pivot sequence
// rounds differently, and min-max dispatch problems are massively
// degenerate (many optimal bases).  The repository's determinism contract
// (golden CSVs byte-compared in CI) forbids that, so the warm path here is
// EXACT problem matching: the cache key is every byte of the MinMaxProblem,
// a hit returns the stored copy of what the deterministic cold solver
// produced for those bytes, and the fallback on any mismatch is a cold
// solve into recycled buffers.  Identity is structural, not approximate --
// the differential suite in tests/test_hotpath_cache.cc enforces it.
//
// Invalidation.  None needed: the key is the entire problem, so any change
// to the device set, head counts, fitted coefficients or overlay-priced
// costs changes the key bytes and simply misses.  Entries are replaced
// oldest-first within a short probe window when the table fills.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/minmax.h"
#include "lp/simplex.h"

namespace hetis::lp {

/// Counters behind the bench/telemetry `lp_solves` / `lp_warm_hits`
/// columns.  `solves` counts every memoized entry point taken (warm or
/// cold); `warm_hits` the subset served from cache, so cold solver runs
/// are `solves - warm_hits`.
struct WorkspaceStats {
  std::uint64_t solves = 0;
  std::uint64_t warm_hits = 0;
};

class SolveWorkspace {
 public:
  /// `slots` is rounded up to a power of two; both memo tables (relaxed
  /// solutions, greedy assignments) get their own table of this size.
  explicit SolveWorkspace(std::size_t slots = 1024);

  const WorkspaceStats& stats() const { return stats_; }

 private:
  template <typename Value>
  struct Entry {
    bool used = false;
    std::uint64_t stamp = 0;
    std::size_t hash = 0;
    MinMaxProblem key;
    Value value;
  };
  struct GreedyValue {
    std::vector<std::vector<int>> heads;
    double makespan = 0.0;
    bool makespan_set = false;
  };

  friend const MinMaxSolution& solve_relaxed(const MinMaxProblem& p, SolveWorkspace& ws);
  friend const std::vector<std::vector<int>>& greedy_dispatch(const MinMaxProblem& p,
                                                              SolveWorkspace& ws);
  friend double greedy_makespan(const MinMaxProblem& p, SolveWorkspace& ws);

  /// Open-addressing lookup: returns the matching entry, or the
  /// replacement victim (unused or oldest in the probe window) with
  /// `*found = false`.
  template <typename Value>
  Entry<Value>& locate(std::vector<Entry<Value>>& table, const MinMaxProblem& p,
                       std::size_t hash, bool* found);
  GreedyValue& greedy_entry(const MinMaxProblem& p);

  std::size_t mask_ = 0;
  std::uint64_t clock_ = 0;  // insertion stamp for oldest-first replacement
  std::vector<Entry<MinMaxSolution>> relaxed_;
  std::vector<Entry<GreedyValue>> greedy_;
  WorkspaceStats stats_;
  // Cold-solve scratch, recycled across misses.
  Problem lp_buffer_;
  Simplex solver_;
  std::vector<double> greedy_load_;
  std::vector<double> greedy_mem_;
};

/// Memoized solve_relaxed: bit-identical to the cold overloads in
/// lp/minmax.h (exact key match + deterministic solver).  The reference is
/// valid until the next workspace call.
const MinMaxSolution& solve_relaxed(const MinMaxProblem& p, SolveWorkspace& ws);

/// Memoized greedy_dispatch; same contract as above.
const std::vector<std::vector<int>>& greedy_dispatch(const MinMaxProblem& p,
                                                     SolveWorkspace& ws);

/// eval_makespan(p, greedy_dispatch(p)) with both halves memoized -- the
/// f* waterfill probe (§5.3.1) collapsed into one cached number.
double greedy_makespan(const MinMaxProblem& p, SolveWorkspace& ws);

}  // namespace hetis::lp
