#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hetis::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
    case Status::kMalformed: return "malformed";
  }
  return "?";
}

void Problem::add_le(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kLe, rhs});
}
void Problem::add_ge(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kGe, rhs});
}
void Problem::add_eq(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kEq, rhs});
}

namespace {

// Dense tableau:
//   rows 0..m-1 : constraints (basis-reduced)
//   row  m      : phase objective (reduced costs), rhs = -objective value
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    double piv = at(pr, pc);
    double inv = 1.0 / piv;
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;  // exact
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;  // exact
    }
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

struct SimplexCore {
  Tableau tab;
  std::vector<std::size_t> basis;  // basis[r] = column basic in row r
  std::size_t m;                   // constraint rows
  std::size_t total_cols;          // structural + slack + artificial + rhs
  double eps;
  std::size_t pivots = 0;          // across every iterate() call

  SimplexCore(std::size_t m_, std::size_t cols_, double eps_)
      : tab(m_ + 1, cols_), basis(m_, 0), m(m_), total_cols(cols_), eps(eps_) {}

  std::size_t rhs_col() const { return total_cols - 1; }

  // Returns kOptimal when reduced costs are all >= -eps, kUnbounded when a
  // negative column has no positive entry, kIterLimit otherwise.
  Status iterate(std::size_t max_iter) {
    const std::size_t obj = m;
    for (std::size_t it = 0; it < max_iter; ++it) {
      // Bland's rule: entering = lowest-index column with negative reduced cost.
      std::size_t enter = total_cols;
      for (std::size_t c = 0; c + 1 < total_cols; ++c) {
        if (tab.at(obj, c) < -eps) {
          enter = c;
          break;
        }
      }
      if (enter == total_cols) return Status::kOptimal;

      // Ratio test; Bland tie-break on the lowest basis column.
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        double a = tab.at(r, enter);
        if (a > eps) {
          double ratio = tab.at(r, rhs_col()) / a;
          if (ratio < best_ratio - eps ||
              (ratio < best_ratio + eps && (leave == m || basis[r] < basis[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m) return Status::kUnbounded;
      tab.pivot(leave, enter);
      basis[leave] = enter;
      ++pivots;
    }
    return Status::kIterLimit;
  }
};

}  // namespace

Solution solve(const Problem& problem, const SolverOptions& opts) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  if (problem.objective.size() != n) {
    throw std::invalid_argument("lp::solve: objective size != num_vars");
  }
  for (const auto& c : problem.constraints) {
    if (c.coeffs.size() != n) {
      throw std::invalid_argument("lp::solve: constraint size != num_vars");
    }
  }
  // Numerical sanity: a NaN or infinite coefficient anywhere poisons every
  // pivot after it.  Automatically-generated formulations (the flow planner
  // derives coefficients from cost-model output) can produce these, so they
  // are a typed solver outcome, not an exception.
  auto finite = [](double v) { return std::isfinite(v); };
  bool malformed = !std::all_of(problem.objective.begin(), problem.objective.end(), finite);
  for (const auto& c : problem.constraints) {
    malformed = malformed || !finite(c.rhs) ||
                !std::all_of(c.coeffs.begin(), c.coeffs.end(), finite);
  }
  if (malformed) return Solution{Status::kMalformed, 0.0, {}, 0};

  // Degenerate shell: no variables.  Each constraint reduces to 0 rel rhs;
  // report infeasibility instead of building an empty tableau.
  if (n == 0) {
    for (const auto& c : problem.constraints) {
      const bool holds = c.rel == Relation::kLe   ? 0.0 <= c.rhs + opts.eps
                         : c.rel == Relation::kGe ? 0.0 >= c.rhs - opts.eps
                                                  : std::abs(c.rhs) <= opts.eps;
      if (!holds) return Solution{Status::kInfeasible, 0.0, {}, 0};
    }
    return Solution{Status::kOptimal, 0.0, {}, 0};
  }

  // Count auxiliary columns.  After normalizing rhs >= 0:
  //   <=  -> slack (+1)
  //   >=  -> surplus (-1) + artificial
  //   ==  -> artificial
  std::size_t n_slack = 0, n_art = 0;
  std::vector<int> row_sign(m, 1);
  std::vector<Relation> rel(m);
  for (std::size_t r = 0; r < m; ++r) {
    rel[r] = problem.constraints[r].rel;
    if (problem.constraints[r].rhs < 0.0) {
      row_sign[r] = -1;
      if (rel[r] == Relation::kLe) rel[r] = Relation::kGe;
      else if (rel[r] == Relation::kGe) rel[r] = Relation::kLe;
    }
    if (rel[r] == Relation::kLe) {
      ++n_slack;
    } else if (rel[r] == Relation::kGe) {
      ++n_slack;
      ++n_art;
    } else {
      ++n_art;
    }
  }

  const std::size_t cols = n + n_slack + n_art + 1;  // + rhs
  SimplexCore core(m, cols, opts.eps);
  Tableau& tab = core.tab;

  std::size_t slack_at = n;
  std::size_t art_at = n + n_slack;
  std::vector<std::size_t> art_cols;

  for (std::size_t r = 0; r < m; ++r) {
    const auto& c = problem.constraints[r];
    for (std::size_t j = 0; j < n; ++j) tab.at(r, j) = row_sign[r] * c.coeffs[j];
    tab.at(r, core.rhs_col()) = row_sign[r] * c.rhs;
    if (rel[r] == Relation::kLe) {
      tab.at(r, slack_at) = 1.0;
      core.basis[r] = slack_at++;
    } else if (rel[r] == Relation::kGe) {
      tab.at(r, slack_at) = -1.0;
      ++slack_at;
      tab.at(r, art_at) = 1.0;
      core.basis[r] = art_at;
      art_cols.push_back(art_at++);
    } else {
      tab.at(r, art_at) = 1.0;
      core.basis[r] = art_at;
      art_cols.push_back(art_at++);
    }
  }

  // --- Phase 1: minimize sum of artificials ---
  if (!art_cols.empty()) {
    const std::size_t obj = m;
    for (std::size_t c : art_cols) tab.at(obj, c) = 1.0;
    // Reduce: subtract rows whose basis is artificial.
    for (std::size_t r = 0; r < m; ++r) {
      bool is_art = std::find(art_cols.begin(), art_cols.end(), core.basis[r]) != art_cols.end();
      if (is_art) {
        for (std::size_t c = 0; c < cols; ++c) tab.at(obj, c) -= tab.at(r, c);
      }
    }
    Status st = core.iterate(opts.max_iterations);
    if (st == Status::kIterLimit) return Solution{Status::kIterLimit, 0.0, {}, core.pivots};
    double phase1 = -tab.at(obj, core.rhs_col());
    if (phase1 > 1e-6) return Solution{Status::kInfeasible, 0.0, {}, core.pivots};
    // Drive any artificial still basic (at zero level) out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      bool is_art = std::find(art_cols.begin(), art_cols.end(), core.basis[r]) != art_cols.end();
      if (!is_art) continue;
      std::size_t enter = cols;
      for (std::size_t c = 0; c < n + n_slack; ++c) {
        if (std::abs(tab.at(r, c)) > opts.eps) {
          enter = c;
          break;
        }
      }
      if (enter != cols) {
        tab.pivot(r, enter);
        core.basis[r] = enter;
        ++core.pivots;
      }
      // Else the row is all-zero (redundant constraint); leave it.
    }
    // Clear phase-1 objective row.
    for (std::size_t c = 0; c < cols; ++c) tab.at(obj, c) = 0.0;
  }

  // --- Phase 2: original objective ---
  {
    const std::size_t obj = m;
    for (std::size_t j = 0; j < n; ++j) tab.at(obj, j) = problem.objective[j];
    // Forbid artificials from re-entering.
    for (std::size_t c : art_cols) tab.at(obj, c) = 1e30;
    // Reduce objective row by basic columns.
    for (std::size_t r = 0; r < m; ++r) {
      double coeff = tab.at(obj, core.basis[r]);
      if (coeff == 0.0) continue;
      for (std::size_t c = 0; c < cols; ++c) tab.at(obj, c) -= coeff * tab.at(r, c);
    }
    Status st = core.iterate(opts.max_iterations);
    if (st != Status::kOptimal) return Solution{st, 0.0, {}, core.pivots};
  }

  Solution sol;
  sol.status = Status::kOptimal;
  sol.iterations = core.pivots;
  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (core.basis[r] < n) sol.x[core.basis[r]] = tab.at(r, core.rhs_col());
  }
  for (double& v : sol.x) {
    if (v < 0.0 && v > -1e-7) v = 0.0;  // numerical cleanup
  }
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) objective += problem.objective[j] * sol.x[j];
  sol.objective = objective;
  return sol;
}

}  // namespace hetis::lp
