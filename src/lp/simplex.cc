#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hetis::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
    case Status::kMalformed: return "malformed";
  }
  return "?";
}

void Problem::add_le(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kLe, rhs});
}
void Problem::add_ge(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kGe, rhs});
}
void Problem::add_eq(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), Relation::kEq, rhs});
}

// Dense tableau layout inside Simplex::tab_:
//   rows 0..m-1 : constraints (basis-reduced)
//   row  m      : phase objective (reduced costs), rhs = -objective value

void Simplex::pivot(std::size_t pr, std::size_t pc) {
  const std::size_t rows = m_ + 1;
  double piv = at(pr, pc);
  double inv = 1.0 / piv;
  for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
  at(pr, pc) = 1.0;  // exact
  for (std::size_t r = 0; r < rows; ++r) {
    if (r == pr) continue;
    double factor = at(r, pc);
    if (factor == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
    at(r, pc) = 0.0;  // exact
  }
}

// Returns kOptimal when reduced costs are all >= -eps, kUnbounded when a
// negative column has no positive entry, kIterLimit otherwise.
Status Simplex::iterate(std::size_t max_iter) {
  const std::size_t obj = m_;
  const std::size_t rhs_col = cols_ - 1;
  for (std::size_t it = 0; it < max_iter; ++it) {
    // Bland's rule: entering = lowest-index column with negative reduced cost.
    std::size_t enter = cols_;
    for (std::size_t c = 0; c + 1 < cols_; ++c) {
      if (at(obj, c) < -eps_) {
        enter = c;
        break;
      }
    }
    if (enter == cols_) return Status::kOptimal;

    // Ratio test; Bland tie-break on the lowest basis column.
    std::size_t leave = m_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m_; ++r) {
      double a = at(r, enter);
      if (a > eps_) {
        double ratio = at(r, rhs_col) / a;
        if (ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ && (leave == m_ || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m_) return Status::kUnbounded;
    pivot(leave, enter);
    basis_[leave] = enter;
    ++pivots_;
  }
  return Status::kIterLimit;
}

Solution solve(const Problem& problem, const SolverOptions& opts) {
  Simplex workspace;
  return workspace.solve(problem, opts);
}

Solution Simplex::solve(const Problem& problem, const SolverOptions& opts) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  if (problem.objective.size() != n) {
    throw std::invalid_argument("lp::solve: objective size != num_vars");
  }
  for (const auto& c : problem.constraints) {
    if (c.coeffs.size() != n) {
      throw std::invalid_argument("lp::solve: constraint size != num_vars");
    }
  }
  // Numerical sanity: a NaN or infinite coefficient anywhere poisons every
  // pivot after it.  Automatically-generated formulations (the flow planner
  // derives coefficients from cost-model output) can produce these, so they
  // are a typed solver outcome, not an exception.
  auto finite = [](double v) { return std::isfinite(v); };
  bool malformed = !std::all_of(problem.objective.begin(), problem.objective.end(), finite);
  for (const auto& c : problem.constraints) {
    malformed = malformed || !finite(c.rhs) ||
                !std::all_of(c.coeffs.begin(), c.coeffs.end(), finite);
  }
  if (malformed) return Solution{Status::kMalformed, 0.0, {}, 0};

  // Degenerate shell: no variables.  Each constraint reduces to 0 rel rhs;
  // report infeasibility instead of building an empty tableau.
  if (n == 0) {
    for (const auto& c : problem.constraints) {
      const bool holds = c.rel == Relation::kLe   ? 0.0 <= c.rhs + opts.eps
                         : c.rel == Relation::kGe ? 0.0 >= c.rhs - opts.eps
                                                  : std::abs(c.rhs) <= opts.eps;
      if (!holds) return Solution{Status::kInfeasible, 0.0, {}, 0};
    }
    return Solution{Status::kOptimal, 0.0, {}, 0};
  }

  // Count auxiliary columns.  After normalizing rhs >= 0:
  //   <=  -> slack (+1)
  //   >=  -> surplus (-1) + artificial
  //   ==  -> artificial
  std::size_t n_slack = 0, n_art = 0;
  row_sign_.assign(m, 1);
  rel_.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    rel_[r] = problem.constraints[r].rel;
    if (problem.constraints[r].rhs < 0.0) {
      row_sign_[r] = -1;
      if (rel_[r] == Relation::kLe) rel_[r] = Relation::kGe;
      else if (rel_[r] == Relation::kGe) rel_[r] = Relation::kLe;
    }
    if (rel_[r] == Relation::kLe) {
      ++n_slack;
    } else if (rel_[r] == Relation::kGe) {
      ++n_slack;
      ++n_art;
    } else {
      ++n_art;
    }
  }

  m_ = m;
  cols_ = n + n_slack + n_art + 1;  // + rhs
  eps_ = opts.eps;
  pivots_ = 0;
  tab_.assign((m + 1) * cols_, 0.0);  // reuses capacity across solves
  basis_.assign(m, 0);
  art_cols_.clear();
  const std::size_t rhs_col = cols_ - 1;

  std::size_t slack_at = n;
  std::size_t art_at = n + n_slack;

  for (std::size_t r = 0; r < m; ++r) {
    const auto& c = problem.constraints[r];
    for (std::size_t j = 0; j < n; ++j) at(r, j) = row_sign_[r] * c.coeffs[j];
    at(r, rhs_col) = row_sign_[r] * c.rhs;
    if (rel_[r] == Relation::kLe) {
      at(r, slack_at) = 1.0;
      basis_[r] = slack_at++;
    } else if (rel_[r] == Relation::kGe) {
      at(r, slack_at) = -1.0;
      ++slack_at;
      at(r, art_at) = 1.0;
      basis_[r] = art_at;
      art_cols_.push_back(art_at++);
    } else {
      at(r, art_at) = 1.0;
      basis_[r] = art_at;
      art_cols_.push_back(art_at++);
    }
  }

  // --- Phase 1: minimize sum of artificials ---
  if (!art_cols_.empty()) {
    const std::size_t obj = m;
    for (std::size_t c : art_cols_) at(obj, c) = 1.0;
    // Reduce: subtract rows whose basis is artificial.
    for (std::size_t r = 0; r < m; ++r) {
      bool is_art = std::find(art_cols_.begin(), art_cols_.end(), basis_[r]) != art_cols_.end();
      if (is_art) {
        for (std::size_t c = 0; c < cols_; ++c) at(obj, c) -= at(r, c);
      }
    }
    Status st = iterate(opts.max_iterations);
    if (st == Status::kIterLimit) return Solution{Status::kIterLimit, 0.0, {}, pivots_};
    double phase1 = -at(obj, rhs_col);
    if (phase1 > 1e-6) return Solution{Status::kInfeasible, 0.0, {}, pivots_};
    // Drive any artificial still basic (at zero level) out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      bool is_art = std::find(art_cols_.begin(), art_cols_.end(), basis_[r]) != art_cols_.end();
      if (!is_art) continue;
      std::size_t enter = cols_;
      for (std::size_t c = 0; c < n + n_slack; ++c) {
        if (std::abs(at(r, c)) > opts.eps) {
          enter = c;
          break;
        }
      }
      if (enter != cols_) {
        pivot(r, enter);
        basis_[r] = enter;
        ++pivots_;
      }
      // Else the row is all-zero (redundant constraint); leave it.
    }
    // Clear phase-1 objective row.
    for (std::size_t c = 0; c < cols_; ++c) at(obj, c) = 0.0;
  }

  // --- Phase 2: original objective ---
  {
    const std::size_t obj = m;
    for (std::size_t j = 0; j < n; ++j) at(obj, j) = problem.objective[j];
    // Forbid artificials from re-entering.
    for (std::size_t c : art_cols_) at(obj, c) = 1e30;
    // Reduce objective row by basic columns.
    for (std::size_t r = 0; r < m; ++r) {
      double coeff = at(obj, basis_[r]);
      if (coeff == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(obj, c) -= coeff * at(r, c);
    }
    Status st = iterate(opts.max_iterations);
    if (st != Status::kOptimal) return Solution{st, 0.0, {}, pivots_};
  }

  Solution sol;
  sol.status = Status::kOptimal;
  sol.iterations = pivots_;
  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis_[r] < n) sol.x[basis_[r]] = at(r, rhs_col);
  }
  for (double& v : sol.x) {
    if (v < 0.0 && v > -1e-7) v = 0.0;  // numerical cleanup
  }
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) objective += problem.objective[j] * sol.x[j];
  sol.objective = objective;
  return sol;
}

}  // namespace hetis::lp
