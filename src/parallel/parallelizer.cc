#include "parallel/parallelizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/log.h"
#include "common/thread_pool.h"
#include "engine/instance.h"

namespace hetis::parallel {

std::string ParallelPlan::to_string(const hw::Cluster& cluster,
                                    const SearchDiagnostics* diag) const {
  std::ostringstream oss;
  oss << "ParallelPlan{" << instances.size() << " instance(s)";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& inst = instances[i];
    oss << "; I" << i << ": ";
    for (std::size_t k = 0; k < inst.stages.size(); ++k) {
      const auto& s = inst.stages[k];
      if (k) oss << " -> ";
      oss << hw::to_string(cluster.device(s.devices.front()).type) << "xTP" << s.tp() << "("
          << s.layers << "L)";
    }
    if (!inst.attention_workers.empty()) {
      oss << " + attn[";
      for (std::size_t w = 0; w < inst.attention_workers.size(); ++w) {
        if (w) oss << ",";
        oss << hw::to_string(cluster.device(inst.attention_workers[w]).type);
      }
      oss << "]";
    }
  }
  if (diag) {
    oss << "; search{planner=" << diag->planner << ", objective=" << diag->objective
        << ", evaluated=" << diag->configurations_evaluated
        << ", groupings=" << diag->instances_considered << ", pruned=" << diag->pruned_devices
        << ", best_score=" << diag->best_cost << ", wall=" << diag->wall_time << "s";
    if (diag->lp_solves > 0) {
      oss << ", lp_solves=" << diag->lp_solves << ", pivots=" << diag->solver_iterations
          << ", relaxation_gap=" << diag->relaxation_gap;
    }
    if (!diag->fallback_reason.empty()) oss << ", fallback=" << diag->fallback_reason;
    oss << "}";
  }
  oss << "}";
  return oss.str();
}

Parallelizer::Parallelizer(const hw::Cluster& cluster, const model::ModelSpec& model,
                           ParallelizerOptions opts)
    : cluster_(&cluster),
      model_(&model),
      opts_(std::move(opts)),
      exec_(cluster, model),
      evaluator_(exec_) {}

double Parallelizer::per_layer_cost_perfect(hw::GpuType type, int count,
                                            const WorkloadProfile& profile) const {
  // Perfect scaling: a stage of `count` devices runs the per-layer work
  // `count` times faster than one device (no collective overhead); the
  // paper adopts this assumption for the coarse grouping/pruning phase.
  const hw::GpuSpec& gpu = hw::gpu_spec(type);
  const costmodel::KernelModel& kernel = exec_.kernel();
  Seconds prefill = kernel.dense_layer_time(gpu, *model_, profile.prefill_tokens, count);
  std::vector<std::int64_t> prompt_lens(
      std::max<std::int64_t>(1, profile.prefill_tokens / std::max<std::int64_t>(1, profile.mean_context)),
      profile.mean_context);
  prefill += kernel.prefill_attention_time(gpu, *model_, prompt_lens,
                                           std::max(1, model_->heads / count));
  std::vector<std::int64_t> ctxs(static_cast<std::size_t>(profile.decode_batch),
                                 profile.mean_context);
  Seconds decode = kernel.dense_layer_time(gpu, *model_, profile.decode_batch, count) +
                   kernel.decode_attention_time(gpu, *model_, ctxs,
                                                std::max(1, model_->heads / count));
  return prefill + profile.decode_weight * decode;
}

double Parallelizer::perfect_scaling_cost(
    const std::vector<std::pair<hw::GpuType, int>>& stage_devices,
    const WorkloadProfile& profile) const {
  std::vector<double> per_layer;
  per_layer.reserve(stage_devices.size());
  for (const auto& [type, count] : stage_devices) {
    if (count <= 0) continue;
    per_layer.push_back(per_layer_cost_perfect(type, count, profile));
  }
  if (per_layer.empty()) return std::numeric_limits<double>::infinity();
  // Continuous balanced partition: min max_k n_k * t_k s.t. sum n_k = L is
  // attained when all n_k * t_k are equal, i.e. C_p = L / sum(1/t_k).
  // (The integer split is applied later; using the relaxation here keeps
  // the Delta-ratio pruning criterion stable.)
  double inv_sum = 0.0;
  for (double t : per_layer) inv_sum += 1.0 / t;
  return static_cast<double>(model_->layers) / inv_sum;
}

std::vector<int> Parallelizer::balance_layers(const std::vector<double>& per_layer_cost) const {
  const int total = model_->layers;
  const std::size_t n = per_layer_cost.size();
  if (n == 0) return {};
  if (n == 1) return {total};
  // Continuous optimum: layers_k proportional to 1/cost_k.
  double inv_sum = 0.0;
  for (double c : per_layer_cost) inv_sum += 1.0 / c;
  std::vector<double> frac(n);
  std::vector<int> layers(n);
  int assigned = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double ideal = total * (1.0 / per_layer_cost[k]) / inv_sum;
    layers[k] = static_cast<int>(std::floor(ideal));
    frac[k] = ideal - layers[k];
    assigned += layers[k];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&frac](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t k = 0; assigned < total; ++k) {
    layers[order[k % n]] += 1;
    ++assigned;
  }
  // A stage with zero layers would be degenerate; give it one from the
  // largest stage (keeps every primary stage meaningful).
  for (std::size_t k = 0; k < n; ++k) {
    if (layers[k] == 0) {
      std::size_t donor = static_cast<std::size_t>(
          std::max_element(layers.begin(), layers.end()) - layers.begin());
      if (layers[donor] > 1) {
        --layers[donor];
        ++layers[k];
      }
    }
  }
  return layers;
}

InstanceConfig Parallelizer::best_instance_config(const std::vector<TypeShare>& shares,
                                                  const std::vector<int>& pruned,
                                                  bool drop_pruned, bool require_hosts_model,
                                                  const WorkloadProfile& profile, int d,
                                                  const PlanObjective& objective,
                                                  double* score_out,
                                                  PlanEstimate* estimate_out) const {
  // Remaining (non-pruned) devices per type keep pipeline-stage roles.
  std::vector<std::pair<hw::GpuType, std::vector<int>>> stage_groups;
  for (const auto& share : shares) {
    std::vector<int> devs;
    for (int id : share.device_ids) {
      if (std::find(pruned.begin(), pruned.end(), id) == pruned.end()) devs.push_back(id);
    }
    if (!devs.empty()) stage_groups.emplace_back(share.type, std::move(devs));
  }
  if (stage_groups.empty()) {
    *score_out = std::numeric_limits<double>::infinity();
    *estimate_out = PlanEstimate{};
    return {};
  }

  // Balanced layer split across the unified per-type stages.
  std::vector<double> per_layer;
  for (const auto& [type, devs] : stage_groups) {
    per_layer.push_back(per_layer_cost_perfect(type, static_cast<int>(devs.size()), profile));
  }
  std::vector<int> layer_split = balance_layers(per_layer);

  // Intra-stage TP x PP enumeration: each unified stage of n devices with L
  // layers may run as pp sub-stages of tp-way TP (tp * pp == n).
  double best_score = std::numeric_limits<double>::infinity();
  InstanceConfig best;
  PlanEstimate best_estimate;

  // Enumerate the cross product of per-stage (tp, pp) choices.  Stage
  // counts are small (<= 8 devices), so the product is tiny; evaluate
  // sequentially per instance (instances themselves are searched in
  // parallel by plan()).
  std::vector<std::vector<std::pair<int, int>>> options(stage_groups.size());
  for (std::size_t k = 0; k < stage_groups.size(); ++k) {
    int n = static_cast<int>(stage_groups[k].second.size());
    for (int tp = 1; tp <= n; ++tp) {
      if (n % tp != 0) continue;
      int pp = n / tp;
      if (pp > layer_split[k]) continue;  // cannot have empty sub-stages
      options[k].emplace_back(tp, pp);
    }
    if (options[k].empty()) options[k].emplace_back(n, 1);
  }

  std::vector<std::size_t> choice(stage_groups.size(), 0);
  for (;;) {
    InstanceConfig cfg;
    for (std::size_t k = 0; k < stage_groups.size(); ++k) {
      auto [tp, pp] = options[k][choice[k]];
      const auto& devs = stage_groups[k].second;
      int layers_left = layer_split[k];
      for (int sub = 0; sub < pp; ++sub) {
        StageConfig stage;
        stage.devices.assign(devs.begin() + sub * tp, devs.begin() + (sub + 1) * tp);
        stage.layers = layers_left / (pp - sub);
        layers_left -= stage.layers;
        cfg.stages.push_back(std::move(stage));
      }
    }
    if (!drop_pruned) cfg.attention_workers = pruned;
    if (!require_hosts_model || evaluator_.hosts_model(cfg)) {
      PlanEstimate estimate = replicate_estimate(evaluator_.evaluate(cfg, profile), d);
      double score = objective.score(estimate);
      if (score < best_score) {
        best_score = score;
        best = cfg;
        best_estimate = estimate;
      }
    }
    // Advance the mixed-radix counter.
    std::size_t k = 0;
    while (k < choice.size()) {
      if (++choice[k] < options[k].size()) break;
      choice[k] = 0;
      ++k;
    }
    if (k == choice.size()) break;
  }
  *score_out = best_score;
  *estimate_out = best_estimate;
  return best;
}

ParallelPlan Parallelizer::plan(const WorkloadProfile& profile) {
  std::unique_ptr<PlanObjective> objective = make_objective(opts_.objective);
  return plan(profile, *objective);
}

ParallelPlan Parallelizer::plan(const WorkloadProfile& profile, const PlanObjective& objective) {
  auto t0 = std::chrono::steady_clock::now();
  diag_ = SearchDiagnostics{};
  diag_.objective = objective.name();

  // Group devices by type, ordered high-end -> low-end.  Within a type,
  // degraded devices (condition overlay, hw/topology.h) sort FIRST so the
  // Delta-walk prunes a straggler before its healthy siblings -- i.e. a
  // slowed A100 is the first A100 demoted to an Attention worker.  Stable
  // sort keeps id order on a healthy cluster, so plans are byte-identical
  // when no degradation is present.
  std::vector<hw::GpuType> types = cluster_->types_by_power_desc();
  std::map<hw::GpuType, std::vector<int>> by_type;
  for (hw::GpuType t : types) {
    std::vector<int> devs = cluster_->devices_of_type(t);
    if (cluster_->degraded()) {
      std::stable_sort(devs.begin(), devs.end(), [&](int a, int b) {
        return cluster_->device_speed(a) < cluster_->device_speed(b);
      });
    }
    by_type[t] = std::move(devs);
  }

  // DP instance counts d must divide every type's count evenly.
  std::vector<int> candidates_d{1};
  if (opts_.allow_dp) {
    int max_d = std::numeric_limits<int>::max();
    for (const auto& [t, devs] : by_type) {
      max_d = std::min(max_d, static_cast<int>(devs.size()));
    }
    for (int d = 2; d <= max_d; ++d) {
      bool divides = true;
      for (const auto& [t, devs] : by_type) {
        if (static_cast<int>(devs.size()) % d != 0) divides = false;
      }
      if (divides) candidates_d.push_back(d);
    }
  }

  struct Candidate {
    ParallelPlan plan;
    double score = std::numeric_limits<double>::infinity();
    PlanEstimate estimate;
    int pruned = 0;
  };
  std::vector<Candidate> results(candidates_d.size());

  ThreadPool pool(opts_.search_threads == 0 ? 0 : opts_.search_threads);
  std::atomic<int> evaluated{0};

  pool.parallel_for(0, candidates_d.size(), [&](std::size_t di) {
    const int d = candidates_d[di];
    // Per-instance workload share.
    WorkloadProfile share = profile;
    share.prefill_tokens = std::max<std::int64_t>(1, profile.prefill_tokens / d);
    share.decode_batch = std::max<std::int64_t>(1, profile.decode_batch / d);

    // Instance 0's device share; other instances are symmetric.
    std::vector<TypeShare> shares;
    for (hw::GpuType t : types) {
      const auto& devs = by_type.at(t);
      int per = static_cast<int>(devs.size()) / d;
      if (per == 0) continue;
      TypeShare ts;
      ts.type = t;
      ts.device_ids.assign(devs.begin(), devs.begin() + per);
      shares.push_back(std::move(ts));
    }
    if (shares.empty()) return;

    // --- Pruning (lowest-end first, Delta criterion) ---
    // The Delta walk defines the paper's pruning frontier; it is the ONLY
    // candidate under the throughput objective (legacy behavior, byte
    // identical) and one of the candidates under depth-exploring ones.
    std::vector<int> delta_pruned;
    auto counts_of = [&](const std::vector<int>& pr) {
      std::vector<std::pair<hw::GpuType, int>> counts;
      for (const auto& s : shares) {
        int n = 0;
        for (int id : s.device_ids) {
          if (std::find(pr.begin(), pr.end(), id) == pr.end()) ++n;
        }
        counts.emplace_back(s.type, n);
      }
      return counts;
    };
    if (opts_.enable_pruning) {
      double current = perfect_scaling_cost(counts_of(delta_pruned), share);
      // low-end -> high-end: iterate shares in reverse power order.
      for (auto it = shares.rbegin(); it != shares.rend(); ++it) {
        for (int id : it->device_ids) {
          std::vector<int> attempt = delta_pruned;
          attempt.push_back(id);
          auto counts = counts_of(attempt);
          int remaining = 0;
          for (const auto& [t, n] : counts) remaining += n;
          if (remaining == 0) break;  // keep at least one primary device
          double without = perfect_scaling_cost(counts, share);
          ++evaluated;
          if (without / current <= 1.0 + opts_.delta) {
            delta_pruned = std::move(attempt);
            current = without;
          } else {
            break;  // removing more of this (or higher) type only hurts
          }
        }
      }
    }

    // --- Intra-stage TP/PP search over the candidate prunings ---
    Candidate best;
    auto consider = [&](const std::vector<int>& pruned, bool drop_pruned,
                        bool require_hosts_model) {
      double score = std::numeric_limits<double>::infinity();
      PlanEstimate estimate;
      InstanceConfig inst =
          best_instance_config(shares, pruned, drop_pruned, require_hosts_model, share, d,
                               objective, &score, &estimate);
      ++evaluated;
      if (!std::isfinite(score)) return;
      // KV feasibility filter: the d instances together must host the
      // workload's decode set.
      if (estimate.kv_capacity < profile.min_kv_bytes) return;
      if (score >= best.score) return;
      best.score = score;
      best.estimate = estimate;
      best.pruned = static_cast<int>(pruned.size());
      best.plan.instances.assign(1, std::move(inst));
    };

    // The Delta candidate keeps the legacy semantics (no parameter-fit
    // filter) so the default objective's plans stay byte-identical.
    consider(delta_pruned, /*drop_pruned=*/false, /*require_hosts_model=*/false);
    if (objective.explores_depth() && opts_.enable_pruning) {
      // Enumerate every pruning depth along the same low-end -> high-end
      // removal order, each in two placements: removed GPUs serve as
      // Attention workers (the paper's role) or leave the deployment
      // entirely (smaller device footprint -- what a cost-efficiency
      // objective wants credit for).
      std::vector<int> order;
      for (auto it = shares.rbegin(); it != shares.rend(); ++it) {
        order.insert(order.end(), it->device_ids.begin(), it->device_ids.end());
      }
      for (std::size_t depth = 0; depth < order.size(); ++depth) {  // >= 1 primary stays
        const std::vector<int> pruned(order.begin(),
                                      order.begin() + static_cast<std::ptrdiff_t>(depth));
        if (pruned != delta_pruned) {
          consider(pruned, /*drop_pruned=*/false, /*require_hosts_model=*/true);
        }
        if (!pruned.empty()) consider(pruned, /*drop_pruned=*/true, /*require_hosts_model=*/true);
      }
    }
    if (best.plan.instances.empty()) return;

    // Replicate across the d instances with each instance's own devices.
    const InstanceConfig inst = best.plan.instances.front();
    best.plan.instances.clear();
    for (int rep = 0; rep < d; ++rep) {
      InstanceConfig copy = inst;
      // Map instance-0 device ids onto replica `rep` (per-type offset).
      for (auto& stage : copy.stages) {
        for (int& dev : stage.devices) {
          hw::GpuType t = cluster_->device(dev).type;
          const auto& all = by_type.at(t);
          int per = static_cast<int>(all.size()) / d;
          auto pos = std::find(all.begin(), all.end(), dev) - all.begin();
          dev = all[static_cast<std::size_t>(pos + rep * per)];
        }
      }
      for (int& dev : copy.attention_workers) {
        hw::GpuType t = cluster_->device(dev).type;
        const auto& all = by_type.at(t);
        int per = static_cast<int>(all.size()) / d;
        auto pos = std::find(all.begin(), all.end(), dev) - all.begin();
        dev = all[static_cast<std::size_t>(pos + rep * per)];
      }
      best.plan.instances.push_back(std::move(copy));
    }
    results[di] = std::move(best);
  });

  // Pick the best-scoring candidate (scores compare per-instance estimates
  // scaled to the full d-wide plan; candidates within 0.1% of the best keep
  // the earlier -- narrower -- grouping).  The 0.1% band must shrink the
  // threshold toward better-than-best for either sign: positive scores keep
  // the legacy `* 0.999` expression bit-for-bit, negative (maximizing)
  // scores need `* 1.001` or the band would ACCEPT slightly-worse ones.
  std::size_t best = results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].plan.instances.empty()) continue;
    if (best == results.size()) {
      best = i;
      continue;
    }
    const double incumbent = results[best].score;
    const double threshold = incumbent >= 0 ? incumbent * 0.999 : incumbent * 1.001;
    if (results[i].score < threshold) best = i;
  }
  diag_.configurations_evaluated = evaluated.load();
  diag_.instances_considered = static_cast<int>(candidates_d.size());
  auto t1 = std::chrono::steady_clock::now();
  diag_.wall_time = std::chrono::duration<double>(t1 - t0).count();
  if (best == results.size()) {
    throw std::runtime_error(
        "Parallelizer: no feasible configuration (KV capacity below min_kv_bytes?)");
  }
  diag_.pruned_devices = results[best].pruned;
  diag_.best_cost = results[best].score;
  HETIS_INFO("Parallelizer: " << results[best].plan.to_string(*cluster_, &diag_));
  return results[best].plan;
}

}  // namespace hetis::parallel
