#include "parallel/evaluator.h"

#include <algorithm>

#include "engine/instance.h"
#include "parallel/parallelizer.h"

namespace hetis::parallel {

PlanEvaluator::PlanEvaluator(const hw::Cluster& cluster, const model::ModelSpec& model)
    : owned_(std::in_place, cluster, model), exec_(&*owned_) {}

PlanEvaluator::PlanEvaluator(const engine::ExecModel& exec) : exec_(&exec) {}

Bytes PlanEvaluator::kv_capacity(const InstanceConfig& cfg) const {
  const model::ModelSpec& m = exec_->model_spec();
  const hw::Cluster& cluster = exec_->cluster();
  Bytes total = 0;
  for (std::size_t k = 0; k < cfg.stages.size(); ++k) {
    const auto& s = cfg.stages[k];
    Bytes params =
        engine::stage_param_bytes_per_device(m, s, k == 0, k + 1 == cfg.stages.size());
    for (int dev : s.devices) {
      total += engine::kv_budget(cluster.device(dev).spec(), params);
    }
  }
  for (int dev : cfg.attention_workers) {
    total += engine::kv_budget(cluster.device(dev).spec(), 0);
  }
  return total;
}

bool PlanEvaluator::hosts_model(const InstanceConfig& cfg) const {
  const model::ModelSpec& m = exec_->model_spec();
  const hw::Cluster& cluster = exec_->cluster();
  for (std::size_t k = 0; k < cfg.stages.size(); ++k) {
    const auto& s = cfg.stages[k];
    Bytes params =
        engine::stage_param_bytes_per_device(m, s, k == 0, k + 1 == cfg.stages.size());
    for (int dev : s.devices) {
      if (engine::kv_budget(cluster.device(dev).spec(), params) <= 0) return false;
    }
  }
  return true;
}

PlanEstimate PlanEvaluator::evaluate(const InstanceConfig& cfg,
                                     const WorkloadProfile& profile) const {
  // Full cost model C = C_comp + C_comm (HexGen-style), via ExecModel.  The
  // prefill/decode batch shapes are exactly the legacy instance_cost ones,
  // so iteration_cost() reproduces the pre-objective search scalar bit for
  // bit.
  PlanEstimate e;
  std::vector<std::int64_t> prompt_lens(
      std::max<std::int64_t>(1, profile.prefill_tokens /
                                    std::max<std::int64_t>(1, profile.mean_context)),
      profile.mean_context);
  engine::IterationTime prefill = exec_->iteration_time(cfg, prompt_lens, /*prefill=*/true);
  std::vector<std::int64_t> ctxs(static_cast<std::size_t>(profile.decode_batch),
                                 profile.mean_context);
  engine::IterationTime decode = exec_->iteration_time(cfg, ctxs, /*prefill=*/false);
  e.ttft = prefill.latency();
  e.tpot = decode.latency();
  e.decode_weight = profile.decode_weight;
  // Coarse steady-state completion rate: the instance finishes its
  // decode_batch cohort once per (prefill + decode_weight decode) window.
  e.throughput = e.iteration_cost() > 0
                     ? static_cast<double>(profile.decode_batch) / e.iteration_cost()
                     : 0.0;
  e.kv_capacity = kv_capacity(cfg);
  e.device_count = static_cast<int>(cfg.primary_devices().size() + cfg.attention_workers.size());
  e.instances = 1;
  return e;
}

PlanEstimate PlanEvaluator::evaluate(const ParallelPlan& plan,
                                     const WorkloadProfile& profile) const {
  PlanEstimate agg;
  if (plan.instances.empty()) return agg;
  const int d = static_cast<int>(plan.instances.size());
  // Each instance serves a 1/d workload share, mirroring Parallelizer::plan.
  WorkloadProfile share = profile;
  share.prefill_tokens = std::max<std::int64_t>(1, profile.prefill_tokens / d);
  share.decode_batch = std::max<std::int64_t>(1, profile.decode_batch / d);
  agg.instances = d;
  agg.decode_weight = profile.decode_weight;
  for (const InstanceConfig& inst : plan.instances) {
    PlanEstimate e = evaluate(inst, share);
    agg.ttft = std::max(agg.ttft, e.ttft);
    agg.tpot = std::max(agg.tpot, e.tpot);
    agg.throughput += e.throughput;
    agg.kv_capacity += e.kv_capacity;
    agg.device_count += e.device_count;
  }
  return agg;
}

PlanEstimate replicate_estimate(PlanEstimate instance_estimate, int instances) {
  instance_estimate.throughput *= instances;
  instance_estimate.kv_capacity *= instances;
  instance_estimate.device_count *= instances;
  instance_estimate.instances = instances;
  return instance_estimate;
}

}  // namespace hetis::parallel
