// Parallelization plan types shared by the Parallelizer, the baselines and
// the serving engines.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/topology.h"

namespace hetis::parallel {

struct SearchDiagnostics;  // parallel/parallelizer.h

/// One pipeline stage: a tensor-parallel group of same-type devices owning
/// a contiguous slab of layers.
struct StageConfig {
  std::vector<int> devices;  // device ids, TP group (size = TP degree)
  int layers = 0;
  // Bytes already spoken for on each device of this stage by ANOTHER
  // deployment sharing the hardware (e.g. Splitwise's prefill-pool model
  // copy when a decode stage borrows A100s).  Subtracted from the KV
  // budget.
  Bytes extra_reserved = 0;

  int tp() const { return static_cast<int>(devices.size()); }
};

/// One serving instance: a pipeline of stages plus (Hetis only) the
/// Attention workers this instance can offload to.
struct InstanceConfig {
  std::vector<StageConfig> stages;
  std::vector<int> attention_workers;

  int total_layers() const {
    int n = 0;
    for (const auto& s : stages) n += s.layers;
    return n;
  }
  std::vector<int> primary_devices() const {
    std::vector<int> out;
    for (const auto& s : stages) out.insert(out.end(), s.devices.begin(), s.devices.end());
    return out;
  }
};

/// Structural equality, used by the degradation path to decide whether a
/// replan actually changed the layout (an unchanged plan must not trigger
/// a retire-and-migrate cycle).
inline bool operator==(const StageConfig& a, const StageConfig& b) {
  return a.devices == b.devices && a.layers == b.layers && a.extra_reserved == b.extra_reserved;
}
inline bool operator!=(const StageConfig& a, const StageConfig& b) { return !(a == b); }

inline bool operator==(const InstanceConfig& a, const InstanceConfig& b) {
  return a.stages == b.stages && a.attention_workers == b.attention_workers;
}
inline bool operator!=(const InstanceConfig& a, const InstanceConfig& b) { return !(a == b); }

/// A full cluster plan: data-parallel instances.
struct ParallelPlan {
  std::vector<InstanceConfig> instances;

  /// Human-readable layout summary.  With `diag` the search diagnostics
  /// (objective, configurations evaluated, pruned devices, best score, wall
  /// time) are appended -- pass Parallelizer::diagnostics() right after a
  /// search to record how the plan was found.
  std::string to_string(const hw::Cluster& cluster,
                        const SearchDiagnostics* diag = nullptr) const;
};

inline bool operator==(const ParallelPlan& a, const ParallelPlan& b) {
  return a.instances == b.instances;
}
inline bool operator!=(const ParallelPlan& a, const ParallelPlan& b) { return !(a == b); }

namespace detail {

/// Bounds-checked lookup for remap_device_ids: a plan computed on one
/// subcluster but remapped through another's id table is a control-plane
/// bug, so the error must say which id overflowed which mapping instead of
/// surfacing a bare std::out_of_range from vector::at.
inline int remapped_device_id(int dev, const std::vector<int>& original_ids) {
  if (dev < 0 || static_cast<std::size_t>(dev) >= original_ids.size()) {
    throw std::out_of_range(
        "parallel::remap_device_ids: plan references device id " + std::to_string(dev) +
        " but the subcluster mapping only covers ids [0, " +
        std::to_string(original_ids.size()) +
        ") -- was the plan computed on a different subcluster?");
  }
  return original_ids[static_cast<std::size_t>(dev)];
}

}  // namespace detail

/// Rewrites every device id of a plan computed on a sub-cluster back onto
/// the parent cluster through `original_ids` (the new-id -> parent-id
/// mapping produced by hw::Cluster::subcluster).  The elastic control
/// plane replans over the surviving device set and then deploys the result
/// on the unchanged parent cluster's ids.  Ids outside the mapping throw
/// std::out_of_range with the offending id and mapping size spelled out.
inline void remap_device_ids(StageConfig& stage, const std::vector<int>& original_ids) {
  for (int& dev : stage.devices) dev = detail::remapped_device_id(dev, original_ids);
}

inline void remap_device_ids(InstanceConfig& cfg, const std::vector<int>& original_ids) {
  for (StageConfig& s : cfg.stages) remap_device_ids(s, original_ids);
  for (int& dev : cfg.attention_workers) dev = detail::remapped_device_id(dev, original_ids);
}

inline void remap_device_ids(ParallelPlan& plan, const std::vector<int>& original_ids) {
  for (InstanceConfig& inst : plan.instances) remap_device_ids(inst, original_ids);
}

}  // namespace hetis::parallel
