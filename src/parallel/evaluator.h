// PlanEvaluator: candidate costing for the Parallelizer search, extracted
// into its own layer so every consumer of a plan -- the search itself, the
// elastic control plane, the harness and the benches -- prices candidates
// through one costmodel-backed code path.
//
// An evaluator owns (or borrows) an engine::ExecModel and turns an
// InstanceConfig plus a WorkloadProfile into a PlanEstimate: prefill
// iteration latency (TTFT), decode iteration latency (TPOT), a coarse
// steady-state throughput estimate, the KV capacity and the device count.
// PlanObjectives score these estimates; the Parallelizer keeps the
// candidate with the minimum score.
#pragma once

#include <optional>

#include "engine/exec.h"
#include "parallel/objective.h"
#include "parallel/plan.h"

namespace hetis::parallel {

struct WorkloadProfile;  // parallel/parallelizer.h

class PlanEvaluator {
 public:
  /// Builds a private ExecModel over `cluster` + `model` (both must outlive
  /// the evaluator).
  PlanEvaluator(const hw::Cluster& cluster, const model::ModelSpec& model);
  /// Borrows an existing ExecModel (must outlive the evaluator); the
  /// Parallelizer shares its own model this way.
  explicit PlanEvaluator(const engine::ExecModel& exec);

  /// Estimate for ONE instance serving `profile` (callers pass the
  /// per-instance workload share; see Parallelizer::plan).  instances == 1.
  PlanEstimate evaluate(const InstanceConfig& cfg, const WorkloadProfile& profile) const;

  /// Plan-level estimate: each instance serves a 1/d share of `profile`;
  /// latencies are the worst instance's, throughput and KV capacity sum.
  PlanEstimate evaluate(const ParallelPlan& plan, const WorkloadProfile& profile) const;

  /// Aggregate KV-cache bytes an instance can host (primary stages net of
  /// their parameter shards, plus the attention-worker pool).
  Bytes kv_capacity(const InstanceConfig& cfg) const;

  /// True when every primary-stage device can hold its parameter shard
  /// with KV room to spare (per-device budget > 0).  Depth-exploring
  /// objectives use this to discard aggressively-pruned candidates that
  /// score well on latency arithmetic but could never load the model --
  /// e.g. all 80 Llama-70B layers on one A100.
  bool hosts_model(const InstanceConfig& cfg) const;

  const engine::ExecModel& exec() const { return *exec_; }

 private:
  std::optional<engine::ExecModel> owned_;  // engaged under the owning ctor
  const engine::ExecModel* exec_;
};

/// Scales a single-instance estimate to a d-wide data-parallel plan:
/// latencies carry over (instances are symmetric), throughput / KV capacity
/// / device count multiply.  Shared by the search and the benches.
PlanEstimate replicate_estimate(PlanEstimate instance_estimate, int instances);

}  // namespace hetis::parallel
