#include "parallel/objective.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hetis::parallel {

namespace {

/// The paper's posture: minimize the iteration cost (one prefill plus
/// decode_weight decode iterations).  Keeps the legacy search path --
/// explores_depth() is false -- so default plans stay byte-identical.
class ThroughputObjective final : public PlanObjective {
 public:
  std::string name() const override { return "throughput"; }
  double score(const PlanEstimate& e) const override { return e.iteration_cost(); }
  bool explores_depth() const override { return false; }
};

/// Minimizes estimated TTFT.  With SLO targets set, candidates overshooting
/// a target are penalized multiplicatively by the overshoot ratio, so a
/// marginally-faster-TTFT plan cannot win while blowing the TPOT budget.
/// Without targets the score IS the TTFT, which guarantees the selected
/// plan's estimated TTFT never exceeds any other candidate's -- including
/// the throughput objective's choice, which the search always keeps in the
/// candidate set.
class LatencyObjective final : public PlanObjective {
 public:
  explicit LatencyObjective(engine::SloSpec slo) : slo_(slo) {}
  std::string name() const override { return "latency"; }
  double score(const PlanEstimate& e) const override {
    double s = e.ttft;
    if (slo_.ttft > 0 && e.ttft > slo_.ttft) s *= e.ttft / slo_.ttft;
    if (slo_.tpot > 0 && e.tpot > slo_.tpot) s *= e.tpot / slo_.tpot;
    return s;
  }

 private:
  engine::SloSpec slo_;
};

/// Cost efficiency: maximizes estimated goodput per occupied device
/// (requests per device-second).  Goodput discounts raw throughput by the
/// SLO-overshoot ratios, mirroring how run_trace only credits SLO-attaining
/// requests.  Returned negated so lower-is-better holds.
class GoodputPerDeviceObjective final : public PlanObjective {
 public:
  explicit GoodputPerDeviceObjective(engine::SloSpec slo) : slo_(slo) {}
  std::string name() const override { return "goodput_per_device"; }
  double score(const PlanEstimate& e) const override {
    double goodput = e.throughput;
    if (slo_.ttft > 0 && e.ttft > slo_.ttft) goodput *= slo_.ttft / e.ttft;
    if (slo_.tpot > 0 && e.tpot > slo_.tpot) goodput *= slo_.tpot / e.tpot;
    return -goodput / std::max(1, e.device_count);
  }

 private:
  engine::SloSpec slo_;
};

}  // namespace

std::unique_ptr<PlanObjective> make_objective(const std::string& name,
                                              const engine::SloSpec& slo) {
  if (name == "throughput") return std::make_unique<ThroughputObjective>();
  if (name == "latency") return std::make_unique<LatencyObjective>(slo);
  if (name == "goodput_per_device") return std::make_unique<GoodputPerDeviceObjective>(slo);
  std::ostringstream oss;
  oss << "make_objective: unknown plan objective '" << name << "'; known objectives:";
  for (const auto& known : objective_names()) oss << " '" << known << "'";
  throw std::out_of_range(oss.str());
}

std::unique_ptr<PlanObjective> make_objective(const ObjectiveSpec& spec) {
  return make_objective(spec.name, spec.slo);
}

std::vector<std::string> objective_names() {
  return {"goodput_per_device", "latency", "throughput"};
}

}  // namespace hetis::parallel
