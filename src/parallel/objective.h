// Pluggable plan objectives for the Parallelizer search (paper §4.1,
// generalized).
//
// The paper's search minimizes a single iteration-cost scalar -- a pure
// throughput posture.  Related systems (Helix's per-request-latency
// max-flow formulation, Tangram's objective-aware costing of candidate
// parallelizations) make the serving objective a first-class axis of the
// placement search instead.  This header does the same for our planner:
//
//   * PlanEstimate  -- what the PlanEvaluator predicts for one candidate
//     configuration: TTFT, TPOT, aggregate throughput, KV capacity and the
//     number of devices the plan occupies.
//   * PlanObjective -- maps a PlanEstimate to a scalar score (LOWER is
//     better, like the legacy cost).  Implementations are pure functions of
//     the estimate, so the same objective drives construction-time planning,
//     elastic replanning and the harness sweeps deterministically.
//   * make_objective("throughput" | "latency" | "goodput_per_device") --
//     the named built-ins:
//       throughput          the paper's iteration cost (TTFT + w * TPOT);
//                           reproduces the legacy plans byte-identically.
//       latency             minimizes estimated TTFT; SloSpec-aware --
//                           candidates that blow a TTFT/TPOT target are
//                           penalized proportionally to the overshoot.
//       goodput_per_device  cost efficiency: maximizes estimated
//                           SLO-discounted goodput per occupied device
//                           (requests per device-second), so plans shed
//                           hardware whose marginal contribution does not
//                           pay for itself.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/engine.h"

namespace hetis::parallel {

/// What the PlanEvaluator predicts for one candidate configuration under a
/// WorkloadProfile.  Instance-level estimates describe one data-parallel
/// instance serving its 1/d workload share; plan-level estimates aggregate
/// across the d instances (worst-case latencies, summed throughput/KV).
struct PlanEstimate {
  Seconds ttft = 0;        // prefill iteration latency (time-to-first-token)
  Seconds tpot = 0;        // decode iteration latency (time-per-output-token)
  double throughput = 0;   // estimated steady-state finished requests / s
  Bytes kv_capacity = 0;   // aggregate KV-cache bytes the plan can host
  int device_count = 0;    // devices the plan occupies (primaries + workers)
  int instances = 1;       // data-parallel width
  double decode_weight = 0;  // echoed WorkloadProfile::decode_weight

  /// The legacy search scalar (paper §4.1): one prefill plus decode_weight
  /// decode iterations.  The throughput objective scores exactly this, which
  /// is what keeps default plans byte-identical to the pre-objective search.
  double iteration_cost() const { return ttft + decode_weight * tpot; }
};

/// Value-semantic objective selection: a factory name plus the SLO targets
/// the SLO-aware objectives grade estimates against.  Carried by
/// ParallelizerOptions (and therefore HetisConfig / EngineOptions), passed
/// by the control plane through engine::Reconfigurable::set_plan_objective.
struct ObjectiveSpec {
  std::string name = "throughput";
  engine::SloSpec slo;  // targets <= 0 disable that term (run_trace rules)
};

/// A plan objective: scores candidate estimates, LOWER is better.  Scores
/// only need to be comparable within one search, so objectives are free to
/// return negative values (goodput_per_device does).
class PlanObjective {
 public:
  virtual ~PlanObjective() = default;

  virtual std::string name() const = 0;

  /// The candidate's score; the search keeps the minimum.
  virtual double score(const PlanEstimate& e) const = 0;

  /// True when the search should explore beyond the paper's Delta-pruned
  /// frontier: enumerate every pruning depth and also consider dropping
  /// pruned devices entirely instead of keeping them as Attention workers.
  /// The throughput objective returns false, which pins the legacy search
  /// path (and its byte-identical plans).
  virtual bool explores_depth() const { return true; }
};

/// Constructs a built-in objective by name ("throughput" | "latency" |
/// "goodput_per_device").  Throws std::out_of_range listing the known names
/// otherwise (mirrors control::make_policy).
std::unique_ptr<PlanObjective> make_objective(const std::string& name,
                                              const engine::SloSpec& slo = {});
std::unique_ptr<PlanObjective> make_objective(const ObjectiveSpec& spec);

/// Names accepted by make_objective, sorted.
std::vector<std::string> objective_names();

}  // namespace hetis::parallel
