// The Parallelizer (paper §4.1): primary-worker parallelism search.
//
// Hierarchical process, exactly as Fig. 4 describes:
//   1. Device grouping: enumerate data-parallel instance counts d that
//      divide every GPU type's count evenly; each instance receives an
//      equal per-type share.
//   2. Per-type unified pipeline stages, ordered high-end -> low-end, with
//      a balanced layer partition minimizing C_p = max stage cost under
//      perfect latency scaling (no comm).
//   3. Pruning heuristic: remove GPUs kappa one at a time, lowest- to
//      highest-end, while C_p(sigma - kappa) / C_p(sigma) <= 1 + Delta
//      (Delta = 0.05).  Removed GPUs become Attention workers.
//   4. Intra-stage TP x PP enumeration (evaluated in parallel on the
//      thread pool) with the full C_comm + C_comp cost model.
//   5. Configurations whose KV capacity cannot host the workload's decode
//      set are filtered out; the best-scoring surviving configuration wins.
//
// Candidates are priced by the PlanEvaluator (parallel/evaluator.h) and
// ranked by a pluggable PlanObjective (parallel/objective.h).  The default
// "throughput" objective scores the paper's iteration cost and follows the
// Delta-pruning frontier exactly, reproducing the legacy plans byte for
// byte.  Objectives that explore depth ("latency", "goodput_per_device")
// additionally enumerate every pruning depth -- and, per depth, both
// keeping the removed GPUs as Attention workers and dropping them from the
// deployment entirely -- so a latency-optimal search can land on e.g. the
// 4xA100-only plan that beats the full 12-device pipeline on TTFT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/exec.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "parallel/evaluator.h"
#include "parallel/objective.h"
#include "parallel/plan.h"

namespace hetis::parallel {

/// The request-distribution summary R the search optimizes for.
struct WorkloadProfile {
  std::int64_t prefill_tokens = 4096;  // tokens per prefill iteration
  std::int64_t decode_batch = 64;      // concurrent sequences per instance
  std::int64_t mean_context = 512;     // average KV length during decode
  double decode_weight = 256;          // decode iterations per prefill
                                       // (roughly the mean output length)
  Bytes min_kv_bytes = 0;              // feasibility floor for filtering
};

struct ParallelizerOptions {
  double delta = 0.05;          // pruning tolerance (paper default)
  bool enable_pruning = true;   // ablation switch
  bool allow_dp = true;         // consider multi-instance groupings
  std::size_t search_threads = 0;  // 0 = hardware concurrency
  /// What the search optimizes (parallel/objective.h).  The default
  /// "throughput" spec keeps the legacy cheapest-cost plans byte-identical.
  ObjectiveSpec objective;
  /// Which placement tier produces the plan (planner/planner.h):
  ///   "exhaustive" -- the hierarchical search below, always
  ///   "flow"       -- the LP/flow planner (datacenter scale)
  ///   "auto"       -- exhaustive up to planner::kAutoExhaustiveMaxDevices
  ///                   devices, flow beyond (default; keeps small-cluster
  ///                   plans byte-identical)
  std::string planner = "auto";
};

struct SearchDiagnostics {
  std::string planner = "exhaustive";    // tier that produced the plan
  std::string objective = "throughput";  // objective the search ranked by
  int configurations_evaluated = 0;
  int instances_considered = 0;
  int pruned_devices = 0;
  double best_cost = 0;  // best objective score (negative for maximizing
                         // objectives like goodput_per_device)
  Seconds wall_time = 0;
  // Flow-planner extras (zero / empty on the exhaustive path).
  std::size_t lp_solves = 0;          // feasibility LPs solved
  std::size_t solver_iterations = 0;  // simplex pivots across all LPs
  double relaxation_gap = 0;          // (exact score - LP bound) / LP bound
  std::string fallback_reason;        // why flow deferred to the oracle ("" = it didn't)
};

class Parallelizer {
 public:
  Parallelizer(const hw::Cluster& cluster, const model::ModelSpec& model,
               ParallelizerOptions opts = {});

  /// Runs the full hierarchical search under the options' objective.
  ParallelPlan plan(const WorkloadProfile& profile);
  /// Same search ranked by a caller-supplied objective (pluggable policies
  /// beyond the make_objective built-ins).
  ParallelPlan plan(const WorkloadProfile& profile, const PlanObjective& objective);

  const SearchDiagnostics& diagnostics() const { return diag_; }
  const PlanEvaluator& evaluator() const { return evaluator_; }

  /// C_p: max per-stage cost under perfect scaling for a per-type device
  /// allocation (counts per GpuType) -- the pruning-phase cost (§4.1).
  double perfect_scaling_cost(const std::vector<std::pair<hw::GpuType, int>>& stage_devices,
                              const WorkloadProfile& profile) const;

 private:
  struct TypeShare {
    hw::GpuType type;
    std::vector<int> device_ids;  // share for one instance
  };

  /// Layer counts proportional to stage speed (balanced partition).
  std::vector<int> balance_layers(const std::vector<double>& per_layer_cost) const;

  /// Builds the best intra-stage TP/PP layout for one instance under
  /// `objective` (scored on the d-wide estimate); writes the winning score
  /// and plan-level estimate through the out parameters.  With
  /// `require_hosts_model`, layouts whose devices cannot hold their
  /// parameter shard are discarded (the depth-explored candidate space
  /// contains such configs; the legacy Delta frontier keeps its historical
  /// semantics).
  InstanceConfig best_instance_config(const std::vector<TypeShare>& shares,
                                      const std::vector<int>& pruned, bool drop_pruned,
                                      bool require_hosts_model, const WorkloadProfile& profile,
                                      int d, const PlanObjective& objective, double* score_out,
                                      PlanEstimate* estimate_out) const;

  /// Per-layer dense+attention cost of one token batch on `count` devices
  /// of `type` under perfect scaling.
  double per_layer_cost_perfect(hw::GpuType type, int count,
                                const WorkloadProfile& profile) const;

  const hw::Cluster* cluster_;
  const model::ModelSpec* model_;
  ParallelizerOptions opts_;
  engine::ExecModel exec_;
  PlanEvaluator evaluator_;
  SearchDiagnostics diag_;
};

}  // namespace hetis::parallel
