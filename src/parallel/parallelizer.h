// The Parallelizer (paper §4.1): primary-worker parallelism search.
//
// Hierarchical process, exactly as Fig. 4 describes:
//   1. Device grouping: enumerate data-parallel instance counts d that
//      divide every GPU type's count evenly; each instance receives an
//      equal per-type share.
//   2. Per-type unified pipeline stages, ordered high-end -> low-end, with
//      a balanced layer partition minimizing C_p = max stage cost under
//      perfect latency scaling (no comm).
//   3. Pruning heuristic: remove GPUs kappa one at a time, lowest- to
//      highest-end, while C_p(sigma - kappa) / C_p(sigma) <= 1 + Delta
//      (Delta = 0.05).  Removed GPUs become Attention workers.
//   4. Intra-stage TP x PP enumeration (evaluated in parallel on the
//      thread pool) with the full C_comm + C_comp cost model.
//   5. Configurations whose KV capacity cannot host the workload's decode
//      set are filtered out; the cheapest surviving configuration wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/exec.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "parallel/plan.h"

namespace hetis::parallel {

/// The request-distribution summary R the search optimizes for.
struct WorkloadProfile {
  std::int64_t prefill_tokens = 4096;  // tokens per prefill iteration
  std::int64_t decode_batch = 64;      // concurrent sequences per instance
  std::int64_t mean_context = 512;     // average KV length during decode
  double decode_weight = 256;          // decode iterations per prefill
                                       // (roughly the mean output length)
  Bytes min_kv_bytes = 0;              // feasibility floor for filtering
};

struct ParallelizerOptions {
  double delta = 0.05;          // pruning tolerance (paper default)
  bool enable_pruning = true;   // ablation switch
  bool allow_dp = true;         // consider multi-instance groupings
  std::size_t search_threads = 0;  // 0 = hardware concurrency
};

struct SearchDiagnostics {
  int configurations_evaluated = 0;
  int instances_considered = 0;
  int pruned_devices = 0;
  double best_cost = 0;
  Seconds wall_time = 0;
};

class Parallelizer {
 public:
  Parallelizer(const hw::Cluster& cluster, const model::ModelSpec& model,
               ParallelizerOptions opts = {});

  /// Runs the full hierarchical search.
  ParallelPlan plan(const WorkloadProfile& profile);

  const SearchDiagnostics& diagnostics() const { return diag_; }

  /// C_p: max per-stage cost under perfect scaling for a per-type device
  /// allocation (counts per GpuType) -- the pruning-phase cost (§4.1).
  double perfect_scaling_cost(const std::vector<std::pair<hw::GpuType, int>>& stage_devices,
                              const WorkloadProfile& profile) const;

 private:
  struct TypeShare {
    hw::GpuType type;
    std::vector<int> device_ids;  // share for one instance
  };

  /// Layer counts proportional to stage speed (balanced partition).
  std::vector<int> balance_layers(const std::vector<double>& per_layer_cost) const;

  /// Builds and costs the best intra-stage TP/PP layout for one instance.
  InstanceConfig best_instance_config(const std::vector<TypeShare>& shares,
                                      const std::vector<int>& pruned,
                                      const WorkloadProfile& profile, double* cost_out) const;

  double instance_cost(const InstanceConfig& cfg, const WorkloadProfile& profile) const;
  Bytes instance_kv_capacity(const InstanceConfig& cfg) const;

  /// Per-layer dense+attention cost of one token batch on `count` devices
  /// of `type` under perfect scaling.
  double per_layer_cost_perfect(hw::GpuType type, int count,
                                const WorkloadProfile& profile) const;

  const hw::Cluster* cluster_;
  const model::ModelSpec* model_;
  ParallelizerOptions opts_;
  engine::ExecModel exec_;
  SearchDiagnostics diag_;
};

}  // namespace hetis::parallel
