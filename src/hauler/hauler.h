// The Hauler (paper §3.2 module 4, §6 "live cache migration").
//
// Executes KV-cache migrations on a background channel modeled after
// low-priority CUDA streams + dedicated NCCL P2P groups: migrations never
// delay foreground compute/collectives (the "interference-free" property),
// but they only receive a fraction of each link's bandwidth and serialize
// per (src-host, dst-host) channel.
#pragma once

#include <cstdint>
#include <map>

#include "common/units.h"
#include "hw/topology.h"

namespace hetis::hauler {

struct HaulerOptions {
  /// Fraction of link bandwidth the low-priority stream receives while
  /// foreground traffic has priority.
  double bandwidth_share = 0.5;
};

class Hauler {
 public:
  Hauler(const hw::Cluster& cluster, HaulerOptions opts = {});

  /// Schedules `bytes` from device `src` to device `dst` starting no
  /// earlier than `now`; returns the completion time.  Transfers on the
  /// same host-pair channel serialize; distinct channels proceed in
  /// parallel.
  Seconds migrate(int src, int dst, Bytes bytes, Seconds now);

  /// Completion time the channel between src and dst is busy until.
  Seconds channel_busy_until(int src, int dst) const;

  /// Total bytes migrated so far (reporting).
  Bytes total_bytes() const { return total_bytes_; }
  std::int64_t total_migrations() const { return total_migrations_; }

 private:
  std::pair<int, int> channel_key(int src, int dst) const;

  const hw::Cluster* cluster_;
  HaulerOptions opts_;
  std::map<std::pair<int, int>, Seconds> busy_until_;
  Bytes total_bytes_ = 0;
  std::int64_t total_migrations_ = 0;
};

}  // namespace hetis::hauler
