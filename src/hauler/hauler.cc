#include "hauler/hauler.h"

#include <algorithm>
#include <stdexcept>

namespace hetis::hauler {

Hauler::Hauler(const hw::Cluster& cluster, HaulerOptions opts) : cluster_(&cluster), opts_(opts) {
  if (opts_.bandwidth_share <= 0.0 || opts_.bandwidth_share > 1.0) {
    throw std::invalid_argument("Hauler: bandwidth_share must be in (0, 1]");
  }
}

std::pair<int, int> Hauler::channel_key(int src, int dst) const {
  // One background channel per (src-host, dst-host) pair.
  int hs = cluster_->device(src).host;
  int hd = cluster_->device(dst).host;
  return {hs, hd};
}

Seconds Hauler::migrate(int src, int dst, Bytes bytes, Seconds now) {
  if (bytes <= 0 || src == dst) return now;
  hw::Link link = cluster_->link(src, dst);
  Seconds duration =
      link.latency + static_cast<double>(bytes) / (link.bandwidth * opts_.bandwidth_share);
  auto key = channel_key(src, dst);
  Seconds start = std::max(now, busy_until_.count(key) ? busy_until_[key] : 0.0);
  Seconds done = start + duration;
  busy_until_[key] = done;
  total_bytes_ += bytes;
  ++total_migrations_;
  return done;
}

Seconds Hauler::channel_busy_until(int src, int dst) const {
  auto key = channel_key(src, dst);
  auto it = busy_until_.find(key);
  return it == busy_until_.end() ? 0.0 : it->second;
}

}  // namespace hetis::hauler
