#include "telemetry/audit.h"

#include <algorithm>
#include <ostream>

#include "engine/engine.h"  // csv_double / json_escape
#include "telemetry/trace.h"

namespace hetis::telemetry {

namespace {

using engine::csv_double;
using engine::json_escape;

void write_int_array(std::ostream& os, const std::vector<int>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << ']';
}

/// Devices in `a` but not in `b` (both sorted ascending, as the controller
/// keeps them).
std::vector<int> set_minus(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void write_signals(std::ostream& os, const control::ControlSignals& s) {
  os << "{\"now\":" << csv_double(s.now) << ",\"queue_depth\":" << s.queue_depth
     << ",\"in_flight\":" << s.in_flight << ",\"arrival_rate\":" << csv_double(s.arrival_rate)
     << ",\"ttft_ewma\":" << csv_double(s.ttft_ewma)
     << ",\"tpot_ewma\":" << csv_double(s.tpot_ewma)
     << ",\"slo_attainment\":" << csv_double(s.slo_attainment)
     << ",\"kv_pressure\":" << csv_double(s.kv_pressure)
     << ",\"load_forecast\":" << csv_double(s.load_forecast)
     << ",\"active_devices\":" << s.active_devices
     << ",\"available_devices\":" << s.available_devices
     << ",\"degraded_devices\":" << s.degraded_devices << "}";
}

void write_diagnostics(std::ostream& os, const parallel::SearchDiagnostics& d) {
  os << "{\"planner\":\"" << json_escape(d.planner) << "\",\"objective\":\""
     << json_escape(d.objective)
     << "\",\"configurations_evaluated\":" << d.configurations_evaluated
     << ",\"instances_considered\":" << d.instances_considered
     << ",\"pruned_devices\":" << d.pruned_devices << ",\"best_cost\":" << csv_double(d.best_cost)
     << ",\"wall_time\":" << csv_double(d.wall_time) << ",\"lp_solves\":" << d.lp_solves
     << ",\"solver_iterations\":" << d.solver_iterations
     << ",\"relaxation_gap\":" << csv_double(d.relaxation_gap) << ",\"fallback_reason\":\""
     << json_escape(d.fallback_reason) << "\"}";
}

}  // namespace

std::size_t AuditTrail::replans() const {
  std::size_t n = 0;
  for (const AuditRecord& rec : records_) {
    if (rec.action == "redeploy" || rec.action == "replan_in_place") ++n;
  }
  return n;
}

std::vector<std::pair<std::string, int>> AuditTrail::trigger_counts() const {
  std::vector<std::pair<std::string, int>> out;
  for (const AuditRecord& rec : records_) {
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const auto& p) { return p.first == rec.trigger; });
    if (it == out.end()) {
      out.emplace_back(rec.trigger, 1);
    } else {
      ++it->second;
    }
  }
  return out;
}

void AuditTrail::write_json(std::ostream& os) const {
  os << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const AuditRecord& rec = records_[i];
    os << (i ? ",\n " : "\n ") << "{\"time\":" << csv_double(rec.time) << ",\"trigger\":\""
       << json_escape(rec.trigger) << "\",\"action\":\"" << json_escape(rec.action)
       << "\",\"forced\":" << (rec.forced ? "true" : "false") << ",\"device\":" << rec.device
       << ",\"signals\":";
    write_signals(os, rec.signals);
    os << ",\"devices_before\":";
    write_int_array(os, rec.devices_before);
    os << ",\"devices_after\":";
    write_int_array(os, rec.devices_after);
    os << ",\"devices_added\":";
    write_int_array(os, set_minus(rec.devices_after, rec.devices_before));
    os << ",\"devices_removed\":";
    write_int_array(os, set_minus(rec.devices_before, rec.devices_after));
    os << ",\"plan_before\":\"" << json_escape(rec.plan_before) << "\",\"plan_after\":\""
       << json_escape(rec.plan_after) << "\"";
    if (rec.has_diagnostics) {
      os << ",\"search\":";
      write_diagnostics(os, rec.diagnostics);
    }
    os << "}";
  }
  os << "\n]\n";
}

void AuditTrail::write_trace_events(std::ostream& os, bool& first) const {
  for (const AuditRecord& rec : records_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"({"ph":"i","pid":)" << TraceRecorder::kControlPid << R"(,"tid":0,"ts":)"
       << csv_double(rec.time * 1e6) << R"(,"name":")" << json_escape(rec.trigger) << ':'
       << json_escape(rec.action) << R"(","s":"g","cat":"control","args":{"signals":)";
    write_signals(os, rec.signals);
    os << ",\"devices_before\":";
    write_int_array(os, rec.devices_before);
    os << ",\"devices_after\":";
    write_int_array(os, rec.devices_after);
    if (rec.has_diagnostics) {
      os << ",\"planner\":\"" << json_escape(rec.diagnostics.planner) << "\"";
    }
    os << "}}";
  }
}

}  // namespace hetis::telemetry
