#include "telemetry/trace.h"

#include <ostream>

#include "engine/engine.h"  // csv_double / json_escape

namespace hetis::telemetry {

namespace {

// Sim time is seconds; Chrome trace `ts`/`dur` are microseconds.  %.17g via
// csv_double keeps the export byte-identical across sweep thread counts.
std::string micros_str(Seconds t) { return engine::csv_double(t * 1e6); }

}  // namespace

const char* to_string(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kQueue:
      return "queue";
    case SpanPhase::kPrefill:
      return "prefill";
    case SpanPhase::kDecode:
      return "decode";
    case SpanPhase::kPreempted:
      return "preempted";
    case SpanPhase::kMigrate:
      return "migrate";
  }
  return "?";
}

int TraceRecorder::intern_track(const std::string& name) {
  auto it = track_index_.find(name);
  if (it != track_index_.end()) return it->second;
  const int idx = static_cast<int>(tracks_.size());
  tracks_.push_back(name);
  track_index_.emplace(name, idx);
  return idx;
}

void TraceRecorder::write_events(std::ostream& os, bool& first) const {
  each_span([&](const SpanEvent& ev) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"({"ph":"X","pid":)" << kRequestsPid << R"(,"tid":)" << ev.tid << R"(,"ts":)"
       << micros_str(ev.t0) << R"(,"dur":)" << micros_str(ev.t1 - ev.t0) << R"(,"name":")"
       << to_string(ev.phase) << R"(","cat":"request","args":{)";
    if (ev.phase == SpanPhase::kMigrate) {
      os << R"("src_device":)" << ev.arg_a << R"(,"dst_device":)" << ev.arg_b;
    } else {
      os << R"("tenant":)" << ev.arg_a << R"(,"tokens":)" << ev.arg_b;
    }
    os << "}}";
  });
  each_counter([&](const CounterEvent& ev) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"({"ph":"C","pid":)" << kDevicesPid << R"(,"tid":0,"ts":)" << micros_str(ev.t)
       << R"(,"name":")" << engine::json_escape(tracks_[static_cast<std::size_t>(ev.track)])
       << R"(","args":{"value":)" << engine::csv_double(ev.value) << "}}";
  });
}

}  // namespace hetis::telemetry
