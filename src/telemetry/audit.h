// Controller decision audit trail: "why did it reconfigure here".
//
// The Controller (src/control/) appends one AuditRecord per control-plane
// action -- every applied re-deploy, straggler-threshold crossing and
// preemption-notice forward -- capturing the triggering signal values and
// EWMAs (a ControlSignals snapshot refreshed at decision time), the device
// sets and engine plan digests before/after, and the planner tier's
// SearchDiagnostics for engines that replan.  The trail exports to JSON
// (docs/OBSERVABILITY.md documents every field) and is injected into the
// Chrome trace as instant events on the control track, so Perfetto shows
// each decision pinned to the moment its signals crossed.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "control/policy.h"
#include "parallel/parallelizer.h"

namespace hetis::telemetry {

struct AuditRecord {
  Seconds time = 0;
  /// What fired the decision: "initial" | "gpu_leave" | "gpu_join" |
  /// "policy_tick" | "straggler_crossing" | "recovery_crossing" |
  /// "preempt_notice".
  std::string trigger;
  /// What the controller did: "redeploy" (device set changed),
  /// "replan_in_place" (same devices, plan re-searched), "evacuate"
  /// (preemption notice forwarded -- the engine may pre-migrate).
  std::string action;
  bool forced = false;  // churn-driven (true) vs elective/policy (false)
  int device = -1;      // triggering device id (-1 when not device-scoped)
  /// Signal snapshot at decision time, EWMAs included.
  control::ControlSignals signals;
  // Plan diff: assigned device sets and engine plan digests around the
  // action (after == before for non-redeploy actions).
  std::vector<int> devices_before;
  std::vector<int> devices_after;
  std::string plan_before;
  std::string plan_after;
  /// The replanning engine's search diagnostics for this action (planner
  /// tier, configurations evaluated, LP solves, wall time); valid only when
  /// has_diagnostics -- checkpoint-restart baselines have no planner.
  bool has_diagnostics = false;
  parallel::SearchDiagnostics diagnostics;
};

class AuditTrail {
 public:
  void record(AuditRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records that changed the deployment (action == "redeploy" or
  /// "replan_in_place") -- the replan count of the post-run summary.
  std::size_t replans() const;

  /// (trigger, count) pairs in first-seen order -- the summary's
  /// "triggers: gpu_leave x2, ..." line.
  std::vector<std::pair<std::string, int>> trigger_counts() const;

  /// Full-fidelity JSON array (one object per record, every field).
  void write_json(std::ostream& os) const;

  /// Appends the trail as Chrome instant events ("i", control track) to an
  /// open traceEvents array; args carry the trigger, signals and planner
  /// tier.  `first` tracks comma placement across writers.
  void write_trace_events(std::ostream& os, bool& first) const;

 private:
  std::vector<AuditRecord> records_;
};

}  // namespace hetis::telemetry
