// MetricsRegistry: counters, gauges and fixed-bucket histograms sampled
// into a time-series table.
//
// Series are created once (returning a dense integer handle) and updated
// through the handle, so the per-event cost is an array index -- never a
// string lookup.  Labels are encoded into the series name with Prometheus
// syntax (`arrivals_total{tenant=chat}` via labeled()); the registry treats
// the whole string as opaque.
//
// sample(now) appends one row of every counter/gauge value to the table, so
// SLO attainment, kv_fill_fraction, queue depth and arrival rate become
// plottable curves instead of one end-of-run number.  A series created
// after sampling started is back-filled with zeros, keeping the table
// rectangular.  Histograms accumulate over the whole run (fixed upper
// bounds + overflow bucket) and serialize to their own cumulative-count CSV
// that parse_histograms_csv round-trips exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"

namespace hetis::telemetry {

/// End-of-run snapshot of one histogram; also the parse result of
/// parse_histograms_csv.  `cumulative[i]` counts observations <=
/// `upper_bounds[i]`; the final entry (the +inf bucket) equals `count`.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;        // ascending, finite
  std::vector<std::uint64_t> cumulative;   // size upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0;
};

class MetricsRegistry {
 public:
  /// Creates (or returns the existing handle of) a monotonically-increasing
  /// counter / last-value gauge.  Handles index a dense array; create once,
  /// update per event.
  int counter(const std::string& name);
  int gauge(const std::string& name);
  /// Creates a histogram with the given finite bucket upper bounds
  /// (sorted ascending internally); an overflow (+inf) bucket is implicit.
  /// Histogram handles share the counter/gauge space -- use observe().
  int histogram(const std::string& name, std::vector<double> upper_bounds);

  void add(int handle, double delta = 1.0) { series_[static_cast<std::size_t>(handle)].value += delta; }
  void set(int handle, double value) { series_[static_cast<std::size_t>(handle)].value = value; }
  void observe(int handle, double value);

  /// Current value of a counter/gauge.
  double value(int handle) const { return series_[static_cast<std::size_t>(handle)].value; }

  /// Appends one row (every counter/gauge's current value at `now`) to the
  /// time-series table.
  void sample(Seconds now);

  std::size_t series_count() const { return series_.size(); }
  std::size_t sample_count() const { return times_.size(); }
  const std::vector<Seconds>& sample_times() const { return times_; }
  const std::string& series_name(int handle) const {
    return series_[static_cast<std::size_t>(handle)].name;
  }
  /// 'c' counter, 'g' gauge, 'h' histogram.
  char series_kind(int handle) const { return series_[static_cast<std::size_t>(handle)].kind; }
  /// The sampled curve of a counter/gauge (one entry per sample()).
  const std::vector<double>& samples(int handle) const {
    return series_[static_cast<std::size_t>(handle)].samples;
  }
  /// Handle of the named series, or -1 when absent.
  int find(const std::string& name) const;

  /// Maximum sampled value of a counter/gauge and (optionally) when it was
  /// sampled -- "worst queue-depth instant".  Returns 0 with *at = 0 when
  /// the series was never sampled.
  double max_sample(int handle, Seconds* at = nullptr) const;

  std::vector<HistogramSnapshot> histograms() const;

  /// Time-series table as CSV: header "time,<series...>", one row per
  /// sample, doubles in %.17g (exact round-trip).
  void write_series_csv(std::ostream& os) const;
  /// Same table as JSON: {"columns":[...],"rows":[[t,v...],...]}.
  void write_series_json(std::ostream& os) const;
  /// Histograms as cumulative-count CSV ("histogram,le,count"; le "+inf"
  /// closes each histogram).  parse_histograms_csv inverts this exactly --
  /// the bucket-math round-trip the telemetry tests assert.
  void write_histograms_csv(std::ostream& os) const;

  /// Label-encoding helper: `name{key=value}`.
  static std::string labeled(const std::string& name, const std::string& key,
                             const std::string& value);

 private:
  struct Series {
    std::string name;
    char kind = 'g';
    double value = 0;
    std::vector<double> samples;  // one per sample(); zero-padded pre-creation
    // Histogram state (kind 'h' only).
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> buckets;  // size upper_bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0;
  };

  int create(const std::string& name, char kind);

  std::vector<Series> series_;
  std::vector<Seconds> times_;
};

/// Parses write_histograms_csv output (header required): names, bucket
/// bounds, cumulative counts and totals round-trip exactly (`sum` is not
/// serialized and parses as 0).  Throws std::invalid_argument on malformed
/// rows.
std::vector<HistogramSnapshot> parse_histograms_csv(std::istream& is);

}  // namespace hetis::telemetry
