#include "telemetry/telemetry.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/simulation.h"

namespace hetis::telemetry {

namespace {

/// Same dense-index ceiling as MetricsCollector: ids beyond it are
/// hand-built test fictions, not trace requests.
constexpr workload::RequestId kDenseLimit = 1 << 24;

}  // namespace

Telemetry::Telemetry(TelemetryConfig cfg) : cfg_(cfg) {
  c_arrivals_ = registry_.counter("arrivals_total");
  c_finishes_ = registry_.counter("finishes_total");
  c_tokens_ = registry_.counter("decode_tokens_total");
  c_preemptions_ = registry_.counter("preemptions_total");
  c_migrations_ = registry_.counter("migrations_total");
  g_queue_depth_ = registry_.gauge("queue_depth");
  g_in_flight_ = registry_.gauge("in_flight");
  g_kv_fill_ = registry_.gauge("kv_fill_fraction");
  g_arrival_rate_ = registry_.gauge("arrival_rate");
  g_lp_solves_ = registry_.gauge("lp_solves");
  g_lp_warm_hits_ = registry_.gauge("lp_warm_hits");
  g_costmodel_hits_ = registry_.gauge("costmodel_hits");
  if (cfg_.slo.has_value()) g_slo_ = registry_.gauge("slo_attainment");
  h_ttft_ = registry_.histogram("ttft_seconds", {0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30});
  h_e2e_ = registry_.histogram("e2e_seconds", {1, 2, 5, 10, 30, 60, 120, 300, 600});
  h_tpot_ = registry_.histogram("tpot_seconds", {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1});
}

void Telemetry::attach(sim::Simulation& sim, engine::Engine& engine) {
  if (cfg_.sample_interval <= 0) return;
  auto self = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = self;
  sim::Simulation* simp = &sim;
  engine::Engine* eng = &engine;
  // Self-chaining, weak-owned: each firing re-schedules itself while the
  // run is live; once sampler_ is dropped the scheduled copies are no-ops,
  // so a session can be destroyed with events still queued.
  *self = [this, weak, simp, eng]() {
    if (weak.expired()) return;
    sample(*simp, *eng);
    if (arrivals_ == 0 || in_flight_ > 0 || simp->now() < cfg_.horizon) {
      simp->schedule_in(cfg_.sample_interval, [weak]() {
        if (auto fn = weak.lock()) (*fn)();
      });
    }
  };
  sampler_ = self;
  // First row at t=0 captures the pre-arrival state (and the Controller's
  // initial deployment has already landed by the time events run).
  sim.schedule_in(0, [weak]() {
    if (auto fn = weak.lock()) (*fn)();
  });
}

Telemetry::ReqState* Telemetry::state(workload::RequestId id, bool create) {
  if (id < 0 || id >= kDenseLimit) return nullptr;
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= req_.size()) {
    if (!create) return nullptr;
    req_.resize(slot + 1);
  }
  return &req_[slot];
}

SpanPhase Telemetry::span_phase(ReqState::Phase phase) {
  switch (phase) {
    case ReqState::kQueue:
      return SpanPhase::kQueue;
    case ReqState::kPrefill:
      return SpanPhase::kPrefill;
    case ReqState::kDecode:
      return SpanPhase::kDecode;
    case ReqState::kPreempted:
      return SpanPhase::kPreempted;
    case ReqState::kIdle:
      break;
  }
  return SpanPhase::kQueue;
}

void Telemetry::close_span(ReqState& st, workload::RequestId id, Seconds t) {
  if (st.phase == ReqState::kIdle) return;
  if (st.phase == ReqState::kQueue || st.phase == ReqState::kPreempted) --queued_;
  recorder_.add_span(id, span_phase(st.phase), st.phase_start, t, st.tenant, st.tokens);
  st.phase = ReqState::kIdle;
}

void Telemetry::on_arrival(const workload::Request& r) {
  ReqState* st = state(r.id, /*create=*/true);
  if (st == nullptr) return;
  st->phase = ReqState::kQueue;
  st->phase_start = r.arrival;
  st->arrival = r.arrival;
  st->first_token = -1;
  st->tenant = static_cast<std::int32_t>(r.tenant);
  st->tokens = 0;
  ++queued_;
  ++arrivals_;
  ++in_flight_;
  registry_.add(c_arrivals_);
  registry_.add(tenant_counter(st->tenant));
}

void Telemetry::on_prefill_start(workload::RequestId id, Seconds t) {
  ReqState* st = state(id, /*create=*/false);
  if (st == nullptr) return;
  close_span(*st, id, t);
  st->phase = ReqState::kPrefill;
  st->phase_start = t;
}

void Telemetry::on_prefill_done(workload::RequestId id, Seconds t) {
  ReqState* st = state(id, /*create=*/false);
  if (st == nullptr) return;
  close_span(*st, id, t);
  st->phase = ReqState::kDecode;
  st->phase_start = t;
  if (st->first_token < 0) {
    st->first_token = t;
    registry_.observe(h_ttft_, t - st->arrival);
  }
}

void Telemetry::on_token(workload::RequestId id, Seconds t, std::int64_t generated) {
  (void)t;
  ReqState* st = state(id, /*create=*/false);
  if (st == nullptr) return;
  st->tokens = static_cast<std::int32_t>(generated);
  registry_.add(c_tokens_);
}

void Telemetry::on_finish(workload::RequestId id, Seconds t) {
  ReqState* st = state(id, /*create=*/false);
  if (st == nullptr) return;
  close_span(*st, id, t);
  ++finishes_;
  if (in_flight_ > 0) --in_flight_;
  registry_.add(c_finishes_);
  registry_.observe(h_e2e_, t - st->arrival);
  if (st->tokens > 1 && st->first_token >= 0) {
    registry_.observe(h_tpot_, (t - st->first_token) / static_cast<double>(st->tokens - 1));
  }
  if (cfg_.slo.has_value()) {
    // run_trace's grading conventions: targets <= 0 are vacuously met, TTFT
    // needs a prefill completion, single-token outputs meet TPOT trivially.
    const engine::SloSpec& slo = *cfg_.slo;
    const bool ttft_ok =
        slo.ttft <= 0 || (st->first_token >= 0 && st->first_token - st->arrival <= slo.ttft);
    const bool tpot_ok =
        slo.tpot <= 0 || st->tokens <= 1 || st->first_token < 0 ||
        (t - st->first_token) / static_cast<double>(st->tokens - 1) <= slo.tpot;
    if (ttft_ok && tpot_ok) ++slo_ok_;
  }
}

void Telemetry::on_preempt(workload::RequestId id, Seconds t) {
  ReqState* st = state(id, /*create=*/false);
  if (st == nullptr) return;
  close_span(*st, id, t);
  st->phase = ReqState::kPreempted;
  st->phase_start = t;
  ++queued_;
  ++preemptions_;
  registry_.add(c_preemptions_);
}

void Telemetry::on_migrate(workload::RequestId id, Seconds start, Seconds ready, int src_device,
                           int dst_device) {
  // Nested inside the surrounding decode span; the state machine is not
  // touched (decode continues on the destination once the KV haul lands).
  recorder_.add_span(id, SpanPhase::kMigrate, start, ready,
                     static_cast<std::int32_t>(src_device),
                     static_cast<std::int32_t>(dst_device));
  ++migrations_;
  registry_.add(c_migrations_);
}

void Telemetry::on_usage(const engine::UsageSample& s) {
  auto it = device_tracks_.find(s.device);
  if (it == device_tracks_.end()) {
    const std::string dev = "dev" + std::to_string(s.device);
    const int kv = recorder_.intern_track("kv_fill[" + dev + "]");
    const int heads = recorder_.intern_track("heads[" + dev + "]");
    it = device_tracks_.emplace(s.device, std::make_pair(kv, heads)).first;
  }
  recorder_.add_counter(it->second.first, s.time, s.cache_used_fraction);
  recorder_.add_counter(it->second.second, s.time, s.heads);
}

int Telemetry::tenant_counter(std::int32_t tenant) {
  auto it = tenant_counters_.find(tenant);
  if (it != tenant_counters_.end()) return it->second;
  const int h = registry_.counter(
      MetricsRegistry::labeled("arrivals_total", "tenant", std::to_string(tenant)));
  tenant_counters_.emplace(tenant, h);
  return h;
}

void Telemetry::sample(sim::Simulation& sim, engine::Engine& engine) {
  const Seconds now = sim.now();
  registry_.set(g_queue_depth_, static_cast<double>(queued_));
  registry_.set(g_in_flight_, static_cast<double>(in_flight_));
  registry_.set(g_kv_fill_, engine.kv_fill_fraction());
  registry_.set(g_arrival_rate_, static_cast<double>(arrivals_ - arrivals_at_last_sample_) /
                                     cfg_.sample_interval);
  const engine::PerfCounters pcs = engine.perf_counters();
  registry_.set(g_lp_solves_, static_cast<double>(pcs.lp_solves));
  registry_.set(g_lp_warm_hits_, static_cast<double>(pcs.lp_warm_hits));
  registry_.set(g_costmodel_hits_, static_cast<double>(pcs.costmodel_hits));
  arrivals_at_last_sample_ = arrivals_;
  if (g_slo_ >= 0) {
    registry_.set(g_slo_, finishes_ > 0
                              ? static_cast<double>(slo_ok_) / static_cast<double>(finishes_)
                              : 1.0);
  }
  registry_.sample(now);
}

void Telemetry::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto process_name = [&](int pid, const char* name) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"({"ph":"M","pid":)" << pid
       << R"(,"tid":0,"name":"process_name","args":{"name":")" << name << R"("}})";
  };
  process_name(TraceRecorder::kRequestsPid, "requests");
  process_name(TraceRecorder::kDevicesPid, "devices");
  process_name(TraceRecorder::kControlPid, "control");
  recorder_.write_events(os, first);
  // Registry curves ride the control track so Perfetto shows queue depth /
  // kv fill / slo attainment directly above the audit instants.
  const auto& times = registry_.sample_times();
  for (std::size_t h = 0; h < registry_.series_count(); ++h) {
    const int handle = static_cast<int>(h);
    if (registry_.series_kind(handle) == 'h') continue;
    const std::string name = engine::json_escape(registry_.series_name(handle));
    const std::vector<double>& vals = registry_.samples(handle);
    for (std::size_t row = 0; row < times.size(); ++row) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << R"({"ph":"C","pid":)" << TraceRecorder::kControlPid << R"(,"tid":0,"ts":)"
         << engine::csv_double(times[row] * 1e6) << R"(,"name":")" << name
         << R"(","args":{"value":)"
         << engine::csv_double(row < vals.size() ? vals[row] : 0.0) << "}}";
    }
  }
  audit_.write_trace_events(os, first);
  os << "\n]}\n";
}

std::vector<std::string> Telemetry::artifact_paths(const std::string& trace_path) {
  std::string base = trace_path;
  const auto strip = [&base](const char* suffix) {
    const std::string suf(suffix);
    if (base.size() > suf.size() &&
        base.compare(base.size() - suf.size(), suf.size(), suf) == 0) {
      base.resize(base.size() - suf.size());
      return true;
    }
    return false;
  };
  if (!strip(".trace.json")) strip(".json");
  return {trace_path, base + ".metrics.csv", base + ".audit.json"};
}

void Telemetry::write_artifacts(const std::string& trace_path) const {
  const std::vector<std::string> paths = artifact_paths(trace_path);
  const auto open = [](const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("telemetry: cannot open '" + path + "' for writing");
    return os;
  };
  {
    std::ofstream os = open(paths[0]);
    write_chrome_trace(os);
  }
  {
    std::ofstream os = open(paths[1]);
    registry_.write_series_csv(os);
    os << '\n';
    registry_.write_histograms_csv(os);
  }
  {
    std::ofstream os = open(paths[2]);
    audit_.write_json(os);
  }
}

std::string Telemetry::summary() const {
  std::ostringstream os;
  std::size_t forced = 0, elective = 0;
  for (const AuditRecord& rec : audit_.records()) {
    if (rec.action != "redeploy" && rec.action != "replan_in_place") continue;
    if (rec.forced) {
      ++forced;
    } else {
      ++elective;
    }
  }
  os << "replans: " << audit_.replans() << " (" << forced << " forced, " << elective
     << " elective); audit records: " << audit_.size() << '\n';
  const auto triggers = audit_.trigger_counts();
  os << "triggers:";
  if (triggers.empty()) {
    os << " none";
  } else {
    for (std::size_t i = 0; i < triggers.size(); ++i) {
      os << (i ? ", " : " ") << triggers[i].first << " x" << triggers[i].second;
    }
  }
  os << '\n';
  Seconds worst_at = 0;
  const double worst_queue = registry_.max_sample(g_queue_depth_, &worst_at);
  const double peak_kv = registry_.max_sample(g_kv_fill_);
  os << "worst queue depth: " << static_cast<long long>(worst_queue) << " at t=" << worst_at
     << "s; peak kv fill: " << peak_kv << '\n';
  os << "requests: " << arrivals_ << " arrived, " << finishes_ << " finished, " << preemptions_
     << " preempted, " << migrations_ << " migrated; spans: " << recorder_.span_count() << '\n';
  if (cfg_.slo.has_value() && finishes_ > 0) {
    os << "slo attainment: "
       << static_cast<double>(slo_ok_) / static_cast<double>(finishes_) << " (" << slo_ok_ << "/"
       << finishes_ << " finished within targets)";
  } else {
    os << "slo: no targets set";
  }
  return os.str();
}

}  // namespace hetis::telemetry
