// TraceRecorder: the raw event sink behind per-request span tracing.
//
// Stores per-request lifecycle spans (queue / prefill / decode / preempted /
// migrate intervals on one track per request) and per-device occupancy
// counter curves as POD rows in chunked arenas: a push is a bump into a
// fixed-size chunk, existing rows are never reallocated or copied, and the
// recorder only exists while tracing is on -- the serving hot path pays a
// single null-check when it is off (see MetricsCollector).  Export renders
// Chrome `trace_event` JSON that loads directly in Perfetto or
// chrome://tracing; docs/OBSERVABILITY.md documents the track layout.
//
// The recorder is a dumb sink: the request-lifecycle state machine that
// decides WHICH spans to emit lives in telemetry::Telemetry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "workload/request.h"

namespace hetis::telemetry {

/// Request-lifecycle span kinds, in the order a request moves through them
/// (kMigrate nests inside kDecode: decoding continues on the destination).
enum class SpanPhase : std::uint8_t { kQueue, kPrefill, kDecode, kPreempted, kMigrate };

/// Stable lowercase name ("queue", "prefill", ...), used as the Chrome
/// event name and by the span-nesting tests.
const char* to_string(SpanPhase phase);

/// One closed interval on a request's track.  `arg_a`/`arg_b` carry the
/// tenant index and generated-token count for lifecycle spans, and the
/// source/destination device ids for kMigrate spans.
struct SpanEvent {
  std::int64_t tid = 0;  // request id == Perfetto thread track
  SpanPhase phase = SpanPhase::kQueue;
  std::int32_t arg_a = 0;
  std::int32_t arg_b = 0;
  Seconds t0 = 0;
  Seconds t1 = 0;
};

/// One point of a named counter curve (per-device occupancy tracks).
struct CounterEvent {
  std::int32_t track = 0;  // index into tracks()
  Seconds t = 0;
  double value = 0;
};

/// Append-only chunked storage: push_back never moves existing rows (full
/// chunks are frozen; a new fixed-size chunk is linked instead), so a
/// million-span trace grows without reallocation copies and iteration
/// stays in emission order.
template <typename T>
class EventArena {
 public:
  static constexpr std::size_t kChunk = 4096;

  void push(const T& v) {
    if (chunks_.empty() || chunks_.back().size() == kChunk) {
      chunks_.emplace_back();
      chunks_.back().reserve(kChunk);
    }
    chunks_.back().push_back(v);
  }

  std::size_t size() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * kChunk + chunks_.back().size();
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const auto& chunk : chunks_) {
      for (const T& v : chunk) f(v);
    }
  }

 private:
  std::vector<std::vector<T>> chunks_;
};

class TraceRecorder {
 public:
  /// Records a closed span on request `id`'s track.
  void add_span(workload::RequestId id, SpanPhase phase, Seconds t0, Seconds t1,
                std::int32_t arg_a, std::int32_t arg_b) {
    SpanEvent ev;
    ev.tid = id;
    ev.phase = phase;
    ev.arg_a = arg_a;
    ev.arg_b = arg_b;
    ev.t0 = t0;
    ev.t1 = t1;
    spans_.push(ev);
  }

  /// Returns (creating on first use) the track handle for `name` -- e.g.
  /// "kv_fill[dev3]".  Called once per track, never per event.
  int intern_track(const std::string& name);

  void add_counter(int track, Seconds t, double value) {
    CounterEvent ev;
    ev.track = static_cast<std::int32_t>(track);
    ev.t = t;
    ev.value = value;
    counters_.push(ev);
  }

  std::size_t span_count() const { return spans_.size(); }
  std::size_t counter_count() const { return counters_.size(); }
  const std::vector<std::string>& tracks() const { return tracks_; }

  /// Spans in emission order (the nesting tests replay these).
  template <typename F>
  void each_span(F&& f) const {
    spans_.for_each(std::forward<F>(f));
  }
  template <typename F>
  void each_counter(F&& f) const {
    counters_.for_each(std::forward<F>(f));
  }

  /// Appends this recorder's events to an open Chrome `traceEvents` array:
  /// spans as "X" complete events on pid kRequestsPid (tid = request id),
  /// counters as "C" events on pid kDevicesPid.  `first` tracks comma
  /// placement across writers sharing the array.
  void write_events(std::ostream& os, bool& first) const;

  // Perfetto process ("track group") layout, shared with Telemetry's
  // registry/audit export so every writer agrees on the grouping.
  static constexpr int kRequestsPid = 1;  // one thread track per request
  static constexpr int kDevicesPid = 2;   // per-device occupancy counters
  static constexpr int kControlPid = 3;   // registry curves + audit instants

 private:
  EventArena<SpanEvent> spans_;
  EventArena<CounterEvent> counters_;
  std::vector<std::string> tracks_;
  std::map<std::string, int> track_index_;
};

}  // namespace hetis::telemetry
