#include "telemetry/registry.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "engine/engine.h"  // csv_double / csv_field / split_csv_row / json_escape

namespace hetis::telemetry {

int MetricsRegistry::create(const std::string& name, char kind) {
  const int existing = find(name);
  if (existing >= 0) {
    if (series_[static_cast<std::size_t>(existing)].kind != kind) {
      throw std::invalid_argument("MetricsRegistry: series '" + name +
                                  "' already exists with a different kind");
    }
    return existing;
  }
  Series s;
  s.name = name;
  s.kind = kind;
  // A series born mid-run back-fills zeros so the table stays rectangular
  // (a tenant whose first request arrives at t=30 had zero arrivals before).
  s.samples.assign(times_.size(), 0.0);
  series_.push_back(std::move(s));
  return static_cast<int>(series_.size()) - 1;
}

int MetricsRegistry::counter(const std::string& name) { return create(name, 'c'); }

int MetricsRegistry::gauge(const std::string& name) { return create(name, 'g'); }

int MetricsRegistry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  const int h = create(name, 'h');
  Series& s = series_[static_cast<std::size_t>(h)];
  if (s.buckets.empty()) {
    std::sort(upper_bounds.begin(), upper_bounds.end());
    s.upper_bounds = std::move(upper_bounds);
    s.buckets.assign(s.upper_bounds.size() + 1, 0);
  }
  return h;
}

void MetricsRegistry::observe(int handle, double value) {
  Series& s = series_[static_cast<std::size_t>(handle)];
  const auto it = std::lower_bound(s.upper_bounds.begin(), s.upper_bounds.end(), value);
  ++s.buckets[static_cast<std::size_t>(it - s.upper_bounds.begin())];
  ++s.count;
  s.sum += value;
}

void MetricsRegistry::sample(Seconds now) {
  times_.push_back(now);
  for (Series& s : series_) {
    if (s.kind == 'h') continue;
    s.samples.push_back(s.value);
  }
}

int MetricsRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

double MetricsRegistry::max_sample(int handle, Seconds* at) const {
  const Series& s = series_[static_cast<std::size_t>(handle)];
  double best = 0;
  Seconds best_t = 0;
  bool any = false;
  for (std::size_t i = 0; i < s.samples.size() && i < times_.size(); ++i) {
    if (!any || s.samples[i] > best) {
      best = s.samples[i];
      best_t = times_[i];
      any = true;
    }
  }
  if (at != nullptr) *at = any ? best_t : 0;
  return any ? best : 0;
}

std::vector<HistogramSnapshot> MetricsRegistry::histograms() const {
  std::vector<HistogramSnapshot> out;
  for (const Series& s : series_) {
    if (s.kind != 'h') continue;
    HistogramSnapshot snap;
    snap.name = s.name;
    snap.upper_bounds = s.upper_bounds;
    snap.cumulative.reserve(s.buckets.size());
    std::uint64_t running = 0;
    for (const std::uint64_t b : s.buckets) {
      running += b;
      snap.cumulative.push_back(running);
    }
    snap.count = s.count;
    snap.sum = s.sum;
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::write_series_csv(std::ostream& os) const {
  os << "time";
  for (const Series& s : series_) {
    if (s.kind == 'h') continue;
    os << ',' << engine::csv_field(s.name);
  }
  os << '\n';
  for (std::size_t row = 0; row < times_.size(); ++row) {
    os << engine::csv_double(times_[row]);
    for (const Series& s : series_) {
      if (s.kind == 'h') continue;
      os << ',' << engine::csv_double(row < s.samples.size() ? s.samples[row] : 0.0);
    }
    os << '\n';
  }
}

void MetricsRegistry::write_series_json(std::ostream& os) const {
  os << "{\"columns\":[\"time\"";
  for (const Series& s : series_) {
    if (s.kind == 'h') continue;
    os << ",\"" << engine::json_escape(s.name) << "\"";
  }
  os << "],\"rows\":[";
  for (std::size_t row = 0; row < times_.size(); ++row) {
    os << (row ? ",\n " : "\n ") << '[' << engine::csv_double(times_[row]);
    for (const Series& s : series_) {
      if (s.kind == 'h') continue;
      os << ',' << engine::csv_double(row < s.samples.size() ? s.samples[row] : 0.0);
    }
    os << ']';
  }
  os << "\n]}\n";
}

void MetricsRegistry::write_histograms_csv(std::ostream& os) const {
  os << "histogram,le,count\n";
  for (const HistogramSnapshot& snap : histograms()) {
    for (std::size_t i = 0; i < snap.upper_bounds.size(); ++i) {
      os << engine::csv_field(snap.name) << ',' << engine::csv_double(snap.upper_bounds[i])
         << ',' << snap.cumulative[i] << '\n';
    }
    os << engine::csv_field(snap.name) << ",+inf," << snap.count << '\n';
  }
}

std::string MetricsRegistry::labeled(const std::string& name, const std::string& key,
                                     const std::string& value) {
  return name + "{" + key + "=" + value + "}";
}

std::vector<HistogramSnapshot> parse_histograms_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "histogram,le,count") {
    throw std::invalid_argument("parse_histograms_csv: missing 'histogram,le,count' header");
  }
  std::vector<HistogramSnapshot> out;
  while (std::getline(is, line)) {
    if (line.empty()) break;  // blank line ends the histogram block
    const std::vector<std::string> cells = engine::split_csv_row(line);
    if (cells.size() != 3) {
      throw std::invalid_argument("parse_histograms_csv: expected 3 cells, got row '" + line +
                                  "'");
    }
    // A snapshot is closed once its +inf row landed (cumulative outgrows the
    // finite bounds by one); the next row then starts a new histogram.
    if (out.empty() || out.back().name != cells[0] ||
        out.back().cumulative.size() > out.back().upper_bounds.size()) {
      out.emplace_back();
      out.back().name = cells[0];
    }
    HistogramSnapshot& snap = out.back();
    const std::uint64_t count = std::stoull(cells[2]);
    if (cells[1] == "+inf") {
      snap.count = count;
      snap.cumulative.push_back(count);
    } else {
      snap.upper_bounds.push_back(std::stod(cells[1]));
      snap.cumulative.push_back(count);
    }
  }
  for (const HistogramSnapshot& snap : out) {
    if (snap.cumulative.size() != snap.upper_bounds.size() + 1) {
      throw std::invalid_argument("parse_histograms_csv: histogram '" + snap.name +
                                  "' has no +inf bucket");
    }
  }
  return out;
}

}  // namespace hetis::telemetry
