// Telemetry: one observability session for one run.
//
// Owns the three tentpole pieces and feeds them from the engine's lifecycle
// stream:
//
//   * TraceRecorder   -- per-request spans + per-device occupancy tracks,
//                        exported as Chrome trace_event JSON (Perfetto);
//   * MetricsRegistry -- counters / gauges / histograms with per-tenant and
//                        per-device labels, sampled on a sim-time interval
//                        into a plottable time-series table;
//   * AuditTrail      -- the Controller's decision records (it discovers
//                        the trail through MetricsCollector::telemetry()).
//
// Wiring: set RunOptions::telemetry (or ExperimentSpec::trace_dir for
// sweeps, or `--trace` on elastic_serving / bench_elastic).  run_trace
// installs the session on the engine's MetricsCollector -- a second sink
// NEXT TO the observer chain, so the Controller still chains in front of
// RunOptions::observer exactly as before -- and calls attach(), which
// schedules a self-chaining sampler event.  The sampler only reads state,
// so serving results (and sweep rows) are byte-identical with telemetry on
// or off; with it off the hot path pays one null-check per event.
//
// The per-request state machine turns the event stream into spans:
//
//   arrival -> queue | prefill_start -> prefill | prefill_done -> decode
//   ... preempt -> preempted | prefill_start -> prefill (re-prefill) ...
//   finish closes the open span; migrate spans nest inside decode.
//
// Spans still open when the run is cut off (drain timeout) are not
// emitted -- a truncated trace shows exactly what completed.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "telemetry/audit.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace hetis::sim {
class Simulation;
}

namespace hetis::telemetry {

struct TelemetryConfig {
  /// Registry sampling period (sim seconds); <= 0 disables the sampler
  /// (spans and the audit trail still record).
  Seconds sample_interval = 0.5;
  /// Keep sampling at least through this sim time even when the engine is
  /// idle (so curves cover churn windows with nothing in flight); the
  /// sampler also runs until every arrival finished.
  Seconds horizon = 0;
  /// When set, finished requests are graded (run_trace's meets-SLO
  /// conventions) into the slo_attainment series.
  std::optional<engine::SloSpec> slo;
};

class Telemetry final : public engine::RunObserver {
 public:
  explicit Telemetry(TelemetryConfig cfg = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TraceRecorder& recorder() { return recorder_; }
  const TraceRecorder& recorder() const { return recorder_; }
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  AuditTrail& audit() { return audit_; }
  const AuditTrail& audit() const { return audit_; }

  /// Schedules the registry sampler on `sim` (self-chaining, weak-owned:
  /// events outliving the session are no-ops).  run_trace calls this after
  /// Engine::start; the session must outlive the run.
  void attach(sim::Simulation& sim, engine::Engine& engine);

  // Lifecycle stream, fed by MetricsCollector (not the observer chain).
  void on_arrival(const workload::Request& r) override;
  void on_prefill_start(workload::RequestId id, Seconds t) override;
  void on_prefill_done(workload::RequestId id, Seconds t) override;
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) override;
  void on_finish(workload::RequestId id, Seconds t) override;
  void on_preempt(workload::RequestId id, Seconds t) override;
  void on_migrate(workload::RequestId id, Seconds start, Seconds ready, int src_device,
                  int dst_device) override;
  void on_usage(const engine::UsageSample& s) override;

  // --- Post-run export ---

  /// The full Chrome trace_event document: metadata, request spans, device
  /// occupancy counters, registry curves, audit instants.
  void write_chrome_trace(std::ostream& os) const;
  /// Writes the trace to `trace_path` plus the sibling artifacts
  /// `<base>.metrics.csv` (time-series table + histogram block) and
  /// `<base>.audit.json`, where base strips a ".trace.json" or ".json"
  /// suffix from `trace_path`.  Throws std::runtime_error when a file
  /// cannot be opened.
  void write_artifacts(const std::string& trace_path) const;
  /// [trace, metrics, audit] paths write_artifacts would produce.
  static std::vector<std::string> artifact_paths(const std::string& trace_path);

  /// The 5-line post-run digest elastic_serving --trace prints: replan
  /// count, triggers, worst queue-depth instant, request/span totals, SLO.
  std::string summary() const;

  std::size_t arrivals() const { return arrivals_; }
  std::size_t finishes() const { return finishes_; }
  std::size_t migrations() const { return migrations_; }
  std::size_t preemptions() const { return preemptions_; }

 private:
  struct ReqState {
    enum Phase : std::uint8_t { kIdle, kQueue, kPrefill, kDecode, kPreempted };
    Phase phase = kIdle;
    Seconds phase_start = 0;
    Seconds arrival = 0;
    Seconds first_token = -1;
    std::int32_t tenant = 0;
    std::int32_t tokens = 0;
  };

  /// Dense id -> state slot (creating on demand); nullptr for ids outside
  /// the dense range (hand-built tests with wild ids are simply untraced).
  ReqState* state(workload::RequestId id, bool create);
  /// Emits the open span (if any) as [phase_start, t] and leaves the
  /// request in kIdle.
  void close_span(ReqState& st, workload::RequestId id, Seconds t);
  static SpanPhase span_phase(ReqState::Phase phase);
  void sample(sim::Simulation& sim, engine::Engine& engine);
  int tenant_counter(std::int32_t tenant);

  TelemetryConfig cfg_;
  TraceRecorder recorder_;
  MetricsRegistry registry_;
  AuditTrail audit_;

  std::vector<ReqState> req_;
  std::size_t arrivals_ = 0;
  std::size_t finishes_ = 0;
  std::size_t queued_ = 0;  // requests in kQueue or kPreempted (admission +
                            // re-prefill backlog, the controller's view)
  std::size_t in_flight_ = 0;
  std::size_t migrations_ = 0;
  std::size_t preemptions_ = 0;
  std::size_t slo_ok_ = 0;
  std::size_t arrivals_at_last_sample_ = 0;

  // Registry handles (created in the constructor; per-tenant counters and
  // per-device tracks intern lazily).
  int c_arrivals_ = -1;
  int c_finishes_ = -1;
  int c_tokens_ = -1;
  int c_preemptions_ = -1;
  int c_migrations_ = -1;
  int g_queue_depth_ = -1;
  int g_in_flight_ = -1;
  int g_kv_fill_ = -1;
  int g_arrival_rate_ = -1;
  int g_lp_solves_ = -1;
  int g_lp_warm_hits_ = -1;
  int g_costmodel_hits_ = -1;
  int g_slo_ = -1;
  int h_ttft_ = -1;
  int h_e2e_ = -1;
  int h_tpot_ = -1;
  std::map<std::int32_t, int> tenant_counters_;
  std::map<int, std::pair<int, int>> device_tracks_;  // dev -> (kv, heads)

  // Owner of the self-chaining sampler event (the scheduled copies hold
  // weak_ptrs, so nothing keeps the session alive past its owner).
  std::shared_ptr<std::function<void()>> sampler_;
};

}  // namespace hetis::telemetry
