// Declarative experiment harness (paper §7-style sweeps).
//
// An ExperimentSpec names WHAT to run -- engines x models x (dataset,
// rate) points on a cluster preset -- and run_sweep executes the cross
// product through the engine registry, emitting one aligned SweepRow per
// (engine, model, workload point).  The same trace is served to every
// engine at a given point, matching the paper's methodology.
//
//   harness::ExperimentSpec spec;
//   spec.name = "fig8";
//   spec.models = {"Llama-13B"};
//   spec.add_rates(workload::Dataset::kShareGPT, {3, 6, 9, 12, 15});
//   auto rows = harness::run_sweep(spec);
//   harness::write_csv(std::cout, rows);
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/options.h"
#include "workload/datasets.h"

namespace hetis::harness {

/// One (dataset, rate) workload point of a sweep.
struct WorkloadPoint {
  workload::Dataset dataset = workload::Dataset::kShareGPT;
  double rate = 1.0;  // req/s over the spec's horizon
};

struct ExperimentSpec {
  std::string name = "experiment";

  // What to run.
  std::vector<std::string> engines{"splitwise", "hexgen", "hetis"};  // registry names
  std::vector<std::string> models{"Llama-13B"};                      // model::model_by_name
  std::vector<WorkloadPoint> workloads;

  // Where and how.
  std::string cluster = "paper";  // harness::cluster_by_name preset
  Seconds horizon = 40.0;         // arrival window per point
  std::uint64_t seed = 20251116;
  engine::RunOptions run;         // drain timeout, warmup, SLO, observer

  /// Per-engine configuration, keyed by registry name (matched
  /// case-insensitively, like the registry itself); engines without an
  /// entry get defaults.
  std::map<std::string, engine::EngineOptions> engine_options;

  /// Appends one WorkloadPoint per rate for `dataset`.
  void add_rates(workload::Dataset dataset, const std::vector<double>& rates);
};

/// One executed (engine, model, workload point) cell.
struct SweepRow {
  std::string experiment;
  std::string cluster;
  std::string model;
  workload::Dataset dataset = workload::Dataset::kShareGPT;
  double rate = 0;
  std::size_t trace_requests = 0;  // size of the generated trace
  engine::RunReport report;
};

/// Called after each cell completes -- live progress for long sweeps.
using RowCallback = std::function<void(const SweepRow&)>;

/// Executes the spec's cross product.  Row order: models outer, workload
/// points middle, engines inner (so one (model, point) group holds every
/// engine on the identical trace, adjacent in the output).
std::vector<SweepRow> run_sweep(const ExperimentSpec& spec, const RowCallback& on_row = nullptr);

/// Aligned serialization, sharing RunReport's stable column order.
std::string sweep_csv_header();
std::string to_csv_row(const SweepRow& row);
void write_csv(std::ostream& os, const std::vector<SweepRow>& rows);
void write_json(std::ostream& os, const std::vector<SweepRow>& rows);

}  // namespace hetis::harness
