// Declarative experiment harness (paper §7-style sweeps).
//
// An ExperimentSpec names WHAT to run -- engines x models x workload points
// (fixed (dataset, rate) traces or scenario generators) on a cluster preset
// -- and run_sweep executes the cross product through the engine registry,
// emitting one aligned SweepRow per (engine, model, workload point).  The
// same trace is served to every engine at a given point, matching the
// paper's methodology.
//
//   harness::ExperimentSpec spec;
//   spec.name = "fig8";
//   spec.models = {"Llama-13B"};
//   spec.add_rates(workload::Dataset::kShareGPT, {3, 6, 9, 12, 15});
//   spec.add_scenario(workload::scenario_preset(workload::Scenario::kBursty,
//                                               4.0, spec.horizon, spec.seed));
//   spec.jobs = 8;  // parallel execution; rows stay byte-identical to serial
//   auto rows = harness::run_sweep(spec);
//   harness::write_csv(std::cout, rows);
//
// Parallelism is deterministic by construction: every cell builds its trace
// from (spec, point) alone, owns a private engine + simulation, and writes
// a pre-assigned row slot, so `jobs` changes wall-clock only -- the
// returned rows (and their CSV/JSON serialization) are byte-identical for
// any thread count.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/controller.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "engine/options.h"
#include "workload/datasets.h"
#include "workload/scenarios.h"

namespace hetis::harness {

/// One workload point of a sweep: a fixed (dataset, rate) Poisson trace, a
/// scenario generator (when `scenario` is set; dataset and rate then mirror
/// the scenario's base values for the CSV columns), or a recorded trace
/// replayed from `trace_file` (workload::load_trace; the scenario column
/// reads "trace").
struct WorkloadPoint {
  WorkloadPoint() = default;
  WorkloadPoint(workload::Dataset d, double r) : dataset(d), rate(r) {}
  explicit WorkloadPoint(workload::ScenarioSpec s)
      : dataset(s.dataset), rate(s.rate), scenario(std::move(s)) {}

  workload::Dataset dataset = workload::Dataset::kShareGPT;
  double rate = 1.0;  // req/s over the spec's horizon
  std::optional<workload::ScenarioSpec> scenario;
  std::string trace_file;  // non-empty: replay this recorded trace instead
};

struct ExperimentSpec {
  std::string name = "experiment";

  // What to run.
  std::vector<std::string> engines{"splitwise", "hexgen", "hetis"};  // registry names
  std::vector<std::string> models{"Llama-13B"};                      // model::model_by_name
  std::vector<WorkloadPoint> workloads;

  // Where and how.
  std::string cluster = "paper";  // harness::cluster_by_name preset
  Seconds horizon = 40.0;         // arrival window per point
  std::uint64_t seed = 20251116;
  engine::RunOptions run;         // drain timeout, warmup, SLO, observer

  /// Worker threads for the sweep: 1 runs strictly serially (default),
  /// 0 uses hardware concurrency, n > 1 uses that many.  Rows are
  /// byte-identical across every value; only wall-clock changes.
  /// RunOptions::observer requires jobs == 1 (a shared lifecycle stream
  /// would interleave events of unrelated cells).
  int jobs = 1;

  /// Plan objectives to sweep (innermost cell dimension; see
  /// parallel/objective.h).  The default single "" entry keeps each
  /// engine's configured objective -- and the historical cell count and
  /// row bytes.  A named entry ("throughput" | "latency" |
  /// "goodput_per_device") overrides HetisConfig::search.objective for
  /// that cell (the spec's RunOptions SLO rides along as the objective's
  /// targets); engines that do not plan through the Parallelizer serve
  /// identically and merely record the objective column.
  std::vector<std::string> objectives{""};

  /// Placement tier for every cell (planner::make name: "exhaustive" |
  /// "flow" | "auto").  The default "" keeps each engine's configured
  /// planner (ParallelizerOptions defaults to "auto") -- and the
  /// historical row bytes, since no CSV column is added.  A scalar rather
  /// than a sweep dimension: planners produce plans, not serving
  /// behaviours, so comparing them is bench_search_overhead's job.
  std::string planner;

  /// Per-engine configuration, keyed by registry name (matched
  /// case-insensitively, like the registry itself); engines without an
  /// entry get defaults.
  std::map<std::string, engine::EngineOptions> engine_options;

  /// Elastic control plane: when set, every cell runs under its own
  /// control::Controller built from this spec (churn script, scale policy,
  /// tick), so controlled sweeps parallelize like any other -- rows stay
  /// byte-identical for every `jobs` value.  Engines in the spec must
  /// implement engine::Reconfigurable when the spec can demand re-deploys.
  std::optional<control::ControlSpec> control;

  /// Per-cell observer factory: called once per (engine, model, point)
  /// cell; the returned observer lives for exactly that cell's run.  This
  /// composes with `jobs != 1` (each cell owns a private stream), unlike
  /// the shared RunOptions::observer.  With a control plane attached the
  /// Controller chains in front and forwards every event here.
  struct CellContext {
    std::string engine;  // registry name (spec spelling)
    std::string model;
    std::size_t point = 0;  // index into `workloads`
    const WorkloadPoint* workload = nullptr;
  };
  using ObserverFactory =
      std::function<std::unique_ptr<engine::RunObserver>(const CellContext&)>;
  ObserverFactory observer_factory;

  /// Telemetry: when non-empty, every cell runs with its OWN telemetry
  /// session (so traced sweeps parallelize like observer_factory cells) and
  /// writes its artifacts into this directory (created if missing) as
  /// `<stem>.trace.json` / `<stem>.metrics.csv` / `<stem>.audit.json`,
  /// where the stem encodes (experiment, engine, model, point, objective,
  /// and -- when controlled -- churn + policy), so no two cells of one
  /// sweep collide.  Hetis cells additionally get per-device usage
  /// sampling switched on (when the spec left it off), so traces carry the
  /// occupancy tracks; UsageSamples never feed RunReports, keeping every
  /// row byte-identical to the untraced sweep.  Mutually exclusive with
  /// RunOptions::telemetry (which is one SHARED session: jobs == 1 only).
  std::string trace_dir;
  /// Registry sampling period of trace_dir sessions (sim seconds).
  Seconds telemetry_interval = 0.5;

  /// Appends one WorkloadPoint per rate for `dataset`.
  void add_rates(workload::Dataset dataset, const std::vector<double>& rates);

  /// Appends one scenario workload point.  The scenario inherits the
  /// spec's seed and horizon (one top-level seed reproduces the whole
  /// experiment); push a WorkloadPoint directly to keep per-scenario
  /// values.
  void add_scenario(workload::ScenarioSpec scenario);

  /// Appends a recorded-trace workload point replaying `path` (see
  /// workload::save_trace / load_trace).  `rate` only labels the CSV row.
  void add_trace_file(const std::string& path, double rate = 0.0);

  /// Installs the control plane.  The churn script inherits the spec's
  /// seed and horizon and the controller keeps ticking through the drain
  /// window (horizon + drain_grace), mirroring add_scenario's stamping.
  void set_control(control::ControlSpec control_spec, Seconds drain_grace = 30.0);
};

/// Per-tenant slice of one executed cell (multi-tenant scenarios only).
/// Attainment follows engine::run_trace's convention: the denominator is
/// every post-warmup arrival of the tenant, targets <= 0 are vacuously met,
/// and goodput divides SLO-attaining requests by the tenant's measured span.
struct TenantSummary {
  std::string tenant;
  std::size_t arrived = 0;   // post-warmup arrivals
  std::size_t finished = 0;  // of those, finished
  double ttft_p95 = 0;
  double tpot_p95 = 0;
  double slo_attainment = 0;
  double goodput = 0;  // SLO-attaining req/s over the tenant's span
};

/// Computes the per-tenant breakdown of a finished run from the engine's
/// request records (records carry the tenant index the workload generator
/// assigned).  Empty for non-multi-tenant scenarios.
std::vector<TenantSummary> tenant_summaries(const engine::MetricsCollector& metrics,
                                            const workload::ScenarioSpec& scenario,
                                            Seconds warmup);

/// One executed (engine, model, workload point) cell.
struct SweepRow {
  std::string experiment;
  std::string cluster;
  std::string model;
  workload::Dataset dataset = workload::Dataset::kShareGPT;
  std::string scenario = "poisson";  // generator name ("poisson" for fixed
                                     // points, "trace" for replayed files)
  double rate = 0;
  std::size_t trace_requests = 0;  // size of the generated trace
  engine::RunReport report;
  /// Per-tenant breakdown; non-empty only for multi-tenant scenario points.
  /// Serialized by write_json; the flat CSV carries the aggregate row only.
  std::vector<TenantSummary> tenants;
  // Control-plane columns (appended to the CSV; "none"/0 without a
  // ControlSpec).  `reconfigurations` comes from the engine's own
  // ReconfigStats so the row reflects applied re-deploys, not decisions.
  std::string control = "none";  // churn script name
  std::string policy = "none";   // scale policy name
  int reconfigurations = 0;
  int migrated_requests = 0;
  int restarted_requests = 0;
  // Objective block (appended columns).  `objective` echoes the sweep's
  // requested plan objective ("default" when the spec left the engine's
  // own).  `device_seconds` integrates the assigned device count over the
  // run's makespan (controlled runs follow every re-deploy; uncontrolled
  // runs charge the engine's active device set, or the whole cluster for
  // engines that do not report one).  `device_seconds_per_slo_request` is
  // the cost-efficiency headline ROADMAP asked for -- device-seconds per
  // SLO-attaining post-warmup request (0 when no SLO was set or nothing
  // attained it).
  std::string objective = "default";
  double device_seconds = 0;
  double device_seconds_per_slo_request = 0;
};

/// Called after each cell completes -- live progress for long sweeps.
/// Under jobs != 1 invocations are serialized (one at a time) but arrive in
/// completion order, not row order; the returned rows are always in
/// deterministic row order regardless.
using RowCallback = std::function<void(const SweepRow&)>;

/// Executes the spec's cross product, on `spec.jobs` threads.  Row order:
/// models outer, workload points middle, engines inner (so one (model,
/// point) group holds every engine on the identical trace, adjacent in the
/// output).  When a cell throws, the exception of the earliest row is
/// rethrown after in-flight cells finish.
std::vector<SweepRow> run_sweep(const ExperimentSpec& spec, const RowCallback& on_row = nullptr);

/// Aligned serialization, sharing RunReport's stable column order.
std::string sweep_csv_header();
std::string to_csv_row(const SweepRow& row);
/// Inverse of to_csv_row for every scalar column (the per-tenant breakdown
/// only exists in the JSON form).  Doubles written via %.17g -- the whole
/// RunReport block and the objective/cost columns -- round-trip exactly;
/// `rate` keeps its historical short form (an input echo, typically a
/// round number), so a pathological rate like 1.23456789 re-serializes at
/// 6 significant digits.  Throws std::invalid_argument on a malformed row.
/// Used by the round-trip tests and by scripts re-loading sweep CSVs.
SweepRow sweep_row_from_csv(const std::string& row);
void write_csv(std::ostream& os, const std::vector<SweepRow>& rows);
void write_json(std::ostream& os, const std::vector<SweepRow>& rows);

}  // namespace hetis::harness
