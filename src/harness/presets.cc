#include "harness/presets.h"

#include <sstream>
#include <stdexcept>

namespace hetis::harness {

hw::Cluster cluster_by_name(const std::string& name) {
  if (name == "paper") return hw::Cluster::paper_cluster();
  if (name == "ablation") return hw::Cluster::ablation_cluster();
  std::ostringstream oss;
  oss << "cluster_by_name: unknown cluster preset '" << name << "'; known presets:";
  for (const auto& known : cluster_preset_names()) oss << " '" << known << "'";
  throw std::invalid_argument(oss.str());
}

std::vector<std::string> cluster_preset_names() { return {"ablation", "paper"}; }

}  // namespace hetis::harness
