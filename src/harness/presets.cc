#include "harness/presets.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hetis::harness {

namespace {

// Interconnect tiers for the datacenter presets.  NVLink hosts carry the
// flagships; PCIe 4.0 is the cluster default; the T4 inference boxes sit on
// PCIe 3.0.  Numbers are per-direction effective bandwidths.
constexpr hw::Link kNvLink{micros(2), 150e9};
constexpr hw::Link kPcie3{micros(8), 8e9};

// Datacenter slice: `h100 + a100 + v100 (+ t4)` GPUs, 8 per host.  H100
// hosts get NVLink, T4 hosts get PCIe 3.0, everything else stays on the
// PCIe 4.0 default.  Counts share a large gcd so data-parallel grouping
// has room to split.
constexpr int kGpusPerHost = 8;

hw::Cluster dc_cluster(int h100, int a100, int v100, int t4) {
  hw::Cluster c;
  c.set_intra_host_link(hw::Link{micros(5), 16e9});   // PCIe 4.0
  c.set_inter_host_link(hw::Link{micros(20), 25e9});  // 200 Gbps fabric
  auto add = [&c](const char* tag, hw::GpuType t, int count,
                  const hw::Link* intra) {
    int host_idx = 0;
    for (int left = count; left > 0; left -= kGpusPerHost) {
      std::ostringstream name;
      name << "host-" << tag << "-" << host_idx++;
      int host = c.add_host(name.str(), t, std::min(kGpusPerHost, left));
      if (intra) c.set_host_intra_link(host, *intra);
    }
  };
  add("h100", hw::GpuType::kH100_80G, h100, &kNvLink);
  add("a100", hw::GpuType::kA100_80G, a100, nullptr);
  add("v100", hw::GpuType::kV100_32G, v100, nullptr);
  if (t4 > 0) add("t4", hw::GpuType::kT4, t4, &kPcie3);
  return c;
}

}  // namespace

hw::Cluster cluster_by_name(const std::string& name) {
  if (name == "paper") return hw::Cluster::paper_cluster();
  if (name == "ablation") return hw::Cluster::ablation_cluster();
  if (name == "budget") {
    // Mid/low-end mix without a flagship tier: heterogeneity the planner
    // must price, not just prune (every V100 lost to pruning is a quarter
    // of the compute).
    hw::Cluster c;
    c.add_host("host-v100", hw::GpuType::kV100_32G, 4);
    c.add_host("host-t4", hw::GpuType::kT4, 4);
    return c;
  }
  if (name == "dc64") return dc_cluster(16, 32, 16, 0);
  if (name == "dc128") return dc_cluster(32, 48, 32, 16);
  if (name == "dc256") return dc_cluster(64, 96, 64, 32);
  std::ostringstream oss;
  oss << "cluster_by_name: unknown cluster preset '" << name << "'; known presets:";
  for (const auto& known : cluster_preset_names()) oss << " '" << known << "'";
  throw std::invalid_argument(oss.str());
}

std::vector<std::string> cluster_preset_names() {
  return {"ablation", "budget", "dc128", "dc256", "dc64", "paper"};
}

}  // namespace hetis::harness
