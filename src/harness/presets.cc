#include "harness/presets.h"

#include <sstream>
#include <stdexcept>

namespace hetis::harness {

hw::Cluster cluster_by_name(const std::string& name) {
  if (name == "paper") return hw::Cluster::paper_cluster();
  if (name == "ablation") return hw::Cluster::ablation_cluster();
  if (name == "budget") {
    // Mid/low-end mix without a flagship tier: heterogeneity the planner
    // must price, not just prune (every V100 lost to pruning is a quarter
    // of the compute).
    hw::Cluster c;
    c.add_host("host-v100", hw::GpuType::kV100_32G, 4);
    c.add_host("host-t4", hw::GpuType::kT4, 4);
    return c;
  }
  std::ostringstream oss;
  oss << "cluster_by_name: unknown cluster preset '" << name << "'; known presets:";
  for (const auto& known : cluster_preset_names()) oss << " '" << known << "'";
  throw std::invalid_argument(oss.str());
}

std::vector<std::string> cluster_preset_names() { return {"ablation", "budget", "paper"}; }

}  // namespace hetis::harness
