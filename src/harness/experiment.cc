#include "harness/experiment.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "planner/planner.h"
#include "telemetry/telemetry.h"
#include "workload/trace.h"

namespace hetis::harness {

namespace {

using engine::csv_double;
using engine::csv_field;  // caller-supplied strings land in rows unquoted

/// Finished post-warmup requests meeting BOTH SLO targets -- run_trace's
/// own engine::meets_slo predicate, so the denominator of the
/// device_seconds_per_slo_request cost column can never drift from the
/// reported slo_attainment.
std::size_t slo_attained_count(const engine::MetricsCollector& metrics,
                               const engine::SloSpec& slo, Seconds warmup) {
  std::size_t n = 0;
  for (const engine::RequestRecord& rec : metrics.records()) {
    if (rec.arrival >= warmup && rec.finished() && engine::meets_slo(rec, slo)) ++n;
  }
  return n;
}

/// Absolute sim time of the run's last observed request event -- the end
/// of the device-occupancy window.  (RunReport::makespan is a DURATION
/// from the first arrival and would mis-slice the controller's
/// absolute-time re-deploy history.)
Seconds run_end_time(const engine::MetricsCollector& metrics) {
  Seconds end = 0;
  for (const engine::RequestRecord& rec : metrics.records()) {
    end = std::max(end, rec.arrival);
    if (rec.first_token >= 0) end = std::max(end, rec.first_token);
    if (rec.finished()) end = std::max(end, rec.finish);
  }
  return end;
}

/// Builds the trace of one workload point; a pure function of (spec, point)
/// so every execution order -- and thread count -- yields identical bytes
/// (a trace_file is read once here, before any cell runs).
std::vector<workload::Request> build_point_trace(const ExperimentSpec& spec,
                                                 const WorkloadPoint& point) {
  if (!point.trace_file.empty()) return workload::load_trace(point.trace_file);
  if (point.scenario) return workload::generate_scenario(*point.scenario);
  workload::TraceOptions topts;
  topts.dataset = point.dataset;
  topts.rate = point.rate;
  topts.horizon = spec.horizon;
  topts.seed = spec.seed;
  return workload::build_trace(topts);
}

std::string point_label(const WorkloadPoint& point) {
  if (!point.trace_file.empty()) return "trace";
  return point.scenario ? workload::to_string(point.scenario->kind) : "poisson";
}

/// Tenant priorities of a multi-tenant scenario point (empty when the mix
/// is all best-effort, keeping strict FCFS and the historical bytes).
std::vector<int> point_priorities(const WorkloadPoint& point) {
  if (!point.scenario) return {};
  std::vector<int> prios;
  bool any = false;
  for (const workload::TenantSpec& t : workload::effective_tenants(*point.scenario)) {
    prios.push_back(t.priority);
    any = any || t.priority != 0;
  }
  return any ? prios : std::vector<int>();
}

/// Trace artifacts are named after cell coordinates; model names may hold
/// characters hostile to filenames -- map anything outside [A-Za-z0-9._-]
/// to '-'.
std::string sanitize_stem(std::string stem) {
  for (char& c : stem) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' || c == '-')) {
      c = '-';
    }
  }
  return stem;
}

engine::EngineOptions options_for(const ExperimentSpec& spec, const std::string& engine_name) {
  // Engine names are case-insensitive in the registry; match the options
  // map the same way so a "Hetis"/"hetis" mismatch cannot silently drop the
  // configured options.
  for (const auto& [key, value] : spec.engine_options) {
    if (engine::ascii_lower(key) == engine::ascii_lower(engine_name)) return value;
  }
  return engine::EngineOptions();
}

}  // namespace

void ExperimentSpec::add_rates(workload::Dataset dataset, const std::vector<double>& rates) {
  for (double rate : rates) workloads.push_back(WorkloadPoint(dataset, rate));
}

void ExperimentSpec::add_scenario(workload::ScenarioSpec scenario) {
  scenario.seed = seed;
  scenario.horizon = horizon;
  workloads.push_back(WorkloadPoint(std::move(scenario)));
}

void ExperimentSpec::add_trace_file(const std::string& path, double rate) {
  WorkloadPoint point;
  point.trace_file = path;
  point.rate = rate;
  workloads.push_back(std::move(point));
}

void ExperimentSpec::set_control(control::ControlSpec control_spec, Seconds drain_grace) {
  control_spec.churn.seed = seed;
  control_spec.churn.horizon = horizon;
  control_spec.horizon = horizon + drain_grace;
  control = std::move(control_spec);
}

std::vector<TenantSummary> tenant_summaries(const engine::MetricsCollector& metrics,
                                            const workload::ScenarioSpec& scenario,
                                            Seconds warmup) {
  const std::vector<workload::TenantSpec> tenants = workload::effective_tenants(scenario);
  if (tenants.empty()) return {};
  std::vector<TenantSummary> out(tenants.size());
  std::vector<Summary> ttft(tenants.size()), tpot(tenants.size());
  std::vector<std::size_t> slo_ok(tenants.size(), 0);
  std::vector<Seconds> first(tenants.size(), 0), last(tenants.size(), 0);
  std::vector<bool> any(tenants.size(), false);
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) out[ti].tenant = tenants[ti].name;

  for (const engine::RequestRecord& rec : metrics.records()) {
    if (rec.tenant < 0 || static_cast<std::size_t>(rec.tenant) >= tenants.size()) continue;
    if (rec.arrival < warmup) continue;
    const std::size_t ti = static_cast<std::size_t>(rec.tenant);
    const workload::TenantSpec& t = tenants[ti];
    ++out[ti].arrived;
    if (rec.first_token >= 0) ttft[ti].add(rec.ttft());
    if (!rec.finished()) continue;
    ++out[ti].finished;
    if (rec.output_len > 1) tpot[ti].add(rec.tpot());
    if (!any[ti] || rec.arrival < first[ti]) first[ti] = rec.arrival;
    if (!any[ti] || rec.finish > last[ti]) last[ti] = rec.finish;
    any[ti] = true;
    if (engine::meets_slo(rec, engine::SloSpec{t.ttft_slo, t.tpot_slo})) ++slo_ok[ti];
  }
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    out[ti].ttft_p95 = ttft[ti].p95();
    out[ti].tpot_p95 = tpot[ti].p95();
    out[ti].slo_attainment =
        static_cast<double>(slo_ok[ti]) / std::max<std::size_t>(1, out[ti].arrived);
    out[ti].goodput = any[ti] ? static_cast<double>(slo_ok[ti]) /
                                    std::max(1e-9, last[ti] - first[ti])
                              : 0.0;
  }
  return out;
}

std::vector<SweepRow> run_sweep(const ExperimentSpec& spec, const RowCallback& on_row) {
  if (spec.jobs < 0) throw std::invalid_argument("run_sweep: jobs must be >= 0");
  if (spec.run.observer != nullptr && spec.jobs != 1) {
    throw std::invalid_argument(
        "run_sweep: RunOptions::observer requires jobs == 1 -- a shared lifecycle stream "
        "would interleave events of unrelated cells; use ExperimentSpec::observer_factory "
        "for per-cell observers under parallel sweeps");
  }
  if (spec.run.on_start && spec.control) {
    throw std::invalid_argument(
        "run_sweep: RunOptions::on_start and ExperimentSpec::control are mutually "
        "exclusive (the control plane owns the start hook)");
  }
  if (spec.run.on_start && spec.jobs != 1) {
    throw std::invalid_argument(
        "run_sweep: a shared RunOptions::on_start requires jobs == 1; use "
        "ExperimentSpec::control for per-cell controllers under parallel sweeps");
  }
  if (spec.run.telemetry != nullptr && spec.jobs != 1) {
    throw std::invalid_argument(
        "run_sweep: RunOptions::telemetry requires jobs == 1 -- one shared session "
        "would interleave spans of unrelated cells; use ExperimentSpec::trace_dir for "
        "per-cell sessions under parallel sweeps");
  }
  if (spec.run.telemetry != nullptr && !spec.trace_dir.empty()) {
    throw std::invalid_argument(
        "run_sweep: RunOptions::telemetry and ExperimentSpec::trace_dir are mutually "
        "exclusive (trace_dir builds one telemetry session per cell)");
  }
  if (!spec.trace_dir.empty() && spec.telemetry_interval <= 0) {
    throw std::invalid_argument("run_sweep: telemetry_interval must be > 0");
  }
  planner::validate(spec.planner);  // "" = engine defaults; typos fail here
  hw::Cluster cluster = cluster_by_name(spec.cluster);
  // Created once up front so parallel cells never race the first mkdir.
  if (!spec.trace_dir.empty()) std::filesystem::create_directories(spec.trace_dir);

  // Traces depend only on (spec, point): build each once, shared read-only
  // by every (model, engine) cell of that point.
  std::vector<std::vector<workload::Request>> traces;
  traces.reserve(spec.workloads.size());
  for (const WorkloadPoint& point : spec.workloads) {
    traces.push_back(build_point_trace(spec, point));
  }

  // An empty objective list means "engine defaults", like the default
  // single-"" list (kept non-empty so the cell indexing below holds).
  const std::vector<std::string> objectives =
      spec.objectives.empty() ? std::vector<std::string>{""} : spec.objectives;

  const std::size_t ne = spec.engines.size();
  const std::size_t np = spec.workloads.size();
  const std::size_t no = objectives.size();
  const std::size_t ncells = spec.models.size() * np * ne * no;
  std::vector<SweepRow> rows(ncells);

  // Row order contract: models outer, then points, engines, objectives
  // innermost.
  auto run_cell = [&](std::size_t ci) {
    const std::size_t mi = ci / (np * ne * no);
    const std::size_t pi = (ci / (ne * no)) % np;
    const std::size_t ei = (ci / no) % ne;
    const std::size_t oi = ci % no;
    const std::string& model_name = spec.models[mi];
    const model::ModelSpec& model = model::model_by_name(model_name);
    const WorkloadPoint& point = spec.workloads[pi];
    const std::string& engine_name = spec.engines[ei];
    const std::string& objective_name = objectives[oi];
    engine::EngineOptions options = options_for(spec, engine_name);
    const bool traced = !spec.trace_dir.empty();
    if ((!objective_name.empty() || !spec.planner.empty() || traced) &&
        engine::ascii_lower(engine_name) == "hetis") {
      // Plan under the requested objective and/or planner tier; the run's
      // SLO targets become the objective's targets.  Replacing only the
      // system config keeps tenant priorities and every other knob intact.
      engine::HetisConfig cfg = options.get_or_default<engine::HetisConfig>(engine_name);
      if (!objective_name.empty()) {
        cfg.search.objective.name = objective_name;
        if (spec.run.slo) cfg.search.objective.slo = *spec.run.slo;
      }
      if (!spec.planner.empty()) cfg.search.planner = spec.planner;
      if (traced && cfg.sample_interval <= 0) {
        // Traced Hetis cells get the per-device occupancy tracks for free:
        // UsageSamples feed only the telemetry session, never the
        // RunReport, so the row bytes stay identical to an untraced sweep.
        cfg.sample_interval = spec.telemetry_interval;
        cfg.sample_horizon = spec.horizon;
      }
      options.system = std::move(cfg);
    }
    if (options.tenant_priorities.empty()) {
      options.tenant_priorities = point_priorities(point);
    }
    // A controlled cell serves on its OWN cluster copy: degradation events
    // (device_slow / link_degrade) mutate the condition overlay live, and
    // parallel cells must never see each other's stragglers.  A copy of a
    // healthy cluster is bit-identical, so uncontrolled rows are unchanged.
    std::optional<hw::Cluster> cell_cluster;
    if (spec.control) cell_cluster.emplace(cluster);
    hw::Cluster& cell_hw = cell_cluster ? *cell_cluster : cluster;
    auto eng = engine::make(engine_name, cell_hw, model, options);

    // Everything per-cell below owns private state, so controlled and
    // observed sweeps parallelize without cross-cell interleaving.
    engine::RunOptions run = spec.run;
    std::unique_ptr<engine::RunObserver> cell_observer;
    if (spec.observer_factory) {
      ExperimentSpec::CellContext ctx;
      ctx.engine = engine_name;
      ctx.model = model_name;
      ctx.point = pi;
      ctx.workload = &point;
      cell_observer = spec.observer_factory(ctx);
      run.observer = cell_observer.get();
    }
    std::unique_ptr<control::Controller> controller;
    if (spec.control) {
      // Binds the mutable-cluster overload (cell_hw is the cell's private
      // copy here), so degradation scripts replay onto the same cluster the
      // engine's cost model reads.
      controller = std::make_unique<control::Controller>(*spec.control, cell_hw);
      run.on_start = controller->starter();
    }
    std::unique_ptr<telemetry::Telemetry> cell_telemetry;
    if (traced) {
      telemetry::TelemetryConfig tcfg;
      tcfg.sample_interval = spec.telemetry_interval;
      tcfg.horizon = spec.horizon;
      tcfg.slo = spec.run.slo;
      cell_telemetry = std::make_unique<telemetry::Telemetry>(tcfg);
      run.telemetry = cell_telemetry.get();
    }

    SweepRow row;
    row.experiment = spec.name;
    row.cluster = spec.cluster;
    row.model = model_name;
    row.dataset = point.dataset;
    row.scenario = point_label(point);
    row.rate = point.rate;
    row.trace_requests = traces[pi].size();
    row.report = engine::run_trace(*eng, traces[pi], run);
    if (point.scenario) {
      row.tenants = tenant_summaries(eng->metrics(), *point.scenario, spec.run.warmup);
    }
    const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
    if (controller) {
      row.control = control::to_string(spec.control->churn.kind);
      row.policy = controller->policy_name();
      if (rc) {
        row.reconfigurations = rc->reconfig_stats().reconfigurations;
        row.migrated_requests = rc->reconfig_stats().migrated_requests;
        row.restarted_requests = rc->reconfig_stats().restarted_requests;
      }
    }
    // Cost-efficiency columns: device-seconds follow every controlled
    // re-deploy; uncontrolled runs charge a constant device set.  Both
    // integrate over [0, last request event] in ABSOLUTE sim time,
    // matching the controller's re-deploy history.
    row.objective = objective_name.empty() ? "default" : objective_name;
    const Seconds end = run_end_time(eng->metrics());
    if (controller) {
      row.device_seconds = controller->device_seconds(end);
    } else if (rc) {
      row.device_seconds = static_cast<double>(rc->active_devices().size()) * end;
    } else {
      row.device_seconds = static_cast<double>(cluster.num_devices()) * end;
    }
    if (spec.run.slo) {
      const std::size_t ok = slo_attained_count(eng->metrics(), *spec.run.slo, spec.run.warmup);
      row.device_seconds_per_slo_request = ok ? row.device_seconds / ok : 0.0;
    }
    if (cell_telemetry) {
      // Stem = every cell coordinate, so no two cells of one sweep (or of
      // one multi-part bench sharing a trace_dir) collide.
      std::string stem = spec.name + "_" + engine::ascii_lower(engine_name) + "_" +
                         model_name + "_p" + std::to_string(pi) + "_" + row.scenario;
      if (!objective_name.empty()) stem += "_" + objective_name;
      if (controller) stem += "_" + row.control + "_" + row.policy;
      cell_telemetry->write_artifacts(spec.trace_dir + "/" + sanitize_stem(stem) +
                                      ".trace.json");
    }
    rows[ci] = std::move(row);
  };

  if (spec.jobs == 1 || ncells <= 1) {
    for (std::size_t ci = 0; ci < ncells; ++ci) {
      run_cell(ci);
      if (on_row) on_row(rows[ci]);
    }
    return rows;
  }

  // jobs == 0 passes 0 through to ThreadPool, which resolves it to hardware
  // concurrency; explicit job counts are capped at the cell count.
  const std::size_t nthreads =
      spec.jobs == 0 ? 0 : std::min(ncells, static_cast<std::size_t>(spec.jobs));
  ThreadPool pool(nthreads);
  std::mutex on_row_mu;
  pool.run_tasks(ncells, [&](std::size_t ci) {
    run_cell(ci);
    if (on_row) {
      std::lock_guard<std::mutex> lock(on_row_mu);
      on_row(rows[ci]);
    }
  });
  return rows;
}

std::string sweep_csv_header() {
  // Column order is append-only: the control block trails the RunReport
  // columns, the objective/cost block trails the control block, so older
  // readers keep working.
  return "experiment,cluster,model,dataset,scenario,rate,trace_requests," +
         engine::RunReport::csv_header() +
         ",control,policy,reconfigurations,migrated_requests,restarted_requests"
         ",objective,device_seconds,device_seconds_per_slo_request";
}

std::string to_csv_row(const SweepRow& row) {
  std::ostringstream oss;
  oss << csv_field(row.experiment) << ',' << csv_field(row.cluster) << ','
      << csv_field(row.model) << ',' << workload::to_string(row.dataset) << ','
      << csv_field(row.scenario) << ',' << row.rate << ',' << row.trace_requests << ','
      << row.report.to_csv_row() << ',' << csv_field(row.control) << ','
      << csv_field(row.policy) << ',' << row.reconfigurations << ',' << row.migrated_requests
      << ',' << row.restarted_requests << ',' << csv_field(row.objective) << ','
      << csv_double(row.device_seconds) << ',' << csv_double(row.device_seconds_per_slo_request);
  return oss.str();
}

SweepRow sweep_row_from_csv(const std::string& row) {
  const std::vector<std::string> cells = engine::split_csv_row(row);
  const std::string report_header = engine::RunReport::csv_header();
  const std::size_t report_cols =
      static_cast<std::size_t>(std::count(report_header.begin(), report_header.end(), ',')) + 1;
  const std::size_t lead = 7, control_cols = 5, objective_cols = 3;
  const std::size_t expected = lead + report_cols + control_cols + objective_cols;
  if (cells.size() < expected) {
    throw std::invalid_argument("sweep_row_from_csv: expected at least " +
                                std::to_string(expected) + " cells, got " +
                                std::to_string(cells.size()));
  }
  SweepRow out;
  std::size_t i = 0;
  out.experiment = cells[i++];
  out.cluster = cells[i++];
  out.model = cells[i++];
  out.dataset = workload::dataset_by_name(cells[i++]);
  out.scenario = cells[i++];
  out.rate = std::stod(cells[i++]);
  out.trace_requests = static_cast<std::size_t>(std::stoull(cells[i++]));
  std::string report_row;
  for (std::size_t k = 0; k < report_cols; ++k) {
    if (k) report_row += ',';
    report_row += cells[i++];
  }
  out.report = engine::RunReport::from_csv_row(report_row);
  out.control = cells[i++];
  out.policy = cells[i++];
  out.reconfigurations = std::stoi(cells[i++]);
  out.migrated_requests = std::stoi(cells[i++]);
  out.restarted_requests = std::stoi(cells[i++]);
  out.objective = cells[i++];
  out.device_seconds = std::stod(cells[i++]);
  out.device_seconds_per_slo_request = std::stod(cells[i++]);
  return out;
}

void write_csv(std::ostream& os, const std::vector<SweepRow>& rows) {
  os << sweep_csv_header() << '\n';
  for (const auto& row : rows) os << to_csv_row(row) << '\n';
}

namespace {

void write_tenants_json(std::ostream& os, const std::vector<TenantSummary>& tenants) {
  os << ",\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantSummary& ts = tenants[t];
    os << (t ? "," : "") << "{\"tenant\":\"" << engine::json_escape(ts.tenant)
       << "\",\"arrived\":" << ts.arrived << ",\"finished\":" << ts.finished
       << ",\"ttft_p95\":" << ts.ttft_p95 << ",\"tpot_p95\":" << ts.tpot_p95
       << ",\"slo_attainment\":" << ts.slo_attainment << ",\"goodput\":" << ts.goodput << "}";
  }
  os << "]";
}

}  // namespace

void write_json(std::ostream& os, const std::vector<SweepRow>& rows) {
  os << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    os << (i ? ",\n " : "\n ") << "{\"experiment\":\"" << engine::json_escape(row.experiment)
       << "\",\"cluster\":\"" << engine::json_escape(row.cluster) << "\",\"model\":\""
       << engine::json_escape(row.model) << "\",\"dataset\":\""
       << workload::to_string(row.dataset) << "\",\"scenario\":\""
       << engine::json_escape(row.scenario) << "\",\"rate\":" << row.rate
       << ",\"trace_requests\":" << row.trace_requests << ",\"report\":" << row.report.to_json()
       << ",\"control\":\"" << engine::json_escape(row.control) << "\",\"policy\":\""
       << engine::json_escape(row.policy) << "\",\"reconfigurations\":" << row.reconfigurations
       << ",\"migrated_requests\":" << row.migrated_requests
       << ",\"restarted_requests\":" << row.restarted_requests << ",\"objective\":\""
       << engine::json_escape(row.objective)
       << "\",\"device_seconds\":" << csv_double(row.device_seconds)
       << ",\"device_seconds_per_slo_request\":"
       << csv_double(row.device_seconds_per_slo_request);
    if (!row.tenants.empty()) write_tenants_json(os, row.tenants);
    os << "}";
  }
  os << "\n]\n";
}

}  // namespace hetis::harness
