#include "harness/experiment.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace hetis::harness {

namespace {

/// Caller-supplied strings (spec name, cluster, model) land in CSV rows
/// unquoted; neutralize the two characters that would break row framing.
std::string csv_field(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n') c = ' ';
  }
  return s;
}

}  // namespace

void ExperimentSpec::add_rates(workload::Dataset dataset, const std::vector<double>& rates) {
  for (double rate : rates) workloads.push_back(WorkloadPoint{dataset, rate});
}

std::vector<SweepRow> run_sweep(const ExperimentSpec& spec, const RowCallback& on_row) {
  hw::Cluster cluster = cluster_by_name(spec.cluster);
  std::vector<SweepRow> rows;
  rows.reserve(spec.models.size() * spec.workloads.size() * spec.engines.size());
  for (const std::string& model_name : spec.models) {
    const model::ModelSpec& model = model::model_by_name(model_name);
    for (const WorkloadPoint& point : spec.workloads) {
      workload::TraceOptions topts;
      topts.dataset = point.dataset;
      topts.rate = point.rate;
      topts.horizon = spec.horizon;
      topts.seed = spec.seed;
      const auto trace = workload::build_trace(topts);
      for (const std::string& engine_name : spec.engines) {
        // Engine names are case-insensitive in the registry; match the
        // options map the same way so a "Hetis"/"hetis" mismatch cannot
        // silently drop the configured options.
        engine::EngineOptions opts;
        for (const auto& [key, value] : spec.engine_options) {
          if (engine::ascii_lower(key) == engine::ascii_lower(engine_name)) {
            opts = value;
            break;
          }
        }
        auto eng = engine::make(engine_name, cluster, model, opts);

        SweepRow row;
        row.experiment = spec.name;
        row.cluster = spec.cluster;
        row.model = model_name;
        row.dataset = point.dataset;
        row.rate = point.rate;
        row.trace_requests = trace.size();
        row.report = engine::run_trace(*eng, trace, spec.run);
        if (on_row) on_row(row);
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

std::string sweep_csv_header() {
  return "experiment,cluster,model,dataset,rate,trace_requests," +
         engine::RunReport::csv_header();
}

std::string to_csv_row(const SweepRow& row) {
  std::ostringstream oss;
  oss << csv_field(row.experiment) << ',' << csv_field(row.cluster) << ','
      << csv_field(row.model) << ',' << workload::to_string(row.dataset) << ',' << row.rate
      << ',' << row.trace_requests << ',' << row.report.to_csv_row();
  return oss.str();
}

void write_csv(std::ostream& os, const std::vector<SweepRow>& rows) {
  os << sweep_csv_header() << '\n';
  for (const auto& row : rows) os << to_csv_row(row) << '\n';
}

void write_json(std::ostream& os, const std::vector<SweepRow>& rows) {
  os << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    os << (i ? ",\n " : "\n ") << "{\"experiment\":\"" << engine::json_escape(row.experiment)
       << "\",\"cluster\":\"" << engine::json_escape(row.cluster) << "\",\"model\":\""
       << engine::json_escape(row.model) << "\",\"dataset\":\""
       << workload::to_string(row.dataset) << "\",\"rate\":" << row.rate
       << ",\"trace_requests\":" << row.trace_requests << ",\"report\":" << row.report.to_json()
       << "}";
  }
  os << "\n]\n";
}

}  // namespace hetis::harness
