// Named presets used by declarative experiment specs: clusters by name
// (models already have model::model_by_name).
#pragma once

#include <string>
#include <vector>

#include "hw/topology.h"

namespace hetis::harness {

/// Builds a cluster preset by name.  Known presets:
///   "paper"    -- the paper's testbed (4xA100 + 4x3090 + 4xP100, §7.1)
///   "ablation" -- one A100 + two 3090s (Fig. 14 / Fig. 15a ablations)
///   "budget"   -- no-flagship tier: 4xV100-32G + 4xT4 across two hosts,
///                 the mid/low-end mix the objective benches price plans on
///   "dc64"     -- datacenter slice, 64 GPUs: 16xH100 (NVLink hosts) +
///                 32xA100 + 16xV100-32G, 8 GPUs/host
///   "dc128"    -- datacenter slice, 128 GPUs: 32xH100 + 48xA100 +
///                 32xV100-32G + 16xT4 (T4 hosts on PCIe 3.0)
///   "dc256"    -- datacenter pod, 256 GPUs: 64xH100 + 96xA100 +
///                 64xV100-32G + 32xT4; the flow-planner scale target
/// The dc* presets mix three interconnect tiers (NVLink, PCIe 4.0, PCIe
/// 3.0) via per-host intra-link overrides, so placement must price both
/// compute and fabric heterogeneity.
/// Throws std::invalid_argument listing the known names otherwise.
hw::Cluster cluster_by_name(const std::string& name);

/// Names accepted by cluster_by_name, sorted.
std::vector<std::string> cluster_preset_names();

}  // namespace hetis::harness
