#include "sim/simulation.h"

#include <stdexcept>

namespace hetis::sim {

std::size_t Simulation::run_until(Seconds horizon) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    EventQueue::Event ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

std::size_t Simulation::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (executed >= max_events) {
      throw std::runtime_error("Simulation::run_all: exceeded max_events (runaway loop?)");
    }
    EventQueue::Event ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace hetis::sim
