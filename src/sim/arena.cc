#include "sim/arena.h"

#include <new>

namespace hetis::sim {

EventArena::~EventArena() = default;

void* EventArena::allocate(std::size_t size) {
  if (size == 0) size = 1;
  if (size > max_pooled_size()) {
    ++oversize_allocations_;
    ++live_blocks_;
    return ::operator new(size);
  }
  const std::size_t c = class_of(size);
  ++live_blocks_;
  if (FreeNode* node = free_[c]) {
    free_[c] = node->next;
    ++freelist_hits_;
    return node;
  }
  const std::size_t bytes = (c + 1) * kGranule;
  if (bump_ + bytes > kSlabBytes) {
    slabs_.emplace_back(new unsigned char[kSlabBytes]);
    bump_ = 0;
  }
  void* p = slabs_.back().get() + bump_;
  bump_ += bytes;
  ++slab_allocations_;
  return p;
}

void EventArena::deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (size == 0) size = 1;
  --live_blocks_;
  if (size > max_pooled_size()) {
    ::operator delete(p);
    return;
  }
  const std::size_t c = class_of(size);
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_[c];
  free_[c] = node;
}

}  // namespace hetis::sim
