// EventTask: the simulator's event callable.
//
// A move-only replacement for std::function<void()> tuned for the event
// hot path:
//  * small-buffer optimized -- callables up to kInlineSize bytes (which
//    covers every steady-state event the engines schedule) are stored
//    inline in the task, so scheduling them performs zero allocations;
//  * larger callables are placed in the owning queue's EventArena, whose
//    size-class free lists recycle blocks so the steady state never calls
//    the global allocator either;
//  * move-only -- a scheduled event fires exactly once, so there is
//    nothing a copy could mean.  This also lets events capture move-only
//    state, which std::function (copyable by contract) forbids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/arena.h"

namespace hetis::sim {

class EventTask {
 public:
  /// Inline storage size.  Sized so the common engine events ([this, &sim]
  /// plus a moved-in vector or a couple of scalars) stay allocation-free
  /// while keeping EventQueue::Event inside two cache lines.
  static constexpr std::size_t kInlineSize = 48;

  EventTask() = default;

  /// Wraps `f`, spilling to `arena` when it does not fit inline.  The
  /// arena must outlive the task (EventQueue owns both).
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, EventTask>>>
  EventTask(F&& f, EventArena* arena) : arena_(arena) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "EventTask: over-aligned callables are not supported");
    if constexpr (sizeof(Fn) <= kInlineSize && std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      void* p = arena_->allocate(sizeof(Fn));
      ::new (p) Fn(std::forward<F>(f));
      ptr_slot() = p;
      ops_ = heap_ops<Fn>();
    }
  }

  EventTask(const EventTask&) = delete;
  EventTask& operator=(const EventTask&) = delete;

  EventTask(EventTask&& other) noexcept { move_from(other); }

  EventTask& operator=(EventTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  ~EventTask() { reset(); }

  /// Invokes the callable.  Undefined when empty (the queue never hands
  /// out empty tasks).
  void operator()() { ops_->invoke(object()); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable spilled to the arena (tests + diagnostics).
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap_size > 0; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Moves the object from src storage into dst storage and destroys the
    /// source (inline case only; heap objects move by pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
    std::uint32_t heap_size;  // 0 => stored inline
  };

  template <class Fn>
  static const Ops* inline_ops() {
    static const Ops ops = {
        [](void* obj) { (*static_cast<Fn*>(obj))(); },
        [](void* dst, void* src) noexcept {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* obj) noexcept { static_cast<Fn*>(obj)->~Fn(); },
        0,
    };
    return &ops;
  }

  template <class Fn>
  static const Ops* heap_ops() {
    static const Ops ops = {
        [](void* obj) { (*static_cast<Fn*>(obj))(); },
        nullptr,  // heap objects relocate by pointer
        [](void* obj) noexcept { static_cast<Fn*>(obj)->~Fn(); },
        static_cast<std::uint32_t>(sizeof(Fn)),
    };
    return &ops;
  }

  void*& ptr_slot() { return *reinterpret_cast<void**>(storage_); }
  void* object() { return ops_->heap_size > 0 ? ptr_slot() : storage_; }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    if (ops_->heap_size > 0) {
      void* p = ptr_slot();
      ops_->destroy(p);
      arena_->deallocate(p, ops_->heap_size);
    } else {
      ops_->destroy(storage_);
    }
    ops_ = nullptr;
  }

  void move_from(EventTask& other) noexcept {
    ops_ = other.ops_;
    arena_ = other.arena_;
    if (ops_ != nullptr) {
      if (ops_->heap_size > 0) {
        ptr_slot() = other.ptr_slot();
      } else {
        ops_->relocate(storage_, other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  EventArena* arena_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace hetis::sim
