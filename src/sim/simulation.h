// Simulation clock + event loop built on EventQueue.
#pragma once

#include <utility>

#include "sim/event_queue.h"

namespace hetis::sim {

class Simulation {
 public:
  Seconds now() const { return now_; }

  /// Schedules fn `delay` seconds from now.
  template <class F>
  void schedule_in(Seconds delay, F&& fn) {
    queue_.push(now_ + delay, std::forward<F>(fn));
  }
  /// Schedules fn at absolute time `at` (clamped to now if in the past).
  template <class F>
  void schedule_at(Seconds at, F&& fn) {
    queue_.push(at < now_ ? now_ : at, std::forward<F>(fn));
  }

  /// Runs events until the queue drains or `horizon` is passed.  Events
  /// scheduled exactly at the horizon still run.  Returns the number of
  /// events executed.
  std::size_t run_until(Seconds horizon);

  /// Runs until the queue drains (use only with naturally-terminating
  /// workloads).  `max_events` guards against runaway loops.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// The underlying queue (introspection for tests + benches).
  const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  Seconds now_ = 0.0;
};

}  // namespace hetis::sim
