// Slab arena for event callables that spill out of EventTask's inline
// buffer.
//
// The simulation hot path creates and destroys one callable per scheduled
// event -- O(10^6) per million-request trace.  Small callables live inside
// EventTask's small-buffer storage and never touch an allocator; the rest
// land here.  The arena hands out size-class blocks carved from 64 KiB
// slabs and recycles freed blocks through per-class free lists, so the
// steady state performs no global-allocator calls at all: after warm-up
// every event reuses a block freed by an earlier one.
//
// Not thread-safe by design: one arena belongs to one EventQueue, which
// belongs to one Simulation, which runs on one thread (parallel sweeps run
// one Simulation per worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hetis::sim {

class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;
  ~EventArena();

  /// Returns a block of at least `size` bytes aligned for any fundamental
  /// type.  Blocks above the largest size class fall through to the global
  /// allocator (rare: an event callable that big indicates a fat capture
  /// that should be slimmed instead).
  void* allocate(std::size_t size);

  /// Returns a block obtained from allocate(size) with the same `size`.
  void deallocate(void* p, std::size_t size) noexcept;

  // Introspection (tests + bench diagnostics).
  std::size_t slab_bytes() const { return slabs_.size() * kSlabBytes; }
  std::uint64_t slab_allocations() const { return slab_allocations_; }
  std::uint64_t freelist_hits() const { return freelist_hits_; }
  std::uint64_t oversize_allocations() const { return oversize_allocations_; }
  std::int64_t live_blocks() const { return live_blocks_; }

  static constexpr std::size_t kGranule = 64;   // size-class step (bytes)
  static constexpr std::size_t kClasses = 16;   // largest pooled class: 1 KiB
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  static constexpr std::size_t max_pooled_size() { return kGranule * kClasses; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t class_of(std::size_t size) { return (size - 1) / kGranule; }

  FreeNode* free_[kClasses] = {};
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  std::size_t bump_ = kSlabBytes;  // consumed bytes of the newest slab

  std::uint64_t slab_allocations_ = 0;
  std::uint64_t freelist_hits_ = 0;
  std::uint64_t oversize_allocations_ = 0;
  std::int64_t live_blocks_ = 0;
};

}  // namespace hetis::sim
