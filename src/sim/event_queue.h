// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (stable tie-break via
// a monotone sequence number), which keeps every experiment bit-for-bit
// reproducible under a fixed seed.  That contract holds regardless of the
// internal tier: pop order is strictly (time, seq) ascending.
//
// Two storage tiers sit behind the contract:
//  * a binary heap for small/sparse pending sets, run on
//    std::push_heap/pop_heap so pop() extracts by move instead of the old
//    const_cast-from-top() idiom (which is UB-adjacent and forbids
//    move-only callables);
//  * a calendar (bucketed) tier that engages once the pending set grows
//    past a threshold -- e.g. a million pre-scheduled trace arrivals --
//    where heap push/pop would each pay O(log n) cache-missing sifts.
//    Events hash into fixed-width time buckets (O(1) push); a bucket is
//    sorted lazily by (time, seq) when the clock reaches it, and same-time
//    or zero-delay pushes binary-insert into the current bucket's
//    unconsumed suffix so they still pop in seq order.  Events beyond the
//    bucket window pool in an unsorted overflow that is redistributed when
//    the window is exhausted; if the pending set has shrunk below the
//    threshold by then the queue drops back to the heap, so sparse
//    horizons never pay for empty buckets.
//
// Event callables are EventTask (sim/task.h): small-buffer inline storage
// with arena spill, so steady-state scheduling performs no
// global-allocator calls.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/units.h"
#include "sim/arena.h"
#include "sim/task.h"

namespace hetis::sim {

class EventQueue {
 public:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    EventTask fn;
  };

  /// Pending-set size at which the queue switches heap -> calendar, and the
  /// rebuild-time size below which it switches back.  The gap is hysteresis:
  /// a queue hovering near one threshold does not thrash between tiers.
  static constexpr std::size_t kCalendarOn = 8192;
  static constexpr std::size_t kCalendarOff = 1024;

  /// Schedules fn at absolute time `at` (must be >= 0).
  template <class F>
  void push(Seconds at, F&& fn) {
    if (at < 0.0) throw std::invalid_argument("EventQueue::push: negative time");
    insert(Event{at, next_seq_++, EventTask(std::forward<F>(fn), &arena_)});
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Time of the earliest pending event; undefined when empty.  Non-const:
  /// the calendar tier may need to advance to the next ready bucket.
  Seconds next_time();

  /// Pops and returns the earliest event (extracted by move; the callable
  /// is move-only and never copied).
  Event pop();

  void clear();

  /// True while the calendar tier is active (introspection for tests).
  bool calendar_active() const { return mode_ == Mode::kCalendar; }
  /// The arena backing spilled event callables (introspection for tests).
  const EventArena& arena() const { return arena_; }

 private:
  enum class Mode { kHeap, kCalendar };

  void insert(Event ev);
  void place(Event ev);  // calendar-mode insert
  void settle();         // advance cur_/pos_ to the earliest pending event
  void rebuild();        // re-window the calendar from overflow_
  void to_heap();        // calendar -> heap fallback
  Event pop_from_heap();

  // Declared first so it is destroyed last: every Event held by the
  // containers below may own an arena block and must die before the arena.
  EventArena arena_;

  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  Mode mode_ = Mode::kHeap;

  // Heap tier: min-heap by (time, seq) maintained with std::*_heap.
  std::vector<Event> heap_;

  // Calendar tier.  buckets_[0..nbuckets_) cover [window_start_,
  // window_end_) in width_-second slices; cur_ walks them in time order and
  // pos_ is the consumed prefix of the current bucket (sorted iff
  // cur_sorted_).  Events at or past window_end_ pool unsorted in
  // overflow_ until rebuild() opens the next window.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  double width_ = 0;
  double window_start_ = 0;
  double window_end_ = 0;
  std::size_t nbuckets_ = 0;
  std::size_t cur_ = 0;
  std::size_t pos_ = 0;
  bool cur_sorted_ = false;
};

}  // namespace hetis::sim
