// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (stable tie-break via
// a monotone sequence number), which keeps every experiment bit-for-bit
// reproducible under a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace hetis::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Schedules fn at absolute time `at` (must be >= 0).
  void push(Seconds at, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  Seconds next_time() const { return heap_.top().time; }

  /// Pops and returns the earliest event.
  Event pop();

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hetis::sim
