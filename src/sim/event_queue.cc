#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace hetis::sim {

void EventQueue::push(Seconds at, EventFn fn) {
  if (at < 0.0) throw std::invalid_argument("EventQueue::push: negative time");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

EventQueue::Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  // std::priority_queue::top() returns const&; the move is safe because we
  // pop immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace hetis::sim
