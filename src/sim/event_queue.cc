#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace hetis::sim {
namespace {

// Strict (time, seq) orderings.  seq is unique, so both are total orders.
struct Earlier {
  bool operator()(const EventQueue::Event& a, const EventQueue::Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};
struct Later {
  bool operator()(const EventQueue::Event& a, const EventQueue::Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

constexpr std::size_t kMinBuckets = 1024;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 18;

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void EventQueue::insert(Event ev) {
  ++count_;
  if (mode_ == Mode::kHeap) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (count_ >= kCalendarOn) {
      // All pending events become the seed overflow; rebuild() windows them.
      overflow_ = std::move(heap_);
      heap_.clear();
      mode_ = Mode::kCalendar;
      rebuild();
    }
    return;
  }
  place(std::move(ev));
}

void EventQueue::place(Event ev) {
  if (ev.time >= window_end_) {
    overflow_.push_back(std::move(ev));
    return;
  }
  std::size_t b;
  const double rel = ev.time - window_start_;
  if (rel <= 0) {
    // At or before the window start (e.g. a zero-delay event scheduled while
    // draining the first bucket): it belongs to the current bucket.
    b = cur_;
  } else {
    b = static_cast<std::size_t>(rel / width_);
    if (b >= nbuckets_) b = nbuckets_ - 1;  // fp edge at the window boundary
    if (b < cur_) b = cur_;                 // earlier slices are already drained
  }
  std::vector<Event>& bucket = buckets_[b];
  if (b == cur_ && cur_sorted_) {
    // The clock is inside this bucket: keep its unconsumed suffix sorted so
    // the event pops in strict (time, seq) order.
    auto it = std::lower_bound(bucket.begin() + static_cast<std::ptrdiff_t>(pos_),
                               bucket.end(), ev, Earlier{});
    bucket.insert(it, std::move(ev));
  } else {
    bucket.push_back(std::move(ev));  // sorted lazily when the clock arrives
  }
}

void EventQueue::settle() {
  if (mode_ == Mode::kHeap || count_ == 0) return;
  for (;;) {
    std::vector<Event>& bucket = buckets_[cur_];
    if (!cur_sorted_) {
      std::sort(bucket.begin(), bucket.end(), Earlier{});
      pos_ = 0;
      cur_sorted_ = true;
    }
    if (pos_ < bucket.size()) return;
    bucket.clear();
    pos_ = 0;
    cur_sorted_ = false;
    if (++cur_ == nbuckets_) {
      rebuild();
      if (mode_ == Mode::kHeap) return;
    }
  }
}

void EventQueue::rebuild() {
  // The window is exhausted (or the tier just switched): every pending event
  // sits in overflow_.  Pick the new window so the events spread roughly one
  // per bucket, then redistribute.
  if (overflow_.size() < kCalendarOff) {
    to_heap();
    return;
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Event& ev : overflow_) {
    lo = std::min(lo, ev.time);
    hi = std::max(hi, ev.time);
  }
  const std::size_t n = overflow_.size();
  nbuckets_ = pow2_at_least(std::min(std::max(n, kMinBuckets), kMaxBuckets));
  const double span = hi - lo;
  width_ = span > 0 ? span / static_cast<double>(n) : 1.0;
  if (!(width_ > 0)) width_ = 1.0;  // degenerate span (all-equal times)
  window_start_ = lo;
  window_end_ = window_start_ + width_ * static_cast<double>(nbuckets_);
  if (buckets_.size() < nbuckets_) buckets_.resize(nbuckets_);
  cur_ = 0;
  pos_ = 0;
  cur_sorted_ = false;

  std::vector<Event> still;
  for (Event& ev : overflow_) {
    if (ev.time >= window_end_) {
      still.push_back(std::move(ev));
      continue;
    }
    const double rel = ev.time - window_start_;
    std::size_t b = rel <= 0 ? 0 : static_cast<std::size_t>(rel / width_);
    if (b >= nbuckets_) b = nbuckets_ - 1;
    buckets_[b].push_back(std::move(ev));
  }
  overflow_ = std::move(still);
}

void EventQueue::to_heap() {
  mode_ = Mode::kHeap;
  heap_ = std::move(overflow_);
  overflow_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  buckets_.clear();
  width_ = 0;
  window_start_ = 0;
  window_end_ = 0;
  nbuckets_ = 0;
  cur_ = 0;
  pos_ = 0;
  cur_sorted_ = false;
}

EventQueue::Event EventQueue::pop_from_heap() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  --count_;
  return ev;
}

Seconds EventQueue::next_time() {
  if (mode_ == Mode::kCalendar) settle();
  if (mode_ == Mode::kHeap) return heap_.front().time;
  return buckets_[cur_][pos_].time;
}

EventQueue::Event EventQueue::pop() {
  if (count_ == 0) throw std::logic_error("EventQueue::pop: empty queue");
  if (mode_ == Mode::kCalendar) settle();
  if (mode_ == Mode::kHeap) return pop_from_heap();
  Event ev = std::move(buckets_[cur_][pos_]);
  ++pos_;
  --count_;
  return ev;
}

void EventQueue::clear() {
  heap_.clear();
  buckets_.clear();
  overflow_.clear();
  next_seq_ = 0;
  count_ = 0;
  mode_ = Mode::kHeap;
  width_ = 0;
  window_start_ = 0;
  window_end_ = 0;
  nbuckets_ = 0;
  cur_ = 0;
  pos_ = 0;
  cur_sorted_ = false;
  // The arena intentionally keeps its slabs: a cleared queue that refills
  // (warmup, repeated runs in one process) reuses them via the free lists.
}

}  // namespace hetis::sim
