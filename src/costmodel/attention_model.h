// The paper's linear Attention-time and transfer-overhead models (§5.1).
//
//   Eq. 3:  tau_i(t) = a_i * h_i(t) + b_i * g_i(t) + c_i
//   Eq. 4:  rho_i(t) = gamma_i * d_i(t) + beta_i
//
// where h_i = total query heads on device i, g_i = total cache bytes on
// device i, and d_i = (2 + 2/r) * h_i * head_dim * dtype is the per-token
// transfer volume between a Primary and Attention worker.
//
// These fitted parameters are what the online Dispatcher's LP consumes;
// they are the *interface* between profiling and optimization.
#pragma once

#include <string>

#include "common/units.h"
#include "model/llm.h"

namespace hetis::costmodel {

/// Per-device attention-computation model (Eq. 3).  Units: a in s/head,
/// b in s/byte, c in s.
struct AttnParams {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  /// Predicted attention time for h query heads over g cache bytes.
  Seconds time(double heads, double cache_bytes) const {
    if (heads <= 0.0) return 0.0;
    return a * heads + b * cache_bytes + c;
  }

  /// Scales all coefficients by (1 + err); used by the Fig. 16(b)
  /// profiling-error sensitivity experiment.
  AttnParams perturbed(double err_a, double err_b, double err_c) const {
    return AttnParams{a * (1.0 + err_a), b * (1.0 + err_b), c * (1.0 + err_c)};
  }

  std::string to_string() const;
};

/// Per-link transfer model (Eq. 4).  gamma in s/byte, beta in s.
struct TransferParams {
  double gamma = 0.0;
  double beta = 0.0;

  Seconds time(Bytes volume) const {
    if (volume <= 0) return 0.0;
    return gamma * static_cast<double>(volume) + beta;
  }

  TransferParams perturbed(double err_gamma, double err_beta) const {
    return TransferParams{gamma * (1.0 + err_gamma), beta * (1.0 + err_beta)};
  }

  std::string to_string() const;
};

/// Per-decode-step transfer volume d_i for `heads` offloaded query heads
/// (all layers): d = (2 + 2/r) * heads * head_dim * dtype * layers.
Bytes transfer_volume(const model::ModelSpec& m, double heads);

}  // namespace hetis::costmodel
