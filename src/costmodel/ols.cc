#include "costmodel/ols.h"

#include <cmath>
#include <stdexcept>

namespace hetis::costmodel {

namespace {

/// Solves A x = b for symmetric positive definite A (in-place Cholesky).
/// A is n x n row-major.  Returns false if not positive definite.
bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  // Decompose A = L L^T.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= a[k * n + ii] * b[k];
    b[ii] = sum / a[ii * n + ii];
  }
  return true;
}

void predict(const std::vector<double>& x, std::size_t n_rows, std::size_t n_cols,
             const std::vector<double>& beta, std::vector<double>& out) {
  out.assign(n_rows, 0.0);
  for (std::size_t i = 0; i < n_rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n_cols; ++j) acc += x[i * n_cols + j] * beta[j];
    out[i] = acc;
  }
}

}  // namespace

std::vector<double> ols_fit(const std::vector<double>& x, std::size_t n_rows,
                            std::size_t n_cols, const std::vector<double>& y) {
  if (x.size() != n_rows * n_cols || y.size() != n_rows) {
    throw std::invalid_argument("ols_fit: shape mismatch");
  }
  if (n_rows < n_cols) throw std::invalid_argument("ols_fit: underdetermined system");

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(n_cols * n_cols, 0.0);
  std::vector<double> xty(n_cols, 0.0);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (std::size_t j = 0; j < n_cols; ++j) {
      double xij = x[i * n_cols + j];
      xty[j] += xij * y[i];
      for (std::size_t k = 0; k <= j; ++k) {
        xtx[j * n_cols + k] += xij * x[i * n_cols + k];
      }
    }
  }
  // Symmetrize upper triangle.
  for (std::size_t j = 0; j < n_cols; ++j) {
    for (std::size_t k = j + 1; k < n_cols; ++k) xtx[j * n_cols + k] = xtx[k * n_cols + j];
  }
  // Tiny ridge keeps nearly-collinear profiling grids solvable.
  double trace = 0.0;
  for (std::size_t j = 0; j < n_cols; ++j) trace += xtx[j * n_cols + j];
  double ridge = 1e-12 * (trace > 0 ? trace : 1.0);
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<double> a = xtx;
    std::vector<double> b = xty;
    for (std::size_t j = 0; j < n_cols; ++j) a[j * n_cols + j] += ridge;
    if (cholesky_solve(a, b, n_cols)) return b;
    ridge *= 100.0;
  }
  throw std::runtime_error("ols_fit: singular normal matrix");
}

double r_squared(const std::vector<double>& x, std::size_t n_rows, std::size_t n_cols,
                 const std::vector<double>& y, const std::vector<double>& beta) {
  std::vector<double> pred;
  predict(x, n_rows, n_cols, beta, pred);
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n_rows);
  double ssr = 0.0, sst = 0.0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    ssr += (y[i] - pred[i]) * (y[i] - pred[i]);
    sst += (y[i] - mean) * (y[i] - mean);
  }
  if (sst == 0.0) return 1.0;
  return 1.0 - ssr / sst;
}

double mape_accuracy(const std::vector<double>& x, std::size_t n_rows, std::size_t n_cols,
                     const std::vector<double>& y, const std::vector<double>& beta) {
  std::vector<double> pred;
  predict(x, n_rows, n_cols, beta, pred);
  double err = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    if (std::abs(y[i]) < 1e-12) continue;
    err += std::abs(pred[i] - y[i]) / std::abs(y[i]);
    ++counted;
  }
  if (counted == 0) return 1.0;
  return 1.0 - err / static_cast<double>(counted);
}

}  // namespace hetis::costmodel
