// Small open-addressing memo table for pure cost-model evaluations.
//
// The simulator prices the same configurations millions of times: a decode
// iteration re-evaluates the identical dense stack for every recurring
// batch size, and batched attention re-derives the same per-sequence Work
// for every (context, heads) pair in flight.  EvalCache memoizes those
// pure functions exactly: the key is the full input tuple compared
// byte-for-byte (memcmp), so a hit returns a stored copy of precisely what
// recomputation would produce -- bit-identical by construction, which the
// golden CSV byte-compares in CI depend on.
//
// Keys must be trivially copyable and PADDING-FREE (memcmp compares every
// byte); compose them from same-width integer fields and zero-initialize.
// Capacity is fixed at construction (a power of two); when a probe window
// is full the oldest entry in the window is replaced, so the table can
// never grow on the hot path.  Entries are invalidated wholesale via
// clear() -- ExecModel calls it when the cluster's condition-overlay epoch
// moves, the only external state a cached evaluation can depend on.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace hetis::costmodel {

template <typename Key, typename Value>
class EvalCache {
 public:
  explicit EvalCache(std::size_t slots = 1024) {
    std::size_t n = 2;
    while (n < slots) n <<= 1;
    mask_ = n - 1;
    table_.resize(n);
  }

  /// Bitwise lookup; returns nullptr on miss.  The pointer is valid until
  /// the next insert() or clear().
  const Value* find(const Key& k) {
    const std::uint64_t h = hash(k);
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      const Slot& s = table_[(h + i) & mask_];
      if (!s.used) break;  // slots never free individually; see insert()
      if (s.hash == h && std::memcmp(&s.key, &k, sizeof(Key)) == 0) {
        ++hits_;
        return &s.value;
      }
    }
    ++misses_;
    return nullptr;
  }

  void insert(const Key& k, const Value& v) {
    const std::uint64_t h = hash(k);
    std::size_t victim = h & mask_;
    std::uint64_t victim_stamp = table_[victim].stamp;
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      Slot& s = table_[(h + i) & mask_];
      if (!s.used) {
        fill(s, h, k, v);
        return;
      }
      if (s.stamp < victim_stamp) {
        victim_stamp = s.stamp;
        victim = (h + i) & mask_;
      }
    }
    fill(table_[victim], h, k, v);
  }

  void clear() {
    for (Slot& s : table_) s.used = false;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kProbeWindow = 8;

  struct Slot {
    bool used = false;
    std::uint64_t stamp = 0;
    std::uint64_t hash = 0;
    Key key{};
    Value value{};
  };

  static std::uint64_t hash(const Key& k) {
    // FNV-1a folded 8 bytes at a time over the key's representation.
    constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t h = 1469598103934665603ull;
    const unsigned char* b = reinterpret_cast<const unsigned char*>(&k);
    std::size_t n = sizeof(Key);
    while (n >= 8) {
      std::uint64_t w;
      std::memcpy(&w, b, 8);
      h = (h ^ w) * kPrime;
      b += 8;
      n -= 8;
    }
    for (std::size_t i = 0; i < n; ++i) h = (h ^ b[i]) * kPrime;
    return h;
  }

  void fill(Slot& s, std::uint64_t h, const Key& k, const Value& v) {
    s.used = true;
    s.stamp = ++clock_;
    s.hash = h;
    s.key = k;
    s.value = v;
  }

  std::size_t mask_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Slot> table_;
};

}  // namespace hetis::costmodel
