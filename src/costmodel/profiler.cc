#include "costmodel/profiler.h"

#include <algorithm>
#include <cmath>

#include "costmodel/ols.h"

namespace hetis::costmodel {

Profiler::Profiler(const hw::Cluster& cluster, const model::ModelSpec& model,
                   ProfilerOptions opts)
    : cluster_(&cluster), model_(&model), opts_(opts), comm_(cluster), rng_(opts.seed) {}

Seconds Profiler::ground_truth_attention(int device_id, double heads, double cache_bytes) const {
  const hw::GpuSpec& gpu = cluster_->device(device_id).spec();
  if (heads <= 0.0) return 0.0;
  // Translate (heads, cache) into a representative single-layer batch:
  // each query head holds cache_bytes/heads of KV share, i.e. a context of
  //   ctx = share / (2 * head_dim * dtype / r)        [per-head K+V share]
  const double per_head_token_bytes =
      2.0 * model_->head_dim() * model_->dtype_bytes / model_->gqa_ratio();
  double ctx = cache_bytes / heads / per_head_token_bytes;
  ctx = std::max(1.0, ctx);
  model::Work w;
  const double d = model_->head_dim();
  w.flops = 4.0 * ctx * d * heads;
  w.kv_bytes = static_cast<Bytes>(cache_bytes);
  w.act_bytes = static_cast<Bytes>(2.0 * d * heads) * model_->dtype_bytes;
  w.kernels = 1;
  return kernel_.attention_time(gpu, w, heads);
}

Seconds Profiler::ground_truth_transfer(int src, int dst, Bytes volume) const {
  return comm_.p2p(src, dst, volume);
}

DeviceProfile Profiler::profile_device(int device_id) {
  const hw::GpuSpec& gpu = cluster_->device(device_id).spec();
  // Head grid: from one request's worth of heads up to a large serving
  // batch.  Cache grid: up to max_cache_fraction of device memory.
  const double h_lo = model_->heads;
  const double h_hi = model_->heads * 256.0;
  const double g_lo = 64.0 * MiB;
  const double g_hi = opts_.max_cache_fraction * static_cast<double>(gpu.memory);

  std::vector<double> xs;  // rows of [h, g, 1]
  std::vector<double> ys;
  for (int i = 0; i < opts_.grid_h; ++i) {
    double fh = opts_.grid_h == 1 ? 0.0 : static_cast<double>(i) / (opts_.grid_h - 1);
    double h = h_lo * std::pow(h_hi / h_lo, fh);
    for (int j = 0; j < opts_.grid_g; ++j) {
      double fg = opts_.grid_g == 1 ? 0.0 : static_cast<double>(j) / (opts_.grid_g - 1);
      double g = g_lo + fg * (g_hi - g_lo);
      double t = ground_truth_attention(device_id, h, g);
      double measured = t * (1.0 + rng_.normal(0.0, opts_.noise_stddev));
      xs.push_back(h);
      xs.push_back(g);
      xs.push_back(1.0);
      ys.push_back(std::max(0.0, measured));
    }
  }
  std::size_t rows = ys.size();
  std::vector<double> beta = ols_fit(xs, rows, 3, ys);

  DeviceProfile prof;
  prof.attn = AttnParams{beta[0], beta[1], beta[2]};
  // Non-negative coefficients: a tiny negative intercept from noise would
  // make the dispatcher underestimate small loads.
  prof.attn.a = std::max(prof.attn.a, 0.0);
  prof.attn.b = std::max(prof.attn.b, 0.0);
  prof.attn.c = std::max(prof.attn.c, 0.0);
  // Score the fit against the *true* (noise-free) curve, like the paper's
  // "ground truth" comparison.
  std::vector<double> truth(rows);
  for (std::size_t k = 0; k < rows; ++k) {
    truth[k] = ground_truth_attention(device_id, xs[k * 3], xs[k * 3 + 1]);
  }
  prof.attn_accuracy = mape_accuracy(xs, rows, 3, truth, beta);
  prof.attn_r2 = r_squared(xs, rows, 3, truth, beta);
  return prof;
}

LinkProfile Profiler::profile_link(int primary, int worker) {
  // Sweep the transfer volume over the head grid (Eq. 4's d_i depends on
  // offloaded heads).
  std::vector<double> xs;
  std::vector<double> ys;
  const int points = std::max(4, opts_.grid_h);
  for (int i = 0; i < points; ++i) {
    double heads = model_->heads * (1.0 + 31.0 * i / std::max(1, points - 1));
    Bytes vol = transfer_volume(*model_, heads);
    double t = ground_truth_transfer(primary, worker, vol);
    double measured = t * (1.0 + rng_.normal(0.0, opts_.noise_stddev));
    xs.push_back(static_cast<double>(vol));
    xs.push_back(1.0);
    ys.push_back(std::max(0.0, measured));
  }
  std::vector<double> beta = ols_fit(xs, ys.size(), 2, ys);
  LinkProfile prof;
  prof.transfer = TransferParams{std::max(beta[0], 0.0), std::max(beta[1], 0.0)};
  std::vector<double> truth(ys.size());
  for (std::size_t k = 0; k < ys.size(); ++k) {
    truth[k] = ground_truth_transfer(primary, worker, static_cast<Bytes>(xs[k * 2]));
  }
  prof.transfer_accuracy = mape_accuracy(xs, ys.size(), 2, truth, beta);
  return prof;
}

ProfileResult Profiler::profile_all() {
  ProfileResult result;
  for (const auto& dev : cluster_->devices()) {
    result.devices[dev.id] = profile_device(dev.id);
  }
  for (const auto& a : cluster_->devices()) {
    for (const auto& b : cluster_->devices()) {
      if (a.id == b.id) continue;
      result.links[{a.id, b.id}] = profile_link(a.id, b.id);
    }
  }
  return result;
}

}  // namespace hetis::costmodel
