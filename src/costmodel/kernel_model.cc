#include "costmodel/kernel_model.h"

#include <algorithm>
#include <stdexcept>

namespace hetis::costmodel {

namespace {
constexpr double kOccupancyFloor = 0.62;   // bw fraction at ~1 active head
constexpr double kOccupancySatHeads = 96;  // heads needed to saturate HBM
}  // namespace

double KernelModel::attention_occupancy(double active_heads) {
  if (active_heads <= 0) return kOccupancyFloor;
  double x = std::min(1.0, active_heads / kOccupancySatHeads);
  return kOccupancyFloor + (1.0 - kOccupancyFloor) * x;
}

Seconds KernelModel::dense_time(const hw::GpuSpec& gpu, const model::Work& work) const {
  double compute = work.flops / gpu.eff_flops();
  double memory = static_cast<double>(work.weight_bytes + work.act_bytes) / gpu.eff_dense_bw() +
                  static_cast<double>(work.kv_bytes) / gpu.eff_attn_bw();
  return std::max(compute, memory) + work.kernels * gpu.kernel_overhead;
}

Seconds KernelModel::attention_time(const hw::GpuSpec& gpu, const model::Work& work,
                                    double active_heads) const {
  double occupancy = attention_occupancy(active_heads);
  double compute = work.flops / gpu.eff_flops();
  double memory = static_cast<double>(work.kv_bytes) / (gpu.eff_attn_bw() * occupancy) +
                  static_cast<double>(work.act_bytes + work.weight_bytes) / gpu.eff_dense_bw();
  // Per-head scheduling/contention cost (Fig. 7c: time grows with #heads
  // even at fixed cache size).
  double contention = active_heads * gpu.attn_head_cost;
  return std::max(compute, memory) + contention + work.kernels * gpu.kernel_overhead;
}

Seconds KernelModel::dense_layer_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                      std::int64_t tokens, int shard) const {
  if (tokens <= 0) return 0.0;
  // QKV / OutProj / MLP launch as separate kernels; each individually
  // roofline-bound.
  Seconds t = 0.0;
  t += dense_time(gpu, model::qkv_work(m, tokens, shard));
  t += dense_time(gpu, model::out_proj_work(m, tokens, shard));
  t += dense_time(gpu, model::mlp_work(m, tokens, shard));
  return t;
}

Seconds KernelModel::decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                           const std::vector<std::int64_t>& ctxs,
                                           const std::vector<int>& heads) const {
  if (ctxs.size() != heads.size()) {
    throw std::invalid_argument("decode_attention_time: ctxs/heads size mismatch");
  }
  model::Work total;
  total.kernels = 0;
  double head_sum = 0;
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    if (heads[i] <= 0) continue;
    total += model::decode_attention_work(m, ctxs[i], heads[i]);
    head_sum += heads[i];
  }
  if (head_sum == 0) return 0.0;
  total.kernels = 1;
  return attention_time(gpu, total, head_sum);
}

Seconds KernelModel::decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                           const std::vector<std::int64_t>& ctxs,
                                           int heads) const {
  // Same accumulation as the parallel-arrays overload with every head count
  // equal -- identical floating-point order -- minus the temporary heads
  // vector, which this engine-side path would otherwise allocate once per
  // stage per decode iteration.
  if (heads <= 0) return 0.0;
  model::Work total;
  total.kernels = 0;
  double head_sum = 0;
  for (std::int64_t ctx : ctxs) {
    total += model::decode_attention_work(m, ctx, heads);
    head_sum += heads;
  }
  if (head_sum == 0) return 0.0;
  total.kernels = 1;
  return attention_time(gpu, total, head_sum);
}

Seconds KernelModel::decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                           const std::vector<std::int64_t>& ctxs, int heads,
                                           DecodeWorkCache* memo) const {
  if (heads <= 0) return 0.0;
  model::Work total;
  total.kernels = 0;
  double head_sum = 0;
  for (std::int64_t ctx : ctxs) {
    if (const model::Work* cached = memo->find(ctx, heads)) {
      total += *cached;
    } else {
      model::Work w = model::decode_attention_work(m, ctx, heads);
      memo->insert(ctx, heads, w);
      total += w;
    }
    head_sum += heads;
  }
  if (head_sum == 0) return 0.0;
  total.kernels = 1;
  return attention_time(gpu, total, head_sum);
}

Seconds KernelModel::prefill_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                            const std::vector<std::int64_t>& lens,
                                            int heads) const {
  if (lens.empty() || heads <= 0) return 0.0;
  model::Work total = model::prefill_attention_batch(m, lens, heads);
  // Prefill attention is compute-bound; occupancy is irrelevant at L^2 work.
  return attention_time(gpu, total, static_cast<double>(heads) * lens.size());
}

}  // namespace hetis::costmodel
