// Communication cost model (alpha-beta) for point-to-point transfers,
// ring collectives, and the head-wise vs sequence-wise Attention-offload
// traffic comparison of the paper's Fig. 5.
#pragma once

#include <vector>

#include "hw/topology.h"
#include "model/llm.h"

namespace hetis::costmodel {

class CommModel {
 public:
  explicit CommModel(const hw::Cluster& cluster) : cluster_(&cluster) {}

  /// Point-to-point transfer time between two devices.
  Seconds p2p(int src, int dst, Bytes bytes) const;

  /// Ring all-reduce across `group` (device ids): standard
  /// 2(n-1)/n * bytes over the slowest link + 2(n-1) latencies.
  Seconds allreduce(const std::vector<int>& group, Bytes bytes) const;

  /// Ring all-gather: each rank contributes bytes/n, result is bytes.
  Seconds allgather(const std::vector<int>& group, Bytes bytes) const;

  /// Slowest (min-bandwidth / max-latency) link among all pairs in group.
  hw::Link bottleneck_link(const std::vector<int>& group) const;

  // --- Attention-offload traffic (per decode iteration, per layer) ---

  /// HEAD-wise split (Hetis, Eq. d_i = (2 + 2/r) * h_i * head_dim * dtype):
  /// only the offloaded heads' q chunks travel out and their attention
  /// results travel back (factor 2), plus the new token's K/V shares
  /// (factor 2/r).
  static Bytes headwise_bytes_per_token(const model::ModelSpec& m, double offloaded_heads);

  /// SEQUENCE-wise split: every worker holding a slice of the sequence
  /// needs the FULL q vector (all H heads) and returns a full-width partial
  /// result plus softmax stats; the new token's K/V goes to one worker.
  static Bytes seqwise_bytes_per_token(const model::ModelSpec& m, int num_workers);

  /// Transfer time for offloading `offloaded_heads` query heads of one
  /// request from `primary` to `worker` for one decode step, all layers.
  Seconds headwise_offload_time(const model::ModelSpec& m, int primary, int worker,
                                double offloaded_heads) const;

  /// Same for a sequence-wise split across `workers`; returns the max
  /// per-worker time (transfers fan out in parallel but contend on the
  /// primary's NIC, modeled by serializing the sends).
  Seconds seqwise_offload_time(const model::ModelSpec& m, int primary,
                               const std::vector<int>& workers) const;

 private:
  const hw::Cluster* cluster_;
};

}  // namespace hetis::costmodel
