// Ordinary least squares via normal equations + Cholesky.
//
// The Profiler fits the paper's linear models (Eq. 3: tau = a*h + b*g + c,
// Eq. 4: rho = gamma*d + beta) from a handful of simulated micro-runs, so a
// small dense solver is all that's needed.
#pragma once

#include <cstddef>
#include <vector>

namespace hetis::costmodel {

/// Fits y ~ X * beta in the least-squares sense.
/// X is row-major, n_rows x n_cols (include a column of ones for an
/// intercept).  Returns the coefficient vector (size n_cols).
/// Throws std::invalid_argument on shape errors and std::runtime_error if
/// the normal matrix is singular beyond repair (a tiny ridge is applied
/// first to keep nearly-collinear profiling grids stable).
std::vector<double> ols_fit(const std::vector<double>& x, std::size_t n_rows,
                            std::size_t n_cols, const std::vector<double>& y);

/// R^2 goodness of fit for reporting (1 - SSR/SST).
double r_squared(const std::vector<double>& x, std::size_t n_rows, std::size_t n_cols,
                 const std::vector<double>& y, const std::vector<double>& beta);

/// Mean absolute percentage accuracy = 1 - mean(|pred-y|/|y|), the metric
/// the paper quotes ("accuracy levels reaching up to 93.8%", §7.4).
double mape_accuracy(const std::vector<double>& x, std::size_t n_rows, std::size_t n_cols,
                     const std::vector<double>& y, const std::vector<double>& beta);

}  // namespace hetis::costmodel
