// Roofline kernel-time model.
//
// Turns a model::Work footprint into execution time on a specific GPU:
//
//   t = max(flops / eff_flops,
//           (weight_bytes + act_bytes) / eff_dense_bw + kv_bytes / eff_attn_bw)
//       + kernels * kernel_overhead
//
// i.e. a module is either compute-bound or memory-bound, the classic
// roofline.  This single formula, with the per-GPU calibration fractions in
// hw/gpu.cc, reproduces the paper's Table 1 and the module-level gaps of
// Fig. 2 (MLP gap >> Attention gap across device generations).
//
// For decode attention a mild occupancy term models the head-contention
// effect of the paper's Fig. 7(c): with very few active heads the kernel
// cannot saturate HBM.  The effect is deliberately small and smooth so the
// Profiler's linear fit stays ~94% accurate, as reported in §7.4.
#pragma once

#include "costmodel/eval_cache.h"
#include "hw/gpu.h"
#include "model/llm.h"
#include "model/modules.h"

namespace hetis::costmodel {

/// (ctx, heads) -> decode_attention_work(m, ctx, heads).  The cached Work is
/// pure model geometry -- no GPU or condition-overlay dependency -- so the
/// table never needs epoch invalidation, but it DOES depend on the
/// ModelSpec: key one cache to exactly one model (ExecModel owns one).
///
/// Direct-indexed, not hashed: the key space is small and dense (heads is
/// bounded by the model's head count, ctx by the max sequence length), and
/// the memoized function is only a handful of multiplies -- a hash probe
/// costs as much as the compute it saves.  rows_[heads][ctx] makes a hit
/// two bounds checks and a load, and every decode context from 0..max gets
/// touched anyway, so the table is dense once warm.  Values are the exact
/// Work a real decode_attention_work call returned, so summing cached terms
/// is bit-identical to summing fresh ones.
class DecodeWorkCache {
 public:
  const model::Work* find(std::int64_t ctx, int heads) {
    if (static_cast<std::size_t>(heads) < rows_.size()) {
      const std::vector<Slot>& row = rows_[static_cast<std::size_t>(heads)];
      if (static_cast<std::size_t>(ctx) < row.size() && row[static_cast<std::size_t>(ctx)].known) {
        ++hits_;
        return &row[static_cast<std::size_t>(ctx)].work;
      }
    }
    ++misses_;
    return nullptr;
  }

  void insert(std::int64_t ctx, int heads, const model::Work& w) {
    if (heads < 0 || heads > kMaxHeads || ctx < 0 || ctx > kMaxCtx) return;
    if (static_cast<std::size_t>(heads) >= rows_.size()) {
      rows_.resize(static_cast<std::size_t>(heads) + 1);
    }
    std::vector<Slot>& row = rows_[static_cast<std::size_t>(heads)];
    if (static_cast<std::size_t>(ctx) >= row.size()) row.resize(static_cast<std::size_t>(ctx) + 1);
    row[static_cast<std::size_t>(ctx)].known = true;
    row[static_cast<std::size_t>(ctx)].work = w;
  }

  void clear() {
    rows_.clear();
    rows_.shrink_to_fit();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Slot {
    bool known = false;
    model::Work work{};
  };
  // Out-of-range keys are simply not cached (find misses, insert ignores);
  // the bounds only stop a wild key from growing the table without limit.
  static constexpr int kMaxHeads = 4096;
  static constexpr std::int64_t kMaxCtx = std::int64_t{1} << 22;

  std::vector<std::vector<Slot>> rows_;  // [heads][ctx]
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class KernelModel {
 public:
  KernelModel() = default;

  /// Time for a generic dense Work item on `gpu`.
  Seconds dense_time(const hw::GpuSpec& gpu, const model::Work& work) const;

  /// Time for an attention Work item on `gpu`.  `active_heads` drives the
  /// occupancy term (pass the total query heads the kernel processes).
  Seconds attention_time(const hw::GpuSpec& gpu, const model::Work& work,
                         double active_heads) const;

  /// Full dense stack of one layer: QKV + OutProj + MLP over `tokens`
  /// tokens, `shard`-way TP.
  Seconds dense_layer_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                           std::int64_t tokens, int shard = 1) const;

  /// Batched decode attention: per-sequence context lengths and query-head
  /// counts (parallel arrays).  This is the ground truth the Profiler fits
  /// its linear model (Eq. 3) against.
  Seconds decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                const std::vector<std::int64_t>& ctxs,
                                const std::vector<int>& heads) const;

  /// Convenience: uniform head count for all sequences.
  Seconds decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                const std::vector<std::int64_t>& ctxs, int heads) const;

  /// Uniform-heads variant with a per-sequence Work memo.  Bit-identical to
  /// the uncached overload: every cached term is the stored result of a real
  /// decode_attention_work call and the summation order is unchanged, so the
  /// accumulated total matches byte for byte.  `memo` must be dedicated to a
  /// single ModelSpec (the cached Work depends on `m`).
  Seconds decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                const std::vector<std::int64_t>& ctxs, int heads,
                                DecodeWorkCache* memo) const;

  /// Prefill attention for a batch of sequences (all `heads` query heads).
  Seconds prefill_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                 const std::vector<std::int64_t>& lens, int heads) const;

  /// Occupancy multiplier in (0, 1]: fraction of eff_attn_bw achieved when
  /// the decode-attention kernel processes `active_heads` query heads.
  static double attention_occupancy(double active_heads);
};

}  // namespace hetis::costmodel
