// Roofline kernel-time model.
//
// Turns a model::Work footprint into execution time on a specific GPU:
//
//   t = max(flops / eff_flops,
//           (weight_bytes + act_bytes) / eff_dense_bw + kv_bytes / eff_attn_bw)
//       + kernels * kernel_overhead
//
// i.e. a module is either compute-bound or memory-bound, the classic
// roofline.  This single formula, with the per-GPU calibration fractions in
// hw/gpu.cc, reproduces the paper's Table 1 and the module-level gaps of
// Fig. 2 (MLP gap >> Attention gap across device generations).
//
// For decode attention a mild occupancy term models the head-contention
// effect of the paper's Fig. 7(c): with very few active heads the kernel
// cannot saturate HBM.  The effect is deliberately small and smooth so the
// Profiler's linear fit stays ~94% accurate, as reported in §7.4.
#pragma once

#include "hw/gpu.h"
#include "model/llm.h"
#include "model/modules.h"

namespace hetis::costmodel {

class KernelModel {
 public:
  KernelModel() = default;

  /// Time for a generic dense Work item on `gpu`.
  Seconds dense_time(const hw::GpuSpec& gpu, const model::Work& work) const;

  /// Time for an attention Work item on `gpu`.  `active_heads` drives the
  /// occupancy term (pass the total query heads the kernel processes).
  Seconds attention_time(const hw::GpuSpec& gpu, const model::Work& work,
                         double active_heads) const;

  /// Full dense stack of one layer: QKV + OutProj + MLP over `tokens`
  /// tokens, `shard`-way TP.
  Seconds dense_layer_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                           std::int64_t tokens, int shard = 1) const;

  /// Batched decode attention: per-sequence context lengths and query-head
  /// counts (parallel arrays).  This is the ground truth the Profiler fits
  /// its linear model (Eq. 3) against.
  Seconds decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                const std::vector<std::int64_t>& ctxs,
                                const std::vector<int>& heads) const;

  /// Convenience: uniform head count for all sequences.
  Seconds decode_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                const std::vector<std::int64_t>& ctxs, int heads) const;

  /// Prefill attention for a batch of sequences (all `heads` query heads).
  Seconds prefill_attention_time(const hw::GpuSpec& gpu, const model::ModelSpec& m,
                                 const std::vector<std::int64_t>& lens, int heads) const;

  /// Occupancy multiplier in (0, 1]: fraction of eff_attn_bw achieved when
  /// the decode-attention kernel processes `active_heads` query heads.
  static double attention_occupancy(double active_heads);
};

}  // namespace hetis::costmodel
