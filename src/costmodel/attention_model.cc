#include "costmodel/attention_model.h"

#include <sstream>

namespace hetis::costmodel {

std::string AttnParams::to_string() const {
  std::ostringstream oss;
  oss << "AttnParams{a=" << a << " s/head, b=" << b << " s/B, c=" << c << " s}";
  return oss.str();
}

std::string TransferParams::to_string() const {
  std::ostringstream oss;
  oss << "TransferParams{gamma=" << gamma << " s/B, beta=" << beta << " s}";
  return oss.str();
}

Bytes transfer_volume(const model::ModelSpec& m, double heads) {
  if (heads <= 0.0) return 0;
  const double r = m.gqa_ratio();
  const double per_head_per_layer =
      (2.0 + 2.0 / r) * static_cast<double>(m.head_dim()) * m.dtype_bytes;
  return static_cast<Bytes>(per_head_per_layer * heads * m.layers);
}

}  // namespace hetis::costmodel
