#include "costmodel/comm_model.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hetis::costmodel {

Seconds CommModel::p2p(int src, int dst, Bytes bytes) const {
  if (src == dst || bytes <= 0) return 0.0;
  return cluster_->link(src, dst).transfer_time(bytes);
}

hw::Link CommModel::bottleneck_link(const std::vector<int>& group) const {
  hw::Link worst{0.0, std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      hw::Link l = cluster_->link(group[i], group[j]);
      worst.latency = std::max(worst.latency, l.latency);
      worst.bandwidth = std::min(worst.bandwidth, l.bandwidth);
    }
  }
  return worst;
}

Seconds CommModel::allreduce(const std::vector<int>& group, Bytes bytes) const {
  const auto n = static_cast<double>(group.size());
  if (group.size() <= 1 || bytes <= 0) return 0.0;
  hw::Link l = bottleneck_link(group);
  return 2.0 * (n - 1.0) * l.latency +
         2.0 * (n - 1.0) / n * static_cast<double>(bytes) / l.bandwidth;
}

Seconds CommModel::allgather(const std::vector<int>& group, Bytes bytes) const {
  const auto n = static_cast<double>(group.size());
  if (group.size() <= 1 || bytes <= 0) return 0.0;
  hw::Link l = bottleneck_link(group);
  return (n - 1.0) * l.latency + (n - 1.0) / n * static_cast<double>(bytes) / l.bandwidth;
}

Bytes CommModel::headwise_bytes_per_token(const model::ModelSpec& m, double offloaded_heads) {
  if (offloaded_heads <= 0) return 0;
  const double r = m.gqa_ratio();
  const double per_head = static_cast<double>(m.head_dim()) * m.dtype_bytes;
  // (2 + 2/r) * h_i * head_dim * dtype  -- q out + result back + K,V shares.
  return static_cast<Bytes>((2.0 + 2.0 / r) * offloaded_heads * per_head);
}

Bytes CommModel::seqwise_bytes_per_token(const model::ModelSpec& m, int num_workers) {
  if (num_workers <= 0) return 0;
  const double r = m.gqa_ratio();
  const double full_q = static_cast<double>(m.heads) * m.head_dim() * m.dtype_bytes;
  // Each of the num_workers cache slices receives the FULL q and sends a
  // full-width partial result + softmax stats (~same width), so the
  // replication factor is num_workers; the fresh token's K/V lands on one
  // worker only.
  double kv_new = 2.0 / r * full_q;
  return static_cast<Bytes>(num_workers * 2.0 * full_q + kv_new);
}

Seconds CommModel::headwise_offload_time(const model::ModelSpec& m, int primary, int worker,
                                         double offloaded_heads) const {
  if (offloaded_heads <= 0) return 0.0;
  Bytes per_layer = headwise_bytes_per_token(m, offloaded_heads);
  // Transfers for all layers of one decode step are batched into a single
  // message pair in practice (NCCL group), so pay latency once per
  // direction and bandwidth for the full volume.
  hw::Link l = cluster_->link(primary, worker);
  return 2.0 * l.latency +
         static_cast<double>(per_layer) * m.layers / l.bandwidth;
}

Seconds CommModel::seqwise_offload_time(const model::ModelSpec& m, int primary,
                                        const std::vector<int>& workers) const {
  if (workers.empty()) return 0.0;
  // The primary serializes the q broadcasts on its NIC; the gathers arrive
  // back over the same bottleneck.  Volume per worker is the full q width;
  // the fresh token's K/V additionally lands on exactly one worker.
  const double full_q = static_cast<double>(m.heads) * m.head_dim() * m.dtype_bytes;
  const double kv_new = 2.0 / m.gqa_ratio() * full_q;
  Seconds total = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    hw::Link l = cluster_->link(primary, workers[i]);
    double vol = 2.0 * full_q * m.layers;
    if (i == 0) vol += kv_new * m.layers;
    total += 2.0 * l.latency + vol / l.bandwidth;
  }
  return total;
}

}  // namespace hetis::costmodel
