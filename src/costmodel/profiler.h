// The Profiler (paper §3.2 module 2, §5.1, §7.4).
//
// Runs a lightweight grid of simulated Attention micro-executions on every
// device (the paper uses 8 values of h x 8 values of g, one layer each)
// and fits the linear models of Eq. 3 / Eq. 4 by OLS.  Measurement noise
// (seeded, multiplicative) models the variance a real profiling run sees;
// the paper reports the resulting fit accuracy: up to 93.8% for
// computation and 92.4-96.1% for transfer.
//
// The fitted parameters, NOT the kernel model, are what the online
// Dispatcher consumes -- exactly the paper's separation between offline
// profiling and online optimization.  The `error_injection` knob scales
// fitted coefficients to reproduce the robustness study of Fig. 16(b).
#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "costmodel/attention_model.h"
#include "costmodel/comm_model.h"
#include "costmodel/kernel_model.h"
#include "hw/topology.h"
#include "model/llm.h"

namespace hetis::costmodel {

struct DeviceProfile {
  AttnParams attn;            // Eq. 3 fit
  double attn_accuracy = 0;   // 1 - MAPE on the profiling grid
  double attn_r2 = 0;
};

struct LinkProfile {
  TransferParams transfer;    // Eq. 4 fit
  double transfer_accuracy = 0;
};

struct ProfileResult {
  // Keyed by device id.
  std::map<int, DeviceProfile> devices;
  // Keyed by (src, dst) device pair.
  std::map<std::pair<int, int>, LinkProfile> links;

  const AttnParams& attn(int device) const { return devices.at(device).attn; }
  const TransferParams& transfer(int src, int dst) const {
    return links.at({src, dst}).transfer;
  }
  bool has_link(int src, int dst) const { return links.count({src, dst}) > 0; }
};

struct ProfilerOptions {
  int grid_h = 8;                // # of head-count grid points (paper: 8)
  int grid_g = 8;                // # of cache-size grid points (paper: 8)
  double noise_stddev = 0.03;    // multiplicative measurement noise
  std::uint64_t seed = 2025;
  // Fraction of device memory the cache grid may reach (one layer's worth
  // of profiling cache must fit comfortably).
  double max_cache_fraction = 0.25;
};

class Profiler {
 public:
  Profiler(const hw::Cluster& cluster, const model::ModelSpec& model,
           ProfilerOptions opts = {});

  /// Profiles one device's decode-Attention time model.
  DeviceProfile profile_device(int device_id);

  /// Profiles the transfer model between a primary and an attention worker.
  LinkProfile profile_link(int primary, int worker);

  /// Profiles all devices and all ordered pairs (p, w), p != w.
  ProfileResult profile_all();

  /// Ground-truth attention time for (heads, cache_bytes) on a device --
  /// what a real micro-run would measure, before noise.
  Seconds ground_truth_attention(int device_id, double heads, double cache_bytes) const;

  /// Ground-truth transfer time for `volume` bytes between two devices.
  Seconds ground_truth_transfer(int src, int dst, Bytes volume) const;

 private:
  const hw::Cluster* cluster_;
  const model::ModelSpec* model_;
  ProfilerOptions opts_;
  KernelModel kernel_;
  CommModel comm_;
  Rng rng_;
};

}  // namespace hetis::costmodel
