// LLM architecture descriptors.
//
// Serving-time behaviour depends only on tensor *shapes* (layers, hidden
// size, head counts, FFN width), never on weight values, so a ModelSpec is
// all the simulator needs.  Presets cover every model in the paper's
// evaluation (Llama-13B, OPT-30B, Llama-70B) plus the motivation-section
// models (OPT-2.7B, Llama2-7B).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hetis::model {

/// MLP family: OPT uses a 2-matrix up/down MLP, Llama a 3-matrix gated MLP.
enum class MlpKind : std::uint8_t { kStandard, kGated };

struct ModelSpec {
  std::string name;
  int layers = 0;
  int hidden = 0;        // model (embedding) dimension
  int heads = 0;         // query heads H
  int kv_heads = 0;      // grouped key/value heads (== heads for MHA)
  int ffn = 0;           // MLP intermediate dimension
  int vocab = 0;
  MlpKind mlp = MlpKind::kStandard;
  int dtype_bytes = 2;   // FP16 serving

  int head_dim() const { return hidden / heads; }
  /// Query-heads : KV-heads ratio r (paper §5.1); 1 for MHA, 8 for Llama-70B.
  int gqa_ratio() const { return heads / kv_heads; }
  bool is_gqa() const { return kv_heads < heads; }

  /// KV-cache dimension = kv_heads * head_dim.
  int kv_dim() const { return kv_heads * head_dim(); }

  /// Bytes of K+V cached per token per layer.
  Bytes kv_bytes_per_token_layer() const {
    return static_cast<Bytes>(2) * kv_dim() * dtype_bytes;
  }
  /// Bytes of K+V cached per token across all layers.
  Bytes kv_bytes_per_token() const { return kv_bytes_per_token_layer() * layers; }
  /// Bytes of K+V cached per token per layer for ONE query-head's group
  /// share: head-wise accounting divides the per-token cache across the H
  /// query heads (each KV head is shared by r query heads).
  double kv_bytes_per_token_layer_per_head() const {
    return static_cast<double>(kv_bytes_per_token_layer()) / heads;
  }

  /// Weight bytes of one transformer layer.
  Bytes layer_param_bytes() const;
  /// Total parameter bytes (layers + embeddings + LM head).
  Bytes param_bytes() const;
  /// Approximate parameter count.
  double param_count() const { return static_cast<double>(param_bytes()) / dtype_bytes; }

  std::string to_string() const;
};

/// Named presets.  Throws std::out_of_range for unknown names.
const ModelSpec& opt_2_7b();
const ModelSpec& opt_13b();
const ModelSpec& opt_30b();
const ModelSpec& llama_13b();
const ModelSpec& llama2_7b();
const ModelSpec& llama_70b();
const ModelSpec& model_by_name(const std::string& name);

}  // namespace hetis::model
