#include "model/llm.h"

#include <sstream>
#include <stdexcept>

namespace hetis::model {

Bytes ModelSpec::layer_param_bytes() const {
  const std::int64_t h = hidden;
  const std::int64_t kvd = kv_dim();
  const std::int64_t f = ffn;
  std::int64_t qkv = h * (h + 2 * kvd);
  std::int64_t out = h * h;
  std::int64_t mlp_params = (mlp == MlpKind::kGated ? 3 : 2) * h * f;
  std::int64_t norms = 2 * h;  // two layernorms/rmsnorms
  return (qkv + out + mlp_params + norms) * dtype_bytes;
}

Bytes ModelSpec::param_bytes() const {
  std::int64_t embed = 2ll * vocab * hidden;  // input embedding + LM head
  return layer_param_bytes() * layers + embed * dtype_bytes;
}

std::string ModelSpec::to_string() const {
  std::ostringstream oss;
  oss << name << "{L=" << layers << ", h=" << hidden << ", heads=" << heads << "/" << kv_heads
      << ", ffn=" << ffn << ", params=" << param_count() / 1e9 << "B}";
  return oss.str();
}

namespace {
ModelSpec make(const std::string& name, int layers, int hidden, int heads, int kv_heads, int ffn,
               int vocab, MlpKind mlp) {
  ModelSpec spec;
  spec.name = name;
  spec.layers = layers;
  spec.hidden = hidden;
  spec.heads = heads;
  spec.kv_heads = kv_heads;
  spec.ffn = ffn;
  spec.vocab = vocab;
  spec.mlp = mlp;
  return spec;
}
}  // namespace

const ModelSpec& opt_2_7b() {
  static const ModelSpec spec =
      make("OPT-2.7B", 32, 2560, 32, 32, 10240, 50272, MlpKind::kStandard);
  return spec;
}

const ModelSpec& opt_13b() {
  static const ModelSpec spec =
      make("OPT-13B", 40, 5120, 40, 40, 20480, 50272, MlpKind::kStandard);
  return spec;
}

const ModelSpec& opt_30b() {
  static const ModelSpec spec =
      make("OPT-30B", 48, 7168, 56, 56, 28672, 50272, MlpKind::kStandard);
  return spec;
}

const ModelSpec& llama_13b() {
  static const ModelSpec spec = make("Llama-13B", 40, 5120, 40, 40, 13824, 32000, MlpKind::kGated);
  return spec;
}

const ModelSpec& llama2_7b() {
  static const ModelSpec spec = make("Llama2-7B", 32, 4096, 32, 32, 11008, 32000, MlpKind::kGated);
  return spec;
}

const ModelSpec& llama_70b() {
  static const ModelSpec spec = make("Llama-70B", 80, 8192, 64, 8, 28672, 32000, MlpKind::kGated);
  return spec;
}

const ModelSpec& model_by_name(const std::string& name) {
  if (name == "OPT-2.7B") return opt_2_7b();
  if (name == "OPT-13B") return opt_13b();
  if (name == "OPT-30B") return opt_30b();
  if (name == "Llama-13B") return llama_13b();
  if (name == "Llama2-7B") return llama2_7b();
  if (name == "Llama-70B") return llama_70b();
  throw std::out_of_range("model_by_name: unknown model '" + name + "'");
}

}  // namespace hetis::model
