// Per-module FLOP / byte calculators.
//
// Hetis's whole premise is that LLM modules have *different* arithmetic
// intensity (dense MLP/QKV/proj vs. parameter-free Attention, §2.3), so the
// cost model needs module-level resolution.  A `Work` item describes one
// module invocation; costmodel/kernel_model.* turns Work into time on a
// specific GPU.
//
// Conventions (per layer unless noted):
//   prefill batch: `tokens` = sum of prompt lengths in the batch
//   decode  batch: one query token per sequence; `tokens` = #sequences
//   TP sharding divides flops/weight-bytes by the shard count; the
//   calculators accept a `shard` divisor so callers don't duplicate that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "model/llm.h"

namespace hetis::model {

enum class Module : std::uint8_t { kQkv, kAttention, kOutProj, kMlp };
enum class Phase : std::uint8_t { kPrefill, kDecode };

const char* to_string(Module m);
const char* to_string(Phase p);

/// One module invocation's resource footprint on a device.
struct Work {
  Flops flops = 0;          // floating point ops
  Bytes weight_bytes = 0;   // parameter bytes streamed from HBM
  Bytes act_bytes = 0;      // activation bytes read+written
  Bytes kv_bytes = 0;       // KV-cache bytes streamed (attention only)
  int kernels = 1;          // kernel launches (overhead accounting)

  Work& operator+=(const Work& o);
};
Work operator+(Work a, const Work& b);

/// Dense QKV projection over `tokens` tokens, sharded `shard` ways.
Work qkv_work(const ModelSpec& m, std::int64_t tokens, int shard = 1);

/// Dense attention-output projection.
Work out_proj_work(const ModelSpec& m, std::int64_t tokens, int shard = 1);

/// Dense MLP (up[/gate]/down).
Work mlp_work(const ModelSpec& m, std::int64_t tokens, int shard = 1);

/// Prefill self-attention over one sequence of length `len`, computing
/// `heads` of the model's query heads (head-parallel sharding).
Work prefill_attention_work(const ModelSpec& m, std::int64_t len, int heads);

/// Decode self-attention for one sequence with context length `ctx`,
/// computing `heads` query heads whose KV shares live on this device.
Work decode_attention_work(const ModelSpec& m, std::int64_t ctx, int heads);

/// All dense modules (QKV + OutProj + MLP) for `tokens` tokens, `shard`-way
/// tensor-parallel.  Excludes attention.
Work dense_layer_work(const ModelSpec& m, std::int64_t tokens, int shard = 1);

/// Context lengths -> total prefill attention work for a batch (all heads).
Work prefill_attention_batch(const ModelSpec& m, const std::vector<std::int64_t>& lens,
                             int heads);

/// Context lengths -> total decode attention work for a batch (all on one
/// device, `heads` query heads per sequence).
Work decode_attention_batch(const ModelSpec& m, const std::vector<std::int64_t>& ctxs, int heads);

}  // namespace hetis::model
