#include "model/modules.h"

namespace hetis::model {

const char* to_string(Module m) {
  switch (m) {
    case Module::kQkv: return "QKV";
    case Module::kAttention: return "Attention";
    case Module::kOutProj: return "OutProj";
    case Module::kMlp: return "MLP";
  }
  return "?";
}

const char* to_string(Phase p) { return p == Phase::kPrefill ? "prefill" : "decode"; }

Work& Work::operator+=(const Work& o) {
  flops += o.flops;
  weight_bytes += o.weight_bytes;
  act_bytes += o.act_bytes;
  kv_bytes += o.kv_bytes;
  kernels += o.kernels;
  return *this;
}

Work operator+(Work a, const Work& b) {
  a += b;
  return a;
}

Work qkv_work(const ModelSpec& m, std::int64_t tokens, int shard) {
  const double h = m.hidden;
  const double out_dim = (m.hidden + 2.0 * m.kv_dim()) / shard;
  Work w;
  w.flops = 2.0 * static_cast<double>(tokens) * h * out_dim;
  w.weight_bytes = static_cast<Bytes>(h * out_dim) * m.dtype_bytes;
  w.act_bytes = static_cast<Bytes>(tokens * (h + out_dim)) * m.dtype_bytes;
  w.kernels = 1;
  return w;
}

Work out_proj_work(const ModelSpec& m, std::int64_t tokens, int shard) {
  const double h = m.hidden;
  Work w;
  w.flops = 2.0 * static_cast<double>(tokens) * h * h / shard;
  w.weight_bytes = static_cast<Bytes>(h * h / shard) * m.dtype_bytes;
  w.act_bytes = static_cast<Bytes>(tokens) * 2 * m.hidden * m.dtype_bytes;
  w.kernels = 1;
  return w;
}

Work mlp_work(const ModelSpec& m, std::int64_t tokens, int shard) {
  const double h = m.hidden;
  const double f = static_cast<double>(m.ffn) / shard;
  const int mats = m.mlp == MlpKind::kGated ? 3 : 2;
  Work w;
  w.flops = 2.0 * static_cast<double>(tokens) * h * f * mats;
  w.weight_bytes = static_cast<Bytes>(mats * h * f) * m.dtype_bytes;
  w.act_bytes = static_cast<Bytes>(tokens * (h + f)) * 2 * m.dtype_bytes;
  w.kernels = mats;
  return w;
}

Work dense_layer_work(const ModelSpec& m, std::int64_t tokens, int shard) {
  return qkv_work(m, tokens, shard) + out_proj_work(m, tokens, shard) +
         mlp_work(m, tokens, shard);
}

Work prefill_attention_work(const ModelSpec& m, std::int64_t len, int heads) {
  const double d = m.head_dim();
  const double l = static_cast<double>(len);
  Work w;
  // QK^T and AV are each 2*L^2*d flops per head; the causal mask halves the
  // useful triangle.  Total: 2 * (2 L^2 d) * 0.5 = 2 L^2 d per head.
  w.flops = 2.0 * l * l * d * heads;
  // Streaming Q/K/V/O activations; KV write to cache.
  w.act_bytes = static_cast<Bytes>(4.0 * l * d * heads) * m.dtype_bytes;
  w.kv_bytes = static_cast<Bytes>(2.0 * l * d * heads / m.gqa_ratio()) * m.dtype_bytes;
  w.kernels = 1;
  return w;
}

Work decode_attention_work(const ModelSpec& m, std::int64_t ctx, int heads) {
  const double d = m.head_dim();
  const double l = static_cast<double>(ctx);
  Work w;
  // One query token attends to ctx keys and values: 4*L*d flops per head.
  w.flops = 4.0 * l * d * heads;
  // KV streamed from HBM; each KV head is shared by gqa_ratio query heads,
  // so `heads` query heads touch heads/r KV-head shares.
  w.kv_bytes = static_cast<Bytes>(2.0 * l * d * heads / m.gqa_ratio()) * m.dtype_bytes;
  w.act_bytes = static_cast<Bytes>(2.0 * d * heads) * m.dtype_bytes;
  w.kernels = 1;
  return w;
}

Work prefill_attention_batch(const ModelSpec& m, const std::vector<std::int64_t>& lens,
                             int heads) {
  Work total;
  total.kernels = 0;
  for (std::int64_t len : lens) total += prefill_attention_work(m, len, heads);
  total.kernels = 1;  // batched kernel
  return total;
}

Work decode_attention_batch(const ModelSpec& m, const std::vector<std::int64_t>& ctxs, int heads) {
  Work total;
  total.kernels = 0;
  for (std::int64_t ctx : ctxs) total += decode_attention_work(m, ctx, heads);
  total.kernels = 1;  // PagedAttention runs as one batched kernel
  return total;
}

}  // namespace hetis::model
