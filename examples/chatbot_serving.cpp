// Chatbot serving scenario (paper §7.2): a ShareGPT-like conversational
// workload on the paper cluster, served by all three systems side by side.
//
//   build/examples/chatbot_serving [model] [rate] [horizon_seconds] [--csv]
//
// model in {Llama-13B, OPT-30B, Llama-70B}.  Declared as one
// harness::ExperimentSpec and executed through the engine registry; prints
// a per-system metric table (like the rows behind Fig. 8-10) with SLO
// attainment and goodput under interactive chat targets, or the aligned
// CSV rows with --csv.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace {

void print_row(const hetis::harness::SweepRow& row) {
  const auto& rep = row.report;
  std::printf("%-10s %8zu/%-8zu %12.4f %10.3f %10.4f %9.1f%% %8.2f %8d\n", rep.engine.c_str(),
              rep.finished, rep.arrived, rep.norm_latency_mean, rep.ttft_p95, rep.tpot_p95,
              rep.slo_attainment * 100, rep.goodput, rep.preemptions);
  if (rep.drain_timeout_hit) std::printf("  WARNING: %s\n", rep.warning().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;

  bool csv = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  std::string model_name = positional.size() > 0 ? positional[0] : "Llama-13B";
  double rate = positional.size() > 1 ? std::atof(positional[1].c_str()) : 6.0;
  double horizon = positional.size() > 2 ? std::atof(positional[2].c_str()) : 60.0;

  harness::ExperimentSpec spec;
  spec.name = "chatbot";
  spec.models = {model_name};
  spec.workloads = {{workload::Dataset::kShareGPT, rate}};
  spec.horizon = horizon;
  spec.seed = 7;
  spec.run = engine::RunOptions(900.0);
  engine::SloSpec slo;
  slo.ttft = 2.0;   // interactive chat targets
  slo.tpot = 0.15;
  spec.run.slo = slo;
  engine::HetisConfig hetis_cfg;
  hetis_cfg.workload.decode_batch = 64;
  spec.engine_options["hetis"] = engine::EngineOptions(hetis_cfg);

  if (csv) {
    harness::write_csv(std::cout, harness::run_sweep(spec));
    return 0;
  }

  std::printf("chatbot workload: %s @ %.1f req/s over %.0fs, paper cluster\n", model_name.c_str(),
              rate, horizon);
  std::printf("SLO: TTFT <= %.1fs, TPOT <= %.2fs\n\n", slo.ttft, slo.tpot);
  std::printf("%-10s %-17s %12s %10s %10s %10s %8s %8s\n", "system", "finished", "norm(s/tok)",
              "TTFT p95", "TPOT p95", "SLO att.", "goodput", "preempt");
  harness::run_sweep(spec, print_row);
  return 0;
}
