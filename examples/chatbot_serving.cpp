// Chatbot serving scenario (paper §7.2): a ShareGPT-like conversational
// workload on the paper cluster, served by all three systems side by side.
//
//   build/examples/chatbot_serving [model] [rate] [horizon_seconds]
//
// model in {Llama-13B, OPT-30B, Llama-70B}.  Prints a per-system metric
// table like the rows behind Fig. 8-10.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace {

void print_row(const hetis::engine::RunReport& rep) {
  std::printf("%-10s %8zu/%-8zu %12.4f %10.3f %10.4f %10.1f %8d\n", rep.engine.c_str(),
              rep.finished, rep.arrived, rep.norm_latency_mean, rep.ttft_p95, rep.tpot_p95,
              hetis::to_gb(rep.usable_kv), rep.preemptions);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;

  std::string model_name = argc > 1 ? argv[1] : "Llama-13B";
  double rate = argc > 2 ? std::atof(argv[2]) : 6.0;
  double horizon = argc > 3 ? std::atof(argv[3]) : 60.0;

  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::model_by_name(model_name);

  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = rate;
  topts.horizon = horizon;
  topts.seed = 7;
  auto trace = workload::build_trace(topts);

  std::printf("chatbot workload: %s @ %.1f req/s, %zu requests, cluster %s\n\n",
              model.name.c_str(), rate, trace.size(), cluster.to_string().c_str());
  std::printf("%-10s %-17s %12s %10s %10s %10s %8s\n", "system", "finished", "norm(s/tok)",
              "TTFT p95", "TPOT p95", "KV (GB)", "preempt");

  {
    baselines::SplitwiseEngine eng(cluster, model);
    print_row(engine::run_trace(eng, trace));
  }
  {
    baselines::HexgenEngine eng(cluster, model);
    print_row(engine::run_trace(eng, trace));
  }
  {
    core::HetisOptions opts;
    opts.workload.decode_batch = 64;
    core::HetisEngine eng(cluster, model, opts);
    print_row(engine::run_trace(eng, trace));
    std::printf("\nHetis plan: %s\n", eng.plan().to_string(cluster).c_str());
    std::printf("Hetis re-dispatches: %d balance, %d rescue; migrated %.2f GB\n",
                eng.balance_redispatches(), eng.rescue_redispatches(),
                to_gb(eng.migrated_bytes()));
  }
  return 0;
}
