// Cluster planner: runs the Parallelizer (§4.1) as a standalone planning
// tool over a user-described heterogeneous cluster and prints the selected
// primary-worker parallelism, the Attention-worker pool, the KV capacity,
// and the search diagnostics -- then validates the plan by serving a short
// ShareGPT trace through the registry front-end with the plan pinned via
// EngineOptions.
//
//   build/examples/cluster_planner [--objective NAME] [--planner NAME]
//                                  [model] [gpu=count ...]
//   e.g. build/examples/cluster_planner Llama-70B A100=4 3090=4 P100=4
//        build/examples/cluster_planner OPT-30B  H100=2 V100=8 T4=8
//        build/examples/cluster_planner --objective latency Llama-13B
//        build/examples/cluster_planner --planner flow Llama-70B H100=64 A100=96
//
// Without GPU arguments, plans the paper cluster.  --objective selects the
// search policy (throughput | latency | goodput_per_device, see
// parallel/objective.h); the default reproduces the paper's cheapest-cost
// search.  --planner selects the placement tier (exhaustive | flow | auto,
// see planner/planner.h); the default "auto" searches exhaustively on
// small clusters and switches to the LP/flow tier at datacenter scale.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/options.h"
#include "engine/registry.h"
#include "harness/presets.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "parallel/parallelizer.h"
#include "planner/planner.h"
#include "workload/trace.h"

namespace {

hetis::hw::GpuType gpu_by_name(const std::string& name) {
  using hetis::hw::GpuType;
  for (GpuType t : {GpuType::kA100_80G, GpuType::kRTX3090, GpuType::kP100, GpuType::kV100_32G,
                    GpuType::kT4, GpuType::kL4, GpuType::kA6000, GpuType::kH100_80G}) {
    if (name == hetis::hw::to_string(t)) return t;
  }
  std::fprintf(stderr, "unknown GPU type '%s' (try A100, 3090, P100, V100, T4, L4, A6000, "
                       "H100)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;

  // Pull --objective/--planner out of argv; the rest stays positional.
  std::string objective_name = "throughput";
  std::string planner_name = "auto";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--objective") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--objective expects a name (throughput | latency | "
                             "goodput_per_device)\n");
        return 1;
      }
      objective_name = argv[++i];
      continue;
    }
    if (std::string(argv[i]) == "--planner") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--planner expects a name (exhaustive | flow | auto)\n");
        return 1;
      }
      planner_name = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }

  // A leading gpu=count means the model name was omitted; catch it before
  // model_by_name throws an uncaught out_of_range on "A100=4".
  if (!args.empty() && args[0].find('=') != std::string::npos) {
    std::fprintf(stderr, "usage: cluster_planner [--objective NAME] [model] [gpu=count ...]\n");
    return 1;
  }
  std::string model_name = !args.empty() ? args[0] : "Llama-70B";
  const model::ModelSpec& model = model::model_by_name(model_name);

  hw::Cluster cluster;
  if (args.size() > 1) {
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "expected gpu=count, got '%s'\n", arg.c_str());
        return 1;
      }
      hw::GpuType type = gpu_by_name(arg.substr(0, eq));
      int count = std::atoi(arg.c_str() + eq + 1);
      // 4 GPUs per host, like typical PCIe boxes.
      int host_idx = 0;
      while (count > 0) {
        int n = std::min(4, count);
        cluster.add_host(arg.substr(0, eq) + "-" + std::to_string(host_idx++), type, n);
        count -= n;
      }
    }
  } else {
    cluster = harness::cluster_by_name("paper");
  }

  std::printf("model:   %s (%.1fB params, %.1f GB FP16)\n", model.name.c_str(),
              model.param_count() / 1e9, to_gb(model.param_bytes()));
  std::printf("cluster: %s\n\n", cluster.to_string().c_str());

  parallel::WorkloadProfile profile;
  profile.prefill_tokens = 4096;
  profile.decode_batch = 64;
  profile.mean_context = 512;
  profile.decode_weight = 256;

  parallel::ParallelizerOptions popts;
  popts.objective.name = objective_name;  // make_objective validates below
  popts.planner = planner_name;
  auto planner = planner::make(planner_name, cluster, model, popts);
  parallel::ParallelPlan plan = planner->plan(profile);
  const parallel::SearchDiagnostics& diag = planner->diagnostics();
  const parallel::PlanEvaluator evaluator(cluster, model);
  const parallel::PlanEstimate estimate = evaluator.evaluate(plan, profile);

  std::printf("objective: %s, planner: %s\n", diag.objective.c_str(), diag.planner.c_str());
  std::printf("selected plan: %s\n\n", plan.to_string(cluster, &diag).c_str());
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& inst = plan.instances[i];
    std::printf("instance %zu:\n", i);
    for (std::size_t k = 0; k < inst.stages.size(); ++k) {
      const auto& s = inst.stages[k];
      Bytes params = engine::stage_param_bytes_per_device(model, s, k == 0,
                                                          k + 1 == inst.stages.size());
      std::printf("  stage %zu: %d x %s (TP%zu), %d layers, %.1f GB params/device, "
                  "%.1f GB KV budget/device\n",
                  k, s.tp(), hw::to_string(cluster.device(s.devices.front()).type),
                  s.devices.size(), s.layers, to_gb(params),
                  to_gb(engine::kv_budget(cluster.device(s.devices.front()).spec(), params)));
    }
    if (!inst.attention_workers.empty()) {
      std::printf("  attention pool:");
      for (int dev : inst.attention_workers) {
        std::printf(" %s(%.0fGB)", hw::to_string(cluster.device(dev).type),
                    to_gib(engine::kv_budget(cluster.device(dev).spec(), 0)));
      }
      std::printf("\n");
    }
  }
  std::printf("\nsearch: %d configurations over %d grouping(s), %d device(s) pruned to the "
              "Attention pool, best score %.6g, %.1f ms wall time\n",
              diag.configurations_evaluated, diag.instances_considered, diag.pruned_devices,
              diag.best_cost, to_millis(diag.wall_time));
  std::printf("estimate: TTFT %.3fs, TPOT %.4fs, %.2f req/s over %d device(s) "
              "(%d instance(s), %.1f GB KV)\n",
              estimate.ttft, estimate.tpot, estimate.throughput, estimate.device_count,
              estimate.instances, to_gb(estimate.kv_capacity));

  // Validate the plan end to end: pin it into EngineOptions and serve a
  // short ShareGPT smoke trace through the registry front-end.
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = 2.0;
  topts.horizon = 10.0;
  topts.seed = 11;
  auto trace = workload::build_trace(topts);

  engine::HetisConfig cfg;
  cfg.workload = profile;
  cfg.plan = plan;  // serve on the plan above; no second search
  auto eng = engine::make("hetis", cluster, model, cfg);
  engine::RunReport rep = engine::run_trace(*eng, trace, engine::RunOptions(300.0));

  std::printf("\nsmoke serve (ShareGPT @2.0 for 10s on this plan): %zu/%zu finished, "
              "norm latency %.4f s/token, TTFT p95 %.3fs\n",
              rep.finished, rep.arrived, rep.norm_latency_mean, rep.ttft_p95);
  if (rep.drain_timeout_hit) std::printf("WARNING: %s\n", rep.warning().c_str());
  return 0;
}
