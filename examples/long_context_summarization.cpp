// Long-context summarization scenario (the paper's LongBench workload):
// multi-thousand-token prompts with short summaries, the regime that
// stresses prefill capacity, memory balance, and the re-dispatching path
// (§5.3).
//
//   build/examples/long_context_summarization [model] [rate] [horizon]
//
// Prints per-system results plus Hetis's migration/re-dispatch activity --
// on this workload the §5.3.2 memory-balance machinery actually engages.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace hetis;

  std::string model_name = argc > 1 ? argv[1] : "Llama-70B";
  double rate = argc > 2 ? std::atof(argv[2]) : 1.2;
  double horizon = argc > 3 ? std::atof(argv[3]) : 60.0;

  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::model_by_name(model_name);

  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kLongBench;
  topts.rate = rate;
  topts.horizon = horizon;
  topts.seed = 21;
  auto trace = workload::build_trace(topts);
  auto stats = workload::trace_stats(trace);

  std::printf("long-context summarization: %s @ %.1f req/s\n", model.name.c_str(), rate);
  std::printf("%zu requests, mean prompt %.0f tokens, mean summary %.0f tokens\n\n",
              stats.count, stats.mean_prompt, stats.mean_output);

  std::printf("%-10s %10s %12s %10s %10s %10s\n", "system", "finished", "norm(s/tok)",
              "TTFT p95", "TPOT p95", "preempt");
  {
    baselines::SplitwiseEngine eng(cluster, model);
    auto rep = engine::run_trace(eng, trace, 1800.0);
    std::printf("%-10s %6zu/%-6zu %10.4f %10.3f %10.4f %8d\n", rep.engine.c_str(), rep.finished,
                trace.size(), rep.norm_latency_mean, rep.ttft_p95, rep.tpot_p95,
                rep.preemptions);
    std::printf("  (migrated %.1f GB of prompt KV between phases)\n",
                to_gb(eng.migrated_bytes()));
  }
  {
    baselines::HexgenEngine eng(cluster, model);
    auto rep = engine::run_trace(eng, trace, 1800.0);
    std::printf("%-10s %6zu/%-6zu %10.4f %10.3f %10.4f %8d\n", rep.engine.c_str(), rep.finished,
                trace.size(), rep.norm_latency_mean, rep.ttft_p95, rep.tpot_p95,
                rep.preemptions);
  }
  {
    core::HetisOptions opts;
    opts.workload.decode_batch = 64;
    opts.workload.mean_context = 2048;  // plan for long contexts
    core::HetisEngine eng(cluster, model, opts);
    auto rep = engine::run_trace(eng, trace, 1800.0);
    std::printf("%-10s %6zu/%-6zu %10.4f %10.3f %10.4f %8d\n", rep.engine.c_str(), rep.finished,
                trace.size(), rep.norm_latency_mean, rep.ttft_p95, rep.tpot_p95,
                rep.preemptions);
    std::printf("  plan: %s\n", eng.plan().to_string(cluster).c_str());
    std::printf("  re-dispatches: %d balance + %d rescue; %lld migrations (%.2f GB)\n",
                eng.balance_redispatches(), eng.rescue_redispatches(),
                static_cast<long long>(eng.migrations()), to_gb(eng.migrated_bytes()));
  }
  return 0;
}
