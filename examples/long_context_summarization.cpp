// Long-context summarization scenario (the paper's LongBench workload):
// multi-thousand-token prompts with short summaries, the regime that
// stresses prefill capacity, memory balance, and the re-dispatching path
// (§5.3).
//
//   build/examples/long_context_summarization [model] [rate] [horizon]
//
// Declared as one harness::ExperimentSpec over all three systems.  The
// long drain window is explicit in RunOptions (multi-thousand-token
// prompts decode slowly), and any run that still hits it is flagged
// instead of silently truncating the percentiles.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"
#include "workload/datasets.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace hetis;

  std::string model_name = argc > 1 ? argv[1] : "Llama-70B";
  double rate = argc > 2 ? std::atof(argv[2]) : 1.2;
  double horizon = argc > 3 ? std::atof(argv[3]) : 60.0;

  harness::ExperimentSpec spec;
  spec.name = "long-context";
  spec.models = {model_name};
  spec.workloads = {{workload::Dataset::kLongBench, rate}};
  spec.horizon = horizon;
  spec.seed = 21;
  spec.run = engine::RunOptions(1800.0);
  engine::SloSpec slo;
  slo.ttft = 20.0;  // long prompts: prefill alone takes seconds
  slo.tpot = 0.2;
  spec.run.slo = slo;
  engine::HetisConfig hetis_cfg;
  hetis_cfg.workload.decode_batch = 64;
  hetis_cfg.workload.mean_context = 2048;  // plan for long contexts
  spec.engine_options["hetis"] = engine::EngineOptions(hetis_cfg);

  {
    // Preview the exact trace the sweep will build (same spec fields).
    workload::TraceOptions topts;
    topts.dataset = spec.workloads.front().dataset;
    topts.rate = spec.workloads.front().rate;
    topts.horizon = spec.horizon;
    topts.seed = spec.seed;
    auto stats = workload::trace_stats(workload::build_trace(topts));
    std::printf("long-context summarization: %s @ %.1f req/s\n", model_name.c_str(), rate);
    std::printf("%zu requests, mean prompt %.0f tokens, mean summary %.0f tokens\n\n",
                stats.count, stats.mean_prompt, stats.mean_output);
  }

  std::printf("%-10s %12s %12s %10s %10s %10s %8s\n", "system", "finished", "norm(s/tok)",
              "TTFT p95", "TPOT p95", "SLO att.", "preempt");
  harness::run_sweep(spec, [](const harness::SweepRow& row) {
    const auto& rep = row.report;
    std::printf("%-10s %8zu/%-4zu %12.4f %10.3f %10.4f %9.1f%% %8d\n", rep.engine.c_str(),
                rep.finished, row.trace_requests, rep.norm_latency_mean, rep.ttft_p95,
                rep.tpot_p95, rep.slo_attainment * 100, rep.preemptions);
    if (rep.drain_timeout_hit) std::printf("  WARNING: %s\n", rep.warning().c_str());
  });
  return 0;
}
