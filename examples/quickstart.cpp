// Quickstart: serve a ShareGPT-like workload on the paper's heterogeneous
// cluster with Hetis and print the headline metrics.
//
//   build/examples/quickstart [rate] [horizon_seconds]
//
// This walks the unified serving front-end: cluster preset, model preset,
// trace generation, engine construction by registry name (Profiler +
// Parallelizer run inside), a RunOptions-configured run with SLO targets
// and a live RunObserver, and the extended report.
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "engine/options.h"
#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace {

/// Streams run progress off the simulation clock: one line per 50 finishes.
class ProgressObserver : public hetis::engine::RunObserver {
 public:
  void on_finish(hetis::workload::RequestId id, hetis::Seconds t) override {
    (void)id;
    ++finished_;
    if (finished_ % 50 == 0) {
      std::printf("  [t=%7.2fs] %zu requests finished, %d preemptions so far\n", t, finished_,
                  preempted_);
    }
  }
  void on_preempt(hetis::workload::RequestId id, hetis::Seconds t) override {
    (void)id;
    (void)t;
    ++preempted_;
  }

 private:
  std::size_t finished_ = 0;
  int preempted_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;

  double rate = argc > 1 ? std::atof(argv[1]) : 4.0;
  double horizon = argc > 2 ? std::atof(argv[2]) : 60.0;

  // 1. Describe the hardware: the paper's cluster (4xA100, 4x3090, 4xP100).
  hw::Cluster cluster = harness::cluster_by_name("paper");
  std::printf("cluster: %s\n", cluster.to_string().c_str());

  // 2. Pick a model.
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  std::printf("model:   %s\n", model.to_string().c_str());

  // 3. Generate a workload trace.
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = rate;
  topts.horizon = horizon;
  topts.seed = 42;
  auto trace = workload::build_trace(topts);
  auto stats = workload::trace_stats(trace);
  std::printf("trace:   %zu requests @%.1f req/s (mean prompt %.0f, mean output %.0f)\n",
              stats.count, rate, stats.mean_prompt, stats.mean_output);

  // 4. Build Hetis by name (Profiler + Parallelizer run inside).
  engine::HetisConfig cfg;
  cfg.workload.decode_batch = 64;
  cfg.workload.mean_context = 512;
  auto eng = engine::make("hetis", cluster, model, cfg);

  // 5. Serve under explicit run options: drain cap, chat-style SLOs, and a
  //    progress observer streaming per-request lifecycle events.
  ProgressObserver progress;
  engine::RunOptions ropts(600.0);
  engine::SloSpec slo;
  slo.ttft = 2.0;   // interactive chat targets
  slo.tpot = 0.15;
  ropts.slo = slo;
  ropts.observer = &progress;

  std::printf("\nserving with %s...\n", eng->name().c_str());
  engine::RunReport rep = engine::run_trace(*eng, trace, ropts);

  // 6. Report.
  std::printf("\n=== results ===\n");
  std::printf("finished            %zu / %zu requests\n", rep.finished, rep.arrived);
  std::printf("norm latency (mean) %.4f s/token\n", rep.norm_latency_mean);
  std::printf("TTFT  (p95)         %.3f s\n", rep.ttft_p95);
  std::printf("TPOT  (p95)         %.4f s\n", rep.tpot_p95);
  std::printf("SLO attainment      %.1f%% (TTFT<=%.1fs: %.1f%%, TPOT<=%.2fs: %.1f%%)\n",
              rep.slo_attainment * 100, slo.ttft, rep.ttft_attainment * 100, slo.tpot,
              rep.tpot_attainment * 100);
  std::printf("goodput             %.2f req/s (throughput %.2f req/s)\n", rep.goodput,
              rep.throughput);
  std::printf("usable KV cache     %.1f GB\n", to_gb(rep.usable_kv));
  if (rep.drain_timeout_hit) std::printf("WARNING: %s\n", rep.warning().c_str());
  return 0;
}
