// Quickstart: serve a ShareGPT-like workload on the paper's heterogeneous
// cluster with Hetis and print the headline metrics.
//
//   build/examples/quickstart [rate] [horizon_seconds]
//
// This walks the full public API surface: cluster description, model
// preset, trace generation, engine construction (Profiler + Parallelizer
// run inside), and the metrics report.
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace hetis;

  double rate = argc > 1 ? std::atof(argv[1]) : 4.0;
  double horizon = argc > 2 ? std::atof(argv[2]) : 60.0;

  // 1. Describe the hardware: the paper's cluster (4xA100, 4x3090, 4xP100).
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  std::printf("cluster: %s\n", cluster.to_string().c_str());

  // 2. Pick a model.
  const model::ModelSpec& model = model::llama_13b();
  std::printf("model:   %s\n", model.to_string().c_str());

  // 3. Generate a workload trace.
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = rate;
  topts.horizon = horizon;
  topts.seed = 42;
  auto trace = workload::build_trace(topts);
  auto stats = workload::trace_stats(trace);
  std::printf("trace:   %zu requests @%.1f req/s (mean prompt %.0f, mean output %.0f)\n",
              stats.count, rate, stats.mean_prompt, stats.mean_output);

  // 4. Build Hetis (Profiler + Parallelizer run inside) and serve.
  core::HetisOptions opts;
  opts.workload.decode_batch = 64;
  opts.workload.mean_context = 512;
  core::HetisEngine engine(cluster, model, opts);
  std::printf("plan:    %s\n", engine.plan().to_string(cluster).c_str());

  engine::RunReport rep = engine::run_trace(engine, trace);

  // 5. Report.
  std::printf("\n=== results ===\n");
  std::printf("finished            %zu / %zu requests\n", rep.finished, rep.arrived);
  std::printf("norm latency (mean) %.4f s/token\n", rep.norm_latency_mean);
  std::printf("TTFT  (p95)         %.3f s\n", rep.ttft_p95);
  std::printf("TPOT  (p95)         %.4f s\n", rep.tpot_p95);
  std::printf("usable KV cache     %.1f GB\n", to_gb(rep.usable_kv));
  std::printf("throughput          %.2f req/s\n", rep.throughput);
  std::printf("migrated            %.2f GB across %lld moves\n", to_gb(engine.migrated_bytes()),
              static_cast<long long>(engine.migrations()));
  return 0;
}
