// Elastic serving example: watch the control plane react to cluster churn.
//
// Serves one bursty trace on a chosen engine while a churn script replays
// (devices leave and rejoin) and a scale policy decides how much of the
// cluster to use.  A live observer prints every control-plane decision the
// engines make visible: reconfigurations, migrations, restarts.
//
//   elastic_serving                      # hetis, dip churn, threshold policy
//   elastic_serving splitwise            # watch checkpoint-and-restart pay
//   elastic_serving hetis spot slo       # spot churn under the SLO policy
//
// Usage: elastic_serving [engine] [churn] [policy] [--rate R] [--horizon S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "control/controller.h"
#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  using namespace hetis;
  std::string engine_name = "hetis";
  std::string churn_name = "dip";
  std::string policy = "threshold";
  double rate = 12.0;
  Seconds horizon = 20.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (arg == "--horizon" && i + 1 < argc) {
      horizon = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: elastic_serving [engine] [churn] [policy] [--rate R] [--horizon S]\n");
      return 2;
    } else {
      (positional == 0 ? engine_name : positional == 1 ? churn_name : policy) = arg;
      ++positional;
    }
  }

  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::ScenarioSpec scenario =
      workload::scenario_preset(workload::Scenario::kBursty, rate, horizon, 20251116);
  auto trace = workload::generate_scenario(scenario);

  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::churn_by_name(churn_name), horizon, 20251116);
  cs.policy = policy;
  cs.min_devices = 4;
  cs.horizon = horizon + 30.0;
  cs.slo.ttft = 2.0;
  cs.slo.tpot = 0.15;
  control::Controller controller(cs, cluster);

  std::printf("cluster : %s\n", cluster.to_string().c_str());
  std::printf("workload: %s (%zu requests)\n", workload::describe(scenario).c_str(),
              trace.size());
  std::printf("churn   : %s\n", control::describe(cs.churn).c_str());
  for (const auto& ev : controller.events()) {
    std::printf("          t=%6.2fs %-10s device=%d\n", ev.time,
                control::to_string(ev.kind), ev.device);
  }
  std::printf("policy  : %s\n\n", policy.c_str());

  auto eng = engine::make(engine_name, cluster, model);
  engine::RunOptions run(900.0);
  run.slo = cs.slo;
  run.on_start = controller.starter();
  engine::RunReport report = engine::run_trace(*eng, trace, run);

  std::printf("%s\n", report.to_json().c_str());
  const auto& cst = controller.stats();
  std::printf("\ncontroller: %d forced + %d elective re-deploys over %d ticks "
              "(active %d..%d devices)\n",
              cst.forced_reconfigs, cst.elective_reconfigs, cst.ticks, cst.min_active,
              cst.peak_active);
  if (const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get())) {
    const engine::ReconfigStats& rs = rc->reconfig_stats();
    std::printf("engine    : %d reconfigurations, %d live-migrated (%.2f GB KV), %d restarted, "
                "%.2fs dead time\n",
                rs.reconfigurations, rs.migrated_requests, to_gb(rs.migrated_kv_bytes),
                rs.restarted_requests, rs.restart_dead_time);
  }
  std::printf("result    : slo attainment %.2f, goodput %.2f req/s, ttft p95 %.3fs\n",
              report.slo_attainment, report.goodput, report.ttft_p95);
  if (!report.warning().empty()) std::printf("WARNING: %s\n", report.warning().c_str());
  return 0;
}
