// Elastic serving example: watch the control plane react to cluster churn
// and degrading hardware.
//
// Serves one bursty trace on a chosen engine while a churn script replays
// (devices leave, rejoin, slow down, or announce preemption) and a scale
// policy decides how much of the cluster to use.  A live observer prints
// every control-plane decision the engines make visible: reconfigurations,
// migrations, restarts.
//
//   elastic_serving                      # hetis, dip churn, threshold policy
//   elastic_serving splitwise            # watch checkpoint-and-restart pay
//   elastic_serving hetis spot slo       # spot churn under the SLO policy
//   elastic_serving --churn straggler    # an A100 drops to 35% speed and
//                                        # Hetis demotes it to an Attention
//                                        # worker instead of dropping it
//   elastic_serving --churn spot_notice  # preemption warnings: KV leaves
//                                        # the doomed device BEFORE it dies
//
// Unknown engine / churn / policy names exit 2 with the valid names listed.
//
// --trace PATH records the whole run as a Perfetto-loadable Chrome trace
// (plus <base>.metrics.csv and <base>.audit.json next to it) and prints a
// five-line telemetry summary after the report.
//
// Usage: elastic_serving [engine] [churn] [policy] [--engine E] [--churn C]
//                        [--policy P] [--rate R] [--horizon S] [--trace PATH]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "control/controller.h"
#include "engine/options.h"
#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "telemetry/telemetry.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  using namespace hetis;
  std::string engine_name = "hetis";
  std::string churn_name = "dip";
  std::string policy = "threshold";
  std::string trace_path;
  double rate = 12.0;
  Seconds horizon = 20.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (arg == "--horizon" && i + 1 < argc) {
      horizon = std::atof(argv[++i]);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--churn" && i + 1 < argc) {
      churn_name = argv[++i];
    } else if (arg == "--policy" && i + 1 < argc) {
      policy = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: elastic_serving [engine] [churn] [policy] [--engine E] [--churn C] "
                   "[--policy P] [--rate R] [--horizon S] [--trace PATH]\n");
      return 2;
    } else {
      (positional == 0 ? engine_name : positional == 1 ? churn_name : policy) = arg;
      ++positional;
    }
  }

  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::ScenarioSpec scenario =
      workload::scenario_preset(workload::Scenario::kBursty, rate, horizon, 20251116);
  auto trace = workload::generate_scenario(scenario);

  control::ControlSpec cs;
  // churn_by_name / make_policy list every valid name (sorted) on a typo;
  // surface that instead of an uncaught-exception abort.
  std::unique_ptr<control::Controller> controller;
  try {
    cs.churn = control::churn_preset(control::churn_by_name(churn_name), horizon, 20251116);
    cs.policy = policy;
    cs.min_devices = 4;
    cs.horizon = horizon + 30.0;
    cs.slo.ttft = 2.0;
    cs.slo.tpot = 0.15;
    // Non-const cluster: binds the mutable-overload Controller, so
    // degradation scripts (straggler / throttle_wave / flaky_link /
    // spot_notice) replay onto the same cluster the engine serves on.
    controller = std::make_unique<control::Controller>(cs, cluster);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "elastic_serving: %s\n", e.what());
    return 2;
  }

  std::printf("cluster : %s\n", cluster.to_string().c_str());
  std::printf("workload: %s (%zu requests)\n", workload::describe(scenario).c_str(),
              trace.size());
  std::printf("churn   : %s\n", control::describe(cs.churn).c_str());
  for (const auto& ev : controller->events()) {
    if (control::mutates_cluster(ev.kind) || ev.kind == control::ClusterEventKind::kPreemptNotice) {
      std::printf("          t=%6.2fs %-14s device=%d factor=%.2f\n", ev.time,
                  control::to_string(ev.kind), ev.device, ev.factor);
    } else {
      std::printf("          t=%6.2fs %-14s device=%d\n", ev.time,
                  control::to_string(ev.kind), ev.device);
    }
  }
  std::printf("policy  : %s\n\n", policy.c_str());

  std::unique_ptr<engine::Engine> eng;
  try {
    engine::EngineOptions options;
    if (!trace_path.empty() && engine::ascii_lower(engine_name) == "hetis") {
      // Traced Hetis runs sample per-device KV fill + assigned heads so the
      // trace carries the occupancy tracks (UsageSamples never feed the
      // RunReport, so the report below is unchanged).
      engine::HetisConfig cfg;
      cfg.sample_interval = 0.5;
      cfg.sample_horizon = horizon;
      options.system = std::move(cfg);
    }
    eng = engine::make(engine_name, cluster, model, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "elastic_serving: %s\n", e.what());
    return 2;
  }
  engine::RunOptions run(900.0);
  run.slo = cs.slo;
  run.on_start = controller->starter();
  std::unique_ptr<telemetry::Telemetry> telem;
  if (!trace_path.empty()) {
    telemetry::TelemetryConfig tcfg;
    tcfg.horizon = horizon;
    tcfg.slo = run.slo;
    telem = std::make_unique<telemetry::Telemetry>(tcfg);
    run.telemetry = telem.get();
  }
  engine::RunReport report = engine::run_trace(*eng, trace, run);

  std::printf("%s\n", report.to_json().c_str());
  const auto& cst = controller->stats();
  std::printf("\ncontroller: %d forced + %d elective re-deploys over %d ticks "
              "(active %d..%d devices)\n",
              cst.forced_reconfigs, cst.elective_reconfigs, cst.ticks, cst.min_active,
              cst.peak_active);
  if (cst.degradation_events > 0 || cst.preempt_notices > 0) {
    std::printf("            %d degradation events applied, %d preemption notices forwarded\n",
                cst.degradation_events, cst.preempt_notices);
  }
  if (const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get())) {
    const engine::ReconfigStats& rs = rc->reconfig_stats();
    std::printf("engine    : %d reconfigurations, %d live-migrated (%.2f GB KV), %d restarted, "
                "%.2fs dead time\n",
                rs.reconfigurations, rs.migrated_requests, to_gb(rs.migrated_kv_bytes),
                rs.restarted_requests, rs.restart_dead_time);
  }
  std::printf("result    : slo attainment %.2f, goodput %.2f req/s, ttft p95 %.3fs\n",
              report.slo_attainment, report.goodput, report.ttft_p95);
  if (!report.warning().empty()) std::printf("WARNING: %s\n", report.warning().c_str());
  if (telem) {
    try {
      telem->write_artifacts(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "elastic_serving: %s\n", e.what());
      return 1;
    }
    std::printf("\ntelemetry :\n%s\n", telem->summary().c_str());
    for (const std::string& p : telemetry::Telemetry::artifact_paths(trace_path)) {
      std::printf("wrote     : %s\n", p.c_str());
    }
  }
  return 0;
}
