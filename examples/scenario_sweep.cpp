// Scenario sweep example: pick workload generators by name and serve them
// with all three registered engines through the declarative harness.
//
//   scenario_sweep                                # all scenarios, table
//   scenario_sweep bursty multi_tenant --jobs 4   # two scenarios, 4 workers
//   scenario_sweep diurnal --rate 3 --csv         # machine-readable rows
//
// Flags: --rate R (base req/s, default 2), --horizon S (default 10),
// --jobs N (0 = hardware concurrency, default 1), --csv, --json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "workload/scenarios.h"

namespace {

// Strict numeric flag parsing: a typo must fail loudly, not silently
// become 0 (which would mean "hardware concurrency" for --jobs and an
// almost-empty trace for --rate).
double parse_number(const char* flag, const char* value) {
  char* end = nullptr;
  double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s expects a non-negative number, got '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;

  double rate = 2.0;
  Seconds horizon = 10.0;
  int jobs = 1;
  bool csv = false, json = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--rate" && i + 1 < argc) {
      rate = parse_number("--rate", argv[++i]);
    } else if (arg == "--horizon" && i + 1 < argc) {
      horizon = parse_number("--horizon", argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<int>(parse_number("--jobs", argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) names = workload::scenario_names();

  harness::ExperimentSpec spec;
  spec.name = "scenario_sweep";
  spec.models = {"Llama-13B"};
  spec.horizon = horizon;
  spec.jobs = jobs;
  spec.run = engine::RunOptions(900.0);
  engine::SloSpec slo;
  slo.ttft = 5.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  try {
    for (const std::string& name : names) {
      spec.add_scenario(workload::scenario_preset(workload::scenario_by_name(name), rate,
                                                  spec.horizon, spec.seed));
    }
    const auto rows = harness::run_sweep(spec);
    if (csv) {
      harness::write_csv(std::cout, rows);
      return 0;
    }
    if (json) {
      harness::write_json(std::cout, rows);
      return 0;
    }

    const std::size_t ne = spec.engines.size();
    std::printf("=== scenario sweep: %zu scenario(s) x %zu engines, %s ===\n\n",
                spec.workloads.size(), ne, spec.models[0].c_str());
    for (std::size_t pi = 0; pi < spec.workloads.size(); ++pi) {
      std::printf("--- %s ---\n", workload::describe(*spec.workloads[pi].scenario).c_str());
      for (std::size_t ei = 0; ei < ne; ++ei) {
        const auto& row = rows[pi * ne + ei];
        std::printf("  %-10s finished %zu/%zu  norm %.4f s/tok  ttft_p95 %.3fs  slo %.2f\n",
                    row.report.engine.c_str(), row.report.finished, row.trace_requests,
                    row.report.norm_latency_mean, row.report.ttft_p95,
                    row.report.slo_attainment);
        if (row.report.drain_timeout_hit) {
          std::printf("  WARNING: %s\n", row.report.warning().c_str());
        }
        for (const auto& t : row.tenants) {
          std::printf("    tenant %-8s %zu/%zu  slo %.2f  goodput %.2f req/s\n",
                      t.tenant.c_str(), t.finished, t.arrived, t.slo_attainment, t.goodput);
        }
      }
      std::printf("\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
