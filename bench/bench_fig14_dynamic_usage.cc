// Fig. 14 reproduction: dynamic cache usage and head distribution on the
// ablation cluster (one A100 primary + two 3090 Attention workers,
// Llama-13B) under time-varying arrivals rps 5 -> 0 -> 2.5 -> 0.
//
// Expected shape: the A100 consistently carries more heads; cache fills
// toward 100% at peak and drains in the silent phases; the 3090s start
// taking load *later* than the A100 (the dispatcher avoids premature
// network offload at light load).
#include <cstdio>
#include <map>

// Not harness-migrated: this figure reads the engine's usage time series
// and migration counters, so it constructs the concrete engine directly.
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "workload/trace.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  const model::ModelSpec& m = model::llama_13b();

  // Fixed roles per the paper's ablation: A100 primary, both 3090s as
  // Attention workers.
  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  parallel::StageConfig stage;
  stage.devices = {0};
  stage.layers = m.layers;
  inst.stages = {stage};
  inst.attention_workers = {1, 2};
  plan.instances.push_back(inst);

  core::HetisOptions opts;
  opts.sample_interval = 1.0;
  opts.sample_horizon = 100.0;
  opts.workload.decode_batch = 32;

  core::HetisEngine engine(cluster, m, opts, plan);

  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.seed = 14;
  topts.segments = {{25.0, 5.0}, {25.0, 0.0}, {25.0, 2.5}, {25.0, 0.0}};
  auto trace = workload::build_trace(topts);

  // 200 s covers the 100 s arrival schedule plus a full drain window.
  engine::run_trace(engine, trace, engine::RunOptions(200.0));

  std::printf("=== Fig. 14: dynamic resource usage, A100 + 2x3090, Llama-13B ===\n");
  std::printf("(arrivals: 5 rps for 25s, silence, 2.5 rps for 25s, silence)\n\n");
  std::printf("%8s | %12s %12s | %12s %12s\n", "time(s)", "A100 cache%", "3090 cache%",
              "A100 heads", "3090 heads");

  // Collate samples: device 0 = A100; devices 1,2 = 3090s (averaged).
  std::map<int, std::map<int, engine::UsageSample>> by_time;  // time -> dev -> sample
  for (const auto& s : engine.metrics().usage_series()) {
    by_time[static_cast<int>(s.time + 0.5)][s.device] = s;
  }
  for (const auto& [t, devs] : by_time) {
    if (t % 5 != 0) continue;  // print every 5 seconds
    if (!devs.count(0) || !devs.count(1) || !devs.count(2)) continue;
    double cache_3090 = (devs.at(1).cache_used_fraction + devs.at(2).cache_used_fraction) / 2;
    // Per-device heads: the paper's point is that the A100 consistently
    // carries more load than EACH 3090.
    double heads_3090 = (devs.at(1).heads + devs.at(2).heads) / 2;
    std::printf("%8d | %11.1f%% %11.1f%% | %12.0f %12.0f\n", t,
                devs.at(0).cache_used_fraction * 100, cache_3090 * 100, devs.at(0).heads,
                heads_3090);
  }
  std::printf("\nfinished %zu/%zu requests; %lld migrations (%.2f GB)\n",
              engine.metrics().finished(), trace.size(),
              static_cast<long long>(engine.migrations()), to_gb(engine.migrated_bytes()));
  return 0;
}
