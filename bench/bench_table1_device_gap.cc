// Table 1 reproduction: memory capacity and full-model iteration time of
// OPT-2.7B on A100 / 3090 / P100 (prefill batch 3 x 256-token prompts,
// decode batch 25 @ ctx 256).
//
// The calibration fractions in hw/gpu.cc were fitted against exactly this
// table; the bench verifies the reproduction and prints the ratios the
// paper quotes (prefill 2.45x / 24.5x, decode 1.47x / 7.93x vs A100).
#include <cstdio>
#include <vector>

#include "costmodel/kernel_model.h"
#include "hw/gpu.h"
#include "model/llm.h"

int main() {
  using namespace hetis;
  costmodel::KernelModel kernel;
  const model::ModelSpec& m = model::opt_2_7b();

  const std::int64_t kPromptLen = 256;
  const std::int64_t kPrefillBatch = 3;
  const std::int64_t kDecodeBatch = 25;
  const std::int64_t kDecodeCtx = 256;

  struct Row {
    hw::GpuType type;
    double paper_prefill, paper_decode;  // seconds (Table 1)
  };
  const std::vector<Row> rows = {
      {hw::GpuType::kA100_80G, 0.060, 0.0097},
      {hw::GpuType::kRTX3090, 0.147, 0.0143},
      {hw::GpuType::kP100, 1.47, 0.077},
  };

  std::printf("=== Table 1: device memory and OPT-2.7B iteration time ===\n");
  std::printf("(prefill: batch %lld x %lld tokens; decode: batch %lld @ ctx %lld)\n\n",
              static_cast<long long>(kPrefillBatch), static_cast<long long>(kPromptLen),
              static_cast<long long>(kDecodeBatch), static_cast<long long>(kDecodeCtx));
  std::printf("%-8s %8s | %12s %12s | %12s %12s\n", "Device", "Mem(GB)", "prefill(s)",
              "paper(s)", "decode(s)", "paper(s)");

  std::vector<std::int64_t> prompt_lens(static_cast<std::size_t>(kPrefillBatch), kPromptLen);
  std::vector<std::int64_t> decode_ctxs(static_cast<std::size_t>(kDecodeBatch), kDecodeCtx);

  double a100_prefill = 0, a100_decode = 0;
  for (const Row& row : rows) {
    const hw::GpuSpec& gpu = hw::gpu_spec(row.type);
    Seconds prefill =
        (kernel.dense_layer_time(gpu, m, kPrefillBatch * kPromptLen) +
         kernel.prefill_attention_time(gpu, m, prompt_lens, m.heads)) *
        m.layers;
    Seconds decode = (kernel.dense_layer_time(gpu, m, kDecodeBatch) +
                      kernel.decode_attention_time(gpu, m, decode_ctxs, m.heads)) *
                     m.layers;
    if (row.type == hw::GpuType::kA100_80G) {
      a100_prefill = prefill;
      a100_decode = decode;
    }
    std::printf("%-8s %8.0f | %12.4f %12.4f | %12.5f %12.5f\n", gpu.name.c_str(),
                to_gib(gpu.memory), prefill, row.paper_prefill, decode, row.paper_decode);
  }

  std::printf("\nratios vs A100 (ours / paper):\n");
  for (const Row& row : rows) {
    if (row.type == hw::GpuType::kA100_80G) continue;
    const hw::GpuSpec& gpu = hw::gpu_spec(row.type);
    Seconds prefill =
        (kernel.dense_layer_time(gpu, m, kPrefillBatch * kPromptLen) +
         kernel.prefill_attention_time(gpu, m, prompt_lens, m.heads)) *
        m.layers;
    Seconds decode = (kernel.dense_layer_time(gpu, m, kDecodeBatch) +
                      kernel.decode_attention_time(gpu, m, decode_ctxs, m.heads)) *
                     m.layers;
    std::printf("  %-6s prefill %5.2fx / %5.2fx   decode %5.2fx / %5.2fx\n", gpu.name.c_str(),
                prefill / a100_prefill, row.paper_prefill / 0.060, decode / a100_decode,
                row.paper_decode / 0.0097);
  }
  return 0;
}
