// Fig. 10 reproduction: normalized end-to-end latency vs request rate for
// Llama-70B (GQA) across the three datasets and systems.
#include "harness.h"

int main() {
  using namespace hetis;
  bench::run_e2e_figure("Fig. 10", model::llama_70b(),
                        {{workload::Dataset::kShareGPT, {1, 2, 3}},
                         {workload::Dataset::kHumanEval, {3, 6, 9, 12}},
                         {workload::Dataset::kLongBench, {0.4, 0.8, 1.2, 1.6}}});
  return 0;
}
