// Fig. 10 reproduction: normalized end-to-end latency vs request rate for
// Llama-70B (GQA) across the three datasets and systems.
//
// Declarative harness sweep; pass --csv for the aligned row dump.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace hetis;
  bench::run_e2e_figure("Fig. 10", "Llama-70B",
                        {{workload::Dataset::kShareGPT, {1, 2, 3}},
                         {workload::Dataset::kHumanEval, {3, 6, 9, 12}},
                         {workload::Dataset::kLongBench, {0.4, 0.8, 1.2, 1.6}}},
                        bench::csv_requested(argc, argv), bench::jobs_requested(argc, argv),
                        bench::flag_requested(argc, argv, "--progress"));
  return 0;
}
