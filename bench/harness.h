// Shared experiment front-end for the per-figure bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation
// (§7).  Figure benches are declarative: they build a
// harness::ExperimentSpec (engines x rates x datasets on a cluster preset)
// and let harness::run_sweep execute it through the engine registry -- no
// bench includes a concrete engine header.  `--csv` on any spec-driven
// bench dumps the aligned sweep rows instead of the human table.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/options.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/trace.h"

// Entry point shared by the google-benchmark-based microbenches
// (bench_micro_core, bench_fig15b_head_mgmt).  When
// google-benchmark is absent CMake skips those targets entirely, so
// this only ever expands with the library present.  Plain benches define
// their own main() and print their figure directly.
#define HETIS_BENCH_MAIN() BENCHMARK_MAIN()

namespace hetis::bench {

inline constexpr std::uint64_t kSeed = 20251116;  // SC'25 start date
inline constexpr Seconds kHorizon = 40.0;         // arrival window per run
inline constexpr Seconds kDrain = 900.0;          // post-arrival drain cap

inline std::vector<workload::Request> make_trace(workload::Dataset ds, double rate,
                                                 Seconds horizon = kHorizon,
                                                 std::uint64_t seed = kSeed) {
  workload::TraceOptions opts;
  opts.dataset = ds;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = seed;
  return workload::build_trace(opts);
}

inline engine::HetisConfig hetis_options() {
  engine::HetisConfig opts;
  opts.workload.decode_batch = 64;
  opts.workload.mean_context = 512;
  return opts;
}

/// Spec preset shared by the figure benches: paper cluster, all three
/// systems, the bench seed/horizon/drain, paper Hetis workload hints.
inline harness::ExperimentSpec paper_spec(const std::string& name, const std::string& model) {
  harness::ExperimentSpec spec;
  spec.name = name;
  spec.models = {model};
  spec.horizon = kHorizon;
  spec.seed = kSeed;
  spec.run = engine::RunOptions(kDrain);
  spec.engine_options["hetis"] = engine::EngineOptions(hetis_options());
  return spec;
}

/// True when the bench was invoked with `flag` (e.g. "--csv", "--progress").
inline bool flag_requested(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// True when the bench was invoked with --csv (dump aligned sweep rows).
inline bool csv_requested(int argc, char** argv) { return flag_requested(argc, argv, "--csv"); }

/// Value of `--key V` style flags; `fallback` when absent.
inline std::string arg_value(int argc, char** argv, const std::string& key,
                             const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == key) return argv[i + 1];
  }
  return fallback;
}

/// Parses `--jobs N` (0 = hardware concurrency); returns `fallback` when
/// absent.  Sweep rows are byte-identical for every value, so figures can
/// default to serial while CI and interactive runs go wide.  A malformed
/// or negative value exits with a usage message (benches have no
/// exception handler around main).
inline int jobs_requested(int argc, char** argv, int fallback = 1) {
  const std::string value = arg_value(argc, argv, "--jobs", "");
  if (value.empty()) return fallback;
  char* end = nullptr;
  long jobs = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || jobs < 0) {
    std::fprintf(stderr, "--jobs expects a non-negative integer, got '%s'\n", value.c_str());
    std::exit(2);
  }
  return static_cast<int>(jobs);
}

/// RowCallback printing one completion line per cell to stderr (stderr so
/// --csv stdout stays machine-readable).  Under --jobs > 1 lines arrive in
/// completion order; the [k/total] counter still reaches total.
inline harness::RowCallback progress_printer(std::size_t total) {
  auto count = std::make_shared<std::size_t>(0);  // run_sweep serializes on_row
  return [count, total](const harness::SweepRow& row) {
    ++*count;
    std::fprintf(stderr, "[%zu/%zu] %s %s %s %s rate=%g finished=%zu/%zu\n", *count, total,
                 row.report.engine.c_str(), row.model.c_str(), row.scenario.c_str(),
                 workload::to_string(row.dataset), row.rate, row.report.finished,
                 row.trace_requests);
  };
}

/// The spec's cell count (for progress_printer totals).
inline std::size_t cell_count(const harness::ExperimentSpec& spec) {
  return spec.engines.size() * spec.models.size() * spec.workloads.size() *
         std::max<std::size_t>(1, spec.objectives.size());
}

/// Report of `engine_name` within workload point `point` of a sweep whose
/// spec ran `ne` engines (rows are engine-major within a point).  Looked
/// up by the report's display name so table columns cannot silently
/// desynchronize from the spec's engine order.
inline const engine::RunReport& point_report(const std::vector<harness::SweepRow>& rows,
                                             std::size_t point, std::size_t ne,
                                             const std::string& engine_name) {
  for (std::size_t i = point * ne; i < (point + 1) * ne && i < rows.size(); ++i) {
    if (rows[i].report.engine == engine_name) return rows[i].report;
  }
  throw std::logic_error("no sweep row for engine '" + engine_name + "' at workload point " +
                         std::to_string(point));
}

/// Surfaces drain-timeout truncation on stderr -- a truncated run's
/// percentiles under-count the tail, so never let it pass silently.
inline void warn_truncated(const std::vector<harness::SweepRow>& rows) {
  for (const auto& row : rows) {
    if (row.report.drain_timeout_hit) {
      std::fprintf(stderr, "WARNING: %s\n", row.report.warning().c_str());
    }
  }
}

/// Fig. 8/9/10 driver: normalized latency (s/token) vs request rate, all
/// three systems on the paper cluster.
inline void run_e2e_figure(const char* figure, const std::string& model_name,
                           const std::vector<std::pair<workload::Dataset, std::vector<double>>>&
                               dataset_rates,
                           bool csv = false, int jobs = 1, bool progress = false) {
  harness::ExperimentSpec spec = paper_spec(figure, model_name);
  for (const auto& [ds, rates] : dataset_rates) spec.add_rates(ds, rates);
  spec.jobs = jobs;
  const auto rows =
      harness::run_sweep(spec, progress ? progress_printer(cell_count(spec)) : nullptr);
  warn_truncated(rows);
  if (csv) {
    harness::write_csv(std::cout, rows);
    return;
  }

  // Rows are ordered (workload point) x (engine, spec order: SW, HG, HT).
  const std::size_t ne = spec.engines.size();
  std::size_t point = 0;
  std::printf("=== %s: normalized end-to-end latency (s/token), %s, paper cluster ===\n", figure,
              model_name.c_str());
  std::printf("(seed %llu; horizon %.0fs per point)\n\n",
              static_cast<unsigned long long>(spec.seed), spec.horizon);
  for (const auto& [ds, rates] : dataset_rates) {
    std::printf("--- dataset %s ---\n", workload::to_string(ds));
    std::printf("%8s %12s %12s %12s %10s %10s %10s\n", "rate", "Splitwise", "Hexgen", "Hetis",
                "fin(SW)", "fin(HG)", "fin(HT)");
    for (double rate : rates) {
      const auto& sw = point_report(rows, point, ne, "Splitwise");
      const auto& hg = point_report(rows, point, ne, "Hexgen");
      const auto& ht = point_report(rows, point, ne, "Hetis");
      std::size_t n = rows[point * ne].trace_requests;
      std::printf("%8.1f %12.4f %12.4f %12.4f %9zu/%-zu %9zu/%-zu %9zu/%-zu\n", rate,
                  sw.norm_latency_mean, hg.norm_latency_mean, ht.norm_latency_mean, sw.finished,
                  n, hg.finished, n, ht.finished, n);
      ++point;
    }
    std::printf("\n");
  }
}

}  // namespace hetis::bench
