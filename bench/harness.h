// Shared experiment harness for the per-figure bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation
// (§7); the mapping lives in DESIGN.md §3 and the measured-vs-paper record
// in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "hw/topology.h"
#include "model/llm.h"
#include "workload/trace.h"

// Entry point shared by the google-benchmark-based microbenches
// (bench_micro_core, bench_fig15b_head_mgmt, bench_search_overhead).  When
// google-benchmark is absent CMake skips those three targets entirely, so
// this only ever expands with the library present.  Plain benches define
// their own main() and print their figure directly.
#define HETIS_BENCH_MAIN() BENCHMARK_MAIN()

namespace hetis::bench {

inline constexpr std::uint64_t kSeed = 20251116;  // SC'25 start date
inline constexpr Seconds kHorizon = 40.0;         // arrival window per run
inline constexpr Seconds kDrain = 900.0;          // post-arrival drain cap

inline std::vector<workload::Request> make_trace(workload::Dataset ds, double rate,
                                                 Seconds horizon = kHorizon,
                                                 std::uint64_t seed = kSeed) {
  workload::TraceOptions opts;
  opts.dataset = ds;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = seed;
  return workload::build_trace(opts);
}

inline core::HetisOptions hetis_options() {
  core::HetisOptions opts;
  opts.workload.decode_batch = 64;
  opts.workload.mean_context = 512;
  return opts;
}

struct SystemReports {
  engine::RunReport splitwise, hexgen, hetis;
};

/// Runs the same trace through all three systems on the paper cluster.
inline SystemReports run_three_systems(const model::ModelSpec& m,
                                       const std::vector<workload::Request>& trace,
                                       Seconds drain = kDrain) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SystemReports out;
  {
    baselines::SplitwiseEngine eng(cluster, m);
    out.splitwise = engine::run_trace(eng, trace, drain);
  }
  {
    baselines::HexgenEngine eng(cluster, m);
    out.hexgen = engine::run_trace(eng, trace, drain);
  }
  {
    core::HetisEngine eng(cluster, m, hetis_options());
    out.hetis = engine::run_trace(eng, trace, drain);
  }
  return out;
}

/// Fig. 8/9/10 row printer: normalized latency (s/token) vs request rate.
inline void run_e2e_figure(const char* figure, const model::ModelSpec& m,
                           const std::vector<std::pair<workload::Dataset, std::vector<double>>>&
                               dataset_rates) {
  std::printf("=== %s: normalized end-to-end latency (s/token), %s, paper cluster ===\n", figure,
              m.name.c_str());
  std::printf("(seed %llu; horizon %.0fs per point)\n\n",
              static_cast<unsigned long long>(kSeed), kHorizon);
  for (const auto& [ds, rates] : dataset_rates) {
    std::printf("--- dataset %s ---\n", workload::to_string(ds));
    std::printf("%8s %12s %12s %12s %10s %10s %10s\n", "rate", "Splitwise", "Hexgen", "Hetis",
                "fin(SW)", "fin(HG)", "fin(HT)");
    for (double rate : rates) {
      auto trace = make_trace(ds, rate);
      SystemReports r = run_three_systems(m, trace);
      std::printf("%8.1f %12.4f %12.4f %12.4f %9zu/%-zu %9zu/%-zu %9zu/%-zu\n", rate,
                  r.splitwise.norm_latency_mean, r.hexgen.norm_latency_mean,
                  r.hetis.norm_latency_mean, r.splitwise.finished, trace.size(),
                  r.hexgen.finished, trace.size(), r.hetis.finished, trace.size());
    }
    std::printf("\n");
  }
}

}  // namespace hetis::bench
