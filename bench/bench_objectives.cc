// Objective-driven planning: the three built-in plan objectives compared
// across cluster presets and workload scenarios.
//
// Two views, matching the two layers the objective threads through:
//
//  A. PLANNER -- for each cluster preset, run the Parallelizer once per
//     objective and price the winning plan with the PlanEvaluator.  The
//     table is the planner's own estimate space: TTFT / TPOT / throughput /
//     device footprint.  Invariant checked here (and by CI): the latency
//     objective's estimated TTFT never exceeds the throughput objective's
//     on any preset -- the ROADMAP-flagged regression where the 12-device
//     plan beat the 4xA100 plan on throughput but lost on TTFT.
//
//  B. SERVING -- a harness sweep (ExperimentSpec::objectives) serves the
//     same traces through HetisEngine deployed under each objective:
//     3 cluster presets x 2 scenarios x 3 objectives.  Rows carry the new
//     objective / device_seconds / device_seconds_per_slo_request columns,
//     so the cost-efficiency story (goodput per device-second) is measured,
//     not just estimated.
//
// Writes BENCH_objectives.json (planner estimates + sweep rows + the TTFT
// invariant verdict) as the canonical artifact; committed at the repo root.
//
// Flags:
//   --csv         dump aligned sweep rows instead of the tables
//   --csv-header  print the sweep CSV header and exit (CI diffs this)
//   --jobs N      sweep worker threads (0 = hardware concurrency; rows are
//                 byte-identical for every value).  Default: 0.
//   --progress    per-cell completion lines on stderr
//   --out PATH    JSON artifact path (default BENCH_objectives.json; "-" off)
//   --horizon S   arrival window in seconds (default 16)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "harness.h"
#include "parallel/parallelizer.h"
#include "workload/scenarios.h"

namespace {

using namespace hetis;

const std::vector<std::string> kObjectives = {"throughput", "latency", "goodput_per_device"};
const std::vector<std::string> kClusters = {"paper", "ablation", "budget"};
// Aggregate request rates roughly matched to each preset's capacity.
const std::map<std::string, double> kRates = {{"paper", 10.0}, {"ablation", 3.0},
                                              {"budget", 4.0}};

struct PlannerCell {
  std::string cluster;
  std::string objective;
  parallel::PlanEstimate estimate;
  std::string plan;
  parallel::SearchDiagnostics diag;
};

std::vector<PlannerCell> plan_all(const engine::SloSpec& slo) {
  std::vector<PlannerCell> cells;
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  for (const std::string& cl : kClusters) {
    hw::Cluster cluster = harness::cluster_by_name(cl);
    for (const std::string& obj : kObjectives) {
      parallel::ParallelizerOptions opts;
      opts.objective.name = obj;
      opts.objective.slo = slo;
      parallel::Parallelizer planner(cluster, model, opts);
      parallel::WorkloadProfile profile = bench::hetis_options().workload;
      PlannerCell cell;
      cell.cluster = cl;
      cell.objective = obj;
      parallel::ParallelPlan plan = planner.plan(profile);
      cell.estimate = planner.evaluator().evaluate(plan, profile);
      cell.plan = plan.to_string(cluster);
      cell.diag = planner.diagnostics();
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

const PlannerCell& planner_cell(const std::vector<PlannerCell>& cells, const std::string& cl,
                                const std::string& obj) {
  for (const auto& c : cells) {
    if (c.cluster == cl && c.objective == obj) return c;
  }
  throw std::logic_error("no planner cell for " + cl + "/" + obj);
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::flag_requested(argc, argv, "--csv-header")) {
    std::printf("%s\n", harness::sweep_csv_header().c_str());
    return 0;
  }
  const Seconds horizon = std::atof(bench::arg_value(argc, argv, "--horizon", "16").c_str());
  const std::string out_path = bench::arg_value(argc, argv, "--out", "BENCH_objectives.json");
  const bool csv = bench::csv_requested(argc, argv);
  const bool progress = bench::flag_requested(argc, argv, "--progress");
  const int jobs = bench::jobs_requested(argc, argv, /*fallback=*/0);

  engine::SloSpec slo;
  slo.ttft = 2.0;
  slo.tpot = 0.15;

  const auto t0 = std::chrono::steady_clock::now();

  // --- Part A: planner-level estimates per (cluster, objective) ----------
  const std::vector<PlannerCell> planner_cells = plan_all(slo);
  bool ttft_ok = true;
  for (const std::string& cl : kClusters) {
    const auto& lat = planner_cell(planner_cells, cl, "latency");
    const auto& thr = planner_cell(planner_cells, cl, "throughput");
    if (lat.estimate.ttft > thr.estimate.ttft) ttft_ok = false;
  }

  // --- Part B: serving sweeps, one per cluster preset --------------------
  std::vector<harness::SweepRow> rows;
  for (const std::string& cl : kClusters) {
    harness::ExperimentSpec spec = bench::paper_spec("objectives", "Llama-13B");
    spec.cluster = cl;
    spec.engines = {"hetis"};
    spec.objectives = kObjectives;
    spec.horizon = horizon;
    spec.run.slo = slo;
    spec.jobs = jobs;
    const double rate = kRates.at(cl);
    spec.add_scenario(
        workload::scenario_preset(workload::Scenario::kBursty, rate, spec.horizon, spec.seed));
    spec.add_scenario(
        workload::scenario_preset(workload::Scenario::kDiurnal, rate, spec.horizon, spec.seed));
    auto part = harness::run_sweep(spec, progress
                                             ? bench::progress_printer(bench::cell_count(spec))
                                             : harness::RowCallback());
    bench::warn_truncated(part);
    for (auto& row : part) rows.push_back(std::move(row));
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (out_path != "-") {
    std::ostringstream rows_json;
    harness::write_json(rows_json, rows);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"objectives\",\"model\":\"Llama-13B\",\"slo_ttft\":" << slo.ttft
        << ",\"slo_tpot\":" << slo.tpot << ",\"horizon\":" << horizon << ",\"jobs\":" << jobs
        << ",\"wall_seconds\":" << wall
        << ",\"latency_ttft_never_worse\":" << (ttft_ok ? "true" : "false") << ",\"plans\":[";
    for (std::size_t i = 0; i < planner_cells.size(); ++i) {
      const PlannerCell& c = planner_cells[i];
      out << (i ? ",\n  " : "\n  ") << "{\"cluster\":\"" << c.cluster << "\",\"objective\":\""
          << c.objective << "\",\"ttft\":" << c.estimate.ttft << ",\"tpot\":" << c.estimate.tpot
          << ",\"throughput\":" << c.estimate.throughput
          << ",\"kv_capacity\":" << c.estimate.kv_capacity
          << ",\"device_count\":" << c.estimate.device_count
          << ",\"instances\":" << c.estimate.instances << ",\"best_score\":" << c.diag.best_cost
          << ",\"configurations_evaluated\":" << c.diag.configurations_evaluated
          << ",\"plan\":\"" << engine::json_escape(c.plan) << "\"}";
    }
    out << "\n],\"rows\":" << rows_json.str() << "}\n";
  }

  if (csv) {
    std::printf("%s\n", harness::sweep_csv_header().c_str());
    for (const auto& row : rows) std::printf("%s\n", harness::to_csv_row(row).c_str());
  } else {
    std::printf("=== Plan objectives: Llama-13B, %zu cluster presets x 2 scenarios "
                "(horizon %.0fs, jobs %d, %.2fs wall) ===\n\n",
                kClusters.size(), horizon, jobs, wall);
    std::printf("--- A. planner estimates (WorkloadProfile: 4096 prefill, batch 64) ---\n");
    std::printf("%-9s %-18s %8s %8s %8s %5s %4s  %s\n", "cluster", "objective", "ttft",
                "tpot", "req/s", "dev", "dp", "plan");
    for (const auto& c : planner_cells) {
      std::printf("%-9s %-18s %8.3f %8.4f %8.2f %5d %4d  %s\n", c.cluster.c_str(),
                  c.objective.c_str(), c.estimate.ttft, c.estimate.tpot, c.estimate.throughput,
                  c.estimate.device_count, c.estimate.instances, c.plan.c_str());
    }
    std::printf("\nlatency TTFT <= throughput TTFT on every preset: %s\n\n",
                ttft_ok ? "yes" : "NO (regression!)");
    std::printf("--- B. serving (SLO: TTFT %.1fs, TPOT %.2fs) ---\n", slo.ttft, slo.tpot);
    std::printf("%-9s %-10s %-18s %9s %8s %8s %8s %10s %12s\n", "cluster", "scenario",
                "objective", "finished", "ttft_p95", "slo_att", "goodput", "dev_s",
                "dev_s/slo_req");
    for (const auto& row : rows) {
      std::printf("%-9s %-10s %-18s %6zu/%-2zu %8.3f %8.2f %8.2f %10.1f %12.2f\n",
                  row.cluster.c_str(), row.scenario.c_str(), row.objective.c_str(),
                  row.report.finished, row.trace_requests, row.report.ttft_p95,
                  row.report.slo_attainment, row.report.goodput, row.device_seconds,
                  row.device_seconds_per_slo_request);
    }
    if (out_path != "-") std::printf("\nwrote %s\n", out_path.c_str());
  }
  // The ROADMAP-flagged invariant is this bench's contract; fail loudly so
  // CI catches an estimate-model change that re-breaks it.
  return ttft_ok ? 0 : 2;
}
