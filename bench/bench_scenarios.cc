// Scenario sweep: every workload generator (poisson / bursty / diurnal /
// ramp / multi_tenant / long_context) served by all three registered
// engines on the paper cluster, with an interactive SLO attached.
//
// This is the workload-diversity counterpart of the per-figure benches: the
// paper's traces are stationary Poisson, while heterogeneous-cluster
// conclusions have to survive bursts, load swings and mixed tenants.  The
// run also writes BENCH_scenarios.json (rows + wall-clock + jobs) as the
// canonical artifact for the perf trajectory.
//
// Flags:
//   --csv         dump aligned sweep rows to stdout instead of the table
//   --csv-header  print the sweep CSV header and exit (CI checks this
//                 against the emitted CSV)
//   --jobs N      sweep worker threads (0 = hardware concurrency; rows are
//                 byte-identical for every value).  Default: 0.
//   --progress    per-cell completion lines on stderr
//   --out PATH    where to write the JSON artifact (default
//                 BENCH_scenarios.json; "-" disables)
//   --rate R      base aggregate rate in req/s (default 2)
//   --horizon S   arrival window in seconds (default 12)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  using namespace hetis;
  if (bench::flag_requested(argc, argv, "--csv-header")) {
    std::printf("%s\n", harness::sweep_csv_header().c_str());
    return 0;
  }
  const double rate = std::atof(bench::arg_value(argc, argv, "--rate", "2").c_str());
  const Seconds horizon = std::atof(bench::arg_value(argc, argv, "--horizon", "12").c_str());
  const std::string out_path = bench::arg_value(argc, argv, "--out", "BENCH_scenarios.json");
  const bool csv = bench::csv_requested(argc, argv);
  const int jobs = bench::jobs_requested(argc, argv, /*fallback=*/0);

  harness::ExperimentSpec spec = bench::paper_spec("scenarios", "Llama-13B");
  spec.horizon = horizon;
  spec.jobs = jobs;
  engine::SloSpec slo;
  slo.ttft = 5.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  for (const std::string& name : workload::scenario_names()) {
    spec.add_scenario(workload::scenario_preset(workload::scenario_by_name(name), rate,
                                                spec.horizon, spec.seed));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = harness::run_sweep(
      spec, bench::flag_requested(argc, argv, "--progress")
                ? bench::progress_printer(bench::cell_count(spec))
                : harness::RowCallback());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  bench::warn_truncated(rows);

  if (out_path != "-") {
    std::ostringstream rows_json;
    harness::write_json(rows_json, rows);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"scenarios\",\"model\":\"Llama-13B\",\"cluster\":\"paper\""
        << ",\"seed\":" << spec.seed << ",\"rate\":" << rate << ",\"horizon\":" << spec.horizon
        << ",\"jobs\":" << spec.jobs << ",\"wall_seconds\":" << wall
        << ",\"rows\":" << rows_json.str() << "}\n";
  }

  if (csv) {
    harness::write_csv(std::cout, rows);
    return 0;
  }

  std::printf("=== Scenario sweep: %zu generators x 3 engines, Llama-13B, paper cluster ===\n",
              spec.workloads.size());
  std::printf("(base rate %.1f req/s, horizon %.0fs, seed %llu, jobs %d, %.2fs wall)\n\n", rate,
              spec.horizon, static_cast<unsigned long long>(spec.seed), spec.jobs, wall);
  const std::size_t ne = spec.engines.size();
  for (std::size_t pi = 0; pi < spec.workloads.size(); ++pi) {
    const auto& point = spec.workloads[pi];
    std::printf("--- %s ---\n", workload::describe(*point.scenario).c_str());
    std::printf("%-10s %9s %10s %9s %9s %8s %8s\n", "engine", "finished", "norm(mean)",
                "ttft_p95", "tpot_p95", "slo_att", "goodput");
    for (std::size_t ei = 0; ei < ne; ++ei) {
      const auto& row = rows[pi * ne + ei];
      std::printf("%-10s %6zu/%-2zu %10.4f %9.3f %9.4f %8.2f %8.2f\n",
                  row.report.engine.c_str(), row.report.finished, row.trace_requests,
                  row.report.norm_latency_mean, row.report.ttft_p95, row.report.tpot_p95,
                  row.report.slo_attainment, row.report.goodput);
      for (const auto& t : row.tenants) {
        std::printf("  tenant %-8s %5zu/%-4zu ttft_p95=%.3fs tpot_p95=%.4fs slo=%.2f "
                    "goodput=%.2f\n",
                    t.tenant.c_str(), t.finished, t.arrived, t.ttft_p95, t.tpot_p95,
                    t.slo_attainment, t.goodput);
      }
    }
    std::printf("\n");
  }
  if (out_path != "-") std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
