// Fig. 9 reproduction: normalized end-to-end latency vs request rate for
// OPT-30B across the three datasets and systems.
#include "harness.h"

int main() {
  using namespace hetis;
  bench::run_e2e_figure("Fig. 9", model::opt_30b(),
                        {{workload::Dataset::kShareGPT, {3, 6, 9, 12}},
                         {workload::Dataset::kHumanEval, {15, 30, 45}},
                         {workload::Dataset::kLongBench, {2, 4, 6}}});
  return 0;
}
