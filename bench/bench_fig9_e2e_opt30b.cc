// Fig. 9 reproduction: normalized end-to-end latency vs request rate for
// OPT-30B across the three datasets and systems.
//
// Declarative harness sweep; pass --csv for the aligned row dump.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace hetis;
  bench::run_e2e_figure("Fig. 9", "OPT-30B",
                        {{workload::Dataset::kShareGPT, {3, 6, 9, 12}},
                         {workload::Dataset::kHumanEval, {15, 30, 45}},
                         {workload::Dataset::kLongBench, {2, 4, 6}}},
                        bench::csv_requested(argc, argv), bench::jobs_requested(argc, argv),
                        bench::flag_requested(argc, argv, "--progress"));
  return 0;
}
