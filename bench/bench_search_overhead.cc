// §7.4 "Searching overhead" reproduction: wall-clock time of the
// Parallelizer's hierarchical search on (i) the paper cluster and (ii) the
// paper's scale test (five GPU types x 32 GPUs each).  The paper reports
// 4s and 15s respectively on their implementation; the absolute numbers
// here reflect our simulator, but both must stay trivially small relative
// to deployment lifetime.
#include <benchmark/benchmark.h>

#include "harness.h"

#include "hw/topology.h"
#include "model/llm.h"
#include "parallel/parallelizer.h"

namespace {

using namespace hetis;

parallel::WorkloadProfile profile() {
  parallel::WorkloadProfile p;
  p.decode_batch = 64;
  p.mean_context = 512;
  return p;
}

void BM_SearchPaperCluster(benchmark::State& state) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  for (auto _ : state) {
    parallel::Parallelizer par(cluster, model::llama_70b());
    parallel::ParallelPlan plan = par.plan(profile());
    benchmark::DoNotOptimize(plan.instances.size());
  }
  state.SetLabel("4xA100 + 4x3090 + 4xP100, Llama-70B");
}
BENCHMARK(BM_SearchPaperCluster)->Unit(benchmark::kMillisecond);

void BM_SearchFiveTypes32Gpus(benchmark::State& state) {
  hw::Cluster cluster = hw::Cluster::synthetic_cluster(
      {hw::GpuType::kH100_80G, hw::GpuType::kA100_80G, hw::GpuType::kV100_32G,
       hw::GpuType::kL4, hw::GpuType::kT4},
      32);
  for (auto _ : state) {
    parallel::Parallelizer par(cluster, model::llama_70b());
    parallel::ParallelPlan plan = par.plan(profile());
    benchmark::DoNotOptimize(plan.instances.size());
  }
  state.SetLabel("5 types x 32 GPUs (paper: 15s at this scale)");
}
BENCHMARK(BM_SearchFiveTypes32Gpus)->Unit(benchmark::kMillisecond);

void BM_SearchNoPruning(benchmark::State& state) {
  // Ablation: pruning disabled (the Delta heuristic skipped).
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  for (auto _ : state) {
    parallel::ParallelizerOptions opts;
    opts.enable_pruning = false;
    parallel::Parallelizer par(cluster, model::llama_70b(), opts);
    parallel::ParallelPlan plan = par.plan(profile());
    benchmark::DoNotOptimize(plan.instances.size());
  }
  state.SetLabel("pruning disabled (ablation)");
}
BENCHMARK(BM_SearchNoPruning)->Unit(benchmark::kMillisecond);

}  // namespace

HETIS_BENCH_MAIN();
