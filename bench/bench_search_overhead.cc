// Search scalability: wall-clock planning time and plan quality of the
// placement tiers (planner/planner.h) from the paper cluster up to the
// datacenter presets.
//
// The paper's §7.4 reports the exhaustive search at 4s on 12 GPUs and 15s
// on 160; the ROADMAP's north star is datacenter-scale serving, where the
// exhaustive tier is the oracle and the LP/flow tier must plan a 256-GPU
// pod in under a second while staying within a few percent of the oracle
// wherever the oracle is affordable.  This bench is the scoreboard for
// that trade: every row plans one (cluster, planner) cell and reports plan
// wall-clock, LP effort and the objective score; flow rows on oracle-sized
// clusters also report `score_vs_oracle` (relative score excess over the
// exhaustive plan, 0 = matched).  Committed as BENCH_search.json so plan
// quality and planning time are tracked PR-over-PR like bench_simspeed.
//
// Flags:
//   --csv           dump rows to stdout instead of the table
//   --csv-header    print the CSV header and exit (CI diffs this)
//   --out PATH      JSON artifact path (default BENCH_search.json;
//                   "-" disables)
//   --check PATH    threshold guard: compare this run against a committed
//                   BENCH_search.json and exit 2 if any row's
//                   score_vs_oracle worsens by more than --tolerance, or
//                   any flow row plans slower than --budget-ms
//   --tolerance F   allowed score_vs_oracle excess over baseline (default
//                   0.05 -- the oracle-equivalence acceptance bound)
//   --budget-ms N   flow planning budget per cluster under --check
//                   (default 1000, the dc256 acceptance criterion)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "parallel/evaluator.h"
#include "parallel/objective.h"
#include "planner/planner.h"

namespace {

using namespace hetis;

struct SearchRow {
  std::string cluster;
  std::string planner;
  std::string objective;
  int devices = 0;
  double plan_ms = 0;
  std::size_t lp_solves = 0;
  std::size_t pivots = 0;
  int evaluated = 0;
  double score = 0;
  // Relative score excess of this plan over the exhaustive oracle's on the
  // same cluster (0 = matched the oracle; only flow rows on clusters where
  // the oracle ran carry a value, others write 0).
  double score_vs_oracle = 0;
};

constexpr const char* kCsvHeader =
    "cluster,planner,objective,devices,plan_ms,lp_solves,pivots,evaluated,"
    "score,score_vs_oracle";

std::string row_csv(const SearchRow& r) {
  std::ostringstream oss;
  oss << engine::csv_field(r.cluster) << ',' << engine::csv_field(r.planner) << ','
      << engine::csv_field(r.objective) << ',' << r.devices << ','
      << engine::csv_double(r.plan_ms) << ',' << r.lp_solves << ',' << r.pivots << ','
      << r.evaluated << ',' << engine::csv_double(r.score) << ','
      << engine::csv_double(r.score_vs_oracle);
  return oss.str();
}

std::string row_json(const SearchRow& r) {
  std::ostringstream oss;
  oss << "{\"cluster\":\"" << engine::json_escape(r.cluster) << "\",\"planner\":\""
      << engine::json_escape(r.planner) << "\",\"objective\":\""
      << engine::json_escape(r.objective) << "\",\"devices\":" << r.devices
      << ",\"plan_ms\":" << engine::csv_double(r.plan_ms) << ",\"lp_solves\":" << r.lp_solves
      << ",\"pivots\":" << r.pivots << ",\"evaluated\":" << r.evaluated
      << ",\"score\":" << engine::csv_double(r.score)
      << ",\"score_vs_oracle\":" << engine::csv_double(r.score_vs_oracle) << "}";
  return oss.str();
}

parallel::WorkloadProfile bench_profile() {
  parallel::WorkloadProfile p;
  p.decode_batch = 64;
  p.mean_context = 512;
  return p;
}

// Scores a finished plan through the same evaluator + objective the
// planners search with, so rows compare plans, not search internals.
double plan_score(const hw::Cluster& cluster, const model::ModelSpec& model,
                  const parallel::ParallelPlan& plan, const std::string& objective) {
  parallel::PlanEvaluator evaluator(cluster, model);
  return parallel::make_objective(objective)->score(
      evaluator.evaluate(plan, bench_profile()));
}

SearchRow timed_plan(const std::string& cluster_name, const std::string& planner_name,
                     const std::string& objective) {
  const hw::Cluster cluster = harness::cluster_by_name(cluster_name);
  const model::ModelSpec& model = model::llama_70b();
  parallel::ParallelizerOptions opts;
  opts.objective.name = objective;

  auto planner = planner::make(planner_name, cluster, model, opts);
  const auto t0 = std::chrono::steady_clock::now();
  parallel::ParallelPlan plan = planner->plan(bench_profile());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const parallel::SearchDiagnostics& diag = planner->diagnostics();

  SearchRow row;
  row.cluster = cluster_name;
  row.planner = planner_name;
  row.objective = objective;
  row.devices = cluster.num_devices();
  row.plan_ms = wall * 1e3;
  row.lp_solves = diag.lp_solves;
  row.pivots = diag.solver_iterations;
  row.evaluated = diag.configurations_evaluated;
  row.score = plan_score(cluster, model, plan, objective);
  return row;
}

/// Minimal scanner for a BENCH_search.json written by this bench: extracts
/// (cluster, planner, objective, plan_ms, score_vs_oracle) per row.
struct RefRow {
  std::string cluster;
  std::string planner;
  std::string objective;
  double plan_ms = 0;
  double vs_oracle = 0;
};

std::vector<RefRow> load_reference(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ERROR: --check cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<RefRow> rows;
  auto grab = [&text](std::size_t from, const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":";
    std::size_t k = text.find(needle, from);
    if (k == std::string::npos) return "";
    k += needle.size();
    bool quoted = k < text.size() && text[k] == '"';
    if (quoted) ++k;
    std::size_t end = text.find_first_of(quoted ? "\"" : ",}", k);
    if (end == std::string::npos) return "";
    return text.substr(k, end - k);
  };
  std::size_t pos = 0;
  while ((pos = text.find("{\"cluster\":", pos)) != std::string::npos) {
    RefRow r;
    r.cluster = grab(pos, "cluster");
    r.planner = grab(pos, "planner");
    r.objective = grab(pos, "objective");
    r.plan_ms = std::atof(grab(pos, "plan_ms").c_str());
    r.vs_oracle = std::atof(grab(pos, "score_vs_oracle").c_str());
    if (!r.cluster.empty() && !r.planner.empty()) rows.push_back(r);
    ++pos;
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;
  if (bench::flag_requested(argc, argv, "--csv-header")) {
    std::printf("%s\n", kCsvHeader);
    return 0;
  }
  const std::string out_path = bench::arg_value(argc, argv, "--out", "BENCH_search.json");
  const std::string check_path = bench::arg_value(argc, argv, "--check", "");
  const double tolerance =
      std::atof(bench::arg_value(argc, argv, "--tolerance", "0.05").c_str());
  const double budget_ms =
      std::atof(bench::arg_value(argc, argv, "--budget-ms", "1000").c_str());
  const bool csv = bench::csv_requested(argc, argv);

  // The exhaustive oracle runs wherever its cost is tolerable (the paper's
  // own 160-GPU scale test took 15s); beyond that only the flow tier plans
  // and its score stands alone.
  const std::vector<std::string> clusters = {"paper", "dc64", "dc128", "dc256"};
  constexpr int kOracleMaxDevices = 128;
  const std::string objective = "throughput";

  std::vector<SearchRow> rows;
  for (const std::string& cluster_name : clusters) {
    const int devices = harness::cluster_by_name(cluster_name).num_devices();
    double oracle_score = 0;
    bool have_oracle = false;
    if (devices <= kOracleMaxDevices) {
      rows.push_back(timed_plan(cluster_name, "exhaustive", objective));
      oracle_score = rows.back().score;
      have_oracle = true;
      if (!csv) {
        std::fprintf(stderr, "%s/exhaustive: %.1f ms, score %.4g\n", cluster_name.c_str(),
                     rows.back().plan_ms, rows.back().score);
      }
    }
    SearchRow flow = timed_plan(cluster_name, "flow", objective);
    if (have_oracle && oracle_score != 0) {
      // Relative excess with lower-is-better scores of either sign.
      flow.score_vs_oracle = (flow.score - oracle_score) / std::abs(oracle_score);
    }
    if (!csv) {
      std::fprintf(stderr, "%s/flow: %.1f ms, score %.4g, vs oracle %+.3f\n",
                   cluster_name.c_str(), flow.plan_ms, flow.score, flow.score_vs_oracle);
    }
    rows.push_back(std::move(flow));
  }

  if (out_path != "-") {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"search\",\"model\":\"Llama-70B\",\"objective\":\"" << objective
        << "\",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i) out << ",";
      out << row_json(rows[i]);
    }
    out << "]}\n";
  }

  if (csv) {
    std::printf("%s\n", kCsvHeader);
    for (const auto& r : rows) std::printf("%s\n", row_csv(r).c_str());
  } else {
    std::printf("=== Search scalability: Llama-70B, %s objective ===\n", objective.c_str());
    std::printf("%-8s %-11s %8s %10s %10s %8s %10s %14s\n", "cluster", "planner", "devices",
                "plan(ms)", "lp_solves", "pivots", "score", "vs_oracle");
    for (const auto& r : rows) {
      std::printf("%-8s %-11s %8d %10.1f %10zu %8zu %10.4g %14.3f\n", r.cluster.c_str(),
                  r.planner.c_str(), r.devices, r.plan_ms, r.lp_solves, r.pivots, r.score,
                  r.score_vs_oracle);
    }
    if (out_path != "-") std::printf("wrote %s\n", out_path.c_str());
  }

  // Threshold guard: plan quality is deterministic, so score_vs_oracle may
  // not worsen past the committed baseline by more than the tolerance; flow
  // planning time must stay inside the absolute budget (wall-clock, so the
  // bound is generous rather than a ratio against a noisy baseline).
  if (!check_path.empty()) {
    const std::vector<RefRow> ref = load_reference(check_path);
    if (ref.empty()) {
      std::fprintf(stderr, "ERROR: --check found no rows in %s\n", check_path.c_str());
      return 2;
    }
    int failures = 0;
    for (const RefRow& r : ref) {
      for (const SearchRow& cur : rows) {
        if (cur.cluster != r.cluster || cur.planner != r.planner ||
            cur.objective != r.objective) {
          continue;
        }
        if (cur.score_vs_oracle > r.vs_oracle + tolerance) {
          std::fprintf(stderr,
                       "FAIL: %s/%s plan quality regressed: score_vs_oracle %+.3f > "
                       "baseline %+.3f + %.0f%%\n",
                       r.cluster.c_str(), r.planner.c_str(), cur.score_vs_oracle,
                       r.vs_oracle, tolerance * 100.0);
          ++failures;
        }
        if (cur.planner == "flow" && cur.plan_ms > budget_ms) {
          std::fprintf(stderr, "FAIL: %s/flow planned in %.1f ms > %.0f ms budget\n",
                       r.cluster.c_str(), cur.plan_ms, budget_ms);
          ++failures;
        }
      }
    }
    if (failures > 0) return 2;
    std::fprintf(stderr,
                 "search threshold guard passed (%zu reference rows, tolerance %.0f%%, "
                 "budget %.0f ms)\n",
                 ref.size(), tolerance * 100.0, budget_ms);
  }
  return 0;
}
