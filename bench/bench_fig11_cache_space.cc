// Fig. 11 reproduction: maximum available KV-cache space (GB) across
// models and systems.  Expected shape: Hetis largest everywhere (paper: up
// to 1.87x), Splitwise crippled by duplicate parameter copies, HexGen by
// the computation/memory imbalance of parameter splitting.
//
// (The paper's per-dataset variation stems from HexGen re-planning per
// request distribution; our HexGen instantiation is the paper's fixed
// 4-stage layout, so one column per model is reported.)
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = hw::Cluster::paper_cluster();

  std::printf("=== Fig. 11: maximum available KV cache space (GB) ===\n\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "model", "Hetis", "Hexgen", "Splitwise",
              "Hetis/best-bl");
  for (const auto* m : {&model::llama_13b(), &model::opt_30b(), &model::llama_70b()}) {
    core::HetisEngine het(cluster, *m, bench::hetis_options());
    baselines::HexgenEngine hex(cluster, *m);
    baselines::SplitwiseEngine sw(cluster, *m);
    double h = to_gb(het.usable_kv_capacity());
    double g = to_gb(hex.usable_kv_capacity());
    double s = to_gb(sw.usable_kv_capacity());
    std::printf("%-10s %12.1f %12.1f %12.1f %13.2fx\n", m->name.c_str(), h, g, s,
                h / std::max(g, s));
  }
  return 0;
}
