// Fig. 11 reproduction: maximum available KV-cache space (GB) across
// models and systems.  Expected shape: Hetis largest everywhere (paper: up
// to 1.87x), Splitwise crippled by duplicate parameter copies, HexGen by
// the computation/memory imbalance of parameter splitting.
//
// (The paper's per-dataset variation stems from HexGen re-planning per
// request distribution; our HexGen instantiation is the paper's fixed
// 4-stage layout, so one column per model is reported.)
//
// Engines are constructed by registry name; no serving run is needed --
// usable KV capacity is a property of the deployment.
#include <algorithm>
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = harness::cluster_by_name("paper");

  std::printf("=== Fig. 11: maximum available KV cache space (GB) ===\n\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "model", "Hetis", "Hexgen", "Splitwise",
              "Hetis/best-bl");
  for (const char* name : {"Llama-13B", "OPT-30B", "Llama-70B"}) {
    const model::ModelSpec& m = model::model_by_name(name);
    auto het = engine::make("hetis", cluster, m, bench::hetis_options());
    auto hex = engine::make("hexgen", cluster, m);
    auto sw = engine::make("splitwise", cluster, m);
    double h = to_gb(het->usable_kv_capacity());
    double g = to_gb(hex->usable_kv_capacity());
    double s = to_gb(sw->usable_kv_capacity());
    std::printf("%-10s %12.1f %12.1f %12.1f %13.2fx\n", m.name.c_str(), h, g, s,
                h / std::max(g, s));
  }
  return 0;
}
