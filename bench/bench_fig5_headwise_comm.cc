// Fig. 5 reproduction: communication overhead of head-wise vs
// sequence-wise Attention splitting on Llama-70B over a 100 Gbps network.
//
//   (a) one Attention worker, offload ratio 20-80% of the heads
//   (b) 1-4 Attention workers, load evenly distributed
//
// Expected shape: head-wise wins everywhere (paper: ~2.7x at 20% offload,
// up to ~3.6x with 4 workers) because it moves only the offloaded heads'
// q/result chunks instead of replicating the full q vector per worker.
#include <cstdio>
#include <vector>

#include "costmodel/comm_model.h"
#include "hw/topology.h"
#include "model/llm.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  costmodel::CommModel comm(cluster);
  const model::ModelSpec& m = model::llama_70b();

  const int primary = 0;                       // an A100
  const std::vector<int> workers{8, 9, 10, 11};  // the P100 host

  std::printf("=== Fig. 5: head-wise vs seq-wise Attention-offload overhead ===\n");
  std::printf("(Llama-70B, 100 Gbps LAN, per decode step, all layers)\n\n");

  std::printf("--- (a) one worker, varying offload ratio ---\n");
  std::printf("%10s %14s %14s %10s\n", "offload", "head-wise(ms)", "seq-wise(ms)", "ratio");
  for (double ratio : {0.2, 0.4, 0.6, 0.8}) {
    double heads = ratio * m.heads;
    Seconds head = comm.headwise_offload_time(m, primary, workers[0], heads);
    Seconds seq = comm.seqwise_offload_time(m, primary, {workers[0]});
    std::printf("%9.0f%% %14.3f %14.3f %9.2fx\n", ratio * 100, to_millis(head), to_millis(seq),
                seq / head);
  }

  std::printf("\n--- (b) even split across 1-4 workers ---\n");
  std::printf("%10s %14s %14s %10s\n", "#workers", "head-wise(ms)", "seq-wise(ms)", "ratio");
  for (std::size_t n = 1; n <= workers.size(); ++n) {
    std::vector<int> group(workers.begin(), workers.begin() + static_cast<std::ptrdiff_t>(n));
    // Head-wise: each worker receives heads/n of the request's heads; the
    // transfers fan out on distinct flows, so the slowest (equal) leg
    // bounds latency.
    double heads_per_worker = static_cast<double>(m.heads) / static_cast<double>(n);
    Seconds head = 0;
    for (int w : group) {
      head = std::max(head, comm.headwise_offload_time(m, primary, w, heads_per_worker));
    }
    Seconds seq = comm.seqwise_offload_time(m, primary, group);
    std::printf("%10zu %14.3f %14.3f %9.2fx\n", n, to_millis(head), to_millis(seq), seq / head);
  }
  return 0;
}
