// Fig. 13 reproduction: P95 per-token MLP and Attention module latency
// during decode for Llama-70B (module latency = max per-stage module time
// x number of stages, §7.3), normalized to Hetis.  Expected shape: Hetis
// reduces MLP by up to ~1.29x and decode Attention by up to ~1.49x.
//
// Declarative harness sweep; pass --csv for the aligned row dump.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace hetis;
  harness::ExperimentSpec spec = bench::paper_spec("Fig. 13", "Llama-70B");
  spec.workloads = {{workload::Dataset::kShareGPT, 1.5},
                    {workload::Dataset::kHumanEval, 6.0},
                    {workload::Dataset::kLongBench, 0.8}};
  spec.jobs = bench::jobs_requested(argc, argv);

  const auto rows = harness::run_sweep(spec);
  bench::warn_truncated(rows);
  if (bench::csv_requested(argc, argv)) {
    harness::write_csv(std::cout, rows);
    return 0;
  }

  std::printf("=== Fig. 13: P95 decode module latency, Llama-70B (normalized to Hetis) ===\n\n");
  std::printf("%-10s | %9s %9s %9s | %9s %9s %9s\n", "dataset", "MLP:SW", "MLP:HG", "MLP:HT",
              "Attn:SW", "Attn:HG", "Attn:HT");
  const std::size_t ne = spec.engines.size();
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const auto& sw = bench::point_report(rows, i, ne, "Splitwise");
    const auto& hg = bench::point_report(rows, i, ne, "Hexgen");
    const auto& ht = bench::point_report(rows, i, ne, "Hetis");
    double m0 = ht.mlp_module_p95, a0 = ht.attn_module_p95;
    std::printf("%-10s | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
                workload::to_string(spec.workloads[i].dataset), sw.mlp_module_p95 / m0,
                hg.mlp_module_p95 / m0, 1.0, sw.attn_module_p95 / a0, hg.attn_module_p95 / a0,
                1.0);
    std::printf("%-10s | absolute Hetis: MLP %.3f ms, Attention %.3f ms\n", "", to_millis(m0),
                to_millis(a0));
  }
  return 0;
}
