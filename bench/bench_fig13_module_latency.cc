// Fig. 13 reproduction: P95 per-token MLP and Attention module latency
// during decode for Llama-70B (module latency = max per-stage module time
// x number of stages, §7.3), normalized to Hetis.  Expected shape: Hetis
// reduces MLP by up to ~1.29x and decode Attention by up to ~1.49x.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  const model::ModelSpec& m = model::llama_70b();
  const std::vector<std::pair<workload::Dataset, double>> settings{
      {workload::Dataset::kShareGPT, 1.5},
      {workload::Dataset::kHumanEval, 6.0},
      {workload::Dataset::kLongBench, 0.8},
  };

  std::printf("=== Fig. 13: P95 decode module latency, Llama-70B (normalized to Hetis) ===\n\n");
  std::printf("%-10s | %9s %9s %9s | %9s %9s %9s\n", "dataset", "MLP:SW", "MLP:HG", "MLP:HT",
              "Attn:SW", "Attn:HG", "Attn:HT");
  for (const auto& [ds, rate] : settings) {
    auto trace = bench::make_trace(ds, rate);
    bench::SystemReports r = bench::run_three_systems(m, trace);
    double m0 = r.hetis.mlp_module_p95, a0 = r.hetis.attn_module_p95;
    std::printf("%-10s | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n", workload::to_string(ds),
                r.splitwise.mlp_module_p95 / m0, r.hexgen.mlp_module_p95 / m0, 1.0,
                r.splitwise.attn_module_p95 / a0, r.hexgen.attn_module_p95 / a0, 1.0);
    std::printf("%-10s | absolute Hetis: MLP %.3f ms, Attention %.3f ms\n", "",
                to_millis(m0), to_millis(a0));
  }
  return 0;
}
