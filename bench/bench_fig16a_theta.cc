// Fig. 16(a) reproduction: sensitivity of per-token latency to the
// re-dispatch threshold Theta, reported as the latency ratio vs the
// default Theta = 0.5.  Expected shape: a shallow valley around 0.5 --
// small Theta migrates too eagerly, large Theta tolerates imbalance.
//
// Hetis is constructed by registry name with Theta carried in
// EngineOptions -- no concrete engine header.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  const std::vector<std::pair<workload::Dataset, double>> settings{
      {workload::Dataset::kShareGPT, 5.0},
      {workload::Dataset::kHumanEval, 25.0},
      {workload::Dataset::kLongBench, 3.0},
  };
  const std::vector<double> thetas{0.3, 0.4, 0.5, 0.6, 0.7};
  const engine::RunOptions ropts(bench::kDrain);

  auto run_at_theta = [&](workload::Dataset ds, double rate, double theta) {
    engine::HetisConfig cfg = bench::hetis_options();
    cfg.theta = theta;
    auto eng = engine::make("hetis", cluster, m, cfg);
    return engine::run_trace(*eng, bench::make_trace(ds, rate), ropts).norm_latency_mean;
  };

  std::printf("=== Fig. 16(a): latency ratio vs Theta (baseline Theta=0.5) ===\n\n");
  std::printf("%8s", "Theta");
  for (const auto& [ds, rate] : settings) std::printf(" %12s", workload::to_string(ds));
  std::printf("\n");

  // Baselines at theta = 0.5 per dataset.
  std::vector<double> base;
  for (const auto& [ds, rate] : settings) base.push_back(run_at_theta(ds, rate, 0.5));

  for (double theta : thetas) {
    std::printf("%8.1f", theta);
    for (std::size_t i = 0; i < settings.size(); ++i) {
      double lat = run_at_theta(settings[i].first, settings[i].second, theta);
      std::printf(" %12.3f", lat / base[i]);
    }
    std::printf("\n");
  }
  return 0;
}
