// Fig. 16(a) reproduction: sensitivity of per-token latency to the
// re-dispatch threshold Theta, reported as the latency ratio vs the
// default Theta = 0.5.  Expected shape: a shallow valley around 0.5 --
// small Theta migrates too eagerly, large Theta tolerates imbalance.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& m = model::llama_13b();
  const std::vector<std::pair<workload::Dataset, double>> settings{
      {workload::Dataset::kShareGPT, 5.0},
      {workload::Dataset::kHumanEval, 25.0},
      {workload::Dataset::kLongBench, 3.0},
  };
  const std::vector<double> thetas{0.3, 0.4, 0.5, 0.6, 0.7};

  std::printf("=== Fig. 16(a): latency ratio vs Theta (baseline Theta=0.5) ===\n\n");
  std::printf("%8s", "Theta");
  for (const auto& [ds, rate] : settings) std::printf(" %12s", workload::to_string(ds));
  std::printf("\n");

  // Baselines at theta = 0.5 per dataset.
  std::vector<double> base;
  for (const auto& [ds, rate] : settings) {
    core::HetisOptions opts = bench::hetis_options();
    opts.theta = 0.5;
    core::HetisEngine eng(cluster, m, opts);
    base.push_back(engine::run_trace(eng, bench::make_trace(ds, rate)).norm_latency_mean);
  }

  for (double theta : thetas) {
    std::printf("%8.1f", theta);
    for (std::size_t i = 0; i < settings.size(); ++i) {
      core::HetisOptions opts = bench::hetis_options();
      opts.theta = theta;
      core::HetisEngine eng(cluster, m, opts);
      double lat = engine::run_trace(eng, bench::make_trace(settings[i].first,
                                                            settings[i].second))
                       .norm_latency_mean;
      std::printf(" %12.3f", lat / base[i]);
    }
    std::printf("\n");
  }
  return 0;
}
