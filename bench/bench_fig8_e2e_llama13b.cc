// Fig. 8 reproduction: normalized end-to-end latency (s/token) vs request
// rate for Llama-13B on ShareGPT / HumanEval / LongBench, all three
// systems.  Expected shape: Hetis sustains the highest rate before the
// latency knee (paper: up to 2.25x Splitwise, 1.33x HexGen throughput).
//
// Declarative harness sweep; pass --csv for the aligned row dump.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace hetis;
  bench::run_e2e_figure("Fig. 8", "Llama-13B",
                        {{workload::Dataset::kShareGPT, {3, 6, 9, 12, 15}},
                         {workload::Dataset::kHumanEval, {15, 30, 45, 60, 75}},
                         {workload::Dataset::kLongBench, {3, 5, 7, 9}}},
                        bench::csv_requested(argc, argv), bench::jobs_requested(argc, argv),
                        bench::flag_requested(argc, argv, "--progress"));
  return 0;
}
