// Fig. 15(b) reproduction: overhead of head-wise KV-cache management vs
// vLLM's token-wise management.  This is REAL CPU code measured with
// google-benchmark (the paper's §6 block-indexing runs on the host CPU):
//
//   * storage: appending tokens performs more (smaller) block allocations
//     under head-wise management (paper: +13% storage overhead),
//   * fetch: gather-index construction parallelizes across (seq, head)
//     items on the thread pool (paper: -26% fetch time).
#include <benchmark/benchmark.h>

#include "harness.h"

#include "common/thread_pool.h"
#include "kvcache/allocator.h"
#include "kvcache/block_table.h"
#include "kvcache/index_builder.h"

namespace {

using namespace hetis;
using namespace hetis::kvcache;

constexpr int kBlockTokens = 16;
constexpr int kSeqs = 256;
constexpr int kGroups = 40;      // Llama-13B: 40 KV head-groups
constexpr std::int64_t kLen = 512;

// --- storage path: register sequences + append one decode step ---

void BM_StoreTokenWise(benchmark::State& state) {
  for (auto _ : state) {
    BlockAllocator alloc(512ll * MiB, kBlockTokens);
    TokenBlockTable table(alloc, kBlockTokens);
    for (int s = 0; s < kSeqs; ++s) {
      benchmark::DoNotOptimize(table.add_sequence(s, kLen));
    }
    for (int s = 0; s < kSeqs; ++s) {
      benchmark::DoNotOptimize(table.append_token(s));
    }
  }
  state.SetLabel("vLLM token-wise blocks");
}
BENCHMARK(BM_StoreTokenWise)->Unit(benchmark::kMillisecond);

void BM_StoreHeadWise(benchmark::State& state) {
  std::vector<int> groups(kGroups);
  for (int g = 0; g < kGroups; ++g) groups[g] = g;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    BlockAllocator alloc(512ll * MiB, kBlockTokens);
    HeadBlockTable table(alloc, kBlockTokens);
    for (int s = 0; s < kSeqs; ++s) {
      benchmark::DoNotOptimize(table.add_groups(s, groups, kLen));
    }
    for (int s = 0; s < kSeqs; ++s) {
      benchmark::DoNotOptimize(table.append_token(s));
    }
    ops = table.storage_ops();
  }
  state.counters["storage_ops"] = static_cast<double>(ops);
  state.SetLabel("Hetis head-wise blocks");
}
BENCHMARK(BM_StoreHeadWise)->Unit(benchmark::kMillisecond);

// --- fetch path: build the decode gather index ---

// The attention kernel consumes per-(sequence, head-group) gather indices
// under BOTH designs; vLLM expands them from the shared per-sequence block
// list on one core, Hetis builds them from per-group tables across cores.
// Output buffers are reused across iterations, as serving engines do with
// pinned index buffers.
struct FetchFixtureData {
  BlockAllocator token_alloc{2ll * GiB, kBlockTokens};
  BlockAllocator head_alloc{2ll * GiB, kBlockTokens};
  TokenBlockTable token_table{token_alloc, kBlockTokens};
  HeadBlockTable head_table{head_alloc, kBlockTokens};
  std::vector<GatherItem> items;  // per (seq, head-group)

  FetchFixtureData() {
    std::vector<int> groups(kGroups);
    for (int g = 0; g < kGroups; ++g) groups[g] = g;
    for (int s = 0; s < kSeqs; ++s) {
      std::int64_t len = kLen + (s % 7) * 64;
      token_table.add_sequence(s, len);
      head_table.add_groups(s, groups, len);
      for (int g : groups) items.push_back(GatherItem{s, g, len});
    }
  }
};

FetchFixtureData& fetch_data() {
  static FetchFixtureData data;
  return data;
}

void BM_FetchTokenWiseSerial(benchmark::State& state) {
  auto& d = fetch_data();
  GatherPlan plan;
  for (auto _ : state) {
    build_token_index_into(d.token_table, d.items, plan);
    benchmark::DoNotOptimize(plan.slots.data());
  }
  state.SetLabel("vLLM token-wise expansion, single core");
}
BENCHMARK(BM_FetchTokenWiseSerial)->Unit(benchmark::kMillisecond);

void BM_FetchHeadWiseSerial(benchmark::State& state) {
  auto& d = fetch_data();
  GatherPlan plan;
  for (auto _ : state) {
    build_head_index_serial_into(d.head_table, d.items, plan);
    benchmark::DoNotOptimize(plan.slots.data());
  }
  state.SetLabel("Hetis head-wise, single core");
}
BENCHMARK(BM_FetchHeadWiseSerial)->Unit(benchmark::kMillisecond);

void BM_FetchHeadWiseParallel(benchmark::State& state) {
  auto& d = fetch_data();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  GatherPlan plan;
  for (auto _ : state) {
    build_head_index_parallel_into(d.head_table, d.items, pool, plan);
    benchmark::DoNotOptimize(plan.slots.data());
  }
  state.SetLabel("Hetis head-wise, multi-core (paper §6)");
}
BENCHMARK(BM_FetchHeadWiseParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

HETIS_BENCH_MAIN();
