// §7.4 "Modeling accuracy" reproduction: the Profiler's fit quality per
// device (Eq. 3, 8x8 grid) and per link (Eq. 4).  The paper reports up to
// 93.8% computation accuracy and 92.4-96.1% transfer accuracy.
#include <cstdio>

#include "costmodel/profiler.h"
#include "hw/topology.h"
#include "model/llm.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = hw::Cluster::paper_cluster();

  std::printf("=== Profiler modeling accuracy (paper §7.4) ===\n\n");
  for (const auto* m : {&model::opt_30b(), &model::llama_70b()}) {
    costmodel::Profiler profiler(cluster, *m);
    std::printf("--- model %s ---\n", m->name.c_str());
    std::printf("%-8s %14s %8s | per-device attention fit (Eq. 3)\n", "device", "accuracy",
                "R^2");
    for (hw::GpuType t :
         {hw::GpuType::kA100_80G, hw::GpuType::kRTX3090, hw::GpuType::kP100}) {
      int dev = cluster.devices_of_type(t).front();
      costmodel::DeviceProfile prof = profiler.profile_device(dev);
      std::printf("%-8s %13.1f%% %8.4f\n", hw::to_string(t), prof.attn_accuracy * 100,
                  prof.attn_r2);
    }
    // Transfer fits for representative links.
    costmodel::LinkProfile intra = profiler.profile_link(0, 1);
    costmodel::LinkProfile inter = profiler.profile_link(0, 8);
    std::printf("%-8s %13.1f%%          | transfer fit, intra-host (Eq. 4)\n", "PCIe",
                intra.transfer_accuracy * 100);
    std::printf("%-8s %13.1f%%          | transfer fit, inter-host (Eq. 4)\n", "LAN",
                inter.transfer_accuracy * 100);
    std::printf("\n");
  }
  std::printf("paper targets: computation up to 93.8%%, transfer 92.4-96.1%%\n");
  return 0;
}
