// Design-choice ablations (DESIGN.md §3): each row disables one Hetis
// mechanism and reports normalized latency on a shared workload, isolating
// the contribution of:
//   * the exact dispatch LP        (vs greedy waterfilling)
//   * primary-worker pruning       (vs all devices in dense parallelism)
//   * online re-dispatching        (vs plain LIFO preemption)
//   * data-parallel grouping       (vs one big instance)
#include <cstdio>

#include "harness.h"

namespace {

using namespace hetis;

engine::RunReport run_variant(const hw::Cluster& cluster, const model::ModelSpec& m,
                              const std::vector<workload::Request>& trace,
                              engine::HetisConfig opts) {
  auto eng = engine::make("hetis", cluster, m, std::move(opts));
  return engine::run_trace(*eng, trace, engine::RunOptions(bench::kDrain));
}

}  // namespace

int main() {
  using namespace hetis;
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  auto trace = bench::make_trace(workload::Dataset::kShareGPT, 10.0);

  std::printf("=== Design ablations (ShareGPT @10, Llama-13B, paper cluster) ===\n\n");
  std::printf("%-24s %14s %14s %10s\n", "variant", "mean (s/tok)", "p95 (s/tok)", "vs full");

  engine::HetisConfig full = bench::hetis_options();
  engine::RunReport base = run_variant(cluster, m, trace, full);
  std::printf("%-24s %14.4f %14.4f %9.2fx\n", "Hetis (full)", base.norm_latency_mean,
              base.norm_latency_p95, 1.0);

  {
    engine::HetisConfig opts = bench::hetis_options();
    opts.use_lp = false;
    engine::RunReport r = run_variant(cluster, m, trace, opts);
    std::printf("%-24s %14.4f %14.4f %9.2fx\n", "greedy dispatch (no LP)", r.norm_latency_mean,
                r.norm_latency_p95, r.norm_latency_mean / base.norm_latency_mean);
  }
  {
    engine::HetisConfig opts = bench::hetis_options();
    opts.search.enable_pruning = false;  // P100s join dense parallelism
    engine::RunReport r = run_variant(cluster, m, trace, opts);
    std::printf("%-24s %14.4f %14.4f %9.2fx\n", "no pruning (O1 off)", r.norm_latency_mean,
                r.norm_latency_p95, r.norm_latency_mean / base.norm_latency_mean);
  }
  {
    engine::HetisConfig opts = bench::hetis_options();
    opts.enable_redispatch = false;
    engine::RunReport r = run_variant(cluster, m, trace, opts);
    std::printf("%-24s %14.4f %14.4f %9.2fx\n", "no re-dispatch (LIFO)", r.norm_latency_mean,
                r.norm_latency_p95, r.norm_latency_mean / base.norm_latency_mean);
  }
  {
    engine::HetisConfig opts = bench::hetis_options();
    opts.search.allow_dp = false;
    engine::RunReport r = run_variant(cluster, m, trace, opts);
    std::printf("%-24s %14.4f %14.4f %9.2fx\n", "single instance (no DP)", r.norm_latency_mean,
                r.norm_latency_p95, r.norm_latency_mean / base.norm_latency_mean);
  }
  return 0;
}
