// Fig. 15(a) reproduction: benefit of re-dispatching vs plain LIFO
// preemption on per-token output latency.  The paper's experiment
// (ShareGPT, rate 5) exercises memory exhaustion; our substrate has more
// KV headroom at that setting, so the memory-pressure regime is recreated
// on the ablation cluster (A100 primary + 2x3090 Attention workers,
// Llama-13B) with the long-context workload -- the exact §5.3.2 scenario:
// uneven per-device memory where LIFO eviction wastes cluster-wide spare
// space that re-dispatching can exploit.
//
// Expected shape: re-dispatching improves mean and P95 output latency
// (paper: 1.06x / 1.14x) and converts full preemptions into cheap partial
// migrations.
#include <cstdio>

#include "harness.h"
// Not harness-migrated: this ablation reads HetisEngine-specific re-dispatch
// counters, so it constructs the concrete engine directly.
#include "hetis/hetis_engine.h"

int main() {
  using namespace hetis;
  hw::Cluster cluster = harness::cluster_by_name("ablation");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");

  // Fixed roles: A100 primary, both 3090s pooled for Attention.
  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  parallel::StageConfig stage;
  stage.devices = {0};
  stage.layers = m.layers;
  inst.stages = {stage};
  inst.attention_workers = {1, 2};
  plan.instances.push_back(inst);

  auto trace = bench::make_trace(workload::Dataset::kLongBench, 2.5, 60.0);

  engine::RunReport with_rd, lifo;
  const engine::RunOptions ropts(1800.0);
  int rescues = 0, balances = 0;
  {
    core::HetisOptions opts = bench::hetis_options();
    opts.enable_redispatch = true;
    core::HetisEngine eng(cluster, m, opts, plan);
    with_rd = engine::run_trace(eng, trace, ropts);
    rescues = eng.rescue_redispatches();
    balances = eng.balance_redispatches();
  }
  {
    core::HetisOptions opts = bench::hetis_options();
    opts.enable_redispatch = false;  // plain LIFO preemption only
    core::HetisEngine eng(cluster, m, opts, plan);
    lifo = engine::run_trace(eng, trace, ropts);
  }

  std::printf("=== Fig. 15(a): re-dispatching vs LIFO (LongBench @2.5, Llama-13B, ");
  std::printf("A100 + 2x3090) ===\n\n");
  std::printf("%-14s %14s %14s %10s %10s\n", "variant", "mean (s/tok)", "p95 (s/tok)",
              "finished", "preempt");
  std::printf("%-14s %14.4f %14.4f %7zu/%-zu %10d\n", "Hetis", with_rd.norm_latency_mean,
              with_rd.norm_latency_p95, with_rd.finished, trace.size(), with_rd.preemptions);
  std::printf("%-14s %14.4f %14.4f %7zu/%-zu %10d\n", "LIFO", lifo.norm_latency_mean,
              lifo.norm_latency_p95, lifo.finished, trace.size(), lifo.preemptions);
  std::printf("\nimprovement: mean %.2fx, p95 %.2fx (paper: 1.06x / 1.14x)\n",
              lifo.norm_latency_mean / with_rd.norm_latency_mean,
              lifo.norm_latency_p95 / with_rd.norm_latency_p95);
  std::printf("re-dispatches executed: %d rescue, %d balance\n", rescues, balances);
  return 0;
}
