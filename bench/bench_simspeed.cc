// Simulator hot-path speed: simulated-requests-per-wall-second on
// million-request traces.
//
// The paper's evaluation replays ~200-request traces; the ROADMAP's north
// star is datacenter-scale serving, which means the simulator itself must
// sustain 10^6+-request traces.  This bench is the scoreboard for that hot
// path: it replays a deterministic poisson and bursty trace (same seed =>
// same trace, byte for byte) through all three registered engines and
// reports wall-clock speed, committed as BENCH_simspeed.json so speedups
// (or regressions) are tracked PR-over-PR like the other benches.
//
// The poisson trace is additionally replayed with a telemetry session
// installed ("poisson_traced" rows, no artifact export): the tracing-off
// rows guard the hot path itself, the traced rows price the observability
// tax so a PR cannot quietly make tracing unaffordable.
//
// Flags:
//   --csv           dump rows to stdout instead of the table
//   --csv-header    print the CSV header and exit (CI diffs this)
//   --requests N    trace length per scenario (default 1000000)
//   --rate R        arrival rate in req/s (default 2; the horizon is sized
//                   as requests/rate so the cluster stays unsaturated)
//   --out PATH      JSON artifact path (default BENCH_simspeed.json;
//                   "-" disables)
//   --check PATH    threshold guard: compare this run against a committed
//                   BENCH_simspeed.json and exit 2 if any (engine,
//                   scenario) row regresses more than --tolerance in
//                   requests-per-wall-second.  When the reference row ran
//                   the same --requests, the event count must also match
//                   EXACTLY (the determinism guard behind the hot-path
//                   caches)
//   --tolerance F   allowed relative regression for --check (default 0.2)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "telemetry/telemetry.h"
#include "workload/scenarios.h"

namespace {

using namespace hetis;

struct SpeedRow {
  std::string engine;
  std::string scenario;
  std::size_t requests = 0;
  std::size_t finished = 0;
  std::size_t events = 0;     // simulation events executed
  double sim_span = 0;        // simulated seconds covered by the run
  double wall_seconds = 0;
  double requests_per_wall_second = 0;
  double events_per_wall_second = 0;
  // Hot-path cache counters (engine::PerfCounters).  Observational only --
  // the caches return bit-identical results -- but CI greps them: a Hetis
  // row with lp_warm_hits == 0 means the warm path silently stopped firing.
  std::uint64_t lp_solves = 0;
  std::uint64_t lp_warm_hits = 0;
  std::uint64_t costmodel_hits = 0;
};

constexpr const char* kCsvHeader =
    "engine,scenario,requests,finished,events,sim_span,wall_seconds,"
    "requests_per_wall_second,events_per_wall_second,"
    "lp_solves,lp_warm_hits,costmodel_hits";

std::string row_csv(const SpeedRow& r) {
  std::ostringstream oss;
  oss << engine::csv_field(r.engine) << ',' << engine::csv_field(r.scenario) << ','
      << r.requests << ',' << r.finished << ',' << r.events << ','
      << engine::csv_double(r.sim_span) << ',' << engine::csv_double(r.wall_seconds) << ','
      << engine::csv_double(r.requests_per_wall_second) << ','
      << engine::csv_double(r.events_per_wall_second) << ','
      << r.lp_solves << ',' << r.lp_warm_hits << ',' << r.costmodel_hits;
  return oss.str();
}

std::string row_json(const SpeedRow& r) {
  std::ostringstream oss;
  oss << "{\"engine\":\"" << engine::json_escape(r.engine) << "\",\"scenario\":\""
      << engine::json_escape(r.scenario) << "\",\"requests\":" << r.requests
      << ",\"finished\":" << r.finished << ",\"events\":" << r.events
      << ",\"sim_span\":" << engine::csv_double(r.sim_span)
      << ",\"wall_seconds\":" << engine::csv_double(r.wall_seconds)
      << ",\"requests_per_wall_second\":" << engine::csv_double(r.requests_per_wall_second)
      << ",\"events_per_wall_second\":" << engine::csv_double(r.events_per_wall_second)
      << ",\"lp_solves\":" << r.lp_solves << ",\"lp_warm_hits\":" << r.lp_warm_hits
      << ",\"costmodel_hits\":" << r.costmodel_hits << "}";
  return oss.str();
}

/// Replays `trace` through a freshly built engine, mirroring
/// engine::run_trace's scheduling exactly (arrivals pushed up front in
/// trace order, run_until(last_arrival + drain)) but timing the event loop
/// and counting executed events.  When `telem` is non-null the session is
/// installed exactly as RunOptions::telemetry would be (sink before start,
/// sampler attached after), so the timed window includes the full tracing
/// tax: span capture, registry sampling events, the lot.
SpeedRow timed_run(const std::string& engine_name, const std::string& scenario,
                   const hw::Cluster& cluster, const model::ModelSpec& model,
                   const engine::EngineOptions& opts,
                   const std::vector<workload::Request>& trace, Seconds drain,
                   telemetry::Telemetry* telem = nullptr) {
  auto eng = engine::make(engine_name, cluster, model, opts);
  sim::Simulation sim;

  const auto t0 = std::chrono::steady_clock::now();
  eng->metrics().set_telemetry(telem);
  eng->start(sim);
  if (telem != nullptr) telem->attach(sim, *eng);
  for (const auto& r : trace) {
    sim.schedule_at(r.arrival, [&eng, &sim, &r] { eng->submit(sim, r); });
  }
  const Seconds last_arrival = trace.empty() ? 0.0 : trace.back().arrival;
  const std::size_t events = sim.run_until(last_arrival + drain);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  SpeedRow row;
  row.engine = eng->name();
  row.scenario = scenario;
  row.requests = trace.size();
  row.finished = eng->metrics().finished();
  row.events = events;
  const engine::PerfCounters pcs = eng->perf_counters();
  row.lp_solves = pcs.lp_solves;
  row.lp_warm_hits = pcs.lp_warm_hits;
  row.costmodel_hits = pcs.costmodel_hits;
  row.sim_span = sim.now();
  row.wall_seconds = wall;
  row.requests_per_wall_second = static_cast<double>(trace.size()) / std::max(1e-9, wall);
  row.events_per_wall_second = static_cast<double>(events) / std::max(1e-9, wall);
  return row;
}

/// Minimal scanner for the rows of a BENCH_simspeed.json written by this
/// bench: extracts (engine, scenario, requests_per_wall_second) plus the
/// (requests, events) pair behind the determinism guard.
struct RefRow {
  std::string engine;
  std::string scenario;
  double rps = 0;
  std::size_t requests = 0;
  std::size_t events = 0;
};

std::vector<RefRow> load_reference(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ERROR: --check cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<RefRow> rows;
  auto grab = [&text](std::size_t from, const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":";
    std::size_t k = text.find(needle, from);
    if (k == std::string::npos) return "";
    k += needle.size();
    bool quoted = k < text.size() && text[k] == '"';
    if (quoted) ++k;
    std::size_t end = text.find_first_of(quoted ? "\"" : ",}", k);
    if (end == std::string::npos) return "";
    return text.substr(k, end - k);
  };
  std::size_t pos = 0;
  while ((pos = text.find("{\"engine\":", pos)) != std::string::npos) {
    RefRow r;
    r.engine = grab(pos, "engine");
    r.scenario = grab(pos, "scenario");
    const std::string rps = grab(pos, "requests_per_wall_second");
    r.rps = rps.empty() ? 0.0 : std::atof(rps.c_str());
    const std::string reqs = grab(pos, "requests");
    r.requests = reqs.empty() ? 0 : static_cast<std::size_t>(std::atoll(reqs.c_str()));
    const std::string evs = grab(pos, "events");
    r.events = evs.empty() ? 0 : static_cast<std::size_t>(std::atoll(evs.c_str()));
    if (!r.engine.empty() && !r.scenario.empty() && r.rps > 0) rows.push_back(r);
    ++pos;
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetis;
  if (bench::flag_requested(argc, argv, "--csv-header")) {
    std::printf("%s\n", kCsvHeader);
    return 0;
  }
  const std::size_t requests = static_cast<std::size_t>(
      std::atoll(bench::arg_value(argc, argv, "--requests", "1000000").c_str()));
  const double rate = std::atof(bench::arg_value(argc, argv, "--rate", "2").c_str());
  const std::string out_path = bench::arg_value(argc, argv, "--out", "BENCH_simspeed.json");
  const std::string check_path = bench::arg_value(argc, argv, "--check", "");
  const double tolerance =
      std::atof(bench::arg_value(argc, argv, "--tolerance", "0.2").c_str());
  const bool csv = bench::csv_requested(argc, argv);
  if (requests == 0 || rate <= 0) {
    std::fprintf(stderr, "--requests and --rate must be positive\n");
    return 2;
  }

  const hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec model = model::model_by_name("Llama-13B");
  engine::EngineOptions hetis_opts{bench::hetis_options()};
  const engine::EngineOptions default_opts;

  // The horizon is sized so the poisson generator lands slightly above the
  // target count; the trace is then truncated to exactly `requests` so every
  // row (and every future PR) replays the identical workload.
  const Seconds horizon = (static_cast<double>(requests) + 6.0 * std::sqrt(static_cast<double>(requests))) / rate;
  std::vector<std::pair<std::string, std::vector<workload::Request>>> traces;
  for (const char* name : {"poisson", "bursty"}) {
    workload::ScenarioSpec spec =
        workload::scenario_preset(workload::scenario_by_name(name), rate, horizon, bench::kSeed);
    std::vector<workload::Request> trace = workload::generate_scenario(spec);
    if (trace.size() > requests) trace.resize(requests);
    traces.emplace_back(name, std::move(trace));
  }

  const std::size_t total_rows = traces.size() * 3 + 3;
  std::vector<SpeedRow> rows;
  auto progress = [&rows, csv, total_rows] {
    if (csv) return;
    const SpeedRow& r = rows.back();
    std::fprintf(stderr, "[%zu/%zu] %s/%s: %.0f req/s-wall (%.2fs wall, %zu events)\n",
                 rows.size(), total_rows, r.engine.c_str(), r.scenario.c_str(),
                 r.requests_per_wall_second, r.wall_seconds, r.events);
  };
  for (const auto& [scenario, trace] : traces) {
    for (const std::string& engine_name : {std::string("splitwise"), std::string("hexgen"),
                                           std::string("hetis")}) {
      const engine::EngineOptions& opts =
          engine_name == "hetis" ? hetis_opts : default_opts;
      rows.push_back(timed_run(engine_name, scenario, cluster, model, opts, trace,
                               /*drain=*/600.0));
      progress();
    }
  }

  // Tracing-on rows: the poisson trace again, with a fresh telemetry
  // session per run (spans + registry sampling; nothing exported -- the
  // row prices capture, not serialization).  Engine options are identical
  // to the tracing-off rows, so the req/s-wall delta IS the tracing tax.
  const std::vector<workload::Request>& poisson_trace = traces.front().second;
  for (const std::string& engine_name : {std::string("splitwise"), std::string("hexgen"),
                                         std::string("hetis")}) {
    const engine::EngineOptions& opts = engine_name == "hetis" ? hetis_opts : default_opts;
    telemetry::TelemetryConfig tcfg;
    tcfg.horizon = horizon;  // sample the whole span, not just until idle
    telemetry::Telemetry telem(tcfg);
    rows.push_back(timed_run(engine_name, "poisson_traced", cluster, model, opts,
                             poisson_trace, /*drain=*/600.0, &telem));
    progress();
  }

  if (out_path != "-") {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"simspeed\",\"model\":\"Llama-13B\",\"cluster\":\"paper\""
        << ",\"seed\":" << bench::kSeed << ",\"rate\":" << rate
        << ",\"requests\":" << requests << ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i) out << ",";
      out << row_json(rows[i]);
    }
    out << "]}\n";
  }

  if (csv) {
    std::printf("%s\n", kCsvHeader);
    for (const auto& r : rows) std::printf("%s\n", row_csv(r).c_str());
  } else {
    std::printf("=== Simulator speed: %zu-request traces, Llama-13B, paper cluster ===\n",
                requests);
    std::printf("%-10s %-8s %10s %10s %12s %10s %14s\n", "engine", "scenario", "requests",
                "finished", "events", "wall(s)", "req/s-wall");
    for (const auto& r : rows) {
      std::printf("%-10s %-8s %10zu %10zu %12zu %10.2f %14.0f\n", r.engine.c_str(),
                  r.scenario.c_str(), r.requests, r.finished, r.events, r.wall_seconds,
                  r.requests_per_wall_second);
    }
    if (out_path != "-") std::printf("wrote %s\n", out_path.c_str());
  }

  // Threshold guard: a PR that makes the simulator >tolerance slower on any
  // row fails CI (the committed JSON is the trajectory's baseline).
  if (!check_path.empty()) {
    const std::vector<RefRow> ref = load_reference(check_path);
    if (ref.empty()) {
      std::fprintf(stderr, "ERROR: --check found no rows in %s\n", check_path.c_str());
      return 2;
    }
    int failures = 0;
    for (const RefRow& r : ref) {
      for (const SpeedRow& cur : rows) {
        if (cur.engine != r.engine || cur.scenario != r.scenario) continue;
        const double floor = r.rps * (1.0 - tolerance);
        if (cur.requests_per_wall_second < floor) {
          std::fprintf(stderr,
                       "FAIL: %s/%s regressed: %.0f req/s-wall < %.0f (baseline %.0f, "
                       "tolerance %.0f%%)\n",
                       r.engine.c_str(), r.scenario.c_str(), cur.requests_per_wall_second,
                       floor, r.rps, tolerance * 100.0);
          ++failures;
        }
        // Determinism guard: same trace length must execute the exact same
        // event sequence -- the hot-path caches are only legal because they
        // change no decision.  Skipped when the reference ran a different
        // trace length (CI's short runs vs the committed 1M baseline).
        if (r.requests == cur.requests && r.events != 0 && cur.events != r.events) {
          std::fprintf(stderr,
                       "FAIL: %s/%s event count diverged: %zu != baseline %zu at "
                       "%zu requests (simulation is no longer bit-identical)\n",
                       r.engine.c_str(), r.scenario.c_str(), cur.events, r.events,
                       cur.requests);
          ++failures;
        }
      }
    }
    if (failures > 0) return 2;
    std::fprintf(stderr, "simspeed threshold guard passed (%zu reference rows, tolerance "
                 "%.0f%%)\n", ref.size(), tolerance * 100.0);
  }
  return 0;
}
