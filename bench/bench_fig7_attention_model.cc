// Fig. 7 reproduction: the three properties that justify the linear
// Attention-time model (Eq. 3) on OPT-30B:
//   (a) time is invariant in the number of requests when total heads and
//       cache are fixed,
//   (b) time grows linearly with cache size,
//   (c) time grows linearly with the number of heads at fixed cache.
#include <cstdio>
#include <vector>

#include "costmodel/kernel_model.h"
#include "hw/gpu.h"
#include "model/llm.h"

int main() {
  using namespace hetis;
  costmodel::KernelModel kernel;
  const model::ModelSpec& m = model::opt_30b();
  const hw::GpuSpec& gpu = hw::gpu_spec(hw::GpuType::kA100_80G);

  std::printf("=== Fig. 7: Attention-time modeling, OPT-30B on A100 (one layer) ===\n\n");

  // (a) 400-700 requests, constant total heads (700*56) and cache.
  std::printf("--- (a) time vs #requests at fixed total heads+cache ---\n");
  std::printf("%10s %12s\n", "#requests", "time (ms)");
  const double total_heads = 700.0 * m.heads;
  const double total_head_tokens = total_heads * 1000.0;  // fixed cache
  for (int n : {400, 500, 600, 700}) {
    int heads_per_req = static_cast<int>(total_heads / n);
    auto ctx = static_cast<std::int64_t>(total_head_tokens / total_heads);
    std::vector<std::int64_t> ctxs(static_cast<std::size_t>(n), ctx);
    Seconds t = kernel.decode_attention_time(gpu, m, ctxs, heads_per_req);
    std::printf("%10d %12.3f\n", n, to_millis(t));
  }

  // (b) 600 requests, average context 900-1200.
  std::printf("\n--- (b) time vs average context length (600 requests) ---\n");
  std::printf("%10s %12s\n", "ctx", "time (ms)");
  for (std::int64_t ctx : {900, 1000, 1100, 1200}) {
    std::vector<std::int64_t> ctxs(600, ctx);
    Seconds t = kernel.decode_attention_time(gpu, m, ctxs, m.heads / 2);
    std::printf("%10lld %12.3f\n", static_cast<long long>(ctx), to_millis(t));
  }

  // (c) fixed total cache, 15k-45k heads.
  std::printf("\n--- (c) time vs #heads at fixed cache ---\n");
  std::printf("%10s %12s\n", "heads(k)", "time (ms)");
  const double fixed_head_tokens = 15000.0 * 1000.0;
  for (double kheads : {15.0, 30.0, 45.0}) {
    double heads = kheads * 1000.0;
    auto ctx = static_cast<std::int64_t>(fixed_head_tokens / heads);
    int n_req = static_cast<int>(heads / m.heads);
    std::vector<std::int64_t> ctxs(static_cast<std::size_t>(n_req), ctx);
    Seconds t = kernel.decode_attention_time(gpu, m, ctxs, m.heads);
    std::printf("%10.0f %12.3f\n", kheads, to_millis(t));
  }
  return 0;
}
