// Micro-benchmarks of the hot-path substrates: the dispatch LP (solved
// online, per arrival batch), the simplex core, the event queue, the paged
// allocator, and kernel-model evaluation.  These justify running an exact
// LP on the serving path (§6 "Optimization problem solving").
#include <benchmark/benchmark.h>

#include "harness.h"

#include "costmodel/kernel_model.h"
#include "hw/gpu.h"
#include "kvcache/allocator.h"
#include "lp/minmax.h"
#include "model/llm.h"
#include "sim/event_queue.h"

namespace {

using namespace hetis;

lp::MinMaxProblem dispatch_problem(std::size_t requests) {
  lp::MinMaxProblem p;
  // One merged primary + 4 workers, Llama-70B-like geometry.
  p.base_time = {1e-3, 2e-4, 2e-4, 2e-4, 2e-4};
  p.head_cost = {5e-9, 1.4e-7, 1.4e-7, 1.5e-7, 1.5e-7};
  p.cache_cost = {9e-13, 3e-12, 3e-12, 3e-12, 3e-12};
  p.mem_free = {4e9, 2.5e8, 2.5e8, 2.5e8, 2.5e8};
  p.group_size = 8;
  for (std::size_t r = 0; r < requests; ++r) {
    p.demand.push_back(64);
    p.cache_per_head.push_back(64.0 * 512 * (1 + r % 5));
  }
  return p;
}

void BM_DispatchLp(benchmark::State& state) {
  lp::MinMaxProblem p = dispatch_problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    lp::MinMaxSolution s = lp::solve_relaxed(p);
    auto rounded = lp::round_to_groups(p, s);
    benchmark::DoNotOptimize(rounded.size());
  }
  state.SetLabel("Eq. 7 LP + integral rounding");
}
BENCHMARK(BM_DispatchLp)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_DispatchGreedy(benchmark::State& state) {
  lp::MinMaxProblem p = dispatch_problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto heads = lp::greedy_dispatch(p);
    benchmark::DoNotOptimize(heads.size());
  }
  state.SetLabel("waterfilling fallback");
}
BENCHMARK(BM_DispatchGreedy)->Arg(1)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);

void BM_AllocatorChurn(benchmark::State& state) {
  kvcache::BlockAllocator alloc(1ll * GiB, 16 * 1024);
  std::vector<kvcache::BlockId> held;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) held.push_back(*alloc.allocate());
    alloc.free_blocks(held);
    held.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_AllocatorChurn)->Unit(benchmark::kMicrosecond);

void BM_KernelModelDecodeIteration(benchmark::State& state) {
  costmodel::KernelModel kernel;
  const model::ModelSpec& m = model::llama_70b();
  const hw::GpuSpec& gpu = hw::gpu_spec(hw::GpuType::kA100_80G);
  std::vector<std::int64_t> ctxs(256, 800);
  for (auto _ : state) {
    Seconds t = kernel.dense_layer_time(gpu, m, 256, 4) +
                kernel.decode_attention_time(gpu, m, ctxs, m.heads / 4);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel("one-layer decode cost, batch 256");
}
BENCHMARK(BM_KernelModelDecodeIteration)->Unit(benchmark::kMicrosecond);

}  // namespace

HETIS_BENCH_MAIN();
