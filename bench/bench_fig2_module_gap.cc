// Fig. 2 reproduction: decode-phase MLP and Attention execution time of one
// Llama-70B layer across GPUs, normalized to the A100, for 20-400
// concurrent requests at sequence length 1000.
//
// Expected shape: the MLP gap explodes with batch size (P100 norm. time
// reaching ~25-40x) while the Attention gap stays flat around ~2-4x --
// the heterogeneity asymmetry Hetis exploits (§2.3, O1/O2).
#include <cstdio>
#include <vector>

#include "costmodel/kernel_model.h"
#include "hw/gpu.h"
#include "model/llm.h"
#include "model/modules.h"

int main() {
  using namespace hetis;
  costmodel::KernelModel kernel;
  const model::ModelSpec& m = model::llama_70b();
  const std::int64_t kSeqLen = 1000;
  const std::vector<std::int64_t> request_counts{20, 100, 200, 300, 400};
  const std::vector<hw::GpuType> gpus{hw::GpuType::kP100, hw::GpuType::kRTX3090,
                                      hw::GpuType::kA100_80G};

  std::printf("=== Fig. 2: decode MLP / Attention time of one Llama-70B layer ===\n");
  std::printf("(normalized to A100; sequence length %lld)\n\n",
              static_cast<long long>(kSeqLen));

  std::printf("--- (a) MLP, normalized time ---\n%10s", "#requests");
  for (auto g : gpus) std::printf(" %10s", hw::gpu_spec(g).name.c_str());
  std::printf("\n");
  for (std::int64_t n : request_counts) {
    std::printf("%10lld", static_cast<long long>(n));
    Seconds a100 = kernel.dense_time(hw::gpu_spec(hw::GpuType::kA100_80G),
                                     model::mlp_work(m, n));
    for (auto g : gpus) {
      Seconds t = kernel.dense_time(hw::gpu_spec(g), model::mlp_work(m, n));
      std::printf(" %10.2f", t / a100);
    }
    std::printf("\n");
  }

  std::printf("\n--- (b) Attention, normalized time ---\n%10s", "#requests");
  for (auto g : gpus) std::printf(" %10s", hw::gpu_spec(g).name.c_str());
  std::printf("\n");
  for (std::int64_t n : request_counts) {
    std::vector<std::int64_t> ctxs(static_cast<std::size_t>(n), kSeqLen);
    std::printf("%10lld", static_cast<long long>(n));
    Seconds a100 = kernel.decode_attention_time(hw::gpu_spec(hw::GpuType::kA100_80G), m, ctxs,
                                                m.heads);
    for (auto g : gpus) {
      Seconds t = kernel.decode_attention_time(hw::gpu_spec(g), m, ctxs, m.heads);
      std::printf(" %10.2f", t / a100);
    }
    std::printf("\n");
  }

  std::printf("\n(absolute A100 times at 400 requests: MLP %.3f ms, Attention %.3f ms)\n",
              to_millis(kernel.dense_time(hw::gpu_spec(hw::GpuType::kA100_80G),
                                          model::mlp_work(m, 400))),
              to_millis(kernel.decode_attention_time(
                  hw::gpu_spec(hw::GpuType::kA100_80G), m,
                  std::vector<std::int64_t>(400, kSeqLen), m.heads)));
  return 0;
}
