// Fig. 16(b) reproduction: per-token latency under profiling error.  Each
// fitted coefficient family (a, b, c, gamma, beta) is perturbed by up to
// +-20% and the resulting latency is normalized to the error-free run.
// Expected shape: graceful degradation, <= ~7% latency growth at 20%
// error (the paper's resilience claim, §7.4).
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  using ET = engine::HetisConfig::ErrorTarget;
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  auto trace = bench::make_trace(workload::Dataset::kShareGPT, 6.0);
  const engine::RunOptions ropts(bench::kDrain);

  double base;
  {
    auto eng = engine::make("hetis", cluster, m, bench::hetis_options());
    base = engine::run_trace(*eng, trace, ropts).norm_latency_mean;
  }

  const std::vector<std::pair<const char*, ET>> targets{
      {"a", ET::kA}, {"b", ET::kB}, {"c", ET::kC}, {"gamma", ET::kGamma}, {"beta", ET::kBeta}};

  std::printf("=== Fig. 16(b): normalized latency under profiling error ===\n");
  std::printf("(ShareGPT @6, Llama-13B; 1.00 = error-free run)\n\n");
  std::printf("%8s", "error");
  for (const auto& [name, t] : targets) std::printf(" %8s", name);
  std::printf("\n");
  // Error signs are drawn per device/link; average over seeds so a single
  // unlucky sign pattern doesn't dominate (the paper reports averages).
  const std::vector<std::uint64_t> seeds{2025, 2026, 2027};
  for (double err : {0.05, 0.10, 0.15, 0.20}) {
    std::printf("%7.0f%%", err * 100);
    for (const auto& [name, target] : targets) {
      double acc = 0;
      for (std::uint64_t seed : seeds) {
        engine::HetisConfig opts = bench::hetis_options();
        opts.profile_error = err;
        opts.profile_error_target = target;
        opts.profile_seed = seed;
        auto eng = engine::make("hetis", cluster, m, opts);
        acc += engine::run_trace(*eng, trace, ropts).norm_latency_mean;
      }
      std::printf(" %8.3f", acc / static_cast<double>(seeds.size()) / base);
    }
    std::printf("\n");
  }
  return 0;
}
