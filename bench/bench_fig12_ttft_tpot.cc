// Fig. 12 reproduction: P95 TTFT and TPOT for Llama-70B at the paper's
// unsaturated rates (ShareGPT 1.5, HumanEval 6, LongBench 0.8 req/s),
// normalized to Hetis.  Expected shape: Hetis best TPOT everywhere (paper:
// up to 1.39x); TTFT worst for HexGen (P100s in the prefill path), and
// Splitwise's migration-inclusive TTFT degrading on long-prompt datasets.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace hetis;
  const model::ModelSpec& m = model::llama_70b();
  const std::vector<std::pair<workload::Dataset, double>> settings{
      {workload::Dataset::kShareGPT, 1.5},
      {workload::Dataset::kHumanEval, 6.0},
      {workload::Dataset::kLongBench, 0.8},
  };

  std::printf("=== Fig. 12: P95 TTFT / TPOT, Llama-70B (normalized to Hetis) ===\n\n");
  std::printf("%-10s %6s | %9s %9s %9s | %9s %9s %9s\n", "dataset", "rate", "TTFT:SW",
              "TTFT:HG", "TTFT:HT", "TPOT:SW", "TPOT:HG", "TPOT:HT");
  for (const auto& [ds, rate] : settings) {
    auto trace = bench::make_trace(ds, rate);
    bench::SystemReports r = bench::run_three_systems(m, trace);
    double t0 = r.hetis.ttft_p95, p0 = r.hetis.tpot_p95;
    std::printf("%-10s %6.1f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
                workload::to_string(ds), rate, r.splitwise.ttft_p95 / t0, r.hexgen.ttft_p95 / t0,
                1.0, r.splitwise.tpot_p95 / p0, r.hexgen.tpot_p95 / p0, 1.0);
    std::printf("%-10s %6s | absolute Hetis: TTFT %.3fs, TPOT %.4fs\n", "", "", t0, p0);
  }
  return 0;
}
