// Fig. 12 reproduction: P95 TTFT and TPOT for Llama-70B at the paper's
// unsaturated rates (ShareGPT 1.5, HumanEval 6, LongBench 0.8 req/s),
// normalized to Hetis.  Expected shape: Hetis best TPOT everywhere (paper:
// up to 1.39x); TTFT worst for HexGen (P100s in the prefill path), and
// Splitwise's migration-inclusive TTFT degrading on long-prompt datasets.
//
// Declarative harness sweep with an SLO attached, so each system also
// reports goodput under the latency targets; pass --csv for the row dump.
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace hetis;
  harness::ExperimentSpec spec = bench::paper_spec("Fig. 12", "Llama-70B");
  spec.workloads = {{workload::Dataset::kShareGPT, 1.5},
                    {workload::Dataset::kHumanEval, 6.0},
                    {workload::Dataset::kLongBench, 0.8}};
  engine::SloSpec slo;
  slo.ttft = 5.0;    // interactive-serving targets; reporting-only
  slo.tpot = 0.15;
  spec.run.slo = slo;
  spec.jobs = bench::jobs_requested(argc, argv);

  const auto rows = harness::run_sweep(spec);
  bench::warn_truncated(rows);
  if (bench::csv_requested(argc, argv)) {
    harness::write_csv(std::cout, rows);
    return 0;
  }

  std::printf("=== Fig. 12: P95 TTFT / TPOT, Llama-70B (normalized to Hetis) ===\n\n");
  std::printf("%-10s %6s | %9s %9s %9s | %9s %9s %9s\n", "dataset", "rate", "TTFT:SW",
              "TTFT:HG", "TTFT:HT", "TPOT:SW", "TPOT:HG", "TPOT:HT");
  const std::size_t ne = spec.engines.size();
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const auto& sw = bench::point_report(rows, i, ne, "Splitwise");
    const auto& hg = bench::point_report(rows, i, ne, "Hexgen");
    const auto& ht = bench::point_report(rows, i, ne, "Hetis");
    double t0 = ht.ttft_p95, p0 = ht.tpot_p95;
    std::printf("%-10s %6.1f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
                workload::to_string(spec.workloads[i].dataset), spec.workloads[i].rate,
                sw.ttft_p95 / t0, hg.ttft_p95 / t0, 1.0, sw.tpot_p95 / p0, hg.tpot_p95 / p0,
                1.0);
    std::printf("%-10s %6s | absolute Hetis: TTFT %.3fs, TPOT %.4fs\n", "", "", t0, p0);
    std::printf("%-10s %6s | goodput @(TTFT<=%.1fs, TPOT<=%.2fs): SW %.2f HG %.2f HT %.2f "
                "req/s\n",
                "", "", slo.ttft, slo.tpot, sw.goodput, hg.goodput, ht.goodput);
  }
  return 0;
}
