// Elastic serving under cluster churn, autoscaling policies and degraded
// hardware.
//
// Three experiments, all on the paper cluster with an interactive SLO:
//
//  A. CHURN  -- all three engines serve the same bursty trace while a
//     gpu_leave + gpu_join script (dip: the lowest-power devices vanish
//     mid-run and return later) forces online re-deploys.  HetisEngine
//     replans and live-migrates KV through the Hauler (§5.3 dynamic
//     parallelism); Splitwise/HexGen checkpoint-and-restart.  The SLO
//     attainment gap is the cost of static parallelism under churn.
//
//  B. POLICY -- HetisEngine starts on a deliberately small deployment
//     (initial_devices) and each ScalePolicy (static / threshold / slo)
//     decides how to use the idle reserve as bursts arrive.  Reactive
//     scaling must beat the static posture on SLO attainment.
//
//  C. DEGRADED -- the devices never leave; they get WORSE.  Two scripts,
//     each served by all three engines:
//       straggler   -- an anchor A100 silently drops to 35% speed mid-run
//                      and recovers late.  Hetis crosses the controller's
//                      straggler threshold, replans on the measured
//                      hardware and DEMOTES the straggler to an Attention
//                      worker (§4.1's Delta-pruning applied online); the
//                      baselines keep their static layout and simply run
//                      slower.
//       spot_notice -- spot-style leaves announced `notice_lead` seconds
//                      ahead.  Hetis pre-migrates KV off the doomed device
//                      through the Hauler during the lead window (zero
//                      restarts); the baselines ignore the warning and
//                      checkpoint-restart when the device actually dies.
//
// Writes BENCH_elastic.json (all three row sets + wall clock) as the
// canonical artifact for the perf trajectory; committed at the repo root.
//
// Flags:
//   --csv         dump aligned sweep rows (A, B, then C) instead of tables
//   --csv-header  print the sweep CSV header and exit (CI diffs this
//                 against the emitted CSV)
//   --jobs N      sweep worker threads (0 = hardware concurrency; rows are
//                 byte-identical for every value).  Default: 0.
//   --progress    per-cell completion lines on stderr
//   --out PATH    JSON artifact path (default BENCH_elastic.json; "-" off)
//   --rate R      base aggregate rate in req/s (default 18)
//   --horizon S   arrival window in seconds (default 24)
//   --trace DIR   per-cell telemetry: every cell of every part writes a
//                 Perfetto-loadable <cell>.trace.json (+ .metrics.csv and
//                 .audit.json) into DIR; rows stay byte-identical
//   --check       degradation acceptance guard: exit 2 unless, under BOTH
//                 Part C scripts, Hetis finishes every request (nothing
//                 dropped), reconfigures at least once, and beats both
//                 baselines on SLO attainment
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "control/controller.h"
#include "harness.h"
#include "workload/scenarios.h"

namespace {

using namespace hetis;

harness::ExperimentSpec base_spec(const char* name, double rate, Seconds horizon) {
  harness::ExperimentSpec spec = bench::paper_spec(name, "Llama-13B");
  spec.horizon = horizon;
  engine::SloSpec slo;
  slo.ttft = 2.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  spec.add_scenario(workload::scenario_preset(workload::Scenario::kBursty, rate, spec.horizon,
                                              spec.seed));
  return spec;
}

control::ControlSpec control_for(const std::string& policy, engine::SloSpec slo) {
  control::ControlSpec cs;
  cs.policy = policy;
  cs.slo = slo;
  cs.min_devices = 4;
  return cs;
}

std::string g_trace_dir;  // --trace DIR; empty = telemetry off

std::vector<harness::SweepRow> run_part(harness::ExperimentSpec& spec, int jobs, bool progress) {
  spec.jobs = jobs;
  spec.trace_dir = g_trace_dir;
  return harness::run_sweep(spec, progress ? bench::progress_printer(bench::cell_count(spec))
                                           : harness::RowCallback());
}

void print_rows(const std::vector<harness::SweepRow>& rows) {
  std::printf("%-10s %-10s %9s %9s %8s %8s %7s %6s %6s\n", "engine", "policy", "finished",
              "ttft_p95", "slo_att", "goodput", "reconf", "migr", "restart");
  for (const auto& row : rows) {
    std::printf("%-10s %-10s %6zu/%-2zu %9.3f %8.2f %8.2f %7d %6d %6d\n",
                row.report.engine.c_str(), row.policy.c_str(), row.report.finished,
                row.trace_requests, row.report.ttft_p95, row.report.slo_attainment,
                row.report.goodput, row.reconfigurations, row.migrated_requests,
                row.restarted_requests);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::flag_requested(argc, argv, "--csv-header")) {
    std::printf("%s\n", harness::sweep_csv_header().c_str());
    return 0;
  }
  const double rate = std::atof(bench::arg_value(argc, argv, "--rate", "18").c_str());
  const Seconds horizon = std::atof(bench::arg_value(argc, argv, "--horizon", "24").c_str());
  const std::string out_path = bench::arg_value(argc, argv, "--out", "BENCH_elastic.json");
  const bool csv = bench::csv_requested(argc, argv);
  const bool progress = bench::flag_requested(argc, argv, "--progress");
  const int jobs = bench::jobs_requested(argc, argv, /*fallback=*/0);
  g_trace_dir = bench::arg_value(argc, argv, "--trace", "");

  const auto t0 = std::chrono::steady_clock::now();

  // --- Part A: churn resilience, all engines, static policy -------------
  harness::ExperimentSpec churn_spec = base_spec("elastic_churn", rate, horizon);
  {
    control::ControlSpec cs = control_for("static", *churn_spec.run.slo);
    cs.churn = control::churn_preset(control::Churn::kDip, horizon, churn_spec.seed);
    cs.churn.leave_count = 4;  // the whole P100 tier vanishes mid-run
    cs.churn.leave_frac = 0.3;
    cs.churn.rejoin_frac = 0.7;
    churn_spec.set_control(cs);
  }
  const auto churn_rows = run_part(churn_spec, jobs, progress);
  bench::warn_truncated(churn_rows);

  // --- Part C: degraded hardware, all engines, static policy ------------
  // The latency replan objective makes Hetis's degradation response search
  // depth-exploring plans (the demote-the-straggler layout); the static
  // policy keeps elective scaling out of the comparison so the only
  // difference between engines is how they react to the SAME degradation.
  std::vector<harness::SweepRow> degradation_rows;
  std::vector<control::ChurnSpec> degradation_churns;
  for (const control::Churn kind : {control::Churn::kStraggler, control::Churn::kSpotNotice}) {
    harness::ExperimentSpec spec = base_spec("elastic_degraded", rate, horizon);
    control::ControlSpec cs = control_for("static", *spec.run.slo);
    cs.churn = control::churn_preset(kind, horizon, spec.seed);
    cs.replan_objective = "latency";
    spec.set_control(cs);
    degradation_churns.push_back(spec.control->churn);
    for (auto& row : run_part(spec, jobs, progress)) degradation_rows.push_back(std::move(row));
  }
  bench::warn_truncated(degradation_rows);

  // --- Part B: scale policies on Hetis from a small initial deployment --
  std::vector<harness::SweepRow> policy_rows;
  for (const std::string policy : {"static", "threshold", "slo"}) {
    harness::ExperimentSpec spec = base_spec("elastic_policy", rate, horizon);
    spec.engines = {"hetis"};
    control::ControlSpec cs = control_for(policy, *spec.run.slo);
    cs.initial_devices = 2;  // one A100-TP2 instance; ten devices in reserve
    cs.min_devices = 2;
    // Burst-friendly reactive tuning: scale out fast on a short queue, and
    // never shed capacity mid-run -- the off-phase between bursts is
    // shorter than a shrink-regrow cycle is worth (each re-deploy migrates
    // the whole running set).
    cs.cooldown = 4.0;
    cs.threshold.up_queue = 4;
    cs.threshold.down_queue = 0;  // queue_depth < 0 never holds: no scale-in
    cs.threshold.step = 3;
    cs.slo_policy.step = 3;
    spec.set_control(cs);
    for (auto& row : run_part(spec, jobs, progress)) policy_rows.push_back(std::move(row));
  }
  bench::warn_truncated(policy_rows);

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (out_path != "-") {
    std::ostringstream churn_json, policy_json, degradation_json;
    harness::write_json(churn_json, churn_rows);
    harness::write_json(policy_json, policy_rows);
    harness::write_json(degradation_json, degradation_rows);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"elastic\",\"model\":\"Llama-13B\",\"cluster\":\"paper\""
        << ",\"seed\":" << churn_spec.seed << ",\"rate\":" << rate
        << ",\"horizon\":" << horizon << ",\"jobs\":" << jobs
        << ",\"wall_seconds\":" << wall << ",\"churn_rows\":" << churn_json.str()
        << ",\"policy_rows\":" << policy_json.str()
        << ",\"degradation_rows\":" << degradation_json.str() << "}\n";
  }

  // Degradation acceptance guard (see header comment).  Checked before any
  // printing mode returns so `--csv --check` also guards.
  int check_failures = 0;
  if (bench::flag_requested(argc, argv, "--check")) {
    for (const auto& churn : degradation_churns) {
      const std::string script = control::to_string(churn.kind);
      const harness::SweepRow* hetis = nullptr;
      std::vector<const harness::SweepRow*> baselines;
      for (const auto& row : degradation_rows) {
        if (row.control != script) continue;
        if (row.report.engine == "Hetis") {
          hetis = &row;
        } else {
          baselines.push_back(&row);
        }
      }
      if (hetis == nullptr || baselines.empty()) {
        std::fprintf(stderr, "CHECK FAIL [%s]: missing Hetis or baseline rows\n",
                     script.c_str());
        ++check_failures;
        continue;
      }
      if (hetis->report.finished != hetis->trace_requests) {
        std::fprintf(stderr, "CHECK FAIL [%s]: Hetis dropped %zu of %zu requests\n",
                     script.c_str(), hetis->trace_requests - hetis->report.finished,
                     hetis->trace_requests);
        ++check_failures;
      }
      if (hetis->reconfigurations <= 0) {
        std::fprintf(stderr, "CHECK FAIL [%s]: Hetis never reconfigured\n", script.c_str());
        ++check_failures;
      }
      for (const auto* b : baselines) {
        if (hetis->report.slo_attainment <= b->report.slo_attainment) {
          std::fprintf(stderr,
                       "CHECK FAIL [%s]: Hetis slo_attainment %.4f does not beat %s's %.4f\n",
                       script.c_str(), hetis->report.slo_attainment, b->report.engine.c_str(),
                       b->report.slo_attainment);
          ++check_failures;
        }
      }
    }
    if (check_failures == 0) {
      std::fprintf(stderr, "degradation check OK: %zu rows over %zu scripts\n",
                   degradation_rows.size(), degradation_churns.size());
    }
  }

  if (csv) {
    std::printf("%s\n", harness::sweep_csv_header().c_str());
    for (const auto& row : churn_rows) std::printf("%s\n", harness::to_csv_row(row).c_str());
    for (const auto& row : policy_rows) std::printf("%s\n", harness::to_csv_row(row).c_str());
    for (const auto& row : degradation_rows) {
      std::printf("%s\n", harness::to_csv_row(row).c_str());
    }
    return check_failures == 0 ? 0 : 2;
  }

  std::printf("=== Elastic control plane: Llama-13B, paper cluster, bursty %.1f req/s, %.0fs "
              "(seed %llu, jobs %d, %.2fs wall) ===\n\n",
              rate, horizon, static_cast<unsigned long long>(churn_spec.seed), jobs, wall);
  std::printf("--- A. churn: %s; static policy ---\n",
              control::describe(churn_spec.control->churn).c_str());
  print_rows(churn_rows);
  std::printf("--- B. policies on Hetis: start on 2/12 devices, %s ---\n",
              workload::describe(*churn_spec.workloads[0].scenario).c_str());
  print_rows(policy_rows);
  for (std::size_t i = 0; i < degradation_churns.size(); ++i) {
    const std::string script = control::to_string(degradation_churns[i].kind);
    std::printf("--- C.%zu degraded: %s; static policy, latency replans ---\n", i + 1,
                control::describe(degradation_churns[i]).c_str());
    std::vector<harness::SweepRow> group;
    for (const auto& row : degradation_rows) {
      if (row.control == script) group.push_back(row);
    }
    print_rows(group);
  }
  if (out_path != "-") std::printf("wrote %s\n", out_path.c_str());
  return check_failures == 0 ? 0 : 2;
}
