// Unit tests: the Hauler's background migration channel.
#include <gtest/gtest.h>

#include "hauler/hauler.h"
#include "hw/topology.h"

namespace hetis::hauler {
namespace {

TEST(Hauler, TransferTimeUsesSharedBandwidth) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{0.5});
  // A100 (host 0) -> P100 (host 3): 12.5 GB/s LAN at 50% share.
  Seconds done = h.migrate(0, 8, 625'000'000, 0.0);
  EXPECT_NEAR(done, 0.1 + 20e-6, 1e-6);
}

TEST(Hauler, SameChannelSerializes) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{1.0});
  Seconds d1 = h.migrate(0, 8, 125'000'000, 0.0);   // 10 ms
  Seconds d2 = h.migrate(0, 9, 125'000'000, 0.0);   // same host pair channel
  EXPECT_GT(d2, d1);
  EXPECT_NEAR(d2 - d1, d1, 1e-4);
}

TEST(Hauler, DistinctChannelsParallel) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{1.0});
  Seconds d1 = h.migrate(0, 8, 125'000'000, 0.0);  // host0 -> host3
  Seconds d2 = h.migrate(4, 8, 125'000'000, 0.0);  // host1 -> host3
  EXPECT_NEAR(d1, d2, 1e-6);
}

TEST(Hauler, IdleChannelStartsImmediately) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{1.0});
  h.migrate(0, 8, 125'000'000, 0.0);
  // After the channel drains, a new transfer at t=100 starts at t=100.
  Seconds done = h.migrate(0, 8, 125'000'000, 100.0);
  EXPECT_NEAR(done, 100.01, 1e-4);
}

TEST(Hauler, ZeroBytesAndSelfMovesAreFree) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c);
  EXPECT_DOUBLE_EQ(h.migrate(0, 8, 0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(h.migrate(3, 3, 1 * GiB, 5.0), 5.0);
  EXPECT_EQ(h.total_migrations(), 0);
}

TEST(Hauler, AccountingTotals) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c);
  h.migrate(0, 8, 100, 0.0);
  h.migrate(0, 9, 200, 0.0);
  EXPECT_EQ(h.total_bytes(), 300);
  EXPECT_EQ(h.total_migrations(), 2);
}

TEST(Hauler, IntraHostFasterThanInterHost) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{1.0});
  Seconds intra = h.migrate(0, 1, 1 * GiB, 0.0);
  Hauler h2(c, HaulerOptions{1.0});
  Seconds inter = h2.migrate(0, 8, 1 * GiB, 0.0);
  EXPECT_LT(intra, inter);
}

TEST(Hauler, BadShareRejected) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  EXPECT_THROW(Hauler(c, HaulerOptions{0.0}), std::invalid_argument);
  EXPECT_THROW(Hauler(c, HaulerOptions{1.5}), std::invalid_argument);
}

TEST(Hauler, ChannelBusyQuery) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Hauler h(c, HaulerOptions{1.0});
  EXPECT_DOUBLE_EQ(h.channel_busy_until(0, 8), 0.0);
  Seconds done = h.migrate(0, 8, 125'000'000, 0.0);
  EXPECT_DOUBLE_EQ(h.channel_busy_until(0, 8), done);
}

}  // namespace
}  // namespace hetis::hauler
