// Elastic control plane: churn generators, scale policies, controller
// determinism, and mid-run reconfiguration correctness (no lost or
// double-counted finishes under gpu_leave with requests in flight).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "control/controller.h"
#include "control/events.h"
#include "control/policy.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

// ---------------------------------------------------------------------------
// Churn generators
// ---------------------------------------------------------------------------

TEST(ChurnEvents, NamesRoundTripAndUnknownThrows) {
  for (const std::string& name : control::churn_names()) {
    EXPECT_EQ(control::to_string(control::churn_by_name(name)), name);
  }
  EXPECT_THROW(control::churn_by_name("meteor"), std::out_of_range);
}

TEST(ChurnEvents, PreemptibleDevicesAreLowestPowerFirst) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  std::vector<int> spot = control::preemptible_devices(cluster);
  ASSERT_EQ(spot.size(), 12u);
  // Paper cluster: P100s (ids 8-11) churn first, A100s (ids 0-3) last.
  EXPECT_EQ(cluster.device(spot.front()).type, hw::GpuType::kP100);
  EXPECT_EQ(cluster.device(spot.back()).type, hw::GpuType::kA100_80G);
}

TEST(ChurnEvents, DipLeavesThenRejoinsSameDevices) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kDip, 40.0, 7);
  spec.leave_count = 3;
  auto events = control::generate_churn(spec, cluster);
  ASSERT_EQ(events.size(), 6u);
  std::vector<int> left, joined;
  for (const auto& ev : events) {
    EXPECT_LT(ev.time, spec.horizon);
    if (ev.kind == control::ClusterEventKind::kGpuLeave) left.push_back(ev.device);
    if (ev.kind == control::ClusterEventKind::kGpuJoin) joined.push_back(ev.device);
  }
  EXPECT_EQ(left, joined);
  // Sorted by time: all leaves precede all joins.
  EXPECT_LT(events.front().time, events.back().time);
  EXPECT_EQ(events.front().kind, control::ClusterEventKind::kGpuLeave);
  EXPECT_EQ(events.back().kind, control::ClusterEventKind::kGpuJoin);
}

TEST(ChurnEvents, SpotIsSeedDeterministicAndBounded) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kSpot, 60.0, 11);
  auto a = control::generate_churn(spec, cluster);
  auto b = control::generate_churn(spec, cluster);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].device, b[i].device);
  }
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i].time, a[i - 1].time);
  spec.seed = 12;
  auto c = control::generate_churn(spec, cluster);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) differs = c[i].time != a[i].time;
  EXPECT_TRUE(differs);
}

TEST(ChurnEvents, SurgeEmitsForecastShifts) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kSurge, 50.0, 1);
  auto events = control::generate_churn(spec, cluster);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, control::ClusterEventKind::kLoadShift);
  EXPECT_DOUBLE_EQ(events[0].factor, spec.surge_factor);
  EXPECT_DOUBLE_EQ(events[1].factor, 1.0);
}

TEST(ChurnEvents, ValidationRejectsBadParameters) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kDip, 10.0, 1);
  spec.rejoin_frac = 0.1;
  spec.leave_frac = 0.5;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kSpot, 10.0, 1);
  spec.mean_up = 0;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scale policies
// ---------------------------------------------------------------------------

control::ControlSignals calm_signals() {
  control::ControlSignals s;
  s.queue_depth = 0;
  s.kv_pressure = 0.1;
  s.slo_attainment = 1.0;
  s.active_devices = 8;
  s.available_devices = 12;
  s.min_devices = 2;
  return s;
}

TEST(ScalePolicies, StaticNeverMoves) {
  auto p = control::make_policy("static");
  control::ControlSignals s = calm_signals();
  s.queue_depth = 1000;
  s.kv_pressure = 1.0;
  EXPECT_EQ(p->target_devices(s, 8), 8);
}

TEST(ScalePolicies, ThresholdScalesUpDownWithHysteresis) {
  auto p = control::make_policy("threshold");
  control::ControlSignals s = calm_signals();
  s.queue_depth = 20;  // above up_queue
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s = calm_signals();
  s.kv_pressure = 0.95;  // above up_kv
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s = calm_signals();  // both below the down thresholds
  EXPECT_EQ(p->target_devices(s, 8), 7);
  s.queue_depth = 4;  // inside the hysteresis band: hold
  EXPECT_EQ(p->target_devices(s, 8), 8);
}

TEST(ScalePolicies, ThresholdFollowsForecastToMax) {
  auto p = control::make_policy("threshold");
  control::ControlSignals s = calm_signals();
  s.load_forecast = 3.0;
  EXPECT_EQ(p->target_devices(s, 6), s.available_devices);
}

TEST(ScalePolicies, SloPolicyTracksAttainmentBand) {
  auto p = control::make_policy("slo");
  control::ControlSignals s = calm_signals();
  s.slo_attainment = 0.5;
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s.slo_attainment = 0.99;
  s.queue_depth = 0;
  EXPECT_EQ(p->target_devices(s, 8), 7);
  s.slo_attainment = 0.9;  // inside the dead band
  EXPECT_EQ(p->target_devices(s, 8), 8);
  EXPECT_THROW(control::make_policy("oracle"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Controller + engines
// ---------------------------------------------------------------------------

/// Counts lifecycle events per id; fails on double finishes.
class FinishLedger : public engine::RunObserver {
 public:
  void on_arrival(const workload::Request& r) override { ++arrivals_[r.id]; }
  void on_finish(workload::RequestId id, Seconds t) override {
    (void)t;
    ++finishes_[id];
  }
  const std::map<workload::RequestId, int>& arrivals() const { return arrivals_; }
  const std::map<workload::RequestId, int>& finishes() const { return finishes_; }

 private:
  std::map<workload::RequestId, int> arrivals_;
  std::map<workload::RequestId, int> finishes_;
};

control::ControlSpec dip_spec(Seconds horizon, int leave_count = 2) {
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kDip, horizon, 5);
  cs.churn.leave_count = leave_count;
  cs.churn.leave_frac = 0.3;
  cs.churn.rejoin_frac = 0.7;
  cs.policy = "static";
  cs.horizon = horizon + 30.0;
  cs.min_devices = 4;
  return cs;
}

TEST(Controller, MidRunGpuLeaveLosesNoFinishes) {
  // Acceptance: a gpu_leave with requests in flight must not lose or
  // double-count a single finish, on any engine.
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);
  ASSERT_GT(trace.size(), 10u);

  for (const std::string name : {"hetis", "splitwise", "hexgen"}) {
    SCOPED_TRACE(name);
    auto eng = engine::make(name, cluster, model);
    FinishLedger ledger;
    control::Controller ctl(dip_spec(8.0), cluster);
    engine::RunOptions run(900.0);
    run.observer = &ledger;
    run.on_start = ctl.starter();
    engine::RunReport rep = engine::run_trace(*eng, trace, run);

    EXPECT_EQ(rep.arrived, trace.size());
    EXPECT_EQ(rep.finished, trace.size());
    EXPECT_FALSE(rep.drain_timeout_hit);
    // The churn actually forced re-deploys (leave + rejoin).
    const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
    ASSERT_NE(rc, nullptr);
    EXPECT_GE(rc->reconfig_stats().reconfigurations, 2);
    EXPECT_GE(ctl.stats().forced_reconfigs, 2);
    // Ledger: every arrival finished exactly once, through the chained
    // observer (the controller forwards downstream).
    EXPECT_EQ(ledger.arrivals().size(), trace.size());
    EXPECT_EQ(ledger.finishes().size(), trace.size());
    for (const auto& [id, n] : ledger.finishes()) EXPECT_EQ(n, 1) << "request " << id;
  }
}

TEST(Controller, HetisMigratesWhereBaselinesRestart) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);

  auto run_one = [&](const std::string& name) {
    auto eng = engine::make(name, cluster, model);
    control::Controller ctl(dip_spec(8.0), cluster);
    engine::RunOptions run(900.0);
    run.on_start = ctl.starter();
    engine::run_trace(*eng, trace, run);
    return dynamic_cast<const engine::Reconfigurable*>(eng.get())->reconfig_stats();
  };

  engine::ReconfigStats hetis = run_one("hetis");
  EXPECT_GT(hetis.migrated_requests, 0);
  EXPECT_GT(hetis.migrated_kv_bytes, 0);
  EXPECT_EQ(hetis.restart_dead_time, 0.0);
  engine::ReconfigStats splitwise = run_one("splitwise");
  EXPECT_EQ(splitwise.migrated_requests, 0);
  EXPECT_GT(splitwise.restart_dead_time, 0.0);
  engine::ReconfigStats hexgen = run_one("hexgen");
  EXPECT_EQ(hexgen.migrated_requests, 0);
  EXPECT_GT(hexgen.restarted_requests, 0);
}

TEST(Controller, RejectsNonReconfigurableEnginesWhenChurnDemands) {
  class FixedEngine : public engine::Engine {
   public:
    std::string name() const override { return "Fixed"; }
    void submit(sim::Simulation&, const workload::Request& r) override {
      metrics_.on_arrival(r);
    }
    Bytes usable_kv_capacity() const override { return 0; }
  };
  hw::Cluster cluster = harness::cluster_by_name("paper");
  FixedEngine eng;
  sim::Simulation sim;

  control::ControlSpec churny = dip_spec(10.0);
  control::Controller ctl(churny, cluster);
  EXPECT_THROW(ctl.attach(sim, eng), std::invalid_argument);

  // A pure observer attachment (no churn, static policy) is fine.
  control::ControlSpec calm;
  calm.policy = "static";
  calm.horizon = 1.0;
  control::Controller watcher(calm, cluster);
  EXPECT_NO_THROW(watcher.attach(sim, eng));
}

TEST(Controller, ValidatesSpecBounds) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  control::ControlSpec cs;
  cs.min_devices = 0;
  EXPECT_THROW(control::Controller(cs, cluster), std::invalid_argument);
  cs.min_devices = 2;
  cs.initial_devices = 99;
  EXPECT_THROW(control::Controller(cs, cluster), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Harness integration: determinism + per-cell observers
// ---------------------------------------------------------------------------

harness::ExperimentSpec controlled_spec() {
  harness::ExperimentSpec spec;
  spec.name = "controlled";
  spec.engines = {"hetis", "splitwise", "hexgen"};
  spec.models = {"Llama-13B"};
  spec.horizon = 8.0;
  spec.seed = 29;
  spec.run = engine::RunOptions(900.0);
  engine::SloSpec slo;
  slo.ttft = 5.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  spec.add_scenario(
      workload::scenario_preset(workload::Scenario::kBursty, 3.0, spec.horizon, spec.seed));
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kDip, spec.horizon, spec.seed);
  cs.policy = "threshold";
  cs.min_devices = 4;
  cs.slo = slo;
  spec.set_control(cs);
  return spec;
}

std::string controlled_csv(int jobs) {
  harness::ExperimentSpec spec = controlled_spec();
  spec.jobs = jobs;
  std::ostringstream csv;
  harness::write_csv(csv, harness::run_sweep(spec));
  return csv.str();
}

TEST(ControlledSweep, SameSeedAndEventsAreByteIdenticalAcrossJobs) {
  // Acceptance: same seed + event trace => byte-identical reports at jobs
  // 1 / 2 / 8 (each cell owns a private controller).
  const std::string serial = controlled_csv(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(controlled_csv(2), serial);
  EXPECT_EQ(controlled_csv(8), serial);
  // The control columns are populated.
  EXPECT_NE(serial.find("dip,threshold,"), std::string::npos);
}

TEST(ControlledSweep, SetControlStampsSeedAndHorizon) {
  harness::ExperimentSpec spec = controlled_spec();
  ASSERT_TRUE(spec.control.has_value());
  EXPECT_EQ(spec.control->churn.seed, spec.seed);
  EXPECT_DOUBLE_EQ(spec.control->churn.horizon, spec.horizon);
  EXPECT_GT(spec.control->horizon, spec.horizon);
}

TEST(ControlledSweep, SweepHeaderCarriesControlColumns) {
  const std::string header = harness::sweep_csv_header();
  EXPECT_NE(header.find(",control,policy,reconfigurations,"), std::string::npos);
  harness::SweepRow blank;
  const std::string row = harness::to_csv_row(blank);
  EXPECT_EQ(static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')),
            static_cast<std::size_t>(std::count(row.begin(), row.end(), ',')));
}

TEST(ObserverFactory, PerCellObserversLiftTheParallelRestriction) {
  // Acceptance: a per-cell observer factory composes with jobs != 1 (the
  // shared RunOptions::observer still throws there) and each observer sees
  // exactly its own cell's lifecycle.
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen", "splitwise"};
  spec.models = {"Llama-13B"};
  spec.horizon = 4.0;
  spec.seed = 23;
  spec.run = engine::RunOptions(900.0);
  spec.add_rates(workload::Dataset::kShareGPT, {2.0, 4.0});
  spec.jobs = 4;

  struct CountingObserver : engine::RunObserver {
    explicit CountingObserver(std::atomic<std::size_t>* slot) : slot_(slot) {}
    void on_finish(workload::RequestId, Seconds) override { ++*slot_; }
    std::atomic<std::size_t>* slot_;
  };
  std::array<std::atomic<std::size_t>, 4> finishes{};
  spec.observer_factory = [&](const harness::ExperimentSpec::CellContext& ctx)
      -> std::unique_ptr<engine::RunObserver> {
    EXPECT_LT(ctx.point, 2u);
    EXPECT_EQ(ctx.model, "Llama-13B");
    EXPECT_NE(ctx.workload, nullptr);
    const std::size_t cell = ctx.point * 2 + (ctx.engine == "hexgen" ? 0 : 1);
    return std::make_unique<CountingObserver>(&finishes[cell]);
  };

  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t pi = 0; pi < 2; ++pi) {
    for (std::size_t ei = 0; ei < 2; ++ei) {
      EXPECT_EQ(finishes[pi * 2 + ei].load(), rows[pi * 2 + ei].report.finished)
          << "cell (" << pi << ", " << ei << ")";
    }
  }

  // The shared-observer restriction is still enforced under jobs != 1.
  engine::RunObserver shared;
  spec.observer_factory = nullptr;
  spec.run.observer = &shared;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace hetis
