// Elastic control plane: churn generators, scale policies, controller
// determinism, and mid-run reconfiguration correctness (no lost or
// double-counted finishes under gpu_leave with requests in flight).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "control/controller.h"
#include "control/events.h"
#include "control/policy.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "hetis/hetis_engine.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

// ---------------------------------------------------------------------------
// Churn generators
// ---------------------------------------------------------------------------

TEST(ChurnEvents, NamesRoundTripAndUnknownThrows) {
  for (const std::string& name : control::churn_names()) {
    EXPECT_EQ(control::to_string(control::churn_by_name(name)), name);
  }
  EXPECT_THROW(control::churn_by_name("meteor"), std::out_of_range);
}

TEST(ChurnEvents, PreemptibleDevicesAreLowestPowerFirst) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  std::vector<int> spot = control::preemptible_devices(cluster);
  ASSERT_EQ(spot.size(), 12u);
  // Paper cluster: P100s (ids 8-11) churn first, A100s (ids 0-3) last.
  EXPECT_EQ(cluster.device(spot.front()).type, hw::GpuType::kP100);
  EXPECT_EQ(cluster.device(spot.back()).type, hw::GpuType::kA100_80G);
}

TEST(ChurnEvents, DipLeavesThenRejoinsSameDevices) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kDip, 40.0, 7);
  spec.leave_count = 3;
  auto events = control::generate_churn(spec, cluster);
  ASSERT_EQ(events.size(), 6u);
  std::vector<int> left, joined;
  for (const auto& ev : events) {
    EXPECT_LT(ev.time, spec.horizon);
    if (ev.kind == control::ClusterEventKind::kGpuLeave) left.push_back(ev.device);
    if (ev.kind == control::ClusterEventKind::kGpuJoin) joined.push_back(ev.device);
  }
  EXPECT_EQ(left, joined);
  // Sorted by time: all leaves precede all joins.
  EXPECT_LT(events.front().time, events.back().time);
  EXPECT_EQ(events.front().kind, control::ClusterEventKind::kGpuLeave);
  EXPECT_EQ(events.back().kind, control::ClusterEventKind::kGpuJoin);
}

TEST(ChurnEvents, SpotIsSeedDeterministicAndBounded) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kSpot, 60.0, 11);
  auto a = control::generate_churn(spec, cluster);
  auto b = control::generate_churn(spec, cluster);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].device, b[i].device);
  }
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i].time, a[i - 1].time);
  spec.seed = 12;
  auto c = control::generate_churn(spec, cluster);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) differs = c[i].time != a[i].time;
  EXPECT_TRUE(differs);
}

TEST(ChurnEvents, SurgeEmitsForecastShifts) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kSurge, 50.0, 1);
  auto events = control::generate_churn(spec, cluster);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, control::ClusterEventKind::kLoadShift);
  EXPECT_DOUBLE_EQ(events[0].factor, spec.surge_factor);
  EXPECT_DOUBLE_EQ(events[1].factor, 1.0);
}

TEST(ChurnEvents, ValidationRejectsBadParameters) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kDip, 10.0, 1);
  spec.rejoin_frac = 0.1;
  spec.leave_frac = 0.5;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kSpot, 10.0, 1);
  spec.mean_up = 0;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scale policies
// ---------------------------------------------------------------------------

control::ControlSignals calm_signals() {
  control::ControlSignals s;
  s.queue_depth = 0;
  s.kv_pressure = 0.1;
  s.slo_attainment = 1.0;
  s.active_devices = 8;
  s.available_devices = 12;
  s.min_devices = 2;
  return s;
}

TEST(ScalePolicies, StaticNeverMoves) {
  auto p = control::make_policy("static");
  control::ControlSignals s = calm_signals();
  s.queue_depth = 1000;
  s.kv_pressure = 1.0;
  EXPECT_EQ(p->target_devices(s, 8), 8);
}

TEST(ScalePolicies, ThresholdScalesUpDownWithHysteresis) {
  auto p = control::make_policy("threshold");
  control::ControlSignals s = calm_signals();
  s.queue_depth = 20;  // above up_queue
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s = calm_signals();
  s.kv_pressure = 0.95;  // above up_kv
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s = calm_signals();  // both below the down thresholds
  EXPECT_EQ(p->target_devices(s, 8), 7);
  s.queue_depth = 4;  // inside the hysteresis band: hold
  EXPECT_EQ(p->target_devices(s, 8), 8);
}

TEST(ScalePolicies, ThresholdFollowsForecastToMax) {
  auto p = control::make_policy("threshold");
  control::ControlSignals s = calm_signals();
  s.load_forecast = 3.0;
  EXPECT_EQ(p->target_devices(s, 6), s.available_devices);
}

TEST(ScalePolicies, SloPolicyTracksAttainmentBand) {
  auto p = control::make_policy("slo");
  control::ControlSignals s = calm_signals();
  s.slo_attainment = 0.5;
  EXPECT_EQ(p->target_devices(s, 8), 9);
  s.slo_attainment = 0.99;
  s.queue_depth = 0;
  EXPECT_EQ(p->target_devices(s, 8), 7);
  s.slo_attainment = 0.9;  // inside the dead band
  EXPECT_EQ(p->target_devices(s, 8), 8);
  EXPECT_THROW(control::make_policy("oracle"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Controller + engines
// ---------------------------------------------------------------------------

/// Counts lifecycle events per id; fails on double finishes.
class FinishLedger : public engine::RunObserver {
 public:
  void on_arrival(const workload::Request& r) override { ++arrivals_[r.id]; }
  void on_finish(workload::RequestId id, Seconds t) override {
    (void)t;
    ++finishes_[id];
  }
  const std::map<workload::RequestId, int>& arrivals() const { return arrivals_; }
  const std::map<workload::RequestId, int>& finishes() const { return finishes_; }

 private:
  std::map<workload::RequestId, int> arrivals_;
  std::map<workload::RequestId, int> finishes_;
};

control::ControlSpec dip_spec(Seconds horizon, int leave_count = 2) {
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kDip, horizon, 5);
  cs.churn.leave_count = leave_count;
  cs.churn.leave_frac = 0.3;
  cs.churn.rejoin_frac = 0.7;
  cs.policy = "static";
  cs.horizon = horizon + 30.0;
  cs.min_devices = 4;
  return cs;
}

TEST(Controller, MidRunGpuLeaveLosesNoFinishes) {
  // Acceptance: a gpu_leave with requests in flight must not lose or
  // double-count a single finish, on any engine.
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);
  ASSERT_GT(trace.size(), 10u);

  for (const std::string name : {"hetis", "splitwise", "hexgen"}) {
    SCOPED_TRACE(name);
    auto eng = engine::make(name, cluster, model);
    FinishLedger ledger;
    control::Controller ctl(dip_spec(8.0), cluster);
    engine::RunOptions run(900.0);
    run.observer = &ledger;
    run.on_start = ctl.starter();
    engine::RunReport rep = engine::run_trace(*eng, trace, run);

    EXPECT_EQ(rep.arrived, trace.size());
    EXPECT_EQ(rep.finished, trace.size());
    EXPECT_FALSE(rep.drain_timeout_hit);
    // The churn actually forced re-deploys (leave + rejoin).
    const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
    ASSERT_NE(rc, nullptr);
    EXPECT_GE(rc->reconfig_stats().reconfigurations, 2);
    EXPECT_GE(ctl.stats().forced_reconfigs, 2);
    // Ledger: every arrival finished exactly once, through the chained
    // observer (the controller forwards downstream).
    EXPECT_EQ(ledger.arrivals().size(), trace.size());
    EXPECT_EQ(ledger.finishes().size(), trace.size());
    for (const auto& [id, n] : ledger.finishes()) EXPECT_EQ(n, 1) << "request " << id;
  }
}

TEST(Controller, HetisMigratesWhereBaselinesRestart) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);

  auto run_one = [&](const std::string& name) {
    auto eng = engine::make(name, cluster, model);
    control::Controller ctl(dip_spec(8.0), cluster);
    engine::RunOptions run(900.0);
    run.on_start = ctl.starter();
    engine::run_trace(*eng, trace, run);
    return dynamic_cast<const engine::Reconfigurable*>(eng.get())->reconfig_stats();
  };

  engine::ReconfigStats hetis = run_one("hetis");
  EXPECT_GT(hetis.migrated_requests, 0);
  EXPECT_GT(hetis.migrated_kv_bytes, 0);
  EXPECT_EQ(hetis.restart_dead_time, 0.0);
  engine::ReconfigStats splitwise = run_one("splitwise");
  EXPECT_EQ(splitwise.migrated_requests, 0);
  EXPECT_GT(splitwise.restart_dead_time, 0.0);
  engine::ReconfigStats hexgen = run_one("hexgen");
  EXPECT_EQ(hexgen.migrated_requests, 0);
  EXPECT_GT(hexgen.restarted_requests, 0);
}

TEST(Controller, RejectsNonReconfigurableEnginesWhenChurnDemands) {
  class FixedEngine : public engine::Engine {
   public:
    std::string name() const override { return "Fixed"; }
    void submit(sim::Simulation&, const workload::Request& r) override {
      metrics_.on_arrival(r);
    }
    Bytes usable_kv_capacity() const override { return 0; }
  };
  hw::Cluster cluster = harness::cluster_by_name("paper");
  FixedEngine eng;
  sim::Simulation sim;

  control::ControlSpec churny = dip_spec(10.0);
  control::Controller ctl(churny, cluster);
  EXPECT_THROW(ctl.attach(sim, eng), std::invalid_argument);

  // A pure observer attachment (no churn, static policy) is fine.
  control::ControlSpec calm;
  calm.policy = "static";
  calm.horizon = 1.0;
  control::Controller watcher(calm, cluster);
  EXPECT_NO_THROW(watcher.attach(sim, eng));
}

TEST(Controller, ValidatesSpecBounds) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  control::ControlSpec cs;
  cs.min_devices = 0;
  EXPECT_THROW(control::Controller(cs, cluster), std::invalid_argument);
  cs.min_devices = 2;
  cs.initial_devices = 99;
  EXPECT_THROW(control::Controller(cs, cluster), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Harness integration: determinism + per-cell observers
// ---------------------------------------------------------------------------

harness::ExperimentSpec controlled_spec() {
  harness::ExperimentSpec spec;
  spec.name = "controlled";
  spec.engines = {"hetis", "splitwise", "hexgen"};
  spec.models = {"Llama-13B"};
  spec.horizon = 8.0;
  spec.seed = 29;
  spec.run = engine::RunOptions(900.0);
  engine::SloSpec slo;
  slo.ttft = 5.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  spec.add_scenario(
      workload::scenario_preset(workload::Scenario::kBursty, 3.0, spec.horizon, spec.seed));
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kDip, spec.horizon, spec.seed);
  cs.policy = "threshold";
  cs.min_devices = 4;
  cs.slo = slo;
  spec.set_control(cs);
  return spec;
}

std::string controlled_csv(int jobs) {
  harness::ExperimentSpec spec = controlled_spec();
  spec.jobs = jobs;
  std::ostringstream csv;
  harness::write_csv(csv, harness::run_sweep(spec));
  return csv.str();
}

TEST(ControlledSweep, SameSeedAndEventsAreByteIdenticalAcrossJobs) {
  // Acceptance: same seed + event trace => byte-identical reports at jobs
  // 1 / 2 / 8 (each cell owns a private controller).
  const std::string serial = controlled_csv(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(controlled_csv(2), serial);
  EXPECT_EQ(controlled_csv(8), serial);
  // The control columns are populated.
  EXPECT_NE(serial.find("dip,threshold,"), std::string::npos);
}

TEST(ControlledSweep, SetControlStampsSeedAndHorizon) {
  harness::ExperimentSpec spec = controlled_spec();
  ASSERT_TRUE(spec.control.has_value());
  EXPECT_EQ(spec.control->churn.seed, spec.seed);
  EXPECT_DOUBLE_EQ(spec.control->churn.horizon, spec.horizon);
  EXPECT_GT(spec.control->horizon, spec.horizon);
}

TEST(ControlledSweep, SweepHeaderCarriesControlColumns) {
  const std::string header = harness::sweep_csv_header();
  EXPECT_NE(header.find(",control,policy,reconfigurations,"), std::string::npos);
  harness::SweepRow blank;
  const std::string row = harness::to_csv_row(blank);
  EXPECT_EQ(static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')),
            static_cast<std::size_t>(std::count(row.begin(), row.end(), ',')));
}

TEST(ObserverFactory, PerCellObserversLiftTheParallelRestriction) {
  // Acceptance: a per-cell observer factory composes with jobs != 1 (the
  // shared RunOptions::observer still throws there) and each observer sees
  // exactly its own cell's lifecycle.
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen", "splitwise"};
  spec.models = {"Llama-13B"};
  spec.horizon = 4.0;
  spec.seed = 23;
  spec.run = engine::RunOptions(900.0);
  spec.add_rates(workload::Dataset::kShareGPT, {2.0, 4.0});
  spec.jobs = 4;

  struct CountingObserver : engine::RunObserver {
    explicit CountingObserver(std::atomic<std::size_t>* slot) : slot_(slot) {}
    void on_finish(workload::RequestId, Seconds) override { ++*slot_; }
    std::atomic<std::size_t>* slot_;
  };
  std::array<std::atomic<std::size_t>, 4> finishes{};
  spec.observer_factory = [&](const harness::ExperimentSpec::CellContext& ctx)
      -> std::unique_ptr<engine::RunObserver> {
    EXPECT_LT(ctx.point, 2u);
    EXPECT_EQ(ctx.model, "Llama-13B");
    EXPECT_NE(ctx.workload, nullptr);
    const std::size_t cell = ctx.point * 2 + (ctx.engine == "hexgen" ? 0 : 1);
    return std::make_unique<CountingObserver>(&finishes[cell]);
  };

  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t pi = 0; pi < 2; ++pi) {
    for (std::size_t ei = 0; ei < 2; ++ei) {
      EXPECT_EQ(finishes[pi * 2 + ei].load(), rows[pi * 2 + ei].report.finished)
          << "cell (" << pi << ", " << ei << ")";
    }
  }

  // The shared-observer restriction is still enforced under jobs != 1.
  engine::RunObserver shared;
  spec.observer_factory = nullptr;
  spec.run.observer = &shared;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Degradation churn generators
// ---------------------------------------------------------------------------

TEST(DegradationChurn, NamesCoverEveryScriptAndErrorsListThemSorted) {
  const std::vector<std::string> want{"dip",         "flaky_link", "none",
                                     "spot",        "spot_notice", "straggler",
                                     "surge",       "throttle_wave"};
  EXPECT_EQ(control::churn_names(), want);
  EXPECT_TRUE(std::is_sorted(want.begin(), want.end()));
  try {
    control::churn_by_name("glacier");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("glacier"), std::string::npos);
    for (const auto& n : want) EXPECT_NE(msg.find(n), std::string::npos) << n;
  }
  try {
    control::make_policy("oracle");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("slo, static, threshold"), std::string::npos);
  }
}

TEST(DegradationChurn, StragglerSlowsAnchorsThenRecovers) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kStraggler, 40.0, 9);
  spec.straggler_count = 2;
  auto events = control::generate_churn(spec, cluster);
  ASSERT_EQ(events.size(), 4u);  // two onsets + one synchronized recovery each
  int onsets = 0, recoveries = 0;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, control::ClusterEventKind::kDeviceSlow);
    EXPECT_TRUE(control::mutates_cluster(ev.kind));
    // The ANCHORS straggle: highest-power devices, i.e. A100s on paper.
    EXPECT_EQ(cluster.device(ev.device).type, hw::GpuType::kA100_80G);
    if (ev.factor < 1.0) {
      EXPECT_DOUBLE_EQ(ev.factor, spec.straggler_ratio);
      // Onset jitter stays in the first fifth of the slow window, so it
      // always precedes the recovery.
      EXPECT_GE(ev.time, spec.slow_frac * spec.horizon);
      EXPECT_LT(ev.time, spec.recover_frac * spec.horizon);
      ++onsets;
    } else {
      EXPECT_DOUBLE_EQ(ev.time, spec.recover_frac * spec.horizon);
      ++recoveries;
    }
  }
  EXPECT_EQ(onsets, 2);
  EXPECT_EQ(recoveries, 2);

  // Determinism: same seed => identical stream; different seed => different.
  auto again = control::generate_churn(spec, cluster);
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].time, events[i].time);
    EXPECT_EQ(again[i].device, events[i].device);
    EXPECT_EQ(again[i].factor, events[i].factor);
  }
  spec.seed = 10;
  auto other = control::generate_churn(spec, cluster);
  bool differs = other.size() != events.size();
  for (std::size_t i = 0; !differs && i < events.size(); ++i) {
    differs = other[i].time != events[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST(DegradationChurn, ThrottleWaveIsASeedlessIdOrderWave) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kThrottleWave, 40.0, 3);
  auto events = control::generate_churn(spec, cluster);
  // Every device throttles once and recovers once (horizon 40 fits all).
  ASSERT_EQ(events.size(), 2u * static_cast<std::size_t>(cluster.num_devices()));
  for (const auto& d : cluster.devices()) {
    const Seconds onset = spec.wave_frac * spec.horizon + d.id * spec.wave_stagger;
    bool found_onset = false, found_recover = false;
    for (const auto& ev : events) {
      if (ev.device != d.id) continue;
      if (ev.factor < 1.0) {
        EXPECT_DOUBLE_EQ(ev.time, onset);
        EXPECT_DOUBLE_EQ(ev.factor, spec.throttle_ratio);
        found_onset = true;
      } else {
        EXPECT_DOUBLE_EQ(ev.time, onset + spec.throttle_dwell);
        found_recover = true;
      }
    }
    EXPECT_TRUE(found_onset && found_recover) << "device " << d.id;
  }
  // The wave is deterministic: the seed plays no part.
  spec.seed = 999;
  auto reseeded = control::generate_churn(spec, cluster);
  ASSERT_EQ(reseeded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reseeded[i].time, events[i].time);
    EXPECT_EQ(reseeded[i].device, events[i].device);
  }
}

TEST(DegradationChurn, FlakyLinkAlternatesDegradeAndRecover) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kFlakyLink, 60.0, 17);
  auto events = control::generate_churn(spec, cluster);
  ASSERT_FALSE(events.empty());
  std::map<int, std::vector<double>> factors_by_device;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, control::ClusterEventKind::kLinkDegrade);
    // The cheap capacity flakes: P100s churn first on the paper cluster.
    EXPECT_EQ(cluster.device(ev.device).type, hw::GpuType::kP100);
    factors_by_device[ev.device].push_back(ev.factor);
  }
  EXPECT_LE(factors_by_device.size(), static_cast<std::size_t>(spec.flaky_count));
  for (const auto& [dev, factors] : factors_by_device) {
    for (std::size_t i = 0; i < factors.size(); ++i) {
      // Starts healthy, so the first event degrades; then alternates.
      EXPECT_DOUBLE_EQ(factors[i], i % 2 == 0 ? spec.link_degrade_scale : 1.0)
          << "device " << dev << " event " << i;
    }
  }
  auto again = control::generate_churn(spec, cluster);
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(again[i].time, events[i].time);
}

TEST(DegradationChurn, SpotNoticeAnnouncesEveryLeaveWithinLead) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kSpotNotice, 60.0, 11);
  auto events = control::generate_churn(spec, cluster);

  // The underlying leave/join schedule is the kSpot one for the same seed:
  // warnings are pure additions, never perturbations.
  control::ChurnSpec plain = spec;
  plain.kind = control::Churn::kSpot;
  auto spot_events = control::generate_churn(plain, cluster);
  std::vector<control::ClusterEvent> sans_notice;
  for (const auto& ev : events) {
    if (ev.kind != control::ClusterEventKind::kPreemptNotice) sans_notice.push_back(ev);
  }
  ASSERT_EQ(sans_notice.size(), spot_events.size());
  for (std::size_t i = 0; i < spot_events.size(); ++i) {
    EXPECT_EQ(sans_notice[i].time, spot_events[i].time);
    EXPECT_EQ(sans_notice[i].kind, spot_events[i].kind);
    EXPECT_EQ(sans_notice[i].device, spot_events[i].device);
  }

  // Every leave is announced: a prior kPreemptNotice for the same device
  // whose time + factor equals the leave time, at most notice_lead ahead.
  std::size_t leaves = 0, notices = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == control::ClusterEventKind::kPreemptNotice) {
      ++notices;
      EXPECT_GT(events[i].factor, 0.0);
      EXPECT_LE(events[i].factor, spec.notice_lead + 1e-9);
      continue;
    }
    if (events[i].kind != control::ClusterEventKind::kGpuLeave) continue;
    ++leaves;
    bool announced = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (events[j].kind == control::ClusterEventKind::kPreemptNotice &&
          events[j].device == events[i].device &&
          std::abs(events[j].time + events[j].factor - events[i].time) < 1e-9) {
        announced = true;
      }
    }
    EXPECT_TRUE(announced) << "unannounced leave of device " << events[i].device << " at t="
                           << events[i].time;
  }
  ASSERT_GT(leaves, 0u);
  EXPECT_EQ(notices, leaves);
}

TEST(DegradationChurn, ValidationRejectsBadDegradationParameters) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ChurnSpec spec = control::churn_preset(control::Churn::kStraggler, 10.0, 1);
  spec.straggler_ratio = 1.2;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kStraggler, 10.0, 1);
  spec.recover_frac = 0.1;
  spec.slow_frac = 0.5;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kThrottleWave, 10.0, 1);
  spec.throttle_dwell = 0;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kFlakyLink, 10.0, 1);
  spec.link_degrade_scale = 0;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
  spec = control::churn_preset(control::Churn::kSpotNotice, 10.0, 1);
  spec.notice_lead = 0;
  EXPECT_THROW(control::generate_churn(spec, cluster), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Controller + engines under degradation
// ---------------------------------------------------------------------------

TEST(Degradation, ConstClusterControllerRejectsDegradationScripts) {
  const hw::Cluster cluster = harness::cluster_by_name("paper");
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kStraggler, 10.0, 5);
  // The const overload cannot replay overlay mutations: fail at build time,
  // not silently at nameplate speed mid-run.
  EXPECT_THROW(control::Controller(cs, cluster), std::invalid_argument);
  // The same spec on a mutable cluster is fine.
  hw::Cluster mut = harness::cluster_by_name("paper");
  EXPECT_NO_THROW(control::Controller(cs, mut));
  // Threshold is validated either way.
  control::ControlSpec bad;
  bad.straggler_threshold = 0.0;
  EXPECT_THROW(control::Controller(bad, mut), std::invalid_argument);
}

control::ControlSpec straggler_spec(Seconds horizon, double recover_frac) {
  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kStraggler, horizon, 5);
  cs.churn.recover_frac = recover_frac;
  cs.policy = "static";
  cs.replan_objective = "latency";
  cs.horizon = horizon + 30.0;
  cs.min_devices = 4;
  return cs;
}

TEST(Degradation, HetisDemotesTheStragglerInsteadOfDroppingIt) {
  // Acceptance: under straggler churn the slowed device is REASSIGNED to
  // Attention work (where a slow device costs least) -- never dropped from
  // the deployment -- and every request still finishes.
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);

  // recover_frac = 1.0 puts the recovery AT the horizon (skipped by the
  // generator contract), so the run ends with the straggler still slow and
  // the final plan inspectable.
  control::ControlSpec cs = straggler_spec(8.0, 1.0);
  const auto script = control::generate_churn(cs.churn, cluster);
  ASSERT_EQ(script.size(), 1u);
  const int straggler = script[0].device;

  auto eng = engine::make("hetis", cluster, model);
  control::Controller ctl(cs, cluster);
  engine::RunOptions run(900.0);
  run.on_start = ctl.starter();
  engine::RunReport rep = engine::run_trace(*eng, trace, run);

  // Demote, not drop: zero lost requests, zero restarts, and the engine
  // reconfigured in response to the threshold crossing.
  EXPECT_EQ(rep.arrived, trace.size());
  EXPECT_EQ(rep.finished, trace.size());
  const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
  ASSERT_NE(rc, nullptr);
  EXPECT_GE(rc->reconfig_stats().reconfigurations, 1);
  EXPECT_EQ(rc->reconfig_stats().restarted_requests, 0);
  EXPECT_EQ(ctl.stats().degradation_events, 1);
  EXPECT_EQ(ctl.signals().degraded_devices, 1);
  // The overlay stuck (no recovery event fired).
  EXPECT_DOUBLE_EQ(cluster.device_speed(straggler), cs.churn.straggler_ratio);

  // The final plan serves WITH the straggler -- as an Attention worker,
  // not a primary pipeline device.
  const auto* hetis = dynamic_cast<const core::HetisEngine*>(eng.get());
  ASSERT_NE(hetis, nullptr);
  bool is_primary = false, is_worker = false, assigned = false;
  for (const auto& inst : hetis->plan().instances) {
    for (int dev : inst.primary_devices()) is_primary |= dev == straggler;
    for (int dev : inst.attention_workers) is_worker |= dev == straggler;
  }
  assigned = is_primary || is_worker;
  EXPECT_TRUE(assigned) << "straggler " << straggler << " was dropped from the plan";
  EXPECT_FALSE(is_primary) << "straggler " << straggler << " still drives a primary stage";
  EXPECT_TRUE(is_worker);
}

TEST(Degradation, StragglerRecoveryReplansBackAndRestoresHealth) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);

  control::ControlSpec cs = straggler_spec(8.0, 0.75);  // recovers mid-run
  auto eng = engine::make("hetis", cluster, model);
  control::Controller ctl(cs, cluster);
  engine::RunOptions run(900.0);
  run.on_start = ctl.starter();
  engine::RunReport rep = engine::run_trace(*eng, trace, run);

  EXPECT_EQ(rep.finished, trace.size());
  // Slow + recover both crossed the threshold: two degradation events, two
  // replans (demote, then restore), and a healthy cluster at the end.
  EXPECT_EQ(ctl.stats().degradation_events, 2);
  EXPECT_EQ(ctl.signals().degraded_devices, 0);
  EXPECT_FALSE(cluster.degraded());
  const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
  EXPECT_GE(rc->reconfig_stats().reconfigurations, 2);
}

TEST(Degradation, PreemptNoticeLetsHetisEvacuateWithoutRestarts) {
  // Acceptance: with warnings, Hetis pre-migrates KV off the doomed device
  // during the lead window -- zero restarts where the same schedule
  // without notices forces none either (Hetis live-migrates) but the
  // notices must strictly reduce work done AT the leave.
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::TraceOptions topts;
  topts.rate = 4.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto trace = workload::build_trace(topts);

  control::ControlSpec cs;
  cs.churn = control::churn_preset(control::Churn::kSpotNotice, 8.0, 13);
  cs.churn.spot_count = 2;
  cs.policy = "static";
  cs.horizon = 38.0;
  cs.min_devices = 4;

  auto eng = engine::make("hetis", cluster, model);
  control::Controller ctl(cs, cluster);
  engine::RunOptions run(900.0);
  run.on_start = ctl.starter();
  engine::RunReport rep = engine::run_trace(*eng, trace, run);

  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(ctl.stats().preempt_notices, 0);
  const auto* rc = dynamic_cast<const engine::Reconfigurable*>(eng.get());
  ASSERT_NE(rc, nullptr);
  EXPECT_GT(rc->reconfig_stats().reconfigurations, 0);
  EXPECT_EQ(rc->reconfig_stats().restarted_requests, 0);
  EXPECT_EQ(rc->reconfig_stats().restart_dead_time, 0.0);
}

TEST(Degradation, ControlledSweepWithDegradationIsByteIdenticalAcrossJobs) {
  // Each cell owns a private cluster copy, so degradation scripts compose
  // with parallel sweeps deterministically.
  auto csv_at = [](int jobs) {
    harness::ExperimentSpec spec;
    spec.name = "degraded";
    spec.engines = {"hetis", "splitwise"};
    spec.models = {"Llama-13B"};
    spec.horizon = 6.0;
    spec.seed = 29;
    spec.run = engine::RunOptions(900.0);
    spec.add_scenario(
        workload::scenario_preset(workload::Scenario::kPoisson, 3.0, spec.horizon, spec.seed));
    control::ControlSpec cs;
    cs.churn = control::churn_preset(control::Churn::kStraggler, spec.horizon, spec.seed);
    cs.policy = "static";
    spec.set_control(cs);
    spec.jobs = jobs;
    std::ostringstream csv;
    harness::write_csv(csv, harness::run_sweep(spec));
    return csv.str();
  };
  const std::string serial = csv_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(csv_at(4), serial);
  EXPECT_NE(serial.find("straggler,static,"), std::string::npos);
}

}  // namespace
}  // namespace hetis
