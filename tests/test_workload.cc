// Unit tests: arrival processes, dataset samplers, trace builder.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "workload/arrivals.h"
#include "workload/datasets.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis::workload {
namespace {

TEST(Arrivals, PoissonRateAccuracy) {
  Rng rng(1);
  auto times = generate_poisson(10.0, 1000.0, rng);
  EXPECT_NEAR(static_cast<double>(times.size()) / 1000.0, 10.0, 0.5);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(Arrivals, ZeroRateSegmentsSilent) {
  Rng rng(2);
  auto times = generate_arrivals({{10.0, 5.0}, {10.0, 0.0}, {10.0, 5.0}}, rng);
  for (Seconds t : times) {
    EXPECT_FALSE(t >= 10.0 && t < 20.0) << "arrival inside silent segment at " << t;
  }
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(Arrivals, SegmentBoundariesRespected) {
  Rng rng(3);
  auto times = generate_arrivals({{5.0, 20.0}}, rng);
  for (Seconds t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 5.0);
  }
}

TEST(Arrivals, NegativeInputsThrow) {
  Rng rng(4);
  EXPECT_THROW(generate_arrivals({{-1.0, 5.0}}, rng), std::invalid_argument);
  EXPECT_THROW(generate_arrivals({{1.0, -5.0}}, rng), std::invalid_argument);
}

TEST(Datasets, NameRoundTrip) {
  EXPECT_EQ(dataset_by_name("SG"), Dataset::kShareGPT);
  EXPECT_EQ(dataset_by_name("HumanEval"), Dataset::kHumanEval);
  EXPECT_EQ(dataset_by_name("longbench"), Dataset::kLongBench);
  EXPECT_THROW(dataset_by_name("unknown"), std::out_of_range);
  EXPECT_STREQ(to_string(Dataset::kShareGPT), "ShareGPT");
}

class DatasetSweep : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetSweep, LengthsPositiveAndBounded) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    LengthSample s = sample_lengths(GetParam(), rng);
    EXPECT_GT(s.prompt_len, 0);
    EXPECT_GT(s.output_len, 0);
    EXPECT_LE(s.prompt_len, 16384);
    EXPECT_LE(s.output_len, 1024);
  }
}

TEST_P(DatasetSweep, EmpiricalMeansNearAnalytic) {
  Rng rng(6);
  double prompt_sum = 0, output_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    LengthSample s = sample_lengths(GetParam(), rng);
    prompt_sum += static_cast<double>(s.prompt_len);
    output_sum += static_cast<double>(s.output_len);
  }
  DatasetStats stats = dataset_stats(GetParam());
  // Truncation shifts the mean; allow a generous band.
  EXPECT_NEAR(prompt_sum / n / stats.mean_prompt, 1.0, 0.35);
  EXPECT_NEAR(output_sum / n / stats.mean_output, 1.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(All, DatasetSweep,
                         ::testing::Values(Dataset::kShareGPT, Dataset::kHumanEval,
                                           Dataset::kLongBench),
                         [](const auto& info) { return to_string(info.param); });

TEST(Datasets, CharacteristicShapes) {
  // LongBench prompts >> ShareGPT prompts >> HumanEval outputs (roughly).
  EXPECT_GT(dataset_stats(Dataset::kLongBench).mean_prompt,
            5 * dataset_stats(Dataset::kShareGPT).mean_prompt);
  EXPECT_LT(dataset_stats(Dataset::kHumanEval).mean_output,
            dataset_stats(Dataset::kShareGPT).mean_output);
}

TEST(Trace, SortedWithSequentialIds) {
  TraceOptions opts;
  opts.rate = 5.0;
  opts.horizon = 30.0;
  auto trace = build_trace(opts);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, static_cast<RequestId>(i));
    if (i > 0) {
      EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
  }
}

TEST(Trace, DeterministicBySeed) {
  TraceOptions opts;
  opts.rate = 3.0;
  opts.horizon = 20.0;
  opts.seed = 99;
  auto a = build_trace(opts);
  auto b = build_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceOptions a_opts, b_opts;
  a_opts.rate = b_opts.rate = 5.0;
  a_opts.horizon = b_opts.horizon = 20.0;
  a_opts.seed = 1;
  b_opts.seed = 2;
  auto a = build_trace(a_opts);
  auto b = build_trace(b_opts);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a[i].prompt_len != b[i].prompt_len;
  }
  EXPECT_TRUE(differ);
}

TEST(Trace, PiecewiseSegmentsOverrideRate) {
  TraceOptions opts;
  opts.rate = 100.0;  // must be ignored
  opts.segments = {{5.0, 2.0}, {5.0, 0.0}};
  auto trace = build_trace(opts);
  for (const auto& r : trace) EXPECT_LT(r.arrival, 5.0);
  EXPECT_LT(trace.size(), 40u);
}

TEST(Trace, StatsComputed) {
  TraceOptions opts;
  opts.rate = 4.0;
  opts.horizon = 50.0;
  auto trace = build_trace(opts);
  TraceStats s = trace_stats(trace);
  EXPECT_EQ(s.count, trace.size());
  EXPECT_GT(s.mean_prompt, 0);
  EXPECT_GT(s.mean_output, 0);
  EXPECT_GT(s.span, 0);
  EXPECT_EQ(trace_stats({}).count, 0u);
}

TEST(Trace, RequestToString) {
  Request r;
  r.id = 3;
  r.prompt_len = 10;
  r.output_len = 20;
  EXPECT_NE(r.to_string().find("prompt=10"), std::string::npos);
  EXPECT_EQ(r.total_len(), 30);
}

TEST(TraceRecordReplay, RoundTripsEveryFieldExactly) {
  // A generated scenario (with tenants and full-precision arrivals) must
  // survive save -> load field-for-field, so replayed experiments are
  // byte-identical to the generating run.
  ScenarioSpec spec;
  spec.kind = Scenario::kMultiTenant;
  spec.rate = 5.0;
  spec.horizon = 20.0;
  spec.seed = 99;
  auto trace = generate_scenario(spec);
  ASSERT_GT(trace.size(), 10u);

  std::stringstream buf;
  save_trace(buf, trace);
  auto back = load_trace(buf);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].id, trace[i].id);
    EXPECT_EQ(back[i].arrival, trace[i].arrival);  // exact: %.17g round trip
    EXPECT_EQ(back[i].prompt_len, trace[i].prompt_len);
    EXPECT_EQ(back[i].output_len, trace[i].output_len);
    EXPECT_EQ(back[i].tenant, trace[i].tenant);
  }
  // And a second save yields identical bytes.
  std::stringstream again;
  save_trace(again, back);
  EXPECT_EQ(again.str(), buf.str());
}

TEST(TraceRecordReplay, LoadRejectsMalformedInput) {
  std::stringstream missing_header("1,0.5,10,20,0\n");
  EXPECT_THROW(load_trace(missing_header), std::invalid_argument);
  std::stringstream short_row("id,arrival,prompt_len,output_len,tenant\n1,0.5,10\n");
  EXPECT_THROW(load_trace(short_row), std::invalid_argument);
  std::stringstream not_numeric("id,arrival,prompt_len,output_len,tenant\na,b,c,d,e\n");
  EXPECT_THROW(load_trace(not_numeric), std::invalid_argument);
  // Numeric PREFIXES must be rejected too: "12abc" silently truncating to
  // 12 would corrupt a replay instead of failing it.
  std::stringstream trailing("id,arrival,prompt_len,output_len,tenant\n1,0.5x,12abc,20,0\n");
  EXPECT_THROW(load_trace(trailing), std::invalid_argument);
  EXPECT_THROW(load_trace(std::string("/nonexistent/dir/trace.csv")), std::runtime_error);
  std::stringstream empty_trace("id,arrival,prompt_len,output_len,tenant\n");
  EXPECT_TRUE(load_trace(empty_trace).empty());
}

}  // namespace
}  // namespace hetis::workload
