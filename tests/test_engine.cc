// Unit tests: metrics, exec model, pipeline instance.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/exec.h"
#include "engine/instance.h"
#include "engine/metrics.h"
#include "hw/topology.h"
#include "model/llm.h"

namespace hetis::engine {
namespace {

workload::Request make_req(workload::RequestId id, Seconds arrival, std::int64_t prompt,
                           std::int64_t output) {
  workload::Request r;
  r.id = id;
  r.arrival = arrival;
  r.prompt_len = prompt;
  r.output_len = output;
  return r;
}

// --- Metrics ---

TEST(Metrics, RequestLifecycleDerivedQuantities) {
  MetricsCollector m;
  m.on_arrival(make_req(1, 10.0, 100, 11));
  m.on_first_token(1, 10.5);
  m.on_finish(1, 12.5);
  const RequestRecord& rec = m.record(1);
  EXPECT_DOUBLE_EQ(rec.ttft(), 0.5);
  EXPECT_DOUBLE_EQ(rec.tpot(), 0.2);            // 2.0s / 10 remaining tokens
  EXPECT_DOUBLE_EQ(rec.norm_latency(), 2.5 / 11.0);
  EXPECT_EQ(m.finished(), 1u);
}

TEST(Metrics, DuplicateArrivalThrows) {
  MetricsCollector m;
  m.on_arrival(make_req(1, 0, 1, 1));
  EXPECT_THROW(m.on_arrival(make_req(1, 0, 1, 1)), std::logic_error);
}

TEST(Metrics, UnknownRequestThrows) {
  MetricsCollector m;
  EXPECT_THROW(m.on_first_token(9, 1.0), std::out_of_range);
  EXPECT_THROW(m.on_finish(9, 1.0), std::out_of_range);
  EXPECT_THROW(m.on_preemption(9, 1.0), std::out_of_range);
}

TEST(Metrics, PreemptionKeepsOriginalFirstToken) {
  MetricsCollector m;
  m.on_arrival(make_req(1, 0.0, 10, 5));
  m.on_first_token(1, 1.0);
  m.on_preemption(1, 2.0);
  m.on_first_token(1, 3.0);  // re-prefill after preemption
  EXPECT_DOUBLE_EQ(m.record(1).ttft(), 1.0);
  EXPECT_EQ(m.total_preemptions(), 1);
}

TEST(Metrics, SummariesSkipUnfinished) {
  MetricsCollector m;
  m.on_arrival(make_req(1, 0.0, 10, 10));
  m.on_arrival(make_req(2, 0.0, 10, 10));
  m.on_first_token(1, 0.1);
  m.on_finish(1, 1.0);
  EXPECT_EQ(m.finished(), 1u);
  EXPECT_EQ(m.norm_latency().count(), 1u);
  EXPECT_EQ(m.ttft().count(), 1u);  // only recorded first tokens
}

TEST(Metrics, ModuleSamples) {
  MetricsCollector m;
  m.add_decode_module_sample(1e-3, 2e-3);
  m.add_decode_module_sample(3e-3, 4e-3);
  EXPECT_DOUBLE_EQ(m.mlp_module_time().mean(), 2e-3);
  EXPECT_DOUBLE_EQ(m.attn_module_time().max(), 4e-3);
}

// --- MetricsBatch ---

struct CountingObserver : RunObserver {
  int prefill_done = 0;
  std::vector<workload::RequestId> finishes;
  void on_prefill_done(workload::RequestId, Seconds) override { ++prefill_done; }
  void on_finish(workload::RequestId id, Seconds) override { finishes.push_back(id); }
};

TEST(MetricsBatch, ObserverOnStreamsImmediately) {
  // With an observer installed every event must reach the collector on the
  // spot (the control plane consumes lifecycle events on the sim clock);
  // nothing may sit in the batch buffer.
  MetricsCollector m;
  CountingObserver obs;
  m.set_observer(&obs);
  MetricsBatch batch(&m);
  m.on_arrival(make_req(1, 0.0, 10, 5));
  batch.on_first_token(1, 1.0);
  EXPECT_EQ(batch.buffered(), 0u);
  EXPECT_EQ(obs.prefill_done, 1);
  batch.on_preemption(1, 2.0);
  batch.on_first_token(1, 3.0);  // re-prefill: must not re-signal
  EXPECT_EQ(obs.prefill_done, 1);
  batch.on_finish(1, 4.0);
  EXPECT_EQ(obs.finishes, (std::vector<workload::RequestId>{1}));
  EXPECT_DOUBLE_EQ(m.record(1).ttft(), 1.0);  // original prefill kept
  m.set_observer(nullptr);
}

TEST(MetricsBatch, BatchedAccumulationMatchesPerEvent) {
  // The same lifecycle sequence -- including preempt -> re-prefill and
  // requests whose events split across two instances (migration) -- applied
  // per-event to one collector and through iteration-boundary-flushed
  // batches to another.  Every record and every aggregate must match.
  MetricsCollector direct;
  MetricsCollector buffered;
  MetricsBatch inst_a(&buffered);
  MetricsBatch inst_b(&buffered);
  const int n = 64;
  for (int id = 0; id < n; ++id) {
    const auto t0 = static_cast<Seconds>(id);
    const workload::Request r = make_req(id, t0, 100 + id, 4 + id % 7);
    direct.on_arrival(r);
    buffered.on_arrival(r);  // arrivals are engine-level, never batched
    MetricsBatch& inst = (id % 3 == 0) ? inst_b : inst_a;
    direct.on_first_token(id, t0 + 0.5);
    inst.on_first_token(id, t0 + 0.5);
    if (id % 5 == 0) {
      direct.on_preemption(id, t0 + 1.0);
      inst.on_preemption(id, t0 + 1.0);
      direct.on_first_token(id, t0 + 2.0);  // re-prefill: TTFT unchanged
      inst.on_first_token(id, t0 + 2.0);
      // Migration: the request finishes on the other instance.
      MetricsBatch& other = (id % 3 == 0) ? inst_a : inst_b;
      direct.on_finish(id, t0 + 3.0);
      other.on_finish(id, t0 + 3.0);
    } else if (id % 2 == 0) {
      direct.on_finish(id, t0 + 2.5);
      inst.on_finish(id, t0 + 2.5);
    }
    if (id % 8 == 7) {  // iteration boundary
      inst_a.flush();
      inst_b.flush();
    }
  }
  inst_a.flush();
  inst_b.flush();
  EXPECT_EQ(inst_a.buffered(), 0u);

  ASSERT_EQ(buffered.records().size(), direct.records().size());
  for (std::size_t i = 0; i < direct.records().size(); ++i) {
    const RequestRecord& d = direct.records()[i];
    const RequestRecord& b = buffered.records()[i];
    EXPECT_EQ(b.id, d.id);
    EXPECT_EQ(b.first_token, d.first_token);
    EXPECT_EQ(b.finish, d.finish);
    EXPECT_EQ(b.preemptions, d.preemptions);
  }
  EXPECT_EQ(buffered.finished(), direct.finished());
  EXPECT_EQ(buffered.total_preemptions(), direct.total_preemptions());
  EXPECT_EQ(buffered.norm_latency().mean(), direct.norm_latency().mean());
  EXPECT_EQ(buffered.norm_latency().p95(), direct.norm_latency().p95());
  EXPECT_EQ(buffered.ttft().p95(), direct.ttft().p95());
  EXPECT_EQ(buffered.tpot().p95(), direct.tpot().p95());
}

// --- ExecModel ---

class ExecFixture : public ::testing::Test {
 protected:
  ExecFixture()
      : cluster_(hw::Cluster::paper_cluster()), exec_(cluster_, model::llama_13b()) {
    // Two-stage instance: A100 TP2 (30L) -> 3090 TP2 (10L).
    parallel::StageConfig s0;
    s0.devices = {0, 1};
    s0.layers = 30;
    parallel::StageConfig s1;
    s1.devices = {4, 5};
    s1.layers = 10;
    inst_.stages = {s0, s1};
  }
  hw::Cluster cluster_;
  ExecModel exec_;
  parallel::InstanceConfig inst_;
};

TEST_F(ExecFixture, StageDenseScalesWithLayers) {
  parallel::StageConfig s = inst_.stages[0];
  Seconds t30 = exec_.stage_dense_time(s, 64);
  s.layers = 15;
  Seconds t15 = exec_.stage_dense_time(s, 64);
  EXPECT_NEAR(t30 / t15, 2.0, 1e-9);
}

TEST_F(ExecFixture, IterationLatencyIsSumOfStages) {
  std::vector<std::int64_t> ctxs(16, 500);
  IterationTime it = exec_.iteration_time(inst_, ctxs, false);
  ASSERT_EQ(it.stages.size(), 2u);
  EXPECT_NEAR(it.latency(), it.stages[0].total() + it.stages[1].total(), 1e-12);
  EXPECT_DOUBLE_EQ(it.interval(), std::max(it.stages[0].total(), it.stages[1].total()));
}

TEST_F(ExecFixture, ModuleLatencyMetricMatchesPaperDefinition) {
  // §7.3: max per-stage module time x number of stages.
  std::vector<std::int64_t> ctxs(16, 500);
  IterationTime it = exec_.iteration_time(inst_, ctxs, false);
  double worst_dense = std::max(it.stages[0].dense, it.stages[1].dense);
  EXPECT_DOUBLE_EQ(it.mlp_module_latency(), worst_dense * 2);
}

TEST_F(ExecFixture, PrefillCostsMoreThanDecode) {
  std::vector<std::int64_t> lens(4, 512);
  Seconds prefill = exec_.iteration_time(inst_, lens, true).latency();
  Seconds decode = exec_.iteration_time(inst_, lens, false).latency();
  EXPECT_GT(prefill, 5 * decode);
}

TEST_F(ExecFixture, InterstageCommPositiveAcrossHosts) {
  Seconds t = exec_.interstage_comm(inst_.stages[0], inst_.stages[1], 64);
  EXPECT_GT(t, 20e-6);  // at least the LAN latency
}

TEST_F(ExecFixture, AttentionStageTimes) {
  std::vector<std::int64_t> ctxs(8, 1000);
  Seconds decode = exec_.stage_attention_decode(inst_.stages[0], ctxs, 40);
  EXPECT_GT(decode, 0);
  Seconds prefill = exec_.stage_attention_prefill(inst_.stages[0], ctxs, 40);
  EXPECT_GT(prefill, decode);  // quadratic beats linear at length 1000
}

TEST(ExecHelpers, KvBudgetSubtractsParamsAndReserve) {
  const hw::GpuSpec& gpu = hw::gpu_spec(hw::GpuType::kA100_80G);
  Bytes b0 = kv_budget(gpu, 0);
  Bytes b10 = kv_budget(gpu, 10 * GiB);
  EXPECT_EQ(b0 - b10, 10 * GiB);
  EXPECT_LT(b0, gpu.memory);
  // A device fully packed with params has no KV budget (never negative).
  EXPECT_EQ(kv_budget(gpu, gpu.memory), 0);
}

TEST(ExecHelpers, StageParamBytes) {
  const auto& m = model::llama_13b();
  parallel::StageConfig s;
  s.devices = {0, 1};
  s.layers = 20;
  Bytes mid = stage_param_bytes_per_device(m, s, false, false);
  EXPECT_EQ(mid, m.layer_param_bytes() * 20 / 2);
  Bytes first = stage_param_bytes_per_device(m, s, true, false);
  EXPECT_GT(first, mid);  // embedding share
}

// --- PipelineInstance ---

class InstanceFixture : public ::testing::Test {
 protected:
  InstanceFixture()
      : cluster_(hw::Cluster::paper_cluster()), exec_(cluster_, model::llama_13b()) {
    parallel::StageConfig s0;
    s0.devices = {0, 1, 2, 3};
    s0.layers = 40;
    cfg_.stages = {s0};
  }
  hw::Cluster cluster_;
  ExecModel exec_;
  parallel::InstanceConfig cfg_;
  MetricsCollector metrics_;
};

TEST_F(InstanceFixture, SingleRequestLifecycle) {
  PipelineInstance inst(exec_, cfg_, metrics_, InstanceOptions{}, 0);
  sim::Simulation sim;
  workload::Request r = make_req(0, 0.0, 128, 8);
  metrics_.on_arrival(r);
  inst.submit(sim, r);
  sim.run_until(60.0);
  EXPECT_EQ(metrics_.finished(), 1u);
  EXPECT_TRUE(inst.idle());
  const RequestRecord& rec = metrics_.record(0);
  EXPECT_GT(rec.ttft(), 0);
  EXPECT_GT(rec.finish, rec.first_token);
  // All memory released.
  EXPECT_EQ(inst.kv_used(), 0);
}

TEST_F(InstanceFixture, ManyRequestsAllFinish) {
  PipelineInstance inst(exec_, cfg_, metrics_, InstanceOptions{}, 0);
  sim::Simulation sim;
  for (int i = 0; i < 20; ++i) {
    workload::Request r = make_req(i, 0.05 * i, 100 + 10 * i, 5 + i);
    metrics_.on_arrival(r);
    sim.schedule_at(r.arrival, [&inst, &sim, r] { inst.submit(sim, r); });
  }
  sim.run_until(300.0);
  EXPECT_EQ(metrics_.finished(), 20u);
  EXPECT_EQ(inst.kv_used(), 0);
}

TEST_F(InstanceFixture, SingleTokenOutputFinishesAtPrefill) {
  PipelineInstance inst(exec_, cfg_, metrics_, InstanceOptions{}, 0);
  sim::Simulation sim;
  workload::Request r = make_req(0, 0.0, 64, 1);
  metrics_.on_arrival(r);
  inst.submit(sim, r);
  sim.run_until(30.0);
  const RequestRecord& rec = metrics_.record(0);
  EXPECT_EQ(metrics_.finished(), 1u);
  EXPECT_DOUBLE_EQ(rec.first_token, rec.finish);
}

TEST_F(InstanceFixture, PreemptionUnderTinyMemory) {
  // Stage on a single P100 (12 GB) with a full model copy: tiny KV space
  // forces LIFO preemption under concurrent long generations.
  parallel::InstanceConfig small;
  parallel::StageConfig s;
  s.devices = {8};  // one P100
  s.layers = 40;
  // Llama-13B won't fit on a P100; use a fake tighter config through
  // extra_reserved on an A100 instead.
  s.devices = {0};
  // The full 13B copy (~26 GB) + reserve (~6 GB) + this leaves ~3 GB of KV.
  s.extra_reserved = 47 * GiB;
  small.stages = {s};
  PipelineInstance inst(exec_, small, metrics_, InstanceOptions{}, 0);
  sim::Simulation sim;
  for (int i = 0; i < 6; ++i) {
    workload::Request r = make_req(i, 0.0, 900, 600);
    metrics_.on_arrival(r);
    inst.submit(sim, r);
  }
  sim.run_until(2000.0);
  EXPECT_EQ(metrics_.finished(), 6u);  // everything eventually completes
  EXPECT_GT(metrics_.total_preemptions(), 0);
}

TEST_F(InstanceFixture, UsableCapacityBoundedByTightestStage) {
  // Two stages with very different KV budgets: usable capacity must be
  // bound by the tighter stage's token capacity.
  parallel::InstanceConfig two;
  parallel::StageConfig s0;
  s0.devices = {0};
  s0.layers = 20;
  parallel::StageConfig s1;
  s1.devices = {8};  // P100: 12 GB
  s1.layers = 20;
  two.stages = {s0, s1};
  PipelineInstance inst(exec_, two, metrics_, InstanceOptions{}, 0);
  EXPECT_LT(inst.usable_kv_capacity(), inst.kv_capacity());
}

TEST_F(InstanceFixture, HasRoomReflectsCapacity) {
  PipelineInstance inst(exec_, cfg_, metrics_, InstanceOptions{}, 0);
  EXPECT_TRUE(inst.has_room(1000));
  EXPECT_FALSE(inst.has_room(100'000'000));
}

// --- run_trace plumbing ---

class EchoEngine : public Engine {
 public:
  std::string name() const override { return "echo"; }
  void submit(sim::Simulation& sim, const workload::Request& r) override {
    metrics_.on_arrival(r);
    metrics_.on_first_token(r.id, sim.now() + 0.1);
    metrics_.on_finish(r.id, sim.now() + 0.1 + 0.01 * static_cast<double>(r.output_len));
  }
  Bytes usable_kv_capacity() const override { return 42; }
};

// EchoEngine routed through a MetricsBatch instead of direct collector
// calls -- the two must produce byte-identical reports.
class BatchedEchoEngine : public Engine {
 public:
  std::string name() const override { return "echo"; }
  void submit(sim::Simulation& sim, const workload::Request& r) override {
    metrics_.on_arrival(r);
    batch_.on_first_token(r.id, sim.now() + 0.1);
    batch_.on_finish(r.id, sim.now() + 0.1 + 0.01 * static_cast<double>(r.output_len));
    batch_.flush();
  }
  Bytes usable_kv_capacity() const override { return 42; }

 private:
  MetricsBatch batch_{&metrics_};
};

TEST(RunTrace, BatchedReportByteIdenticalToStreaming) {
  std::vector<workload::Request> trace;
  for (int i = 0; i < 50; ++i) trace.push_back(make_req(i, 0.5 * i, 10, 20 + i % 40));
  RunOptions opts(60.0);
  opts.warmup = 3.0;
  opts.slo = SloSpec{/*ttft=*/0.15, /*tpot=*/0.0105};  // some requests miss TPOT
  EchoEngine direct;
  BatchedEchoEngine buffered;
  RunReport a = run_trace(direct, trace, opts);
  RunReport b = run_trace(buffered, trace, opts);
  EXPECT_GT(a.slo_attainment, 0.0);
  EXPECT_EQ(a.to_csv_row(), b.to_csv_row());
}

TEST(RunTrace, ReportAggregation) {
  EchoEngine eng;
  std::vector<workload::Request> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(make_req(i, 0.5 * i, 10, 100));
  RunReport rep = run_trace(eng, trace, RunOptions(60.0));
  EXPECT_EQ(rep.engine, "echo");
  EXPECT_EQ(rep.arrived, 10u);
  EXPECT_EQ(rep.finished, 10u);
  EXPECT_EQ(rep.usable_kv, 42);
  EXPECT_NEAR(rep.norm_latency_mean, 1.1 / 100.0, 1e-9);
  EXPECT_GT(rep.throughput, 0);
}

}  // namespace
}  // namespace hetis::engine
