// Experiment harness: RunReport CSV/JSON serialization (round trip, stable
// column order) and the declarative sweep runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

std::size_t count_cells(const std::string& line) {
  return static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1;
}

engine::RunReport distinctive_report() {
  engine::RunReport r;
  r.engine = "Hetis";
  r.arrived = 101;
  r.finished = 97;
  r.measured = 89;
  r.norm_latency_mean = 0.012345678901234567;
  r.norm_latency_p95 = 0.08765432109876543;
  r.ttft_p95 = 1.25;
  r.tpot_p95 = 0.0625;
  r.mlp_module_p95 = 0.001953125;
  r.attn_module_p95 = 0.0009765625;
  r.throughput = 12.75;
  r.preemptions = 7;
  r.usable_kv = 123456789012345;
  r.makespan = 47.125;
  r.drain_timeout_hit = true;
  r.slo_set = true;
  r.slo_ttft = 2.0;
  r.slo_tpot = 0.15;
  r.ttft_attainment = 0.9175257731958762;
  r.tpot_attainment = 0.8888888888888888;
  r.slo_attainment = 0.8762886597938144;
  r.goodput = 1.803278688524590;
  return r;
}

TEST(RunReportSerialization, CsvRoundTripsExactly) {
  engine::RunReport r = distinctive_report();
  engine::RunReport back = engine::RunReport::from_csv_row(r.to_csv_row());
  EXPECT_EQ(back.engine, r.engine);
  EXPECT_EQ(back.arrived, r.arrived);
  EXPECT_EQ(back.finished, r.finished);
  EXPECT_EQ(back.measured, r.measured);
  EXPECT_DOUBLE_EQ(back.norm_latency_mean, r.norm_latency_mean);
  EXPECT_DOUBLE_EQ(back.norm_latency_p95, r.norm_latency_p95);
  EXPECT_DOUBLE_EQ(back.ttft_p95, r.ttft_p95);
  EXPECT_DOUBLE_EQ(back.tpot_p95, r.tpot_p95);
  EXPECT_DOUBLE_EQ(back.mlp_module_p95, r.mlp_module_p95);
  EXPECT_DOUBLE_EQ(back.attn_module_p95, r.attn_module_p95);
  EXPECT_DOUBLE_EQ(back.throughput, r.throughput);
  EXPECT_EQ(back.preemptions, r.preemptions);
  EXPECT_EQ(back.usable_kv, r.usable_kv);
  EXPECT_DOUBLE_EQ(back.makespan, r.makespan);
  EXPECT_EQ(back.drain_timeout_hit, r.drain_timeout_hit);
  EXPECT_EQ(back.slo_set, r.slo_set);
  EXPECT_DOUBLE_EQ(back.slo_ttft, r.slo_ttft);
  EXPECT_DOUBLE_EQ(back.slo_tpot, r.slo_tpot);
  EXPECT_DOUBLE_EQ(back.ttft_attainment, r.ttft_attainment);
  EXPECT_DOUBLE_EQ(back.tpot_attainment, r.tpot_attainment);
  EXPECT_DOUBLE_EQ(back.slo_attainment, r.slo_attainment);
  EXPECT_DOUBLE_EQ(back.goodput, r.goodput);
  // And a default report round-trips too (all-zero edge case).
  engine::RunReport d;
  d.engine = "Fake";
  EXPECT_EQ(engine::RunReport::from_csv_row(d.to_csv_row()).to_csv_row(), d.to_csv_row());
}

TEST(RunReportSerialization, HeaderMatchesRowArity) {
  engine::RunReport r = distinctive_report();
  EXPECT_EQ(count_cells(engine::RunReport::csv_header()), count_cells(r.to_csv_row()));
  EXPECT_THROW(engine::RunReport::from_csv_row("Hetis,1,2"), std::invalid_argument);
}

TEST(RunReportSerialization, JsonCarriesEveryCsvColumn) {
  engine::RunReport r = distinctive_report();
  std::string json = r.to_json();
  std::istringstream header(engine::RunReport::csv_header());
  std::string column;
  while (std::getline(header, column, ',')) {
    EXPECT_NE(json.find("\"" + column + "\":"), std::string::npos) << column;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RunReportSerialization, JsonEscapesSpecialCharacters) {
  engine::RunReport r;
  r.engine = "He\"tis\\v2";
  std::string json = r.to_json();
  EXPECT_NE(json.find("\"engine\":\"He\\\"tis\\\\v2\""), std::string::npos) << json;
}

TEST(Sweep, RunsTheCrossProductInDeclaredOrder) {
  harness::ExperimentSpec spec;
  spec.name = "unit";
  spec.engines = {"hexgen", "splitwise"};
  spec.models = {"Llama-13B"};
  spec.workloads = {{workload::Dataset::kShareGPT, 2.0}};
  spec.horizon = 5.0;
  spec.seed = 17;
  spec.run = engine::RunOptions(900.0);

  int called = 0;
  auto rows = harness::run_sweep(spec, [&called](const harness::SweepRow&) { ++called; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(called, 2);
  EXPECT_EQ(rows[0].report.engine, "Hexgen");
  EXPECT_EQ(rows[1].report.engine, "Splitwise");
  for (const auto& row : rows) {
    EXPECT_EQ(row.experiment, "unit");
    EXPECT_EQ(row.cluster, "paper");
    EXPECT_EQ(row.model, "Llama-13B");
    EXPECT_EQ(row.dataset, workload::Dataset::kShareGPT);
    EXPECT_DOUBLE_EQ(row.rate, 2.0);
    EXPECT_GT(row.trace_requests, 0u);
    EXPECT_GT(row.report.finished, 0u);
    EXPECT_FALSE(row.report.drain_timeout_hit);
  }
  // Both engines served the identical trace.
  EXPECT_EQ(rows[0].trace_requests, rows[1].trace_requests);
}

TEST(Sweep, ReproducesADirectRegistryRun) {
  // The harness must add nothing on top of engine::make + run_trace: the
  // same (seed, horizon, rate, options) yields bit-identical reports.
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.models = {"Llama-13B"};
  spec.workloads = {{workload::Dataset::kHumanEval, 5.0}};
  spec.horizon = 6.0;
  spec.seed = 23;
  spec.run = engine::RunOptions(900.0);
  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);

  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kHumanEval;
  topts.rate = 5.0;
  topts.horizon = 6.0;
  topts.seed = 23;
  auto trace = workload::build_trace(topts);
  hw::Cluster cluster = harness::cluster_by_name("paper");
  auto eng = engine::make("hexgen", cluster, model::model_by_name("Llama-13B"));
  auto direct = engine::run_trace(*eng, trace, engine::RunOptions(900.0));

  EXPECT_EQ(rows[0].report.to_csv_row(), direct.to_csv_row());
}

TEST(Sweep, PerEngineOptionsAreRouted) {
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.models = {"Llama-13B"};
  spec.workloads = {{workload::Dataset::kShareGPT, 1.0}};
  spec.horizon = 4.0;
  spec.run = engine::RunOptions(900.0);
  engine::HexgenConfig cfg;
  cfg.max_batch = 4;
  spec.engine_options["hexgen"] = engine::EngineOptions(cfg);
  EXPECT_EQ(harness::run_sweep(spec).size(), 1u);

  // Mis-tagged options must fail loudly, not silently fall back to defaults.
  spec.engine_options["hexgen"] = engine::EngineOptions(engine::HetisConfig{});
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);

  // Option routing matches engine names case-insensitively, like the
  // registry: the mis-tagged options must still reach "Hexgen".
  spec.engines = {"Hexgen"};
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

TEST(Sweep, CsvAndJsonRowsAreAligned) {
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.models = {"Llama-13B"};
  spec.workloads = {{workload::Dataset::kShareGPT, 1.0}};
  spec.horizon = 4.0;
  spec.run = engine::RunOptions(900.0);
  auto rows = harness::run_sweep(spec);

  std::ostringstream csv;
  harness::write_csv(csv, rows);
  std::istringstream lines(csv.str());
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_FALSE(std::getline(lines, extra));
  EXPECT_EQ(header, harness::sweep_csv_header());
  EXPECT_EQ(count_cells(row), count_cells(header));
  // The report section of the row is the engine's own serialization.
  EXPECT_NE(row.find(rows[0].report.to_csv_row()), std::string::npos);

  std::ostringstream json;
  harness::write_json(json, rows);
  const std::string j = json.str();
  EXPECT_EQ(j.front(), '[');
  EXPECT_NE(j.find("\"experiment\":"), std::string::npos);
  EXPECT_NE(j.find("\"report\":{"), std::string::npos);
  EXPECT_NE(j.find(rows[0].report.to_json()), std::string::npos);
}

/// Mixed spec used by the invariance tests: classic rate points plus a
/// scenario point, two engines, small horizons.
harness::ExperimentSpec invariance_spec() {
  harness::ExperimentSpec spec;
  spec.name = "invariance";
  spec.engines = {"hexgen", "splitwise"};
  spec.models = {"Llama-13B"};
  spec.horizon = 4.0;
  spec.seed = 29;
  spec.run = engine::RunOptions(900.0);
  spec.add_rates(workload::Dataset::kShareGPT, {2.0, 4.0});
  spec.add_rates(workload::Dataset::kHumanEval, {6.0});
  spec.add_scenario(
      workload::scenario_preset(workload::Scenario::kBursty, 2.0, spec.horizon, spec.seed));
  return spec;
}

std::string sweep_csv_with_jobs(int jobs) {
  harness::ExperimentSpec spec = invariance_spec();
  spec.jobs = jobs;
  std::ostringstream csv;
  harness::write_csv(csv, harness::run_sweep(spec));
  return csv.str();
}

TEST(ParallelSweep, ThreadCountInvariantByteIdenticalCsv) {
  // Acceptance: the same spec with 1, 2 and 8 jobs (and hardware
  // concurrency) produces byte-identical CSV output.
  const std::string serial = sweep_csv_with_jobs(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(sweep_csv_with_jobs(2), serial);
  EXPECT_EQ(sweep_csv_with_jobs(8), serial);
  EXPECT_EQ(sweep_csv_with_jobs(0), serial);  // 0 = hardware concurrency
}

TEST(ParallelSweep, RowCallbackFiresOncePerCellAndDrainsAreClean) {
  harness::ExperimentSpec spec = invariance_spec();
  spec.jobs = 4;
  std::atomic<int> called{0};
  auto rows = harness::run_sweep(spec, [&called](const harness::SweepRow&) { ++called; });
  ASSERT_EQ(rows.size(), 8u);  // 4 points x 2 engines
  EXPECT_EQ(called.load(), 8);
  for (const auto& row : rows) {
    // Clean drains must report an empty warning -- the message may only be
    // assembled when truncation actually occurred.
    EXPECT_FALSE(row.report.drain_timeout_hit);
    EXPECT_EQ(row.report.warning(), "");
  }
}

TEST(ParallelSweep, RowOrderContractHoldsUnderParallelism) {
  harness::ExperimentSpec spec = invariance_spec();
  spec.jobs = 8;
  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 8u);
  for (std::size_t pi = 0; pi < 4; ++pi) {
    EXPECT_EQ(rows[2 * pi].report.engine, "Hexgen");
    EXPECT_EQ(rows[2 * pi + 1].report.engine, "Splitwise");
    // Both engines of a point saw the identical trace.
    EXPECT_EQ(rows[2 * pi].trace_requests, rows[2 * pi + 1].trace_requests);
  }
  EXPECT_EQ(rows[6].scenario, "bursty");
  EXPECT_EQ(rows[0].scenario, "poisson");
}

TEST(ParallelSweep, ObserverRequiresSerialExecution) {
  class NullObserver : public engine::RunObserver {};
  NullObserver obs;
  harness::ExperimentSpec spec = invariance_spec();
  spec.run.observer = &obs;
  spec.jobs = 2;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
  spec.jobs = 1;  // serial observer runs stay supported
  EXPECT_EQ(harness::run_sweep(spec).size(), 8u);
}

TEST(ParallelSweep, CellExceptionsPropagateFromWorkers) {
  harness::ExperimentSpec spec = invariance_spec();
  spec.models = {"GPT-5"};  // unknown model throws inside the cells
  spec.jobs = 4;
  EXPECT_THROW(harness::run_sweep(spec), std::out_of_range);
  spec.models = {"Llama-13B"};
  spec.jobs = -1;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

TEST(Sweep, RecordedTracesReplayByteIdentically) {
  // Record a scenario trace, replay it through add_trace_file, and the
  // rows must match serving the generated trace directly.
  workload::ScenarioSpec scen =
      workload::scenario_preset(workload::Scenario::kBursty, 3.0, 5.0, 37);
  auto trace = workload::generate_scenario(scen);
  ASSERT_FALSE(trace.empty());
  const std::string path = ::testing::TempDir() + "harness_replay_trace.csv";
  workload::save_trace(path, trace);

  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.models = {"Llama-13B"};
  spec.horizon = 5.0;
  spec.run = engine::RunOptions(900.0);
  spec.add_trace_file(path, /*rate=*/3.0);
  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].scenario, "trace");
  EXPECT_EQ(rows[0].trace_requests, trace.size());

  hw::Cluster cluster = harness::cluster_by_name("paper");
  auto eng = engine::make("hexgen", cluster, model::model_by_name("Llama-13B"));
  auto direct = engine::run_trace(*eng, trace, engine::RunOptions(900.0));
  EXPECT_EQ(rows[0].report.to_csv_row(), direct.to_csv_row());

  // A missing file fails loudly before any cell runs.
  spec.workloads.clear();
  spec.add_trace_file("/nonexistent/trace.csv");
  EXPECT_THROW(harness::run_sweep(spec), std::runtime_error);
}

TEST(Sweep, UnknownClusterModelOrEngineFailLoudly) {
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.workloads = {{workload::Dataset::kShareGPT, 1.0}};
  spec.horizon = 2.0;
  spec.cluster = "warehouse";
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
  spec.cluster = "paper";
  spec.models = {"GPT-5"};
  EXPECT_THROW(harness::run_sweep(spec), std::out_of_range);
  spec.models = {"Llama-13B"};
  spec.engines = {"vllm"};
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace hetis
