// Behavioural tests for the pipelined iteration-issue model, the Splitwise
// migration/reservation protocol, and the buffer-reuse index builders.
#include <gtest/gtest.h>

#include "baselines/splitwise.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/instance.h"
#include "hetis/hetis_engine.h"
#include "kvcache/index_builder.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace hetis {
namespace {

workload::Request make_req(workload::RequestId id, Seconds arrival, std::int64_t prompt,
                           std::int64_t output) {
  workload::Request r;
  r.id = id;
  r.arrival = arrival;
  r.prompt_len = prompt;
  r.output_len = output;
  return r;
}

class PipelinedExec : public ::testing::Test {
 protected:
  PipelinedExec()
      : cluster_(hw::Cluster::paper_cluster()), exec_(cluster_, model::llama_13b()) {
    parallel::StageConfig s0;
    s0.devices = {0, 1};
    s0.layers = 20;
    parallel::StageConfig s1;
    s1.devices = {4, 5};
    s1.layers = 20;
    two_stage_.stages = {s0, s1};

    parallel::StageConfig merged;
    merged.devices = {0, 1};
    merged.layers = 40;
    one_stage_.stages = {merged};
  }
  hw::Cluster cluster_;
  engine::ExecModel exec_;
  parallel::InstanceConfig two_stage_;
  parallel::InstanceConfig one_stage_;
};

TEST_F(PipelinedExec, ConsecutivePrefillsOverlapAcrossStages) {
  // Two back-to-back prompts through a 2-stage pipeline should finish in
  // less than 2x one prompt's pipeline latency (stage overlap).
  engine::MetricsCollector metrics;
  engine::PipelineInstance inst(exec_, two_stage_, metrics, engine::InstanceOptions{}, 0);
  sim::Simulation sim;
  // output_len 1: requests finish at prefill (isolates prefill timing).
  // Prompts exceed the 8192-token budget jointly, forcing two iterations.
  for (int i = 0; i < 2; ++i) {
    workload::Request r = make_req(i, 0.0, 6000, 1);
    metrics.on_arrival(r);
    inst.submit(sim, r);
  }
  sim.run_until(120.0);
  ASSERT_EQ(metrics.finished(), 2u);
  Seconds t0 = metrics.record(0).finish;
  Seconds t1 = metrics.record(1).finish;
  std::vector<std::int64_t> lens{6000};
  engine::IterationTime it = exec_.iteration_time(two_stage_, lens, true);
  // Second prompt completes one *interval* (slowest stage), not one full
  // latency, after the first.
  EXPECT_LT(t1 - t0, it.latency() * 0.95);
  EXPECT_GT(t1 - t0, it.interval() * 0.5);
}

TEST_F(PipelinedExec, DecodeIterationsSerialize) {
  // A single running request's tokens are strictly sequential: finish time
  // >= prefill + output * decode latency.
  engine::MetricsCollector metrics;
  engine::PipelineInstance inst(exec_, two_stage_, metrics, engine::InstanceOptions{}, 0);
  sim::Simulation sim;
  workload::Request r = make_req(0, 0.0, 100, 20);
  metrics.on_arrival(r);
  inst.submit(sim, r);
  sim.run_until(120.0);
  ASSERT_EQ(metrics.finished(), 1u);
  const auto& rec = metrics.record(0);
  std::vector<std::int64_t> ctx{101};
  Seconds decode_latency = exec_.iteration_time(two_stage_, ctx, false).latency();
  EXPECT_GE(rec.finish - rec.first_token, 19 * decode_latency * 0.9);
}

TEST_F(PipelinedExec, SingleStageStillCorrect) {
  engine::MetricsCollector metrics;
  engine::PipelineInstance inst(exec_, one_stage_, metrics, engine::InstanceOptions{}, 0);
  sim::Simulation sim;
  for (int i = 0; i < 8; ++i) {
    workload::Request r = make_req(i, 0.1 * i, 200, 10);
    metrics.on_arrival(r);
    sim.schedule_at(r.arrival, [&inst, &sim, r] { inst.submit(sim, r); });
  }
  sim.run_until(120.0);
  EXPECT_EQ(metrics.finished(), 8u);
  EXPECT_EQ(inst.kv_used(), 0);
  EXPECT_TRUE(inst.idle());
}

TEST_F(PipelinedExec, MemoryConsistentUnderPipelinedChurn) {
  engine::MetricsCollector metrics;
  engine::PipelineInstance inst(exec_, two_stage_, metrics, engine::InstanceOptions{}, 0);
  sim::Simulation sim;
  for (int i = 0; i < 40; ++i) {
    workload::Request r = make_req(i, 0.05 * i, 150 + (i % 11) * 40, 4 + i % 17);
    metrics.on_arrival(r);
    sim.schedule_at(r.arrival, [&inst, &sim, r] { inst.submit(sim, r); });
  }
  sim.run_until(600.0);
  EXPECT_EQ(metrics.finished(), 40u);
  EXPECT_EQ(inst.kv_used(), 0);  // every byte released exactly once
}

// --- Degradation overlay in the cost model ---

TEST(ExecDegradation, StageTimesScaleByTheSlowestMember) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  engine::ExecModel exec(cluster, model::llama_13b());
  parallel::StageConfig stage;
  stage.devices = {0, 1};  // A100 TP2
  stage.layers = 40;
  const std::vector<std::int64_t> ctxs{400, 700};

  const Seconds dense = exec.stage_dense_time(stage, 256);
  const Seconds attn = exec.stage_attention_decode(stage, ctxs, 40);
  EXPECT_DOUBLE_EQ(exec.stage_speed(stage), 1.0);

  // A TP group advances in lock-step: the slowest member gates the stage,
  // so degrading ONE device halves-at-0.5 the whole stage.
  cluster.set_device_speed(1, 0.5);
  EXPECT_DOUBLE_EQ(exec.stage_speed(stage), 0.5);
  EXPECT_DOUBLE_EQ(exec.stage_dense_time(stage, 256), dense / 0.5);
  EXPECT_DOUBLE_EQ(exec.stage_attention_decode(stage, ctxs, 40), attn / 0.5);
  // Degrading the OTHER member further is what now gates it.
  cluster.set_device_speed(0, 0.25);
  EXPECT_DOUBLE_EQ(exec.stage_dense_time(stage, 256), dense / 0.25);
  // Restoring health restores the exact original times (byte-identity).
  cluster.set_device_speed(0, 1.0);
  cluster.set_device_speed(1, 1.0);
  EXPECT_DOUBLE_EQ(exec.stage_dense_time(stage, 256), dense);
  EXPECT_DOUBLE_EQ(exec.stage_attention_decode(stage, ctxs, 40), attn);
}

TEST(ExecDegradation, LinkScaleSlowsTransfers) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  engine::ExecModel exec(cluster, model::llama_13b());
  // Inter-host transfer A100 (0) -> 3090 (4).
  const Seconds healthy = exec.comm().p2p(0, 4, 64 * MiB);
  cluster.set_device_link_scale(4, 0.25);
  const Seconds flaky = exec.comm().p2p(0, 4, 64 * MiB);
  EXPECT_GT(flaky, healthy);
  // The bandwidth term quadruples; latency is untouched, so the total is
  // strictly less than 4x but well above 2x for a transfer this large.
  EXPECT_LT(flaky, 4.0 * healthy + 1e-9);
  EXPECT_GT(flaky, 2.0 * healthy);
  cluster.set_device_link_scale(4, 1.0);
  EXPECT_DOUBLE_EQ(exec.comm().p2p(0, 4, 64 * MiB), healthy);
}

// --- Splitwise reservation protocol ---

TEST(SplitwiseProtocol, ReserveIncomingHoldsSpace) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  engine::ExecModel exec(cluster, model::llama_13b());
  parallel::InstanceConfig cfg;
  parallel::StageConfig s;
  s.devices = {0};
  s.layers = 40;
  cfg.stages = {s};
  engine::MetricsCollector metrics;
  engine::InstanceOptions opts;
  opts.decode_only = true;
  engine::PipelineInstance inst(exec, cfg, metrics, opts, 0);

  Bytes before = inst.kv_used();
  ASSERT_TRUE(inst.reserve_incoming(500));
  EXPECT_GT(inst.kv_used(), before);

  sim::Simulation sim;
  engine::LiveRequest lr;
  lr.req = make_req(1, 0.0, 499, 5);
  lr.prefilled = true;
  lr.generated = 1;
  metrics.on_arrival(lr.req);
  inst.submit_reserved(sim, lr);  // converts the reservation, no extra memory
  sim.run_until(60.0);
  EXPECT_EQ(metrics.finished(), 1u);
  EXPECT_EQ(inst.kv_used(), 0);
}

TEST(SplitwiseProtocol, ReserveFailsWhenFull) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  engine::ExecModel exec(cluster, model::llama_13b());
  parallel::InstanceConfig cfg;
  parallel::StageConfig s;
  s.devices = {8};  // one P100: tiny budget after params... use A100 + reserve
  s.devices = {0};
  s.extra_reserved = 50 * GiB;
  s.layers = 40;
  cfg.stages = {s};
  engine::MetricsCollector metrics;
  engine::PipelineInstance inst(exec, cfg, metrics, engine::InstanceOptions{}, 0);
  EXPECT_FALSE(inst.reserve_incoming(1'000'000));
}

TEST(SplitwiseProtocol, MigrationsCountedUnderBorrowedStage) {
  // Llama-70B: the decode pipeline starts with a borrowed A100 stage; the
  // 3090/P100 stages must still receive their layer shares over the LAN.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  baselines::SplitwiseEngine eng(cluster, model::llama_70b());
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = 0.5;
  topts.horizon = 10.0;
  topts.seed = 9;
  auto trace = workload::build_trace(topts);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(900.0));
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(eng.migrated_bytes(), 0);
}

// --- Buffer-reuse index builders ---

TEST(IndexBuilderReuse, RepeatedBuildsMatchFresh) {
  kvcache::BlockAllocator ta(64ll * MiB, 16), ha(64ll * MiB, 16);
  kvcache::TokenBlockTable tt(ta, 16);
  kvcache::HeadBlockTable ht(ha, 16);
  std::vector<kvcache::GatherItem> items;
  for (int s = 0; s < 24; ++s) {
    std::int64_t len = 10 + s * 7;
    tt.add_sequence(s, len);
    ht.add_groups(s, {0, 1, 2}, len);
    for (int g : {0, 1, 2}) items.push_back(kvcache::GatherItem{s, g, len});
  }
  ThreadPool pool(4);
  kvcache::GatherPlan reuse_token, reuse_serial, reuse_parallel;
  for (int round = 0; round < 3; ++round) {
    kvcache::build_token_index_into(tt, items, reuse_token);
    kvcache::build_head_index_serial_into(ht, items, reuse_serial);
    kvcache::build_head_index_parallel_into(ht, items, pool, reuse_parallel);
    kvcache::GatherPlan fresh = kvcache::build_head_index_serial(ht, items);
    EXPECT_EQ(reuse_serial.slots, fresh.slots);
    EXPECT_EQ(reuse_parallel.slots, fresh.slots);
    EXPECT_EQ(reuse_serial.item_offsets, fresh.item_offsets);
    // Token-wise ignores the group: the three group rows of one sequence
    // share the same slots.
    EXPECT_EQ(reuse_token.slots[reuse_token.item_offsets[0]],
              reuse_token.slots[reuse_token.item_offsets[1]]);
  }
}

TEST(IndexBuilderReuse, ShrinkingItemListsReuseSafely) {
  kvcache::BlockAllocator ha(64ll * MiB, 16);
  kvcache::HeadBlockTable ht(ha, 16);
  ht.add_groups(1, {0, 1}, 100);
  std::vector<kvcache::GatherItem> big{{1, 0, 100}, {1, 1, 100}};
  std::vector<kvcache::GatherItem> small{{1, 0, 40}};
  kvcache::GatherPlan plan;
  kvcache::build_head_index_serial_into(ht, big, plan);
  EXPECT_EQ(plan.slots.size(), 200u);
  kvcache::build_head_index_serial_into(ht, small, plan);
  EXPECT_EQ(plan.slots.size(), 40u);
  EXPECT_EQ(plan.num_items(), 1u);
}

// --- Hetis suspension path ---

TEST(HetisSuspension, OffloadedRequestsResumeAfterTransfer) {
  // Fixed plan with workers on another host forces post-prefill KV
  // shipping for offloaded heads; everything must still drain.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  parallel::StageConfig s;
  s.devices = {0, 1};
  s.layers = model::llama_13b().layers;
  inst.stages = {s};
  inst.attention_workers = {8, 9, 10, 11};
  plan.instances.push_back(inst);
  core::HetisOptions opts;
  core::HetisEngine eng(cluster, model::llama_13b(), opts, plan);
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kLongBench;  // big caches -> offload
  topts.rate = 2.0;
  topts.horizon = 15.0;
  topts.seed = 4;
  auto trace = workload::build_trace(topts);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(1800.0));
  EXPECT_EQ(rep.finished, trace.size());
}

}  // namespace
}  // namespace hetis
