// Unit tests: model descriptors and per-module work calculators.
#include <gtest/gtest.h>

#include "model/llm.h"
#include "model/modules.h"

namespace hetis::model {
namespace {

TEST(ModelSpec, ParamCountsMatchPublishedSizes) {
  // Within a few percent of the nominal parameter counts.
  EXPECT_NEAR(opt_2_7b().param_count() / 1e9, 2.7, 0.15);
  EXPECT_NEAR(opt_13b().param_count() / 1e9, 13.0, 0.7);
  EXPECT_NEAR(opt_30b().param_count() / 1e9, 30.0, 1.5);
  EXPECT_NEAR(llama_13b().param_count() / 1e9, 13.0, 0.7);
  EXPECT_NEAR(llama2_7b().param_count() / 1e9, 6.7, 0.5);
  EXPECT_NEAR(llama_70b().param_count() / 1e9, 69.0, 3.0);
}

TEST(ModelSpec, GqaConfiguration) {
  EXPECT_TRUE(llama_70b().is_gqa());
  EXPECT_EQ(llama_70b().gqa_ratio(), 8);
  EXPECT_FALSE(llama_13b().is_gqa());
  EXPECT_EQ(llama_13b().gqa_ratio(), 1);
  EXPECT_EQ(opt_30b().gqa_ratio(), 1);
}

TEST(ModelSpec, HeadDim) {
  EXPECT_EQ(llama_70b().head_dim(), 128);
  EXPECT_EQ(opt_2_7b().head_dim(), 80);
  EXPECT_EQ(llama_13b().head_dim(), 128);
}

TEST(ModelSpec, KvBytesPerToken) {
  // OPT-2.7B MHA: 2 * hidden * 2B per layer.
  EXPECT_EQ(opt_2_7b().kv_bytes_per_token_layer(), 2 * 2560 * 2);
  // Llama-70B GQA: kv_dim = 8 * 128 = 1024, so 2 * 1024 * 2B per layer.
  EXPECT_EQ(llama_70b().kv_bytes_per_token_layer(), 2 * 1024 * 2);
  EXPECT_EQ(llama_70b().kv_bytes_per_token(),
            llama_70b().kv_bytes_per_token_layer() * 80);
}

TEST(ModelSpec, GqaShrinksKvCache) {
  // The paper notes GQA models consume far less KV per token.
  double mha_like = 2.0 * llama_70b().hidden * 2;  // hypothetical MHA 70B
  EXPECT_LT(llama_70b().kv_bytes_per_token_layer(), mha_like / 7.9);
}

TEST(ModelSpec, LookupByName) {
  EXPECT_EQ(model_by_name("Llama-70B").heads, 64);
  EXPECT_EQ(model_by_name("OPT-30B").layers, 48);
  EXPECT_THROW(model_by_name("GPT-5"), std::out_of_range);
}

TEST(ModelSpec, KvBytesPerHeadShare) {
  const ModelSpec& m = llama_70b();
  // Head-wise accounting splits per-token KV across the 64 query heads.
  EXPECT_DOUBLE_EQ(m.kv_bytes_per_token_layer_per_head() * m.heads,
                   static_cast<double>(m.kv_bytes_per_token_layer()));
}

// --- Work calculators ---

TEST(Work, QkvFlopsFormula) {
  const ModelSpec& m = opt_2_7b();  // MHA: out dim = 3h
  Work w = qkv_work(m, 10);
  EXPECT_DOUBLE_EQ(w.flops, 2.0 * 10 * 2560 * (3 * 2560));
  EXPECT_EQ(w.weight_bytes, static_cast<Bytes>(2560) * 3 * 2560 * 2);
}

TEST(Work, QkvGqaShrinksKvProjection) {
  const ModelSpec& m = llama_70b();
  Work w = qkv_work(m, 1);
  // out dim = h + 2*kv_dim = 8192 + 2048.
  EXPECT_DOUBLE_EQ(w.flops, 2.0 * 8192 * (8192 + 2048));
}

TEST(Work, ShardDividesDenseWork) {
  const ModelSpec& m = llama_13b();
  Work full = mlp_work(m, 64, 1);
  Work half = mlp_work(m, 64, 2);
  EXPECT_NEAR(half.flops, full.flops / 2, 1.0);
  EXPECT_NEAR(static_cast<double>(half.weight_bytes),
              static_cast<double>(full.weight_bytes) / 2, 2.0);
}

TEST(Work, GatedMlpHasThreeMatrices) {
  Work gated = mlp_work(llama_13b(), 1, 1);
  EXPECT_EQ(gated.kernels, 3);
  Work standard = mlp_work(opt_13b(), 1, 1);
  EXPECT_EQ(standard.kernels, 2);
}

TEST(Work, DenseLayerIsSumOfModules) {
  const ModelSpec& m = opt_30b();
  Work total = dense_layer_work(m, 32, 2);
  Work sum = qkv_work(m, 32, 2) + out_proj_work(m, 32, 2) + mlp_work(m, 32, 2);
  EXPECT_DOUBLE_EQ(total.flops, sum.flops);
  EXPECT_EQ(total.weight_bytes, sum.weight_bytes);
}

TEST(Work, DenseLayerApproximatesTwoParamFlopsPerToken) {
  // Rule of thumb: dense flops/token ~= 2 * params (per layer, layer share).
  const ModelSpec& m = opt_2_7b();
  Work w = dense_layer_work(m, 1);
  double per_layer_params = static_cast<double>(m.layer_param_bytes()) / m.dtype_bytes;
  EXPECT_NEAR(w.flops / (2.0 * per_layer_params), 1.0, 0.05);
}

TEST(Work, DecodeAttentionLinearInContext) {
  const ModelSpec& m = opt_30b();
  Work a = decode_attention_work(m, 100, 8);
  Work b = decode_attention_work(m, 200, 8);
  EXPECT_DOUBLE_EQ(b.flops, 2 * a.flops);
  EXPECT_EQ(b.kv_bytes, 2 * a.kv_bytes);
}

TEST(Work, DecodeAttentionLinearInHeads) {
  const ModelSpec& m = opt_30b();
  Work a = decode_attention_work(m, 128, 4);
  Work b = decode_attention_work(m, 128, 8);
  EXPECT_DOUBLE_EQ(b.flops, 2 * a.flops);
  EXPECT_EQ(b.kv_bytes, 2 * a.kv_bytes);
}

TEST(Work, GqaSharesKvAcrossQueryHeads) {
  const ModelSpec& m = llama_70b();  // r = 8
  Work w = decode_attention_work(m, 1000, 8);
  // 8 query heads touch 1 KV head's cache: 2 * 1000 * 128 * 2B.
  EXPECT_EQ(w.kv_bytes, static_cast<Bytes>(2) * 1000 * 128 * 2);
}

TEST(Work, PrefillAttentionQuadratic) {
  const ModelSpec& m = llama_13b();
  Work a = prefill_attention_work(m, 100, m.heads);
  Work b = prefill_attention_work(m, 200, m.heads);
  EXPECT_DOUBLE_EQ(b.flops, 4 * a.flops);
}

TEST(Work, BatchSumsMatchLoop) {
  const ModelSpec& m = opt_13b();
  std::vector<std::int64_t> ctxs{100, 250, 640};
  Work batch = decode_attention_batch(m, ctxs, 4);
  double flops = 0;
  for (auto c : ctxs) flops += decode_attention_work(m, c, 4).flops;
  EXPECT_DOUBLE_EQ(batch.flops, flops);
  EXPECT_EQ(batch.kernels, 1);  // batched kernel launches once
}

TEST(Work, ModuleNames) {
  EXPECT_STREQ(to_string(Module::kMlp), "MLP");
  EXPECT_STREQ(to_string(Module::kAttention), "Attention");
  EXPECT_STREQ(to_string(Phase::kPrefill), "prefill");
}

// Parameterized: invariants that must hold for every preset model.
class AllModels : public ::testing::TestWithParam<const ModelSpec*> {};

TEST_P(AllModels, GeometryConsistent) {
  const ModelSpec& m = *GetParam();
  EXPECT_EQ(m.hidden % m.heads, 0) << m.name;
  EXPECT_EQ(m.heads % m.kv_heads, 0) << m.name;
  EXPECT_GT(m.layers, 0);
  EXPECT_GT(m.param_bytes(), 0);
}

TEST_P(AllModels, LayerParamsDominateEmbeddings) {
  const ModelSpec& m = *GetParam();
  EXPECT_GT(m.layer_param_bytes() * m.layers, m.param_bytes() / 2) << m.name;
}

TEST_P(AllModels, DecodeWorkNonNegative) {
  const ModelSpec& m = *GetParam();
  for (std::int64_t ctx : {1, 100, 10000}) {
    Work w = decode_attention_work(m, ctx, m.heads);
    EXPECT_GT(w.flops, 0) << m.name;
    EXPECT_GT(w.kv_bytes, 0) << m.name;
  }
}

TEST_P(AllModels, KvPerTokenConsistent) {
  const ModelSpec& m = *GetParam();
  EXPECT_EQ(m.kv_bytes_per_token(), m.kv_bytes_per_token_layer() * m.layers) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Presets, AllModels,
                         ::testing::Values(&opt_2_7b(), &opt_13b(), &opt_30b(), &llama_13b(),
                                           &llama2_7b(), &llama_70b()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace hetis::model
