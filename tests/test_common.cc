// Unit tests: common utilities (units, logging, rng, stats, thread pool).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace hetis {
namespace {

// --- units ---

TEST(Units, ByteConstants) {
  EXPECT_EQ(KiB, 1024);
  EXPECT_EQ(MiB, 1024 * 1024);
  EXPECT_EQ(GiB, 1024ll * 1024 * 1024);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(micros(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(millis(1.0), 1e-3);
  EXPECT_DOUBLE_EQ(to_millis(0.5), 500.0);
  EXPECT_DOUBLE_EQ(to_micros(1e-3), 1000.0);
}

TEST(Units, SizeConversions) {
  EXPECT_DOUBLE_EQ(to_gb(2'000'000'000), 2.0);
  EXPECT_DOUBLE_EQ(to_gib(2 * GiB), 2.0);
}

// --- log ---

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Log, SetAndGet) {
  LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

// The level is an atomic: concurrent set/get from sweep workers must be
// race-free (this test runs under the sanitizer lane, which would flag a
// data race on the old plain LogLevel) and every read must return a value
// some thread actually wrote.
TEST(Log, ThreadSafeSetAndGet) {
  const LogLevel before = log_level();
  std::atomic<bool> bad{false};
  ThreadPool pool(4);
  pool.run_tasks(64, [&bad](std::size_t i) {
    const LogLevel mine = (i % 2) ? LogLevel::kDebug : LogLevel::kOff;
    set_log_level(mine);
    const LogLevel seen = log_level();
    if (seen != LogLevel::kDebug && seen != LogLevel::kOff) bad = true;
  });
  EXPECT_FALSE(bad);
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

// --- rng ---

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ForkDeterministic) {
  Rng p1(42), p2(42);
  Rng a = p1.fork(7), b = p2.fork(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(1) && seen.count(3));
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalTruncBounds) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    double v = rng.lognormal_trunc(std::log(100.0), 1.0, 10.0, 500.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 500.0);
  }
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(17);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedIndexErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(0.0));
  }
}

// --- stats ---

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Summary, PercentileInterpolation) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.p95(), 95.05, 1e-9);
}

TEST(Summary, SingleValuePercentiles) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
  EXPECT_DOUBLE_EQ(s.p95(), 7.0);
}

TEST(Summary, MergeCombines) {
  Summary a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Summary, StddevMatchesFormula) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Welford, MatchesSummary) {
  Summary s;
  Welford w;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    double v = rng.normal(10.0, 2.0);
    s.add(v);
    w.add(v);
  }
  EXPECT_NEAR(w.mean(), s.mean(), 1e-9);
  EXPECT_NEAR(w.stddev(), s.stddev(), 1e-9);
}

TEST(Welford, EmptySafe) {
  Welford w;
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamped into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(15.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);  // overflow bucket
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- thread pool ---

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ChunkedSeesWholeRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunked(10, 110, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, SubmitReturnsFuture) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 42; });
  f.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 64, [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, RunTasksCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(137);
  pool.run_tasks(137, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  int calls = 0;
  pool.run_tasks(0, [&](std::size_t) { ++calls; });  // empty is a no-op
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RunTasksRethrowsTheLowestIndexException) {
  // Deterministic regardless of completion order: index 2's exception wins
  // over index 9's even though 9 may finish first.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      pool.run_tasks(10, [](std::size_t i) {
        if (i == 2) throw std::runtime_error("low");
        if (i == 9) throw std::runtime_error("high");
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
}

TEST(ThreadPool, RunTasksWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.run_tasks(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace hetis
