// Unit + behavioural tests: the full Hetis engine.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis::core {
namespace {

std::vector<workload::Request> small_trace(double rate, double horizon, std::uint64_t seed = 3,
                                           workload::Dataset ds = workload::Dataset::kShareGPT) {
  workload::TraceOptions opts;
  opts.dataset = ds;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = seed;
  return workload::build_trace(opts);
}

HetisOptions default_opts() {
  HetisOptions opts;
  opts.workload.decode_batch = 64;
  return opts;
}

TEST(HetisEngine, ServesTraceToCompletion) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisEngine eng(cluster, model::llama_13b(), default_opts());
  auto trace = small_trace(3.0, 15.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(rep.norm_latency_mean, 0);
}

// Regression: a rescue redispatch could suspend a request that was still
// mid-prefill.  If that request then finished at prefill (output_len <= 1),
// its suspended_until_ entry was orphaned; once the decode set drained the
// pump rescheduled itself at the orphan's (past, clamped-to-now) wake time
// every event, and the simulation never terminated.  This trace drives the
// engine through 16 rescues and wedged it before the fix -- ctest's timeout
// is the failure detector should the leak ever come back.
TEST(HetisEngine, RescueOfPrefillOnlyRequestTerminates) {
  const double rate = 2.0;
  const std::size_t n = 8500;
  const Seconds horizon =
      (static_cast<double>(n) + 6.0 * std::sqrt(static_cast<double>(n))) / rate;
  workload::ScenarioSpec spec =
      workload::scenario_preset(workload::Scenario::kPoisson, rate, horizon, /*seed=*/10);
  std::vector<workload::Request> trace = workload::generate_scenario(spec);
  ASSERT_GE(trace.size(), n);
  trace.resize(n);
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisOptions opts = default_opts();
  opts.workload.mean_context = 512;
  HetisEngine eng(cluster, model::llama_13b(), opts);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(600.0));
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(eng.rescue_redispatches(), 0);
}

TEST(HetisEngine, PlanAssignsP100sAsAttentionWorkers) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisEngine eng(cluster, model::llama_70b(), default_opts());
  int workers = 0;
  for (const auto& inst : eng.plan().instances) {
    for (int dev : inst.attention_workers) {
      EXPECT_EQ(cluster.device(dev).type, hw::GpuType::kP100);
      ++workers;
    }
  }
  EXPECT_EQ(workers, 4);
}

TEST(HetisEngine, GqaModelServed) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisEngine eng(cluster, model::llama_70b(), default_opts());
  auto trace = small_trace(0.5, 20.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
}

TEST(HetisEngine, UsableKvIsFullBudget) {
  // Head-wise placement makes every pool byte usable; Hetis's capacity
  // must dominate both baselines' (Fig. 11).
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisEngine eng(cluster, model::llama_13b(), default_opts());
  EXPECT_GT(to_gib(eng.usable_kv_capacity()), 300.0);
}

TEST(HetisEngine, ProfileErrorDegradesGracefully) {
  // Fig. 16(b): +-20% coefficient error must not break serving.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  auto trace = small_trace(3.0, 12.0);
  HetisOptions exact = default_opts();
  HetisOptions erred = default_opts();
  erred.profile_error = 0.20;
  HetisEngine e1(cluster, model::llama_13b(), exact);
  HetisEngine e2(cluster, model::llama_13b(), erred);
  engine::RunReport r1 = engine::run_trace(e1, trace);
  engine::RunReport r2 = engine::run_trace(e2, trace);
  EXPECT_EQ(r2.finished, trace.size());
  // Paper: only up to ~6.9% latency degradation; allow a loose band.
  EXPECT_LT(r2.norm_latency_mean, r1.norm_latency_mean * 1.4);
}

TEST(HetisEngine, RedispatchAblationStillCompletes) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisOptions no_rd = default_opts();
  no_rd.enable_redispatch = false;
  HetisEngine eng(cluster, model::llama_13b(), no_rd);
  auto trace = small_trace(4.0, 12.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_EQ(eng.rescue_redispatches(), 0);
  EXPECT_EQ(eng.balance_redispatches(), 0);
}

TEST(HetisEngine, GreedyDispatchAblation) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisOptions greedy = default_opts();
  greedy.use_lp = false;
  HetisEngine eng(cluster, model::llama_13b(), greedy);
  auto trace = small_trace(4.0, 12.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
}

TEST(HetisEngine, ThetaExtremesServeCorrectly) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  auto trace = small_trace(3.0, 10.0);
  for (double theta : {0.1, 0.9}) {
    HetisOptions opts = default_opts();
    opts.theta = theta;
    HetisEngine eng(cluster, model::llama_13b(), opts);
    engine::RunReport rep = engine::run_trace(eng, trace);
    EXPECT_EQ(rep.finished, trace.size()) << "theta " << theta;
  }
}

TEST(HetisEngine, UsageSamplingProducesSeries) {
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  HetisOptions opts = default_opts();
  opts.sample_interval = 0.5;
  opts.sample_horizon = 10.0;
  opts.workload.decode_batch = 16;
  HetisEngine eng(cluster, model::llama_13b(), opts);
  auto trace = small_trace(2.0, 8.0);
  engine::run_trace(eng, trace);
  const auto& usage = eng.metrics().usage_series();
  EXPECT_GT(usage.size(), 10u);
  for (const auto& s : usage) {
    EXPECT_GE(s.cache_used_fraction, 0.0);
    EXPECT_LE(s.cache_used_fraction, 1.0);
    EXPECT_GE(s.heads, 0.0);
  }
}

TEST(HetisEngine, FixedPlanConstructor) {
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  // A100 primary, both 3090s as attention workers.
  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  parallel::StageConfig s;
  s.devices = {0};
  s.layers = model::llama_13b().layers;
  inst.stages = {s};
  inst.attention_workers = {1, 2};
  plan.instances.push_back(inst);
  HetisEngine eng(cluster, model::llama_13b(), default_opts(), plan);
  auto trace = small_trace(1.0, 10.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
}

TEST(HetisEngine, MemoryPressureTriggersRescueOrPreemption) {
  // Tiny cluster + long-context workload: the §5.3.2 path must engage and
  // the system must still drain.
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  HetisOptions opts = default_opts();
  opts.workload.decode_batch = 16;
  HetisEngine eng(cluster, model::llama_13b(), opts);
  auto trace = small_trace(1.2, 25.0, 5, workload::Dataset::kLongBench);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(2400.0));
  EXPECT_EQ(rep.finished, trace.size());
}

TEST(HetisEngine, DeterministicAcrossRuns) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  auto trace = small_trace(3.0, 10.0);
  HetisEngine e1(cluster, model::llama_13b(), default_opts());
  HetisEngine e2(cluster, model::llama_13b(), default_opts());
  engine::RunReport r1 = engine::run_trace(e1, trace);
  engine::RunReport r2 = engine::run_trace(e2, trace);
  EXPECT_DOUBLE_EQ(r1.norm_latency_mean, r2.norm_latency_mean);
  EXPECT_DOUBLE_EQ(r1.ttft_p95, r2.ttft_p95);
}

TEST(HetisEngine, ProfilerAccuraciesSurface) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HetisEngine eng(cluster, model::llama_13b(), default_opts());
  for (const auto& [dev, prof] : eng.profile().devices) {
    EXPECT_GT(prof.attn_accuracy, 0.8) << "device " << dev;
  }
}

}  // namespace
}  // namespace hetis::core
