// Unit tests: HexGen and Splitwise baselines.
#include <gtest/gtest.h>

#include <set>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "engine/engine.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace hetis::baselines {
namespace {

std::vector<workload::Request> small_trace(double rate, double horizon,
                                           workload::Dataset ds = workload::Dataset::kShareGPT) {
  workload::TraceOptions opts;
  opts.dataset = ds;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = 11;
  return workload::build_trace(opts);
}

// --- HexGen plan ---

class HexgenPlanModels : public ::testing::TestWithParam<const model::ModelSpec*> {};

TEST_P(HexgenPlanModels, StagesAreHomogeneousPerHostAndCoverModel) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::ParallelPlan plan = hexgen_plan(cluster, *GetParam());
  ASSERT_EQ(plan.instances.size(), 1u);
  const auto& inst = plan.instances[0];
  // Paper setup: four stages (A100x4, 3090x2, 3090x2, P100x4).
  EXPECT_EQ(inst.stages.size(), 4u);
  EXPECT_EQ(inst.total_layers(), GetParam()->layers);
  for (const auto& s : inst.stages) {
    for (int dev : s.devices) {
      EXPECT_EQ(cluster.device(dev).type, cluster.device(s.devices.front()).type);
      EXPECT_EQ(cluster.device(dev).host, cluster.device(s.devices.front()).host);
    }
    EXPECT_GT(s.layers, 0);
  }
  EXPECT_TRUE(inst.attention_workers.empty());
}

TEST_P(HexgenPlanModels, AsymmetricSplitFavoursFastStages) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::ParallelPlan plan = hexgen_plan(cluster, *GetParam());
  const auto& stages = plan.instances[0].stages;
  // First stage (A100s) gets the most layers; last (P100s) the fewest.
  EXPECT_GT(stages.front().layers, stages.back().layers);
}

INSTANTIATE_TEST_SUITE_P(Models, HexgenPlanModels,
                         ::testing::Values(&model::llama_13b(), &model::opt_30b(),
                                           &model::llama_70b()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(HexgenPlan, ParamShardsFitDeviceMemory) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  for (const auto* m : {&model::llama_13b(), &model::opt_30b(), &model::llama_70b()}) {
    parallel::ParallelPlan plan = hexgen_plan(cluster, *m);
    const auto& stages = plan.instances[0].stages;
    for (std::size_t k = 0; k < stages.size(); ++k) {
      Bytes shard = engine::stage_param_bytes_per_device(*m, stages[k], k == 0,
                                                         k + 1 == stages.size());
      for (int dev : stages[k].devices) {
        EXPECT_LT(shard, cluster.device(dev).spec().memory)
            << m->name << " stage " << k << " dev " << dev;
      }
    }
  }
}

TEST(HexgenEngine, ServesTraceToCompletion) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HexgenEngine eng(cluster, model::llama_13b());
  auto trace = small_trace(2.0, 15.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(rep.norm_latency_mean, 0);
  EXPECT_GT(rep.tpot_p95, 0);
}

TEST(HexgenEngine, UsableKvBelowRawCapacity) {
  // The parameter-split memory inefficiency (Fig. 1b): effective cache is
  // bounded by the tightest stage.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  HexgenEngine eng(cluster, model::llama_70b());
  Bytes usable = eng.usable_kv_capacity();
  EXPECT_GT(usable, 0);
  EXPECT_LT(usable, cluster.total_memory());
}

// --- Splitwise plan ---

TEST(SplitwisePlan, PrefillPoolIsHighestEndFullModel) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwisePlan plan = splitwise_default_plan(cluster, model::llama_13b());
  ASSERT_EQ(plan.prefill.stages.size(), 1u);
  const auto& s = plan.prefill.stages[0];
  EXPECT_EQ(s.layers, model::llama_13b().layers);
  for (int dev : s.devices) {
    EXPECT_EQ(cluster.device(dev).type, hw::GpuType::kA100_80G);
  }
}

TEST(SplitwisePlan, TwoDecodePipelinesForSmallModels) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwisePlan plan = splitwise_default_plan(cluster, model::llama_13b());
  // Paper: two [3090-TP2 -> P100-TP2] pipelines.
  EXPECT_EQ(plan.decode.size(), 2u);
  for (const auto& d : plan.decode) {
    EXPECT_EQ(d.total_layers(), model::llama_13b().layers);
    EXPECT_EQ(d.stages.size(), 2u);
  }
}

TEST(SplitwisePlan, DecodeShardsFitMemory) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  for (const auto* m : {&model::llama_13b(), &model::opt_30b(), &model::llama_70b()}) {
    SplitwisePlan plan = splitwise_default_plan(cluster, *m);
    for (const auto& d : plan.decode) {
      EXPECT_EQ(d.total_layers(), m->layers) << m->name;
      for (std::size_t k = 0; k < d.stages.size(); ++k) {
        Bytes shard = engine::stage_param_bytes_per_device(*m, d.stages[k], k == 0,
                                                           k + 1 == d.stages.size()) +
                      d.stages[k].extra_reserved;
        for (int dev : d.stages[k].devices) {
          EXPECT_LE(shard, cluster.device(dev).spec().memory)
              << m->name << " decode stage " << k;
        }
      }
    }
  }
}

TEST(SplitwisePlan, Llama70bBorrowsPrefillDevices) {
  // 70B cannot fit on the low-end pools alone; the plan must borrow a
  // leading decode stage from the A100s and account the duplicate copy.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwisePlan plan = splitwise_default_plan(cluster, model::llama_70b());
  ASSERT_EQ(plan.decode.size(), 1u);
  const auto& first = plan.decode[0].stages.front();
  EXPECT_EQ(cluster.device(first.devices.front()).type, hw::GpuType::kA100_80G);
  EXPECT_GT(first.extra_reserved, 0);
  EXPECT_GT(plan.prefill.stages.front().extra_reserved, 0);
}

TEST(SplitwisePlan, SingleTypeClusterSplitsPool) {
  hw::Cluster c;
  c.add_host("h0", hw::GpuType::kA100_80G, 4);
  SplitwisePlan plan = splitwise_default_plan(c, model::llama_13b());
  EXPECT_EQ(plan.prefill.stages.front().devices.size(), 2u);
  ASSERT_EQ(plan.decode.size(), 1u);
  EXPECT_EQ(plan.decode[0].stages.front().devices.size(), 2u);
}

TEST(SplitwiseEngine, ServesTraceToCompletion) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwiseEngine eng(cluster, model::llama_13b());
  auto trace = small_trace(2.0, 15.0);
  engine::RunReport rep = engine::run_trace(eng, trace);
  EXPECT_EQ(rep.finished, trace.size());
  EXPECT_GT(eng.migrated_bytes(), 0);  // every request's KV moved
}

TEST(SplitwiseEngine, TtftIncludesMigration) {
  // First token is only recorded decode-side, so TTFT must exceed the pure
  // prefill compute time for every request with output > 1.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwiseEngine eng(cluster, model::llama_13b());
  auto trace = small_trace(1.0, 10.0);
  engine::run_trace(eng, trace);
  for (const auto& rec : eng.metrics().records()) {
    if (rec.output_len > 1 && rec.finished()) {
      EXPECT_GT(rec.ttft(), 0.0);
    }
  }
}

TEST(SplitwiseEngine, DuplicateParametersShrinkUsableKv) {
  // Fig. 11: Splitwise's usable cache trails a single-copy deployment.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwiseEngine sw(cluster, model::opt_30b());
  HexgenEngine hex(cluster, model::opt_30b());
  // OPT-30B: both fit, but Splitwise pays for two copies; its usable
  // KV should not exceed HexGen's by much and typically trails it.
  EXPECT_LT(sw.usable_kv_capacity(), cluster.total_memory());
  EXPECT_GT(sw.usable_kv_capacity(), 0);
  EXPECT_GT(hex.usable_kv_capacity(), 0);
}

TEST(SplitwiseEngine, LongBenchStressWithBackpressure) {
  // Long prompts make migrations heavy; the engine must remain live and
  // eventually drain.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  SplitwiseEngine eng(cluster, model::llama_13b());
  auto trace = small_trace(1.0, 10.0, workload::Dataset::kLongBench);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(1200.0));
  EXPECT_EQ(rep.finished, trace.size());
}

}  // namespace
}  // namespace hetis::baselines
