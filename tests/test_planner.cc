// Planner-tier tests: registry semantics, flow-vs-exhaustive oracle
// equivalence on every small preset x objective, remap round-trips and the
// datacenter presets the flow tier exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/presets.h"
#include "model/llm.h"
#include "parallel/evaluator.h"
#include "parallel/objective.h"
#include "parallel/parallelizer.h"
#include "planner/flow_planner.h"
#include "planner/planner.h"

namespace hetis {
namespace {

const std::vector<std::string> kSmallPresets = {"ablation", "budget", "paper"};
const std::vector<std::string> kObjectives = {"throughput", "latency", "goodput_per_device"};

parallel::WorkloadProfile default_profile() { return parallel::WorkloadProfile{}; }

double plan_score(const hw::Cluster& cluster, const model::ModelSpec& model,
                  const parallel::ParallelPlan& plan, const std::string& objective) {
  parallel::PlanEvaluator evaluator(cluster, model);
  std::unique_ptr<parallel::PlanObjective> obj = parallel::make_objective(objective);
  return obj->score(evaluator.evaluate(plan, default_profile()));
}

// --- registry -----------------------------------------------------------

TEST(PlannerRegistry, NamesSortedAndValidated) {
  const auto names = planner::planner_names();
  EXPECT_EQ(names, (std::vector<std::string>{"auto", "exhaustive", "flow"}));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& n : names) EXPECT_NO_THROW(planner::validate(n));
  EXPECT_NO_THROW(planner::validate(""));  // "" = the options default ("auto")
  try {
    planner::validate("simulated-annealing");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("simulated-annealing"), std::string::npos);
    for (const auto& n : names) EXPECT_NE(msg.find("'" + n + "'"), std::string::npos);
  }
}

TEST(PlannerRegistry, AutoPicksByDeviceCount) {
  const model::ModelSpec& model = model::llama_13b();
  parallel::ParallelizerOptions opts;
  hw::Cluster small = harness::cluster_by_name("paper");
  ASSERT_LE(small.num_devices(), planner::kAutoExhaustiveMaxDevices);
  EXPECT_EQ(planner::make("auto", small, model, opts)->name(), "exhaustive");
  EXPECT_EQ(planner::make("", small, model, opts)->name(), "exhaustive");

  hw::Cluster big = harness::cluster_by_name("dc64");
  ASSERT_GT(big.num_devices(), planner::kAutoExhaustiveMaxDevices);
  EXPECT_EQ(planner::make("auto", big, model::llama_70b(), opts)->name(), "flow");
  EXPECT_EQ(planner::make("exhaustive", big, model::llama_70b(), opts)->name(), "exhaustive");
  EXPECT_EQ(planner::make("flow", small, model, opts)->name(), "flow");
  EXPECT_THROW(planner::make("nope", small, model, opts), std::invalid_argument);
}

// --- oracle equivalence -------------------------------------------------

// The flow tier must stay within 5% of the exhaustive oracle on every
// small preset under every objective, judged by the SAME PlanEvaluator
// both planners score candidates with (the ISSUE's acceptance bound).
TEST(FlowPlannerOracle, WithinFivePercentOnEverySmallPreset) {
  for (const std::string& preset : kSmallPresets) {
    hw::Cluster cluster = harness::cluster_by_name(preset);
    ASSERT_LE(cluster.num_devices(), 12) << preset;
    const model::ModelSpec& model = model::llama_13b();
    for (const std::string& objective : kObjectives) {
      parallel::ParallelizerOptions opts;
      opts.objective.name = objective;

      planner::ExhaustivePlanner oracle(cluster, model, opts);
      parallel::ParallelPlan oracle_plan = oracle.plan(default_profile());
      planner::FlowPlanner flow(cluster, model, opts);
      parallel::ParallelPlan flow_plan = flow.plan(default_profile());

      const double oracle_score = plan_score(cluster, model, oracle_plan, objective);
      const double flow_score = plan_score(cluster, model, flow_plan, objective);
      // Lower is better (goodput scores are negative); 5% of |oracle|.
      EXPECT_LE(flow_score, oracle_score + 0.05 * std::abs(oracle_score) + 1e-12)
          << preset << " x " << objective << ": flow=" << flow_score
          << " oracle=" << oracle_score;
    }
  }
}

TEST(FlowPlannerOracle, DiagnosticsDescribeTheSearch) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::llama_13b();
  parallel::ParallelizerOptions opts;
  planner::FlowPlanner flow(cluster, model, opts);
  parallel::ParallelPlan plan = flow.plan(default_profile());
  const parallel::SearchDiagnostics& diag = flow.diagnostics();
  EXPECT_EQ(diag.planner, "flow");
  EXPECT_EQ(diag.objective, "throughput");
  EXPECT_GT(diag.lp_solves, 0u);
  EXPECT_GT(diag.solver_iterations, 0u);
  EXPECT_GT(diag.configurations_evaluated, 0);
  EXPECT_GE(diag.relaxation_gap, 0.0);
  EXPECT_TRUE(diag.fallback_reason.empty()) << diag.fallback_reason;

  const std::string s = plan.to_string(cluster, &diag);
  EXPECT_NE(s.find("planner=flow"), std::string::npos) << s;
  EXPECT_NE(s.find("lp_solves="), std::string::npos) << s;
  EXPECT_NE(s.find("relaxation_gap="), std::string::npos) << s;
  // No fallback fired, so the reason must stay out of the summary.
  EXPECT_EQ(s.find("fallback="), std::string::npos) << s;

  planner::ExhaustivePlanner exhaustive(cluster, model, opts);
  EXPECT_EQ(exhaustive.diagnostics().planner, "exhaustive");
}

// --- device-id remapping ------------------------------------------------

// A flow plan computed on a subcluster must remap cleanly onto the parent:
// forward through original_ids, then back through the inverse, recovering
// the sub-cluster plan exactly (the elastic replan path does the forward
// half on every churn event).
TEST(FlowPlannerRemap, RoundTripsThroughSubcluster) {
  hw::Cluster parent = harness::cluster_by_name("paper");
  // Drop one device of each host tier: a churn-shaped survivor set.
  std::vector<int> survivors;
  for (int id = 0; id < parent.num_devices(); ++id) {
    if (id % 4 != 1) survivors.push_back(id);
  }
  std::vector<int> original_ids;
  hw::Cluster sub = parent.subcluster(survivors, &original_ids);

  parallel::ParallelizerOptions opts;
  planner::FlowPlanner flow(sub, model::llama_13b(), opts);
  parallel::ParallelPlan plan = flow.plan(default_profile());

  parallel::ParallelPlan mapped = plan;
  parallel::remap_device_ids(mapped, original_ids);
  std::map<int, int> inverse;  // parent id -> sub id
  for (std::size_t i = 0; i < original_ids.size(); ++i) {
    inverse[original_ids[i]] = static_cast<int>(i);
  }
  ASSERT_EQ(mapped.instances.size(), plan.instances.size());
  for (std::size_t i = 0; i < mapped.instances.size(); ++i) {
    const auto& m = mapped.instances[i];
    const auto& p = plan.instances[i];
    ASSERT_EQ(m.stages.size(), p.stages.size());
    for (std::size_t k = 0; k < m.stages.size(); ++k) {
      ASSERT_EQ(m.stages[k].devices.size(), p.stages[k].devices.size());
      EXPECT_EQ(m.stages[k].layers, p.stages[k].layers);
      for (std::size_t j = 0; j < m.stages[k].devices.size(); ++j) {
        const int parent_id = m.stages[k].devices[j];
        // Same silicon on both sides of the mapping...
        EXPECT_EQ(parent.device(parent_id).type, sub.device(p.stages[k].devices[j]).type);
        // ...and the inverse map recovers the sub-cluster id exactly.
        EXPECT_EQ(inverse.at(parent_id), p.stages[k].devices[j]);
      }
    }
    ASSERT_EQ(m.attention_workers.size(), p.attention_workers.size());
    for (std::size_t j = 0; j < m.attention_workers.size(); ++j) {
      EXPECT_EQ(inverse.at(m.attention_workers[j]), p.attention_workers[j]);
    }
  }
}

// --- datacenter scale ---------------------------------------------------

TEST(FlowPlannerScale, PlansDatacenterPresets) {
  for (const std::string& preset : {std::string("dc64"), std::string("dc128")}) {
    hw::Cluster cluster = harness::cluster_by_name(preset);
    parallel::ParallelizerOptions opts;
    planner::FlowPlanner flow(cluster, model::llama_70b(), opts);
    parallel::ParallelPlan plan = flow.plan(default_profile());
    ASSERT_FALSE(plan.instances.empty()) << preset;
    std::vector<bool> used(static_cast<std::size_t>(cluster.num_devices()), false);
    for (const auto& inst : plan.instances) {
      EXPECT_EQ(inst.total_layers(), model::llama_70b().layers);
      for (int dev : inst.primary_devices()) {
        ASSERT_GE(dev, 0);
        ASSERT_LT(dev, cluster.num_devices());
        EXPECT_FALSE(used[static_cast<std::size_t>(dev)]) << "device " << dev << " reused";
        used[static_cast<std::size_t>(dev)] = true;
      }
      for (int dev : inst.attention_workers) {
        ASSERT_GE(dev, 0);
        ASSERT_LT(dev, cluster.num_devices());
        EXPECT_FALSE(used[static_cast<std::size_t>(dev)]) << "device " << dev << " reused";
        used[static_cast<std::size_t>(dev)] = true;
      }
    }
    EXPECT_TRUE(flow.diagnostics().fallback_reason.empty());
  }
}

// The dc* presets mix interconnect tiers through per-host overrides; the
// planner's cost model must see NVLink on the H100 hosts and PCIe 3.0 on
// the T4 hosts, and subcluster() must carry the overrides along.
TEST(DatacenterPresets, HeterogeneousFabrics) {
  hw::Cluster dc = harness::cluster_by_name("dc128");
  EXPECT_EQ(dc.num_devices(), 128);
  double nvlink_bw = 0, pcie3_bw = 0, default_bw = 0;
  for (const auto& host : dc.hosts()) {
    const hw::Link& l = dc.host_intra_link(host.id);
    const hw::GpuType t = dc.device(host.device_ids.front()).type;
    if (t == hw::GpuType::kH100_80G) {
      nvlink_bw = l.bandwidth;
    } else if (t == hw::GpuType::kT4) {
      pcie3_bw = l.bandwidth;
    } else {
      default_bw = l.bandwidth;
    }
  }
  EXPECT_GT(nvlink_bw, default_bw);
  EXPECT_GT(default_bw, pcie3_bw);

  // link() consults the override for same-host pairs.
  const auto h100s = dc.devices_of_type(hw::GpuType::kH100_80G);
  ASSERT_GE(h100s.size(), 2u);
  EXPECT_DOUBLE_EQ(dc.link(h100s[0], h100s[1]).bandwidth, nvlink_bw);

  // Overrides survive subcluster() under renumbered host ids.
  const auto t4s = dc.devices_of_type(hw::GpuType::kT4);
  std::vector<int> keep = {h100s[0], h100s[1], t4s[0], t4s[1]};
  hw::Cluster sub = dc.subcluster(keep);
  EXPECT_DOUBLE_EQ(sub.link(0, 1).bandwidth, nvlink_bw);
  EXPECT_DOUBLE_EQ(sub.link(2, 3).bandwidth, pcie3_bw);
  EXPECT_THROW(dc.host_intra_link(-1), std::invalid_argument);
  EXPECT_THROW(dc.set_host_intra_link(10'000, hw::Link{}), std::invalid_argument);
}

}  // namespace
}  // namespace hetis
