// Cross-system integration tests: all three engines on shared traces.
#include <gtest/gtest.h>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace hetis {
namespace {

std::vector<workload::Request> make_trace(workload::Dataset ds, double rate, double horizon) {
  workload::TraceOptions opts;
  opts.dataset = ds;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = 123;
  return workload::build_trace(opts);
}

struct TriReport {
  engine::RunReport splitwise, hexgen, hetis;
};

TriReport run_all(const model::ModelSpec& m, const std::vector<workload::Request>& trace,
                  Seconds drain = 900.0) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  TriReport out;
  {
    baselines::SplitwiseEngine eng(cluster, m);
    out.splitwise = engine::run_trace(eng, trace, engine::RunOptions(drain));
  }
  {
    baselines::HexgenEngine eng(cluster, m);
    out.hexgen = engine::run_trace(eng, trace, engine::RunOptions(drain));
  }
  {
    core::HetisOptions opts;
    opts.workload.decode_batch = 64;
    core::HetisEngine eng(cluster, m, opts);
    out.hetis = engine::run_trace(eng, trace, engine::RunOptions(drain));
  }
  return out;
}

TEST(Integration, AllSystemsDrainShareGpt13b) {
  auto trace = make_trace(workload::Dataset::kShareGPT, 4.0, 15.0);
  TriReport r = run_all(model::llama_13b(), trace);
  EXPECT_EQ(r.splitwise.finished, trace.size());
  EXPECT_EQ(r.hexgen.finished, trace.size());
  EXPECT_EQ(r.hetis.finished, trace.size());
}

TEST(Integration, HetisHasLargestUsableCache) {
  // Fig. 11's headline: Hetis provides the most usable KV space.
  auto trace = make_trace(workload::Dataset::kShareGPT, 1.0, 5.0);
  for (const auto* m : {&model::llama_13b(), &model::opt_30b(), &model::llama_70b()}) {
    TriReport r = run_all(*m, trace);
    EXPECT_GT(r.hetis.usable_kv, r.hexgen.usable_kv) << m->name;
    EXPECT_GT(r.hetis.usable_kv, r.splitwise.usable_kv) << m->name;
  }
}

TEST(Integration, HetisWinsNormalizedLatencyUnderLoad) {
  // The Fig. 8 shape at a moderately high rate.
  auto trace = make_trace(workload::Dataset::kShareGPT, 8.0, 20.0);
  TriReport r = run_all(model::llama_13b(), trace);
  EXPECT_LT(r.hetis.norm_latency_mean, r.hexgen.norm_latency_mean);
  EXPECT_LT(r.hetis.norm_latency_mean, r.splitwise.norm_latency_mean);
}

TEST(Integration, HetisWinsTpotOn70b) {
  // Fig. 12's TPOT ordering for the GQA model.
  auto trace = make_trace(workload::Dataset::kShareGPT, 1.5, 20.0);
  TriReport r = run_all(model::llama_70b(), trace);
  EXPECT_LT(r.hetis.tpot_p95, r.hexgen.tpot_p95);
  EXPECT_LT(r.hetis.tpot_p95, r.splitwise.tpot_p95);
}

TEST(Integration, HexgenTtftWorstUnderPipelineBubbles) {
  // Fig. 12: HexGen's P100-laden prefill pipeline has the worst TTFT.
  auto trace = make_trace(workload::Dataset::kShareGPT, 6.0, 15.0);
  TriReport r = run_all(model::llama_13b(), trace);
  EXPECT_GT(r.hexgen.ttft_p95, r.hetis.ttft_p95);
}

TEST(Integration, DeterministicSharedTrace) {
  auto trace = make_trace(workload::Dataset::kHumanEval, 5.0, 10.0);
  TriReport a = run_all(model::llama_13b(), trace);
  TriReport b = run_all(model::llama_13b(), trace);
  EXPECT_DOUBLE_EQ(a.hetis.norm_latency_mean, b.hetis.norm_latency_mean);
  EXPECT_DOUBLE_EQ(a.hexgen.norm_latency_mean, b.hexgen.norm_latency_mean);
  EXPECT_DOUBLE_EQ(a.splitwise.norm_latency_mean, b.splitwise.norm_latency_mean);
}

TEST(Integration, HumanEvalHighRateDrains) {
  // HumanEval's short sequences sustain much higher rates (paper: 15-75).
  auto trace = make_trace(workload::Dataset::kHumanEval, 20.0, 10.0);
  TriReport r = run_all(model::llama_13b(), trace);
  EXPECT_EQ(r.hetis.finished, trace.size());
  EXPECT_GE(r.hexgen.finished, trace.size() * 9 / 10);
}

TEST(Integration, ModuleMetricsPopulated) {
  auto trace = make_trace(workload::Dataset::kShareGPT, 3.0, 10.0);
  TriReport r = run_all(model::llama_70b(), trace);
  EXPECT_GT(r.hetis.mlp_module_p95, 0);
  EXPECT_GT(r.hetis.attn_module_p95, 0);
  EXPECT_GT(r.hexgen.mlp_module_p95, 0);
}

}  // namespace
}  // namespace hetis
